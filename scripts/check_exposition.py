#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (format 0.0.4) document.

Stdlib-only checker for CI: reads the scrape body from a file (or
stdin) and verifies the subset of the format the xbsp metrics endpoint
emits -- # TYPE comments, bare `name value` samples, no labels:

  * every line is a comment, blank, or `name value`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every sample is preceded by a # TYPE comment for its series;
  * # TYPE kinds are valid (counter|gauge|histogram|summary|untyped);
  * no series name is typed twice or sampled twice;
  * values parse as floats (inf/nan allowed);
  * series ending in _total/_sum/_count are typed counter, and
    counters are never negative.

Exits 0 and prints a one-line summary on success; exits 1 with the
offending line on the first violation.  Optional --require NAME flags
assert that specific series are present (CI uses this to prove the
scrape actually hit a live run); --require-prefix PREFIX asserts that
at least one series starts with the prefix (CI uses this to prove a
whole subsystem — e.g. the xbsp_dist_* distributed executor — showed
up without naming every series).
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(lineno: int, line: str, why: str) -> None:
    sys.stderr.write(
        f"check_exposition: line {lineno}: {why}\n  {line}\n")
    sys.exit(1)


def check(text: str, required: list[str],
          required_prefixes: list[str]) -> int:
    typed: dict[str, str] = {}
    sampled: set[str] = set()

    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split()
            if len(fields) >= 2 and fields[1] not in ("TYPE", "HELP"):
                fail(lineno, line, "comment is neither TYPE nor HELP")
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) != 4:
                    fail(lineno, line, "TYPE needs a name and a kind")
                name, kind = fields[2], fields[3]
                if not NAME_RE.match(name):
                    fail(lineno, line, f"bad metric name {name!r}")
                if kind not in TYPE_KINDS:
                    fail(lineno, line, f"bad TYPE kind {kind!r}")
                if name in typed:
                    fail(lineno, line, f"{name} typed twice")
                typed[name] = kind
            continue

        parts = line.split(" ")
        if len(parts) != 2:
            fail(lineno, line, "expected 'name value'")
        name, value = parts
        if not NAME_RE.match(name):
            fail(lineno, line, f"bad metric name {name!r}")
        if name in sampled:
            fail(lineno, line, f"{name} sampled twice")
        sampled.add(name)
        if name not in typed:
            fail(lineno, line, f"{name} has no preceding # TYPE")
        try:
            parsed = float(value)
        except ValueError:
            fail(lineno, line, f"bad sample value {value!r}")
        cumulative = name.endswith(("_total", "_sum", "_count"))
        if cumulative and typed[name] != "counter":
            fail(lineno, line,
                 f"{name} looks cumulative but is typed {typed[name]}")
        if typed[name] == "counter" and (
                math.isnan(parsed) or parsed < 0):
            fail(lineno, line, f"counter {name} has value {value}")

    untouched = sorted(set(typed) - sampled)
    if untouched:
        fail(0, ", ".join(untouched), "typed series never sampled")
    missing = sorted(set(required) - sampled)
    if missing:
        sys.stderr.write(
            f"check_exposition: required series missing: "
            f"{', '.join(missing)}\n")
        sys.exit(1)
    missing_prefixes = sorted(
        p for p in set(required_prefixes)
        if not any(name.startswith(p) for name in sampled))
    if missing_prefixes:
        sys.stderr.write(
            f"check_exposition: no series with required prefix: "
            f"{', '.join(missing_prefixes)}\n")
        sys.exit(1)
    print(f"check_exposition: OK ({len(sampled)} series, "
          f"{sum(1 for k in typed.values() if k == 'counter')} "
          f"counters)")
    return len(sampled)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Prometheus text-exposition 0.0.4 checker")
    parser.add_argument("path", nargs="?", default="-",
                        help="exposition file ('-' = stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this series is present "
                             "(repeatable)")
    parser.add_argument("--require-prefix", action="append",
                        default=[], metavar="PREFIX",
                        help="fail unless at least one series starts "
                             "with this prefix (repeatable)")
    args = parser.parse_args()
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as f:
            text = f.read()
    if not text.strip():
        sys.stderr.write("check_exposition: empty document\n")
        sys.exit(1)
    check(text, args.require, args.require_prefix)


if __name__ == "__main__":
    main()
