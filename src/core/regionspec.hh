/**
 * @file
 * Cross-binary region specifications (§3.2.5): the deliverable a
 * simulation team consumes.
 *
 * A simulation point's start and end are (mappable point, firing
 * count) pairs.  For a given binary, each pair resolves to a concrete
 * set of machine markers (the clone group) plus the target count, so
 * a driver can arm breakpoints/instrumentation at those instructions
 * and start/stop detailed simulation on the right firing.  This
 * module builds those per-binary specs from a study's partition and
 * clustering, and serializes them in a PinPoints-flavoured text
 * format:
 *
 *   # columns: phase weight start_marker start_count end_marker end_count
 *   0 0.3125 m12 47 m12 93
 *   1 0.5000 m3 1 - -            ("- -" = run to program end)
 *   2 ...                        (start "^ 0" = program start)
 */

#ifndef XBSP_CORE_REGIONSPEC_HH
#define XBSP_CORE_REGIONSPEC_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/mappable.hh"
#include "core/vli.hh"
#include "simpoint/simpoint.hh"

namespace xbsp::core
{

/** One end of a region in one binary. */
struct RegionAnchor
{
    bool atProgramEdge = false;     ///< start-of-run / end-of-run
    std::vector<u32> markerIds;     ///< clone group in this binary
    u64 fireCount = 0;              ///< cumulative firing count
};

/** One simulation region of one binary. */
struct RegionSpec
{
    u32 phaseId = 0;
    double weight = 0.0;  ///< this binary's recalculated weight
    RegionAnchor start;   ///< exclusive (region begins after it)
    RegionAnchor end;     ///< inclusive boundary event
};

/**
 * Resolve the chosen simulation points into per-binary region specs.
 * `weights` supplies per-phase weights for this binary (use the
 * primary clustering's weights when per-binary weights are not yet
 * known); its size must equal the number of phases.
 */
std::vector<RegionSpec> buildRegionSpecs(
    const MappableSet& mappable, const VliPartition& partition,
    const sp::SimPointResult& clustering, std::size_t binaryIdx,
    const std::vector<double>& weights);

/** Serialize specs in the text format documented above. */
void writeRegionSpecs(std::ostream& os,
                      const std::vector<RegionSpec>& specs);

} // namespace xbsp::core

#endif // XBSP_CORE_REGIONSPEC_HH
