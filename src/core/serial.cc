#include "core/serial.hh"

namespace xbsp::core
{

void
encodeVliBuild(serial::Encoder& e, const VliBuild& build)
{
    e.varint(build.partition.boundaries.size());
    for (const Boundary& b : build.partition.boundaries) {
        e.varint(b.pointIdx);
        e.varint(b.fireCount);
    }
    sp::encodeFvs(e, build.intervals);
    e.varint(build.totalInstructions);
}

VliBuild
decodeVliBuild(serial::Decoder& d)
{
    VliBuild build;
    const u64 boundaries = d.arrayCount(2);
    build.partition.boundaries.reserve(
        static_cast<std::size_t>(boundaries));
    for (u64 i = 0; i < boundaries; ++i) {
        Boundary b;
        b.pointIdx = static_cast<u32>(d.varint());
        b.fireCount = d.varint();
        build.partition.boundaries.push_back(b);
    }
    build.intervals = sp::decodeFvs(d);
    build.totalInstructions = d.varint();
    return build;
}

void
hashPartition(serial::Hasher& h, const VliPartition& partition)
{
    h.u64v(partition.boundaries.size());
    for (const Boundary& b : partition.boundaries) {
        h.u32v(b.pointIdx);
        h.u64v(b.fireCount);
    }
}

void
hashMappable(serial::Hasher& h, const MappableSet& mappable)
{
    h.u64v(mappable.binaryCount);
    h.u64v(mappable.points.size());
    for (const MappablePoint& point : mappable.points) {
        h.u64v(static_cast<u64>(point.key.kind));
        h.str(point.key.symbol);
        h.u32v(point.key.line);
        h.u64v(point.execCount);
        h.u64v(point.markerIds.size());
        for (const std::vector<u32>& group : point.markerIds) {
            h.u64v(group.size());
            for (u32 markerId : group)
                h.u32v(markerId);
        }
    }
    h.u64v(mappable.markerToPoint.size());
    for (const std::vector<u32>& table : mappable.markerToPoint) {
        h.u64v(table.size());
        for (u32 pointIdx : table)
            h.u32v(pointIdx);
    }
}

} // namespace xbsp::core
