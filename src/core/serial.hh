/**
 * @file
 * Artifact-store codec for VLI builds plus content hashing of the
 * mappable-point set (which keys VLI construction and detailed runs:
 * the boundary lists only make sense relative to one exact matching).
 */

#ifndef XBSP_CORE_SERIAL_HH
#define XBSP_CORE_SERIAL_HH

#include "core/mappable.hh"
#include "core/vli.hh"
#include "simpoint/serial.hh"
#include "util/serial.hh"

namespace xbsp::core
{

void encodeVliBuild(serial::Encoder& e, const VliBuild& build);
VliBuild decodeVliBuild(serial::Decoder& d);

/** Fold a VLI partition (the boundary list) into `h`. */
void hashPartition(serial::Hasher& h, const VliPartition& partition);

/**
 * Fold the full mappable-point set into `h` (keys, counts, per-binary
 * marker groups and the marker->point tables; rejected keys don't
 * affect downstream stages and are skipped).
 */
void hashMappable(serial::Hasher& h, const MappableSet& mappable);

/** Artifact-store codec for buildVliPartition results. */
struct VliBuildCodec
{
    using Value = VliBuild;
    static constexpr u32 tag = serial::fourcc("VLIB");
    static constexpr u32 version = 1;

    static void
    encode(serial::Encoder& e, const VliBuild& build)
    {
        encodeVliBuild(e, build);
    }

    static VliBuild
    decode(serial::Decoder& d)
    {
        return decodeVliBuild(d);
    }
};

} // namespace xbsp::core

#endif // XBSP_CORE_SERIAL_HH
