/**
 * @file
 * Cross-binary phase-agreement analysis — a quantitative version of
 * the paper's §5.2.1 argument.
 *
 * The paper argues per-binary SimPoint fails at cross-binary
 * comparisons because each binary's clustering groups execution
 * differently.  This module measures that directly: the mapped VLI
 * partition provides a common, semantically-aligned frame; each
 * binary's FLI phase labels are projected onto that frame (each VLI
 * interval takes the label of the FLI interval it overlaps most, by
 * instruction count); projected labelings of two binaries are then
 * compared with the adjusted Rand index.  ARI 1 means the binaries
 * agree on what the phases are; low ARI is exactly the inconsistent
 * grouping that breaks speedup estimates.
 */

#ifndef XBSP_CORE_AGREEMENT_HH
#define XBSP_CORE_AGREEMENT_HH

#include <vector>

#include "util/types.hh"

namespace xbsp::core
{

/**
 * Adjusted Rand index between two labelings of the same items.
 * Returns 1 for identical partitions (up to renaming), ~0 for
 * independent ones; may be slightly negative for adversarial pairs.
 */
double adjustedRandIndex(const std::vector<u32>& a,
                         const std::vector<u32>& b);

/**
 * Project per-FLI-interval labels onto a common partition.
 *
 * @param fliEnds cumulative instruction count at each FLI interval
 *                end (the binary's own fixed-length boundaries).
 * @param fliLabels phase label per FLI interval.
 * @param frameSizes instruction length of each frame interval (the
 *                   mapped VLI interval sizes *in this binary*).
 * @return one label per frame interval: the label of the FLI
 *         interval contributing the most instructions to it.
 */
std::vector<u32> projectLabelsOntoFrame(
    const std::vector<InstrCount>& fliEnds,
    const std::vector<u32>& fliLabels,
    const std::vector<InstrCount>& frameSizes);

} // namespace xbsp::core

#endif // XBSP_CORE_AGREEMENT_HH
