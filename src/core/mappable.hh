/**
 * @file
 * Mappable-point discovery (paper §3.2.2): find the set of
 * instructions that exist in *all* binaries of a program and mark the
 * exact same point of execution.
 *
 * Procedure entry points are matched by symbol name; loop entry
 * points and loop back-branches are matched by debug-info source
 * line.  A matched point must have the same dynamic execution count
 * in every binary — that guarantee is what lets a
 * (marker, execution count) pair denote one precise point of
 * execution in any binary.
 *
 * Inlined-procedure recovery (§3.3): when an optimizer clones a loop
 * (inlining it into several callers), the clones share the original
 * source line; this matcher aggregates same-key clones into one
 * *marker group* per binary and compares the summed counts, which
 * recovers exactly the cases the paper's call-count heuristic
 * recovers and rejects the rest (split loops double their per-line
 * count; compiler-generated loops have no line at all).
 */

#ifndef XBSP_CORE_MAPPABLE_HH
#define XBSP_CORE_MAPPABLE_HH

#include <string>
#include <vector>

#include "binary/binary.hh"
#include "profile/profile.hh"

namespace xbsp::core
{

/** Identity of a candidate point across binaries. */
struct MappableKey
{
    bin::MarkerKind kind = bin::MarkerKind::ProcEntry;
    std::string symbol;  ///< procedure name (ProcEntry)
    u32 line = 0;        ///< source line (loops)

    auto operator<=>(const MappableKey&) const = default;

    /** Display form, e.g. "proc-entry main" or "loop-branch @142". */
    std::string describe() const;
};

/** One mappable point: a marker group per binary, equal counts. */
struct MappablePoint
{
    MappableKey key;
    u64 execCount = 0;  ///< identical in every binary
    /** markerIds[binaryIdx] = the clone group in that binary. */
    std::vector<std::vector<u32>> markerIds;
};

/** Why a candidate key was rejected. */
enum class RejectReason
{
    MissingInSomeBinary,  ///< no marker with this key somewhere
    CountMismatch,        ///< summed counts differ across binaries
    NeverExecuted         ///< count 0 everywhere (useless as anchor)
};

/** Rejection record, for diagnostics and the applu analysis. */
struct RejectedKey
{
    MappableKey key;
    RejectReason reason = RejectReason::MissingInSomeBinary;
    std::vector<u64> countsPerBinary;  ///< summed; 0 when absent
};

/** The result of matching a set of binaries. */
struct MappableSet
{
    std::size_t binaryCount = 0;
    std::vector<MappablePoint> points;
    std::vector<RejectedKey> rejected;

    /** markerToPoint[binaryIdx][markerId] -> point index/invalidId. */
    std::vector<std::vector<u32>> markerToPoint;

    /** Point index for a marker in a binary; invalidId if unmapped. */
    u32
    pointFor(std::size_t binaryIdx, u32 markerId) const
    {
        return markerToPoint[binaryIdx][markerId];
    }

    /** Total dynamic firings of all mappable points (per binary). */
    u64 totalDynamicFirings() const;
};

/**
 * Match markers across binaries using their profiles.  All vectors
 * must be parallel (profiles[i] profiles *binaries[i]); at least one
 * binary is required.
 */
MappableSet findMappablePoints(
    const std::vector<const bin::Binary*>& binaries,
    const std::vector<const prof::MarkerProfile*>& profiles);

} // namespace xbsp::core

#endif // XBSP_CORE_MAPPABLE_HH
