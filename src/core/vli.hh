/**
 * @file
 * Variable-length-interval construction over mappable points (paper
 * §3.2.3) and cross-binary boundary tracking (§3.2.5).
 *
 * Execution of the *primary* binary is split into intervals of at
 * least the target size: once the target is reached, the interval
 * closes at the next mappable-point firing, recorded as a
 * (point index, cumulative firing count) pair.  Because mappable
 * points fire the same number of times in the same semantic order in
 * every binary, the same boundary list identifies the same partition
 * of execution in all of them — that is the whole trick.
 */

#ifndef XBSP_CORE_VLI_HH
#define XBSP_CORE_VLI_HH

#include <functional>
#include <vector>

#include "core/mappable.hh"
#include "exec/engine.hh"
#include "simpoint/fvec.hh"
#include "util/serial.hh"

namespace xbsp::core
{

/** One interval boundary: the fireCount-th firing of a point. */
struct Boundary
{
    u32 pointIdx = invalidId;
    u64 fireCount = 0;  ///< cumulative, 1-based

    bool operator==(const Boundary&) const = default;
};

/** An ordered list of interior boundaries (n-1 for n intervals). */
struct VliPartition
{
    std::vector<Boundary> boundaries;

    std::size_t
    intervalCount() const
    {
        return boundaries.size() + 1;
    }
};

/**
 * Observer that builds the VLI partition and per-interval BBVs while
 * the primary binary runs (subscribe: blocks + markers).
 */
class VliBbvCollector : public exec::Observer
{
  public:
    VliBbvCollector(const exec::Engine& engine,
                    const MappableSet& mappable, std::size_t binaryIdx,
                    InstrCount targetSize);

    void onBlock(u32 blockId, u32 instrs) override;
    void onMarker(u32 markerId) override;
    void onRunEnd() override;

    /** Per-interval BBVs (with true VLI lengths). */
    const sp::FrequencyVectorSet& intervals() const { return fvs; }

    /** The boundary list, mappable to every other binary. */
    const VliPartition& partition() const { return part; }

  private:
    const exec::Engine& engine;
    const MappableSet& mappable;
    const std::size_t binaryIdx;
    const InstrCount target;
    std::vector<u64> fireCounts;  ///< per mappable point
    std::vector<double> bbvDense;
    std::vector<u32> bbvTouched;
    sp::FrequencyVectorSet fvs;
    VliPartition part;
    InstrCount intervalStart = 0;

    void closeInterval(InstrCount now);
};

/** Result of building VLIs on the primary binary. */
struct VliBuild
{
    VliPartition partition;
    sp::FrequencyVectorSet intervals;
    InstrCount totalInstructions = 0;
};

/** Run the primary binary once and build its VLI partition + BBVs. */
VliBuild buildVliPartition(const bin::Binary& primary,
                           const MappableSet& mappable,
                           std::size_t primaryIdx,
                           InstrCount targetSize,
                           u64 seed = 0x5EEDull);

/**
 * Artifact-store key of one VLI build — the exact key
 * buildVliPartition memoizes under (artifact type VliBuildCodec).
 * Exposed so the pipeline scheduler can probe whether a VLI stage is
 * already cached.
 */
serial::Hash128 vliBuildKey(const bin::Binary& primary,
                            const MappableSet& mappable,
                            std::size_t primaryIdx,
                            InstrCount targetSize,
                            u64 seed = 0x5EEDull);

/**
 * Observer that replays a boundary list in *any* binary of the set
 * (subscribe: markers).  It fires `onBoundary(i)` exactly when the
 * i-th boundary's (point, count) event occurs, and panics if the
 * semantic-order invariant is violated (a point fires past its
 * expected count) — which would mean the binaries do not actually
 * execute the mappable points in the same order.
 */
class BoundaryTracker : public exec::Observer
{
  public:
    using Callback = std::function<void(std::size_t boundaryIdx)>;

    BoundaryTracker(const MappableSet& mappable, std::size_t binaryIdx,
                    const VliPartition& partition, Callback onBoundary);

    void onMarker(u32 markerId) override;

    /** True when every boundary has been crossed. */
    bool finished() const { return next == part.boundaries.size(); }

    /** Boundaries crossed so far. */
    std::size_t crossed() const { return next; }

  private:
    const MappableSet& mappable;
    const std::size_t binaryIdx;
    const VliPartition& part;
    Callback callback;
    std::vector<u64> fireCounts;
    std::size_t next = 0;
};

} // namespace xbsp::core

#endif // XBSP_CORE_VLI_HH
