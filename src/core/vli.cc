#include "core/vli.hh"

#include <algorithm>

#include "binary/serial.hh"
#include "core/serial.hh"
#include "store/store.hh"
#include "util/logging.hh"

namespace xbsp::core
{

VliBbvCollector::VliBbvCollector(const exec::Engine& eng,
                                 const MappableSet& set,
                                 std::size_t bIdx,
                                 InstrCount targetSize)
    : engine(eng), mappable(set), binaryIdx(bIdx), target(targetSize)
{
    if (target == 0)
        fatal("VLI interval target must be > 0");
    if (binaryIdx >= mappable.binaryCount)
        fatal("binary index {} out of range ({} binaries)",
              binaryIdx, mappable.binaryCount);
    fireCounts.assign(mappable.points.size(), 0);
    bbvDense.assign(eng.binary().blockCount(), 0.0);
    fvs.dimension = eng.binary().blockCount();
}

void
VliBbvCollector::onBlock(u32 blockId, u32 instrs)
{
    if (bbvDense[blockId] == 0.0)
        bbvTouched.push_back(blockId);
    bbvDense[blockId] += static_cast<double>(instrs);
}

void
VliBbvCollector::closeInterval(InstrCount now)
{
    std::sort(bbvTouched.begin(), bbvTouched.end());
    sp::SparseVec vec;
    vec.reserve(bbvTouched.size());
    for (u32 block : bbvTouched) {
        vec.emplace_back(block, bbvDense[block]);
        bbvDense[block] = 0.0;
    }
    bbvTouched.clear();
    fvs.addInterval(std::move(vec), now - intervalStart);
    intervalStart = now;
}

void
VliBbvCollector::onMarker(u32 markerId)
{
    const u32 pointIdx = mappable.pointFor(binaryIdx, markerId);
    if (pointIdx == invalidId)
        return;
    const u64 count = ++fireCounts[pointIdx];
    const InstrCount now = engine.instructionsExecuted();
    if (now - intervalStart >= target) {
        part.boundaries.push_back(Boundary{pointIdx, count});
        closeInterval(now);
    }
}

void
VliBbvCollector::onRunEnd()
{
    const InstrCount now = engine.instructionsExecuted();
    if (now > intervalStart)
        closeInterval(now);
    if (fvs.size() != part.intervalCount()) {
        // A boundary fired exactly at program end: the final interval
        // is empty.  Drop the trailing boundary so intervals and
        // boundaries stay consistent.
        if (fvs.size() + 1 == part.intervalCount() &&
            !part.boundaries.empty()) {
            part.boundaries.pop_back();
        } else {
            panic("VLI collector inconsistency: {} intervals vs {} "
                  "boundaries", fvs.size(), part.boundaries.size());
        }
    }
}

namespace
{
VliBuild buildVliPartitionUncached(const bin::Binary& primary,
                                   const MappableSet& mappable,
                                   std::size_t primaryIdx,
                                   InstrCount targetSize, u64 seed);
} // namespace

serial::Hash128
vliBuildKey(const bin::Binary& primary, const MappableSet& mappable,
            std::size_t primaryIdx, InstrCount targetSize, u64 seed)
{
    serial::Hasher h;
    h.str("vli");
    bin::hashBinary(h, primary);
    hashMappable(h, mappable);
    h.u64v(primaryIdx);
    h.u64v(targetSize);
    h.u64v(seed);
    return h.finish();
}

VliBuild
buildVliPartition(const bin::Binary& primary,
                  const MappableSet& mappable, std::size_t primaryIdx,
                  InstrCount targetSize, u64 seed)
{
    return store::ArtifactStore::global().getOrCompute<VliBuildCodec>(
        vliBuildKey(primary, mappable, primaryIdx, targetSize, seed),
        "vli", [&] {
            return buildVliPartitionUncached(primary, mappable,
                                             primaryIdx, targetSize,
                                             seed);
        });
}

namespace
{

VliBuild
buildVliPartitionUncached(const bin::Binary& primary,
                          const MappableSet& mappable,
                          std::size_t primaryIdx,
                          InstrCount targetSize, u64 seed)
{
    exec::Engine engine(primary, seed);
    VliBbvCollector collector(engine, mappable, primaryIdx,
                              targetSize);
    engine.addObserver(&collector, {true, false, true});
    engine.run();

    VliBuild build;
    build.partition = collector.partition();
    build.intervals = collector.intervals();
    build.totalInstructions = engine.instructionsExecuted();
    return build;
}

} // namespace

BoundaryTracker::BoundaryTracker(const MappableSet& set,
                                 std::size_t bIdx,
                                 const VliPartition& partition,
                                 Callback onBoundary)
    : mappable(set), binaryIdx(bIdx), part(partition),
      callback(std::move(onBoundary))
{
    fireCounts.assign(mappable.points.size(), 0);
    // Sanity: boundary counts never exceed the points' total counts.
    for (const Boundary& b : part.boundaries) {
        if (b.pointIdx >= mappable.points.size())
            panic("boundary references point {} out of range",
                  b.pointIdx);
        if (b.fireCount == 0 ||
            b.fireCount > mappable.points[b.pointIdx].execCount) {
            panic("boundary fire count {} outside point '{}' total {}",
                  b.fireCount,
                  mappable.points[b.pointIdx].key.describe(),
                  mappable.points[b.pointIdx].execCount);
        }
    }
}

void
BoundaryTracker::onMarker(u32 markerId)
{
    const u32 pointIdx = mappable.pointFor(binaryIdx, markerId);
    if (pointIdx == invalidId)
        return;
    const u64 count = ++fireCounts[pointIdx];
    if (next >= part.boundaries.size())
        return;
    const Boundary& expected = part.boundaries[next];
    if (expected.pointIdx == pointIdx) {
        if (count == expected.fireCount) {
            callback(next);
            ++next;
        } else if (count > expected.fireCount) {
            panic("boundary {} ('{}' firing {}) was missed: point is "
                  "now at firing {} — mappable points did not execute "
                  "in the same semantic order",
                  next,
                  mappable.points[pointIdx].key.describe(),
                  expected.fireCount, count);
        }
    }
}

} // namespace xbsp::core
