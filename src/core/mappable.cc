#include "core/mappable.hh"

#include "util/format.hh"
#include <map>

#include "util/logging.hh"

namespace xbsp::core
{

std::string
MappableKey::describe() const
{
    if (kind == bin::MarkerKind::ProcEntry)
        return xbsp::format("proc-entry {}", symbol);
    return xbsp::format("{} @{}", bin::markerKindName(kind), line);
}

u64
MappableSet::totalDynamicFirings() const
{
    u64 total = 0;
    for (const auto& point : points)
        total += point.execCount;
    return total;
}

namespace
{

struct KeyEntry
{
    u64 count = 0;
    std::vector<u32> markers;
};

using KeyMap = std::map<MappableKey, KeyEntry>;

/**
 * Collect candidate keys for one binary: proc entries keyed by
 * symbol, loop markers keyed by (kind, line).  Markers without debug
 * info (line 0 loops) are skipped — they can never be matched.
 */
KeyMap
collectKeys(const bin::Binary& binary, const prof::MarkerProfile& prof)
{
    KeyMap keys;
    for (u32 m = 0; m < binary.markerCount(); ++m) {
        const bin::Marker& marker = binary.markers[m];
        MappableKey key;
        key.kind = marker.kind;
        if (marker.kind == bin::MarkerKind::ProcEntry) {
            key.symbol = marker.symbol;
        } else {
            if (marker.line == 0)
                continue; // compiler-generated, no debug info
            key.line = marker.line;
        }
        KeyEntry& entry = keys[key];
        entry.count += prof.counts[m];
        entry.markers.push_back(m);
    }
    return keys;
}

} // namespace

MappableSet
findMappablePoints(const std::vector<const bin::Binary*>& binaries,
                   const std::vector<const prof::MarkerProfile*>& profiles)
{
    if (binaries.empty())
        fatal("findMappablePoints requires at least one binary");
    if (binaries.size() != profiles.size())
        fatal("findMappablePoints: {} binaries but {} profiles",
              binaries.size(), profiles.size());
    for (std::size_t b = 0; b < binaries.size(); ++b) {
        if (profiles[b]->counts.size() != binaries[b]->markerCount())
            fatal("profile {} has {} counts but binary has {} markers",
                  b, profiles[b]->counts.size(),
                  binaries[b]->markerCount());
    }

    std::vector<KeyMap> perBinary;
    perBinary.reserve(binaries.size());
    for (std::size_t b = 0; b < binaries.size(); ++b)
        perBinary.push_back(collectKeys(*binaries[b], *profiles[b]));

    // The union of keys over all binaries, so rejections can be
    // reported even for keys missing from the first binary.
    std::map<MappableKey, bool> allKeys;
    for (const auto& keys : perBinary) {
        for (const auto& [key, entry] : keys)
            allKeys.emplace(key, true);
    }

    MappableSet set;
    set.binaryCount = binaries.size();
    set.markerToPoint.resize(binaries.size());
    for (std::size_t b = 0; b < binaries.size(); ++b) {
        set.markerToPoint[b].assign(binaries[b]->markerCount(),
                                    invalidId);
    }

    for (const auto& [key, unused] : allKeys) {
        std::vector<u64> counts(binaries.size(), 0);
        bool presentEverywhere = true;
        for (std::size_t b = 0; b < binaries.size(); ++b) {
            auto it = perBinary[b].find(key);
            if (it == perBinary[b].end()) {
                presentEverywhere = false;
            } else {
                counts[b] = it->second.count;
            }
        }
        bool countsEqual = true;
        for (std::size_t b = 1; b < counts.size(); ++b)
            countsEqual &= counts[b] == counts[0];

        if (!presentEverywhere || !countsEqual ||
            (countsEqual && counts[0] == 0)) {
            RejectedKey rej;
            rej.key = key;
            rej.countsPerBinary = counts;
            if (!presentEverywhere)
                rej.reason = RejectReason::MissingInSomeBinary;
            else if (!countsEqual)
                rej.reason = RejectReason::CountMismatch;
            else
                rej.reason = RejectReason::NeverExecuted;
            set.rejected.push_back(std::move(rej));
            continue;
        }

        MappablePoint point;
        point.key = key;
        point.execCount = counts[0];
        point.markerIds.resize(binaries.size());
        const u32 pointIdx = static_cast<u32>(set.points.size());
        for (std::size_t b = 0; b < binaries.size(); ++b) {
            const KeyEntry& entry = perBinary[b].find(key)->second;
            point.markerIds[b] = entry.markers;
            for (u32 m : entry.markers)
                set.markerToPoint[b][m] = pointIdx;
        }
        set.points.push_back(std::move(point));
    }
    return set;
}

} // namespace xbsp::core
