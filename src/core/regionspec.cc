#include "core/regionspec.hh"

#include "util/logging.hh"

namespace xbsp::core
{

namespace
{

RegionAnchor
anchorFor(const MappableSet& mappable, const VliPartition& partition,
          std::size_t binaryIdx, std::size_t boundaryIdx,
          bool isProgramEdge)
{
    RegionAnchor anchor;
    if (isProgramEdge) {
        anchor.atProgramEdge = true;
        return anchor;
    }
    const Boundary& boundary = partition.boundaries[boundaryIdx];
    anchor.markerIds =
        mappable.points[boundary.pointIdx].markerIds[binaryIdx];
    anchor.fireCount = boundary.fireCount;
    return anchor;
}

} // namespace

std::vector<RegionSpec>
buildRegionSpecs(const MappableSet& mappable,
                 const VliPartition& partition,
                 const sp::SimPointResult& clustering,
                 std::size_t binaryIdx,
                 const std::vector<double>& weights)
{
    if (binaryIdx >= mappable.binaryCount)
        fatal("region specs: binary index {} out of range", binaryIdx);
    if (weights.size() != clustering.phases.size())
        fatal("region specs: {} weights for {} phases",
              weights.size(), clustering.phases.size());

    std::vector<RegionSpec> specs;
    for (std::size_t p = 0; p < clustering.phases.size(); ++p) {
        const sp::Phase& phase = clustering.phases[p];
        const u32 interval = phase.representative;
        if (interval >= partition.intervalCount())
            panic("representative interval {} outside the partition",
                  interval);
        RegionSpec spec;
        spec.phaseId = phase.id;
        spec.weight = weights[p];
        spec.start = anchorFor(mappable, partition, binaryIdx,
                               interval == 0 ? 0 : interval - 1,
                               interval == 0);
        const bool lastInterval =
            interval + 1 == partition.intervalCount();
        spec.end = anchorFor(mappable, partition, binaryIdx, interval,
                             lastInterval);
        specs.push_back(std::move(spec));
    }
    return specs;
}

void
writeRegionSpecs(std::ostream& os,
                 const std::vector<RegionSpec>& specs)
{
    os << "# phase weight start_marker start_count end_marker "
          "end_count\n";
    auto emitAnchor = [&os](const RegionAnchor& anchor, bool isStart) {
        if (anchor.atProgramEdge) {
            os << (isStart ? " ^ 0" : " - -");
            return;
        }
        os << " m" << anchor.markerIds[0];
        for (std::size_t i = 1; i < anchor.markerIds.size(); ++i)
            os << "+m" << anchor.markerIds[i];
        os << " " << anchor.fireCount;
    };
    for (const RegionSpec& spec : specs) {
        os << spec.phaseId << " " << spec.weight;
        emitAnchor(spec.start, true);
        emitAnchor(spec.end, false);
        os << "\n";
    }
}

} // namespace xbsp::core
