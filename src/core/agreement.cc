#include "core/agreement.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace xbsp::core
{

double
adjustedRandIndex(const std::vector<u32>& a, const std::vector<u32>& b)
{
    if (a.size() != b.size())
        panic("adjustedRandIndex: {} vs {} labels", a.size(), b.size());
    if (a.empty())
        return 1.0;

    // Contingency table.
    std::map<std::pair<u32, u32>, u64> joint;
    std::map<u32, u64> rowSum, colSum;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ++joint[{a[i], b[i]}];
        ++rowSum[a[i]];
        ++colSum[b[i]];
    }

    auto choose2 = [](u64 n) {
        return static_cast<double>(n) * static_cast<double>(n - 1) /
               2.0;
    };

    double sumJoint = 0.0;
    for (const auto& [cell, count] : joint)
        sumJoint += choose2(count);
    double sumRows = 0.0;
    for (const auto& [label, count] : rowSum)
        sumRows += choose2(count);
    double sumCols = 0.0;
    for (const auto& [label, count] : colSum)
        sumCols += choose2(count);

    const double total = choose2(a.size());
    const double expected = sumRows * sumCols / total;
    const double maxIndex = 0.5 * (sumRows + sumCols);
    if (maxIndex == expected) {
        // Degenerate: both partitions are single clusters (or all
        // singletons); they trivially agree.
        return 1.0;
    }
    return (sumJoint - expected) / (maxIndex - expected);
}

std::vector<u32>
projectLabelsOntoFrame(const std::vector<InstrCount>& fliEnds,
                       const std::vector<u32>& fliLabels,
                       const std::vector<InstrCount>& frameSizes)
{
    if (fliEnds.size() != fliLabels.size())
        panic("projectLabelsOntoFrame: {} ends vs {} labels",
              fliEnds.size(), fliLabels.size());

    std::vector<u32> projected;
    projected.reserve(frameSizes.size());

    InstrCount frameStart = 0;
    std::size_t fli = 0;
    for (InstrCount size : frameSizes) {
        const InstrCount frameEnd = frameStart + size;
        // Accumulate overlap per label across the FLI intervals
        // covering [frameStart, frameEnd).
        std::map<u32, InstrCount> overlap;
        std::size_t cursor = fli;
        InstrCount pos = frameStart;
        while (pos < frameEnd && cursor < fliEnds.size()) {
            const InstrCount fliEnd = fliEnds[cursor];
            const InstrCount upTo = std::min(frameEnd, fliEnd);
            if (upTo > pos)
                overlap[fliLabels[cursor]] += upTo - pos;
            pos = upTo;
            if (fliEnd <= frameEnd)
                ++cursor;
            else
                break;
        }
        if (overlap.empty()) {
            // Zero-length frame or past the end; inherit previous.
            projected.push_back(projected.empty() ? 0
                                                  : projected.back());
        } else {
            u32 best = 0;
            InstrCount bestOverlap = 0;
            for (const auto& [label, amount] : overlap) {
                if (amount > bestOverlap) {
                    bestOverlap = amount;
                    best = label;
                }
            }
            projected.push_back(best);
        }
        // Advance the persistent cursor past intervals fully consumed.
        while (fli < fliEnds.size() && fliEnds[fli] <= frameEnd)
            ++fli;
        frameStart = frameEnd;
    }
    return projected;
}

} // namespace xbsp::core
