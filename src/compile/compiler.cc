#include "compile/compiler.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "binary/serial.hh"
#include "ir/serial.hh"
#include "store/store.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace xbsp::compile
{

namespace
{

using bin::Binary;
using bin::BlockRef;
using bin::MachineBlock;
using bin::MachineCall;
using bin::MachineLoop;
using bin::MachineProc;
using bin::MachineStmt;
using bin::Marker;
using bin::MarkerKind;

/** One lowering run: program x target -> Binary. */
class Lowering
{
  public:
    Lowering(const ir::Program& prog, const bin::Target& target,
             const CompileOptions& opts)
        : program(prog), traits(TargetTraits::forTarget(target)),
          options(opts), optimized(target.opt ==
                                   bin::OptLevel::Optimized)
    {
        out.programName = prog.name;
        out.target = target;
        targetFingerprint =
            hashMix((static_cast<u64>(target.arch == bin::Arch::X64)
                     << 1) |
                    static_cast<u64>(optimized)) ^
            opts.jitterSeed;
    }

    Binary
    run()
    {
        out.entryProcId = emitProc(program.entry);
        bin::checkBinary(out);
        return std::move(out);
    }

  private:
    const ir::Program& program;
    const TargetTraits traits;
    const CompileOptions options;
    const bool optimized;
    u64 targetFingerprint = 0;
    Binary out;
    std::map<std::string, u32> emittedProcs;
    std::map<std::string, u32> inlineSiteCounter;

    /** Deterministic per-(line, salt, target) scaling jitter. */
    double
    jitter(u32 line, u32 salt) const
    {
        const u64 h = hashMix(targetFingerprint ^
                              (static_cast<u64>(line) << 20) ^ salt);
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return 1.0 + traits.jitterAmp * (2.0 * u - 1.0);
    }

    u32
    newMarker(MarkerKind kind, std::string symbol, u32 line, u32 procId)
    {
        Marker m;
        m.kind = kind;
        m.symbol = std::move(symbol);
        m.line = line;
        m.procId = procId;
        out.markers.push_back(std::move(m));
        return static_cast<u32>(out.markers.size() - 1);
    }

    /** Lower one source block into a fresh machine block. */
    u32
    lowerBlock(const ir::Block& blk, u32 procId)
    {
        MachineBlock mb;
        mb.sourceLine = blk.line;
        mb.procId = procId;
        mb.instrs = static_cast<u32>(std::max<long>(
            1, std::lround(blk.instrs * traits.instrScale *
                           jitter(blk.line, 0x11))));
        if (blk.pattern.kind != ir::MemPatternKind::None) {
            long mm = std::lround(blk.memOps * traits.memOpScale *
                                  jitter(blk.line, 0x22));
            mb.memOps = static_cast<u32>(
                std::clamp<long>(mm, blk.memOps ? 1 : 0, mb.instrs));
            mb.pattern = blk.pattern;
            mb.pattern.workingSet = static_cast<u64>(
                static_cast<double>(blk.pattern.workingSet) *
                traits.footprintScale(blk.pattern.pointerScale));
        }
        mb.stackOps = static_cast<u32>(
            std::lround(mb.instrs * traits.spillFactor));
        out.blocks.push_back(std::move(mb));
        return static_cast<u32>(out.blocks.size() - 1);
    }

    /** Synthesize a compiler-generated overhead block. */
    u32
    overheadBlock(u32 instrs, u32 stackOps, u32 line, u32 procId)
    {
        MachineBlock mb;
        mb.instrs = std::max<u32>(1, instrs);
        mb.memOps = 0;
        mb.stackOps = stackOps;
        mb.sourceLine = line;
        mb.procId = procId;
        out.blocks.push_back(std::move(mb));
        return static_cast<u32>(out.blocks.size() - 1);
    }

    bool
    shouldInline(const ir::Procedure& callee)
    {
        if (!optimized || !options.enableInlining)
            return false;
        switch (callee.inlineHint) {
          case ir::InlineHint::Never:
            return false;
          case ir::InlineHint::Always:
            return true;
          case ir::InlineHint::Partial:
            return (inlineSiteCounter[callee.name]++ % 2) == 0;
        }
        return false;
    }

    /** True when every statement is a plain block (innermost loop). */
    static bool
    allBlocks(const std::vector<MachineStmt>& stmts)
    {
        for (const auto& stmt : stmts) {
            if (!std::holds_alternative<BlockRef>(stmt))
                return false;
        }
        return true;
    }

    /** Scale unrolled body blocks in place (factor-U fusion). */
    void
    applyUnroll(std::vector<MachineStmt>& body, u32 factor)
    {
        for (auto& stmt : body) {
            auto& ref = std::get<BlockRef>(stmt);
            MachineBlock& blk = out.blocks[ref.blockId];
            blk.instrs = static_cast<u32>(std::max<long>(
                1, std::lround(blk.instrs * factor * 0.93)));
            blk.memOps = std::min(
                blk.instrs, blk.memOps * factor);
            blk.stackOps = static_cast<u32>(
                std::lround(blk.stackOps * factor * 0.7));
        }
    }

    MachineLoop
    makeLoop(u32 line, u64 trips, std::vector<MachineStmt> body,
             u32 procId)
    {
        MachineLoop loop;
        loop.tripCount = trips;
        loop.entryMarkerId =
            newMarker(MarkerKind::LoopEntry, "", line, procId);
        loop.branchMarkerId =
            newMarker(MarkerKind::LoopBranch, "", line, procId);
        loop.branchBlockId =
            overheadBlock(traits.loopOverhead, 0, line, procId);
        loop.body = std::move(body);
        return loop;
    }

    void
    lowerLoop(const ir::Loop& loop, u32 procId,
              std::vector<MachineStmt>& outStmts)
    {
        std::vector<MachineStmt> body;
        lowerStmts(loop.body, procId, body);

        const bool canSplit = optimized && options.enableLoopSplitting &&
                              loop.splittable && body.size() >= 2;
        if (canSplit) {
            // Split the body into two loops over the same iteration
            // space.  Both keep the source line (real compilers emit
            // the same line for both fission products), so the
            // matcher sees doubled per-line counts and must reject
            // the loop — the paper's applu case.
            const std::size_t half = body.size() / 2;
            std::vector<MachineStmt> first(
                std::make_move_iterator(body.begin()),
                std::make_move_iterator(body.begin() +
                                        static_cast<long>(half)));
            std::vector<MachineStmt> second(
                std::make_move_iterator(body.begin() +
                                        static_cast<long>(half)),
                std::make_move_iterator(body.end()));
            outStmts.emplace_back(makeLoop(loop.line, loop.tripCount,
                                           std::move(first), procId));
            outStmts.emplace_back(makeLoop(loop.line, loop.tripCount,
                                           std::move(second), procId));
            return;
        }

        u64 trips = loop.tripCount;
        const u32 factor = options.unrollFactor;
        const bool canUnroll = optimized && options.enableUnrolling &&
                               loop.unrollable && factor > 1 &&
                               trips % factor == 0 &&
                               trips >= 2ull * factor &&
                               allBlocks(body);
        if (canUnroll) {
            applyUnroll(body, factor);
            trips /= factor;
        }
        outStmts.emplace_back(makeLoop(loop.line, trips,
                                       std::move(body), procId));
    }

    void
    lowerCall(const ir::Call& call, u32 procId,
              std::vector<MachineStmt>& outStmts)
    {
        const ir::Procedure* callee =
            program.findProcedure(call.callee);
        if (!callee)
            panic("compile: call to unknown procedure '{}'",
                  call.callee);
        if (shouldInline(*callee)) {
            // Splice the callee body into the caller; no call
            // overhead, no entry marker — the symbol disappears for
            // this site, exactly like real inlining.
            lowerStmts(callee->body, procId, outStmts);
            return;
        }
        outStmts.emplace_back(BlockRef{overheadBlock(
            traits.callOverhead, traits.callStackOps, call.line,
            procId)});
        outStmts.emplace_back(MachineCall{emitProc(call.callee)});
    }

    void
    lowerStmts(const std::vector<ir::Stmt>& stmts, u32 procId,
               std::vector<MachineStmt>& outStmts)
    {
        for (const auto& stmt : stmts) {
            if (const auto* blk = std::get_if<ir::Block>(&stmt)) {
                outStmts.emplace_back(
                    BlockRef{lowerBlock(*blk, procId)});
            } else if (const auto* loop =
                           std::get_if<ir::Loop>(&stmt)) {
                lowerLoop(*loop, procId, outStmts);
            } else if (const auto* call =
                           std::get_if<ir::Call>(&stmt)) {
                lowerCall(*call, procId, outStmts);
            }
        }
    }

    u32
    emitProc(const std::string& name)
    {
        if (auto it = emittedProcs.find(name); it != emittedProcs.end())
            return it->second;
        const ir::Procedure* proc = program.findProcedure(name);
        if (!proc)
            panic("compile: unknown procedure '{}'", name);

        const u32 procId = static_cast<u32>(out.procs.size());
        out.procs.emplace_back();
        emittedProcs[name] = procId;
        out.procs[procId].name = name;
        out.procs[procId].entryMarkerId =
            newMarker(MarkerKind::ProcEntry, name, 0, procId);

        std::vector<MachineStmt> body;
        lowerStmts(proc->body, procId, body);
        out.procs[procId].body = std::move(body);
        return procId;
    }
};

} // namespace

serial::Hash128
compileKey(const ir::Program& program, const bin::Target& target,
           const CompileOptions& options)
{
    serial::Hasher h;
    h.str("compile");
    ir::hashProgram(h, program);
    bin::hashTarget(h, target);
    h.boolean(options.enableInlining);
    h.boolean(options.enableUnrolling);
    h.boolean(options.enableLoopSplitting);
    h.u32v(options.unrollFactor);
    h.u64v(options.jitterSeed);
    return h.finish();
}

bin::Binary
compileProgram(const ir::Program& program, const bin::Target& target,
               const CompileOptions& options)
{
    ir::validate(program);
    return store::ArtifactStore::global()
        .getOrCompute<bin::BinaryCodec>(
            compileKey(program, target, options), "compile", [&] {
                Lowering lowering(program, target, options);
                return lowering.run();
            });
}

std::vector<bin::Target>
standardTargets()
{
    return {bin::target32u, bin::target32o, bin::target64u,
            bin::target64o};
}

std::vector<bin::Binary>
compileAllTargets(const ir::Program& program,
                  const CompileOptions& options)
{
    std::vector<bin::Binary> binaries;
    for (const auto& target : standardTargets())
        binaries.push_back(compileProgram(program, target, options));
    return binaries;
}

} // namespace xbsp::compile
