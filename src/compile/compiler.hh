/**
 * @file
 * The model compiler: lowers an ir::Program to a bin::Binary for one
 * target.
 *
 * Lowering walks the call graph from the entry procedure.  For each
 * target it applies:
 *
 *  - per-block instruction/memory-op scaling with deterministic
 *    per-(block, target) jitter, so the four binaries weight the same
 *    source code differently (like real codegen does);
 *  - spill (stack) traffic and call/loop control overhead blocks;
 *  - under -O2: full inlining of InlineHint::Always procedures,
 *    alternating-site inlining of InlineHint::Partial procedures
 *    (making their entry counts diverge across binaries), unrolling
 *    of `unrollable` innermost loops (dividing back-branch counts),
 *    and splitting of `splittable` loops into two same-line loops
 *    (duplicating loop markers, the paper's applu failure mode);
 *  - debug info: procedure symbols for emitted procedures, source
 *    lines on loop markers — exactly the inputs the cross-binary
 *    matcher is allowed to use.
 */

#ifndef XBSP_COMPILE_COMPILER_HH
#define XBSP_COMPILE_COMPILER_HH

#include <vector>

#include "binary/binary.hh"
#include "compile/target.hh"
#include "ir/program.hh"
#include "util/serial.hh"

namespace xbsp::compile
{

/** Pass toggles; defaults model the paper's `-O2` behaviour. */
struct CompileOptions
{
    bool enableInlining = true;
    bool enableUnrolling = true;
    bool enableLoopSplitting = true;
    u32 unrollFactor = 4;
    /** Seed for the per-block codegen jitter (per-target mixed in). */
    u64 jitterSeed = 0xC0FFEEull;
};

/** Compile one program for one target. */
bin::Binary compileProgram(const ir::Program& program,
                           const bin::Target& target,
                           const CompileOptions& options = {});

/**
 * Artifact-store key of one (program, target, options) compilation —
 * the exact key compileProgram memoizes under (artifact type
 * bin::BinaryCodec).  Exposed so the pipeline scheduler can probe
 * whether a compile stage is already cached.
 */
serial::Hash128 compileKey(const ir::Program& program,
                           const bin::Target& target,
                           const CompileOptions& options = {});

/**
 * Compile the paper's four standard binaries, in the canonical order
 * 32u, 32o, 64u, 64o (index 0 is the default primary binary).
 */
std::vector<bin::Binary> compileAllTargets(
    const ir::Program& program, const CompileOptions& options = {});

/** The canonical four targets in the same order as compileAllTargets. */
std::vector<bin::Target> standardTargets();

} // namespace xbsp::compile

#endif // XBSP_COMPILE_COMPILER_HH
