/**
 * @file
 * Per-target lowering parameters for the model compiler.
 *
 * The traits encode, at the level the rest of the system can observe,
 * what distinguishes the paper's four binaries (32/64-bit x
 * unoptimized/optimized Intel compiler output): dynamic instruction
 * expansion, redundant-load elimination, register-pressure spill
 * traffic, call/loop control overhead, and pointer-size footprint
 * growth on 64-bit targets.
 */

#ifndef XBSP_COMPILE_TARGET_HH
#define XBSP_COMPILE_TARGET_HH

#include "binary/binary.hh"
#include "util/types.hh"

namespace xbsp::compile
{

/** Scaling knobs the lowering applies per target. */
struct TargetTraits
{
    /** Machine instructions per source instruction. */
    double instrScale = 1.0;

    /** Machine data references per source memory op. */
    double memOpScale = 1.0;

    /** Stack (spill) references per machine instruction. */
    double spillFactor = 0.0;

    /** Instructions charged per (non-inlined) call site. */
    u32 callOverhead = 0;

    /** Stack references inside the call-overhead block. */
    u32 callStackOps = 0;

    /** Loop-control instructions per iteration. */
    u32 loopOverhead = 0;

    /** Amplitude of deterministic per-block scaling jitter. */
    double jitterAmp = 0.15;

    /**
     * Data-footprint multiplier: 64-bit targets grow pointer-heavy
     * working sets (pointerScale in [0,1]) by up to 75%.
     */
    double footprintScale(double pointerScale) const;

    /** Whether this target's footprints grow with pointerScale. */
    bool widePointers = false;

    /** Canonical traits for one of the four paper targets. */
    static TargetTraits forTarget(const bin::Target& target);
};

} // namespace xbsp::compile

#endif // XBSP_COMPILE_TARGET_HH
