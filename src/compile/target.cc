#include "compile/target.hh"

namespace xbsp::compile
{

double
TargetTraits::footprintScale(double pointerScale) const
{
    if (!widePointers)
        return 1.0;
    return 1.0 + 0.75 * pointerScale;
}

TargetTraits
TargetTraits::forTarget(const bin::Target& target)
{
    using bin::Arch;
    using bin::OptLevel;

    TargetTraits t;
    const bool x64 = target.arch == Arch::X64;
    const bool opt = target.opt == OptLevel::Optimized;

    // 64-bit code is slightly denser dynamically (register calling
    // convention, more registers), but its pointer data is wider.
    const double archScale = x64 ? 0.91 : 1.0;
    t.widePointers = x64;

    if (!opt) {
        // -O0: every source operation round-trips through memory.
        t.instrScale = 2.4 * archScale;
        t.memOpScale = 1.7;
        t.spillFactor = x64 ? 0.38 : 0.50;
        t.callOverhead = x64 ? 20 : 24;
        t.callStackOps = x64 ? 8 : 10;
        t.loopOverhead = 4;
    } else {
        // -O2: tight code, few spills, cheap calls.
        t.instrScale = 1.0 * archScale;
        t.memOpScale = 1.0;
        t.spillFactor = x64 ? 0.07 : 0.14;
        t.callOverhead = x64 ? 4 : 7;
        t.callStackOps = x64 ? 1 : 3;
        t.loopOverhead = 2;
    }
    return t;
}

} // namespace xbsp::compile
