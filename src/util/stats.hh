/**
 * @file
 * Small numeric helpers shared by the clustering code and the
 * experiment harness: means, weighted means, relative errors and a
 * streaming accumulator.
 */

#ifndef XBSP_UTIL_STATS_HH
#define XBSP_UTIL_STATS_HH

#include <cstddef>
#include <span>
#include <vector>

namespace xbsp
{

/** Arithmetic mean; returns 0 for an empty span. */
double mean(std::span<const double> xs);

/** Population standard deviation; returns 0 for fewer than 2 items. */
double stddev(std::span<const double> xs);

/** Geometric mean of positive values; returns 0 for an empty span. */
double geomean(std::span<const double> xs);

/**
 * Weighted arithmetic mean.  Weights need not be normalized; the
 * function divides by their sum.  Returns 0 when the weight sum is 0.
 */
double weightedMean(std::span<const double> xs,
                    std::span<const double> ws);

/**
 * Relative error |(truth - estimate) / truth|, the error metric used
 * throughout the paper's evaluation.  Returns the absolute difference
 * when truth == 0 to stay finite.
 */
double relativeError(double truth, double estimate);

/**
 * Signed bias (estimate - truth) / truth, used for the per-phase bias
 * tables (Tables 2 and 3), where the *sign* of the error matters.
 */
double signedRelativeError(double truth, double estimate);

/** Streaming mean/min/max/stddev accumulator. */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return n; }

    /** Mean of samples seen (0 if none). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Population standard deviation of samples seen. */
    double stddev() const;

    /** Smallest sample seen (0 if none). */
    double min() const { return n ? lo : 0.0; }

    /** Largest sample seen (0 if none). */
    double max() const { return n ? hi : 0.0; }

  private:
    std::size_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace xbsp

#endif // XBSP_UTIL_STATS_HH
