/**
 * @file
 * Minimal command-line option parser for the bench and example
 * binaries.  Supports --name=value, --name value, and boolean
 * --flag / --no-flag forms, plus automatic --help text.
 */

#ifndef XBSP_UTIL_OPTIONS_HH
#define XBSP_UTIL_OPTIONS_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace xbsp
{

/** Declarative command-line option set with typed accessors. */
class Options
{
  public:
    /** Create a parser; description is shown at the top of --help. */
    explicit Options(std::string description);

    /** Declare a string option with a default. */
    void addString(const std::string& name, const std::string& help,
                   const std::string& def);

    /** Declare an unsigned integer option with a default. */
    void addUint(const std::string& name, const std::string& help,
                 u64 def);

    /** Declare a floating-point option with a default. */
    void addDouble(const std::string& name, const std::string& help,
                   double def);

    /** Declare a boolean flag (--name / --no-name) with a default. */
    void addBool(const std::string& name, const std::string& help,
                 bool def);

    /**
     * Declare the standard --jobs option (0 = automatic: XBSP_JOBS
     * env var, else hardware concurrency).
     */
    void addJobs();

    /**
     * Apply a previously declared --jobs value to the process-wide
     * thread pool (setGlobalJobs) and return the effective count.
     */
    u64 applyJobs() const;

    /**
     * Parse argv.  Returns false (after printing help) when --help is
     * requested; calls fatal() on unknown options or bad values.
     */
    bool parse(int argc, const char* const* argv);

    /** Value accessors; fatal() on wrong type or unknown name. */
    const std::string& getString(const std::string& name) const;
    u64 getUint(const std::string& name) const;
    double getDouble(const std::string& name) const;
    bool getBool(const std::string& name) const;

    /** Positional (non-option) arguments, in order. */
    const std::vector<std::string>& positional() const { return extra; }

    /** Print the generated help text. */
    void printHelp() const;

  private:
    enum class Kind { String, Uint, Double, Bool };

    struct Option
    {
        std::string name;
        std::string help;
        Kind kind;
        std::string strVal;
        u64 uintVal = 0;
        double dblVal = 0.0;
        bool boolVal = false;
    };

    std::string description;
    std::vector<Option> opts;
    std::vector<std::string> extra;

    Option* find(const std::string& name);
    const Option& require(const std::string& name, Kind kind) const;
    void assign(Option& opt, const std::string& value);
};

} // namespace xbsp

#endif // XBSP_UTIL_OPTIONS_HH
