/**
 * @file
 * Compact binary serialization and stable content hashing — the
 * substrate of the persistent artifact store.
 *
 *  - **Encoder/Decoder**: LEB128 varints, fixed-width little-endian
 *    words, bit-exact doubles (the IEEE-754 pattern is moved, never
 *    reformatted) and length-prefixed strings.  The byte stream is
 *    platform-independent by construction: every multi-byte quantity
 *    is assembled from explicit byte shifts, never memcpy'd through
 *    native endianness.
 *  - **Hasher**: a streaming 128-bit content hash (two SplitMix64-
 *    style lanes over 64-bit words).  Not cryptographic — it keys a
 *    local cache, where 128 bits make accidental collisions
 *    practically impossible.  The function is frozen: changing it
 *    silently invalidates every on-disk artifact, so treat any edit
 *    as a store-format bump (tests pin known digests).
 *  - **DecodeError**: thrown on truncated or malformed input.  The
 *    store catches it and degrades to recomputation, so a corrupt
 *    artifact can never take down a run.
 */

#ifndef XBSP_UTIL_SERIAL_HH
#define XBSP_UTIL_SERIAL_HH

#include <stdexcept>
#include <string>
#include <string_view>

#include "util/types.hh"

namespace xbsp::serial
{

/** Malformed/truncated input; callers recompute instead of crashing. */
class DecodeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A 128-bit content hash (cache key). */
struct Hash128
{
    u64 lo = 0;
    u64 hi = 0;

    bool operator==(const Hash128&) const = default;

    /** 32 lowercase hex chars, hi word first. */
    std::string hex() const;
};

/** Four-character artifact type tag, e.g. fourcc("FVEC"). */
constexpr u32
fourcc(const char (&tag)[5])
{
    return static_cast<u32>(static_cast<unsigned char>(tag[0])) |
           static_cast<u32>(static_cast<unsigned char>(tag[1])) << 8 |
           static_cast<u32>(static_cast<unsigned char>(tag[2])) << 16 |
           static_cast<u32>(static_cast<unsigned char>(tag[3])) << 24;
}

/**
 * Streaming 128-bit hasher.  Feed typed values (each method commits
 * to a fixed byte encoding) and finish() for the digest.  The same
 * value sequence always produces the same digest on every platform.
 */
class Hasher
{
  public:
    /** Fold `n` raw bytes. */
    Hasher& bytes(const void* data, std::size_t n);

    /** Fold a u64 as 8 little-endian bytes. */
    Hasher& u64v(u64 v);

    /**
     * Fold a u64 as one word, skipping the byte-assembly machinery.
     * Digest-identical to u64v: the fast path applies only when the
     * byte stream is 8-aligned (it falls back to u64v otherwise), and
     * an aligned u64v folds exactly word(v).
     */
    Hasher& u64w(u64 v);

    /** Fold a u32 (widened; one canonical integer encoding). */
    Hasher& u32v(u32 v) { return u64v(v); }

    /** Fold a double's IEEE-754 bit pattern. */
    Hasher& f64(double v);

    /** Fold a bool as one canonical word. */
    Hasher& boolean(bool b) { return u64v(b ? 1 : 0); }

    /** Fold a string: length then bytes (unambiguous framing). */
    Hasher& str(std::string_view s);

    /** The digest of everything folded so far (non-destructive). */
    Hash128 finish() const;

  private:
    void word(u64 w);

    // Lane seeds: first 128 fractional bits of pi.
    u64 s0 = 0x243f6a8885a308d3ull;
    u64 s1 = 0x13198a2e03707344ull;
    u64 length = 0;
    unsigned char pending[8] = {};
    std::size_t pendingLen = 0;
};

/** 64-bit convenience hash of a byte range (payload checksums). */
u64 hash64(std::string_view data);

/** Append-only binary writer over an owned byte buffer. */
class Encoder
{
  public:
    /** LEB128 unsigned varint (1–10 bytes). */
    void varint(u64 v);

    /** 8 little-endian bytes. */
    void fixed64(u64 v);

    /** 4 little-endian bytes. */
    void fixed32(u32 v);

    /** IEEE-754 bit pattern as fixed64 (bit-exact round trip). */
    void f64(double v);

    void boolean(bool b) { varint(b ? 1 : 0); }

    /** Length-prefixed string: varint size + raw bytes. */
    void str(std::string_view s);

    /** Raw bytes, no framing. */
    void bytes(const void* data, std::size_t n);

    std::string_view view() const { return buf; }
    std::string take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/**
 * Bounds-checked reader over a byte range; every underrun or malformed
 * varint throws DecodeError.  The view must outlive the decoder.
 */
class Decoder
{
  public:
    explicit Decoder(std::string_view bytes) : data(bytes) {}

    u64 varint();
    u64 fixed64();
    u32 fixed32();
    double f64();
    bool boolean();
    std::string str();

    /**
     * Read an element count for a container whose elements occupy at
     * least `minBytesPerElem` bytes each; counts that could not fit in
     * the remaining input throw instead of driving a huge allocation.
     */
    u64 arrayCount(std::size_t minBytesPerElem = 1);

    std::size_t remaining() const { return data.size() - pos; }

    /** Throws when trailing bytes remain (framing mismatch). */
    void expectEnd() const;

  private:
    std::string_view data;
    std::size_t pos = 0;

    void need(std::size_t n) const;
};

} // namespace xbsp::serial

#endif // XBSP_UTIL_SERIAL_HH
