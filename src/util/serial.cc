#include "util/serial.hh"

#include <cstring>

namespace xbsp::serial
{

namespace
{

/** SplitMix64 finalizer: the lane mixing function (frozen). */
constexpr u64
mix(u64 x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

constexpr u64
rotl(u64 x, unsigned r)
{
    return (x << r) | (x >> (64 - r));
}

/** Assemble up to 8 bytes little-endian (zero-padded). */
u64
assemble(const unsigned char* bytes, std::size_t n)
{
    u64 w = 0;
    for (std::size_t i = 0; i < n; ++i)
        w |= static_cast<u64>(bytes[i]) << (8 * i);
    return w;
}

} // namespace

std::string
Hash128::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
        out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i)
        out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
    return out;
}

void
Hasher::word(u64 w)
{
    s0 = mix(s0 ^ w);
    s1 = mix(s1 + rotl(w, 23) + 0x9e3779b97f4a7c15ull);
}

Hasher&
Hasher::bytes(const void* data, std::size_t n)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    length += n;
    // Top up the partial word first.
    while (pendingLen != 0 && pendingLen < 8 && n != 0) {
        pending[pendingLen++] = *p++;
        --n;
    }
    if (pendingLen == 8) {
        word(assemble(pending, 8));
        pendingLen = 0;
    }
    while (n >= 8) {
        word(assemble(p, 8));
        p += 8;
        n -= 8;
    }
    while (n != 0) {
        pending[pendingLen++] = *p++;
        --n;
    }
    return *this;
}

Hasher&
Hasher::u64v(u64 v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    return bytes(b, 8);
}

Hasher&
Hasher::u64w(u64 v)
{
    if (pendingLen != 0)
        return u64v(v);
    length += 8;
    word(v);
    return *this;
}

Hasher&
Hasher::f64(double v)
{
    u64 pattern;
    static_assert(sizeof(pattern) == sizeof(v));
    std::memcpy(&pattern, &v, sizeof(pattern));
    return u64v(pattern);
}

Hasher&
Hasher::str(std::string_view s)
{
    u64v(s.size());
    return bytes(s.data(), s.size());
}

Hash128
Hasher::finish() const
{
    u64 a = s0;
    u64 b = s1;
    if (pendingLen != 0) {
        const u64 w = assemble(pending, pendingLen);
        a = mix(a ^ w);
        b = mix(b + rotl(w, 23) + 0x9e3779b97f4a7c15ull);
    }
    a = mix(a ^ rotl(length, 11));
    b = mix(b + length);
    Hash128 h;
    h.lo = mix(a + rotl(b, 32));
    h.hi = mix(b ^ rotl(a, 17));
    return h;
}

u64
hash64(std::string_view data)
{
    Hasher h;
    h.bytes(data.data(), data.size());
    return h.finish().lo;
}

void
Encoder::varint(u64 v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
}

void
Encoder::fixed64(u64 v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>(v >> (8 * i)));
}

void
Encoder::fixed32(u32 v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>(v >> (8 * i)));
}

void
Encoder::f64(double v)
{
    u64 pattern;
    std::memcpy(&pattern, &v, sizeof(pattern));
    fixed64(pattern);
}

void
Encoder::str(std::string_view s)
{
    varint(s.size());
    buf.append(s.data(), s.size());
}

void
Encoder::bytes(const void* data, std::size_t n)
{
    buf.append(static_cast<const char*>(data), n);
}

void
Decoder::need(std::size_t n) const
{
    if (data.size() - pos < n)
        throw DecodeError("truncated input: need " +
                          std::to_string(n) + " bytes, have " +
                          std::to_string(data.size() - pos));
}

u64
Decoder::varint()
{
    u64 v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        need(1);
        const unsigned char byte =
            static_cast<unsigned char>(data[pos++]);
        v |= static_cast<u64>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            // The 10th byte may only contribute the top bit of a u64.
            if (shift == 63 && byte > 1)
                throw DecodeError("varint overflows 64 bits");
            return v;
        }
    }
    throw DecodeError("varint longer than 10 bytes");
}

u64
Decoder::fixed64()
{
    need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(static_cast<unsigned char>(
                 data[pos + i]))
             << (8 * i);
    pos += 8;
    return v;
}

u32
Decoder::fixed32()
{
    need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(static_cast<unsigned char>(
                 data[pos + i]))
             << (8 * i);
    pos += 4;
    return v;
}

double
Decoder::f64()
{
    const u64 pattern = fixed64();
    double v;
    std::memcpy(&v, &pattern, sizeof(v));
    return v;
}

bool
Decoder::boolean()
{
    const u64 v = varint();
    if (v > 1)
        throw DecodeError("boolean value out of range");
    return v != 0;
}

std::string
Decoder::str()
{
    const u64 n = varint();
    if (n > data.size() - pos)
        throw DecodeError("string length exceeds remaining input");
    std::string out(data.substr(pos, n));
    pos += n;
    return out;
}

u64
Decoder::arrayCount(std::size_t minBytesPerElem)
{
    const u64 n = varint();
    const std::size_t perElem = minBytesPerElem ? minBytesPerElem : 1;
    if (n > remaining() / perElem)
        throw DecodeError("element count exceeds remaining input");
    return n;
}

void
Decoder::expectEnd() const
{
    if (pos != data.size())
        throw DecodeError("trailing bytes after decoded value");
}

} // namespace xbsp::serial
