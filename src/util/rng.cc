#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace xbsp
{

u64
splitMix64(u64& state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

u64
hashMix(u64 value)
{
    u64 state = value;
    return splitMix64(state);
}

namespace
{

inline u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 sm = seed;
    for (auto& word : s)
        word = splitMix64(sm);
}

u64
Rng::next()
{
    const u64 result = rotl(s[1] * 5, 7) * 9;
    const u64 t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

u64
Rng::nextBelow(u64 bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Rng::nextRange(u64 lo, u64 hi)
{
    if (lo > hi)
        panic("Rng::nextRange called with lo {} > hi {}", lo, hi);
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * mul;
    hasSpare = true;
    return u * mul;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork(u64 label) const
{
    // Mix the current state words with the label so that children with
    // distinct labels are decorrelated without advancing the parent.
    u64 seed = s[0] ^ rotl(s[1], 13) ^ rotl(s[2], 29) ^ rotl(s[3], 47);
    return Rng(hashMix(seed ^ hashMix(label)));
}

BoundedBelow::BoundedBelow(u64 bound)
{
    if (bound == 0)
        panic("BoundedBelow constructed with bound 0");
    boundValue = bound;
    // Same unbiased-rejection threshold nextBelow() derives per call.
    threshold = (0 - bound) % bound;
    // ceil(2^128 / bound) == floor((2^128 - 1) / bound) + 1 for any
    // bound > 1 (2^128 is never a multiple of a non-power-of-two,
    // and for powers of two the floor differs from the exact
    // quotient, so the +1 lands on the ceiling either way).
    if (bound > 1)
        reciprocal = ~static_cast<unsigned __int128>(0) / bound + 1;
}

} // namespace xbsp
