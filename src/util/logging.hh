/**
 * @file
 * gem5-style status and error reporting: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * status messages.  All printf-style formatting is done with
 * std::format-compatible syntax via a small vformat wrapper.
 *
 * The sinks are thread-safe: one mutex serializes every line so
 * messages from pool workers never interleave mid-line, and a message
 * emitted from a worker thread is prefixed with its pool index
 * ("[w3] warn: ..."), so interleaved pipeline output remains
 * attributable.
 */

#ifndef XBSP_UTIL_LOGGING_HH
#define XBSP_UTIL_LOGGING_HH

#include <optional>
#include <string>
#include <string_view>

#include "util/format.hh"

namespace xbsp
{

/** Verbosity levels for non-fatal messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Process-wide verbosity; messages above this level are dropped. */
LogLevel logLevel();

/** Set the process-wide verbosity (thread-safe). */
void setLogLevel(LogLevel level);

/**
 * Parse a level name ("quiet", "warn", "inform"/"info", "debug");
 * nullopt when the name matches none (the --log-level / XBSP_LOG_LEVEL
 * plumbing decides whether that is fatal or merely warned about).
 */
std::optional<LogLevel> parseLogLevel(std::string_view name);

/** Canonical lowercase name of a level. */
std::string_view logLevelName(LogLevel level);

namespace detail
{
[[noreturn]] void panicImpl(std::string_view msg);
[[noreturn]] void fatalImpl(std::string_view msg);
void warnImpl(std::string_view msg);
void informImpl(std::string_view msg);
void debugImpl(std::string_view msg);
} // namespace detail

/**
 * Abort with a message.  Call when an internal invariant is violated,
 * i.e. a bug in this library regardless of what the user did.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args&&... args)
{
    detail::panicImpl(xbsp::format(fmt, std::forward<Args>(args)...));
}

/**
 * Exit with a message.  Call when the simulation cannot continue due
 * to a condition that is the caller's fault (bad configuration,
 * invalid arguments), not a library bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args&&... args)
{
    detail::fatalImpl(xbsp::format(fmt, std::forward<Args>(args)...));
}

/** Alert the user to suspicious but non-fatal conditions. */
template <typename... Args>
void
warn(std::string_view fmt, Args&&... args)
{
    detail::warnImpl(xbsp::format(fmt, std::forward<Args>(args)...));
}

/** Normal operating status messages. */
template <typename... Args>
void
inform(std::string_view fmt, Args&&... args)
{
    detail::informImpl(xbsp::format(fmt, std::forward<Args>(args)...));
}

/** Developer chatter, only shown at LogLevel::Debug. */
template <typename... Args>
void
debugLog(std::string_view fmt, Args&&... args)
{
    detail::debugImpl(xbsp::format(fmt, std::forward<Args>(args)...));
}

} // namespace xbsp

#endif // XBSP_UTIL_LOGGING_HH
