/**
 * @file
 * Fundamental integer aliases and small strong-typedef helpers used
 * throughout the cross-binary SimPoint library.
 */

#ifndef XBSP_UTIL_TYPES_HH
#define XBSP_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace xbsp
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Dynamic instruction count (profiling and timing use the same unit). */
using InstrCount = u64;

/** Simulated clock cycles. */
using Cycles = u64;

/** Byte address in the simulated memory space. */
using Addr = u64;

/** Sentinel for "no index"/"invalid id" slots. */
inline constexpr u32 invalidId = std::numeric_limits<u32>::max();

} // namespace xbsp

#endif // XBSP_UTIL_TYPES_HH
