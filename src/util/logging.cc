#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace xbsp
{

namespace
{
LogLevel globalLevel = LogLevel::Inform;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail
{

void
panicImpl(std::string_view msg)
{
    std::fprintf(stderr, "panic: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
    std::abort();
}

void
fatalImpl(std::string_view msg)
{
    std::fprintf(stderr, "fatal: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
    std::exit(1);
}

void
warnImpl(std::string_view msg)
{
    if (globalLevel >= LogLevel::Warn) {
        std::fprintf(stderr, "warn: %.*s\n",
                     static_cast<int>(msg.size()), msg.data());
    }
}

void
informImpl(std::string_view msg)
{
    if (globalLevel >= LogLevel::Inform) {
        std::fprintf(stderr, "info: %.*s\n",
                     static_cast<int>(msg.size()), msg.data());
    }
}

void
debugImpl(std::string_view msg)
{
    if (globalLevel >= LogLevel::Debug) {
        std::fprintf(stderr, "debug: %.*s\n",
                     static_cast<int>(msg.size()), msg.data());
    }
}

} // namespace detail
} // namespace xbsp
