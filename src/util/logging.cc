#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/threadpool.hh"

namespace xbsp
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Inform};

/** Serializes every sink so concurrent lines never interleave. */
std::mutex sinkMutex;

/** One formatted line: optional worker prefix, tag, message. */
void
emitLine(const char* tag, std::string_view msg)
{
    const unsigned worker = currentWorkerId();
    std::lock_guard<std::mutex> lock(sinkMutex);
    if (worker > 0) {
        std::fprintf(stderr, "[w%u] %s: %.*s\n", worker, tag,
                     static_cast<int>(msg.size()), msg.data());
    } else {
        std::fprintf(stderr, "%s: %.*s\n", tag,
                     static_cast<int>(msg.size()), msg.data());
    }
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    if (name == "quiet")
        return LogLevel::Quiet;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

std::string_view
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "quiet";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "inform";
      case LogLevel::Debug:
        return "debug";
    }
    return "unknown";
}

namespace detail
{

void
panicImpl(std::string_view msg)
{
    emitLine("panic", msg);
    std::abort();
}

void
fatalImpl(std::string_view msg)
{
    emitLine("fatal", msg);
    std::exit(1);
}

void
warnImpl(std::string_view msg)
{
    if (logLevel() >= LogLevel::Warn)
        emitLine("warn", msg);
}

void
informImpl(std::string_view msg)
{
    if (logLevel() >= LogLevel::Inform)
        emitLine("info", msg);
}

void
debugImpl(std::string_view msg)
{
    if (logLevel() >= LogLevel::Debug)
        emitLine("debug", msg);
}

} // namespace detail
} // namespace xbsp
