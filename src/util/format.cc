#include "util/format.hh"

#include <cstdlib>
#include <stdexcept>

namespace xbsp::fmtdetail
{

namespace
{

[[noreturn]] void
badFormat(const std::string& why)
{
    // Formatting errors are programming bugs; logging.hh cannot be
    // used from here (it formats its own messages), so throw.
    throw std::runtime_error("format error: " + why);
}

} // namespace

std::string
applyIntSpec(long long value, bool isNegativeType,
             unsigned long long raw, std::string_view spec)
{
    char buf[32];
    if (spec.empty() || spec == "d") {
        if (isNegativeType)
            std::snprintf(buf, sizeof(buf), "%lld", value);
        else
            std::snprintf(buf, sizeof(buf), "%llu", raw);
        return buf;
    }
    if (spec == "x") {
        const unsigned long long v =
            isNegativeType ? static_cast<unsigned long long>(value)
                           : raw;
        std::snprintf(buf, sizeof(buf), "%llx", v);
        return buf;
    }
    badFormat("unsupported integer spec '" + std::string(spec) + "'");
}

std::string
applyFloatSpec(double value, std::string_view spec)
{
    char buf[64];
    if (spec.empty()) {
        std::snprintf(buf, sizeof(buf), "%g", value);
        return buf;
    }
    // Expected shapes: .Nf or .Ng
    if (spec.size() >= 3 && spec.front() == '.' &&
        (spec.back() == 'f' || spec.back() == 'g')) {
        const std::string digits(spec.substr(1, spec.size() - 2));
        char* end = nullptr;
        const long precision = std::strtol(digits.c_str(), &end, 10);
        if (end && *end == '\0' && precision >= 0 && precision < 40) {
            if (spec.back() == 'f')
                std::snprintf(buf, sizeof(buf), "%.*f",
                              static_cast<int>(precision), value);
            else
                std::snprintf(buf, sizeof(buf), "%.*g",
                              static_cast<int>(precision), value);
            return buf;
        }
    }
    badFormat("unsupported float spec '" + std::string(spec) + "'");
}

std::string
vformat(std::string_view fmt, const std::vector<const void*>& args,
        const std::vector<ArgFormatter>& formatters)
{
    std::string out;
    out.reserve(fmt.size() + 16 * args.size());
    std::size_t argIdx = 0;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        const char ch = fmt[i];
        if (ch == '{') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
                out += '{';
                ++i;
                continue;
            }
            const std::size_t close = fmt.find('}', i);
            if (close == std::string_view::npos)
                badFormat("unterminated '{' in \"" +
                          std::string(fmt) + "\"");
            std::string_view field = fmt.substr(i + 1, close - i - 1);
            std::string_view spec;
            if (auto colon = field.find(':');
                colon != std::string_view::npos) {
                spec = field.substr(colon + 1);
                field = field.substr(0, colon);
            }
            if (!field.empty())
                badFormat("positional/indexed fields not supported");
            if (argIdx >= args.size())
                badFormat("not enough arguments for \"" +
                          std::string(fmt) + "\"");
            out += formatters[argIdx](args[argIdx], spec);
            ++argIdx;
            i = close;
        } else if (ch == '}') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '}') {
                out += '}';
                ++i;
                continue;
            }
            badFormat("stray '}' in \"" + std::string(fmt) + "\"");
        } else {
            out += ch;
        }
    }
    return out;
}

} // namespace xbsp::fmtdetail
