/**
 * @file
 * Deterministic fixed-size thread pool and data-parallel loops.
 *
 * Design constraints (see DESIGN.md, "Threading model"):
 *
 *  - **Fixed size, no work stealing.**  Workers pop tasks from one
 *    FIFO queue; there is no per-thread deque and no stealing, so the
 *    set of tasks executed is exactly the set submitted, in a
 *    well-defined order per queue.
 *  - **Determinism by construction.**  parallelFor()/parallelChunks()
 *    split an index range into chunks whose count and boundaries are
 *    a function of the range size *only* — never of the worker count
 *    — so any reduction that combines per-chunk partials in chunk
 *    order is bit-identical with 1 or N threads.
 *  - **Nested use never deadlocks.**  A submit()/parallelFor() issued
 *    from inside a pool worker runs inline on the calling thread (the
 *    caller already owns a worker slot; queuing and blocking on the
 *    result could exhaust the pool).  Results are identical either
 *    way, per the previous point.
 *  - **Exceptions propagate.**  A task exception is captured and
 *    rethrown from the future / the parallelFor() call site (the
 *    lowest-indexed failing chunk wins), never swallowed and never
 *    allowed to kill a worker thread.
 *
 * Pool size resolution for the process-wide pool: setGlobalJobs()
 * (the --jobs command-line option) beats the XBSP_JOBS environment
 * variable, which beats std::thread::hardware_concurrency().
 */

#ifndef XBSP_UTIL_THREADPOOL_HH
#define XBSP_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace xbsp
{

/** Fixed-size FIFO thread pool; see the file comment for contracts. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers; 0 or 1 means run everything inline. */
    explicit ThreadPool(unsigned threads);

    /** Drains nothing: outstanding futures must be waited on first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads (0 when the pool is inline-only). */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** True when the calling thread is one of this pool's workers. */
    bool onWorkerThread() const;

    /**
     * Schedule `task`.  Runs inline (returning a ready future) when
     * the pool has no workers or the caller is itself a pool worker.
     */
    template <typename F>
    auto
    submit(F&& task) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> future = packaged->get_future();
        enqueue([packaged]() { (*packaged)(); });
        return future;
    }

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    mutable std::mutex mutex;
    std::condition_variable wake;
    bool stopping = false;

    void enqueue(std::function<void()> fn);
    void workerLoop(unsigned index);
};

/**
 * 1-based pool index of the calling thread when it is a worker of
 * *some* ThreadPool, 0 otherwise (the main thread and any foreign
 * thread).  Used to tag log lines ("[w3] ...") and trace spans with
 * the worker that produced them.
 */
unsigned currentWorkerId();

/** Number of chunks parallel loops split `n` items into (n only). */
std::size_t parallelChunkCount(std::size_t n);

/**
 * Run `fn(begin, end, chunkIdx)` over a deterministic chunking of
 * [0, n).  Chunk boundaries depend only on `n`; chunks may execute
 * concurrently but chunkIdx values are dense [0, chunkCount), so
 * per-chunk results can be reduced in index order for bit-identical
 * output at any worker count.  Rethrows the exception of the
 * lowest-indexed failing chunk after all chunks finish.
 */
void parallelChunks(ThreadPool& pool, std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

/** Element-wise wrapper: run `fn(i)` for every i in [0, n). */
template <typename F>
void
parallelFor(ThreadPool& pool, std::size_t n, F&& fn)
{
    parallelChunks(pool, n,
                   [&fn](std::size_t begin, std::size_t end,
                         std::size_t) {
                       for (std::size_t i = begin; i < end; ++i)
                           fn(i);
                   });
}

/**
 * The process-wide pool used by the study pipeline, the experiment
 * suite and k-means.  Built lazily at the currently configured job
 * count; resized (rebuilt) by setGlobalJobs().
 */
ThreadPool& globalPool();

/**
 * Set the process-wide job count (the --jobs option): 0 restores the
 * automatic choice (XBSP_JOBS, else hardware concurrency).  Rebuilds
 * the global pool when the effective size changes.  Must not be
 * called while work is in flight on the global pool.
 */
void setGlobalJobs(u64 jobs);

/** The job count the global pool has / would be built with. */
unsigned configuredJobs();

} // namespace xbsp

#endif // XBSP_UTIL_THREADPOOL_HH
