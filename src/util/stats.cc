#include "util/stats.hh"

#include <cmath>

#include "util/logging.hh"

namespace xbsp
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean requires positive values, got {}", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
weightedMean(std::span<const double> xs, std::span<const double> ws)
{
    if (xs.size() != ws.size())
        panic("weightedMean: {} values vs {} weights",
              xs.size(), ws.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        num += xs[i] * ws[i];
        den += ws[i];
    }
    return den != 0.0 ? num / den : 0.0;
}

double
relativeError(double truth, double estimate)
{
    if (truth == 0.0)
        return std::fabs(estimate - truth);
    return std::fabs((truth - estimate) / truth);
}

double
signedRelativeError(double truth, double estimate)
{
    if (truth == 0.0)
        return estimate - truth;
    return (estimate - truth) / truth;
}

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        if (x < lo)
            lo = x;
        if (x > hi)
            hi = x;
    }
    ++n;
    sum += x;
    sumSq += x * x;
}

double
RunningStat::stddev() const
{
    if (n < 2)
        return 0.0;
    const double m = mean();
    const double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

} // namespace xbsp
