#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/format.hh"

#include "util/logging.hh"

namespace xbsp
{

Table::Table(std::string caption, std::vector<std::string> columns)
    : title(std::move(caption)), headers(std::move(columns))
{
    if (headers.empty())
        panic("Table '{}' created with no columns", title);
}

void
Table::startRow()
{
    if (!rows.empty() && rows.back().size() != headers.size()) {
        panic("Table '{}': previous row has {} cells, expected {}",
              title, rows.back().size(), headers.size());
    }
    rows.emplace_back();
}

void
Table::ensureOpenRow()
{
    if (rows.empty() || rows.back().size() >= headers.size())
        panic("Table '{}': addCell without startRow or row overflow",
              title);
}

void
Table::addCell(std::string value)
{
    ensureOpenRow();
    rows.back().push_back(std::move(value));
}

void
Table::addNumber(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    addCell(buf);
}

void
Table::addInteger(long long value)
{
    addCell(xbsp::format("{}", value));
}

void
Table::addPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    addCell(buf);
}

const std::string&
Table::cell(std::size_t row, std::size_t col) const
{
    if (row >= rows.size() || col >= rows[row].size())
        panic("Table '{}': cell ({}, {}) out of range", title, row, col);
    return rows[row][col];
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    os << "== " << title << " ==\n";
    auto emitRow = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c]
                                                    : std::string();
            os << (c ? "  " : "");
            os << v;
            for (std::size_t pad = v.size(); pad < widths[c]; ++pad)
                os << ' ';
        }
        os << '\n';
    };
    emitRow(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    for (std::size_t i = 0; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto& row : rows)
        emitRow(row);
}

namespace
{

std::string
csvEscape(const std::string& v)
{
    if (v.find_first_of(",\"\n") == std::string::npos)
        return v;
    std::string out = "\"";
    for (char ch : v) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream& os) const
{
    for (std::size_t c = 0; c < headers.size(); ++c)
        os << (c ? "," : "") << csvEscape(headers[c]);
    os << '\n';
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c]);
        os << '\n';
    }
}

} // namespace xbsp
