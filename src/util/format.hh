/**
 * @file
 * Minimal std::format-style string formatting (GCC 12's libstdc++
 * does not ship <format>).  Supports positional "{}" replacement
 * fields with a small spec subset after ':':
 *
 *   {}        default formatting per argument type
 *   {:d}      decimal integer
 *   {:x}      lowercase hex integer
 *   {:.Nf}    fixed floating point with N decimals
 *   {:.Ng}    general floating point with N significant digits
 *   {{ and }} literal braces
 *
 * Arguments accepted: integral and floating types, bool, C strings,
 * std::string/string_view, and anything streamable to std::ostream.
 */

#ifndef XBSP_UTIL_FORMAT_HH
#define XBSP_UTIL_FORMAT_HH

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace xbsp
{

namespace fmtdetail
{

/** Format one argument under a spec (text between ':' and '}'). */
std::string applyIntSpec(long long value, bool isNegativeType,
                         unsigned long long raw,
                         std::string_view spec);
std::string applyFloatSpec(double value, std::string_view spec);

template <typename T>
std::string
formatArg(const T& value, std::string_view spec)
{
    if constexpr (std::is_same_v<T, bool>) {
        return value ? "true" : "false";
    } else if constexpr (std::is_integral_v<T>) {
        if constexpr (std::is_signed_v<T>) {
            return applyIntSpec(static_cast<long long>(value), true,
                                0, spec);
        } else {
            return applyIntSpec(0, false,
                                static_cast<unsigned long long>(value),
                                spec);
        }
    } else if constexpr (std::is_floating_point_v<T>) {
        return applyFloatSpec(static_cast<double>(value), spec);
    } else if constexpr (std::is_convertible_v<T, std::string_view>) {
        return std::string(std::string_view(value));
    } else if constexpr (std::is_enum_v<T>) {
        return applyIntSpec(
            static_cast<long long>(
                static_cast<std::underlying_type_t<T>>(value)),
            true, 0, spec);
    } else {
        std::ostringstream os;
        os << value;
        return os.str();
    }
}

/** Render a format string against pre-erased argument formatters. */
using ArgFormatter = std::string (*)(const void*, std::string_view);

std::string vformat(std::string_view fmt,
                    const std::vector<const void*>& args,
                    const std::vector<ArgFormatter>& formatters);

template <typename T>
std::string
erasedFormat(const void* ptr, std::string_view spec)
{
    return formatArg(*static_cast<const T*>(ptr), spec);
}

} // namespace fmtdetail

/** Format `fmt`, substituting "{...}" fields left to right. */
template <typename... Args>
std::string
format(std::string_view fmt, const Args&... args)
{
    const std::vector<const void*> ptrs{
        static_cast<const void*>(&args)...};
    const std::vector<fmtdetail::ArgFormatter> formatters{
        &fmtdetail::erasedFormat<Args>...};
    return fmtdetail::vformat(fmt, ptrs, formatters);
}

} // namespace xbsp

#endif // XBSP_UTIL_FORMAT_HH
