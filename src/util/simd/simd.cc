#include "util/simd/simd.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "obs/stats.hh"
#include "util/logging.hh"

namespace xbsp::simd
{

namespace
{

/**
 * Scalar reference kernels — the semantic ground truth.  The 4-lane
 * accumulator shape is deliberate: it IS the pinned reduction order
 * (element i -> lane i % 4, lanes combined (l0+l1)+(l2+l3)), and it
 * happens to be a shape compilers can auto-vectorize without
 * reassociating, so even the "scalar" build is not slow.  With
 * -ffp-contract=off pinned project-wide, `acc + d * d` is always a
 * multiply then an add — never an FMA — matching the vector TUs,
 * which use explicit mul/add intrinsics.
 */
double
sqDistScalar(const double* a, const double* b, std::size_t n)
{
    double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) {
            const double d = a[i + l] - b[i + l];
            acc[l] = acc[l] + d * d;
        }
    }
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        acc[i % kLanes] = acc[i % kLanes] + d * d;
    }
    return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void
sqDistBatchScalar(const double* point, const double* rows,
                  std::size_t k, std::size_t n, std::size_t stride,
                  double* out)
{
    for (std::size_t c = 0; c < k; ++c)
        out[c] = sqDistScalar(point, rows + c * stride, n);
}

void
axpyScalar(double* dst, const double* src, double a, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = dst[i] + a * src[i];
}

double
sumScalar(const double* a, std::size_t n)
{
    double acc[kLanes] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l)
            acc[l] = acc[l] + a[i + l];
    }
    for (; i < n; ++i)
        acc[i % kLanes] = acc[i % kLanes] + a[i];
    return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

u32
findWayScalar(const u64* tags, u32 ways, u64 key)
{
    for (u32 w = 0; w < ways; ++w) {
        if (tags[w] == key)
            return w;
    }
    return kWayNotFound;
}

u32
victimWayScalar(const u64* tags, const u64* metas, u32 ways)
{
    // First free way wins outright; otherwise strict < keeps the
    // lowest way among equal-minimum metadata words.
    u32 way = 0;
    u64 best = ~0ull;
    for (u32 w = 0; w < ways; ++w) {
        if ((tags[w] & 1) == 0)
            return w;
        if (metas[w] < best) {
            best = metas[w];
            way = w;
        }
    }
    return way;
}

constexpr Kernels scalarTable{
    Arch::Scalar,
    &sqDistScalar,
    &sqDistBatchScalar,
    &axpyScalar,
    &sumScalar,
    &findWayScalar,
    &victimWayScalar,
};

/** The dispatched table; null until the first active()/select(). */
std::atomic<const Kernels*> current{nullptr};
std::mutex dispatchMutex;

const Kernels* tableFor(Arch arch);

/** Publish `table` and record the decision in the stats registry. */
void
publish(const Kernels* table)
{
    current.store(table, std::memory_order_release);
    // One-shot configuration value, not an event count: which arch
    // the kernels dispatched to (1 scalar, 2 avx2, 3 neon).  Exact
    // at any --jobs since dispatch happens once per process.
    obs::StatRegistry::global()
        .counter("simd.dispatch.arch")
        .set(static_cast<u64>(table->arch));
}

/** Resolve the initial dispatch from XBSP_SIMD, else best. */
const Kernels*
initialTable()
{
    if (const char* env = std::getenv("XBSP_SIMD")) {
        const std::string_view mode(env);
        if (!mode.empty()) {
            if (mode == "off" || mode == "scalar")
                return tableFor(Arch::Scalar);
            if (mode == "avx2" && supported(Arch::Avx2))
                return tableFor(Arch::Avx2);
            if (mode == "neon" && supported(Arch::Neon))
                return tableFor(Arch::Neon);
            if (mode != "auto" && mode != "on") {
                warn("XBSP_SIMD='{}' unknown or unsupported; using "
                     "best available",
                     mode);
            }
        }
    }
    return tableFor(bestSupported());
}

} // namespace

#if defined(XBSP_SIMD_AVX2)
const Kernels& avx2Kernels(); // simd_avx2.cc (the only -mavx2 TU)
#endif
#if defined(XBSP_SIMD_NEON)
const Kernels& neonKernels(); // simd_neon.cc
#endif

namespace
{

const Kernels*
tableFor(Arch arch)
{
#if defined(XBSP_SIMD_AVX2)
    if (arch == Arch::Avx2)
        return &avx2Kernels();
#endif
#if defined(XBSP_SIMD_NEON)
    if (arch == Arch::Neon)
        return &neonKernels();
#endif
    (void)arch;
    return &scalarTable;
}

} // namespace

const char*
archName(Arch arch)
{
    switch (arch) {
      case Arch::Scalar:
        return "scalar";
      case Arch::Avx2:
        return "avx2";
      case Arch::Neon:
        return "neon";
    }
    return "unknown";
}

bool
supported(Arch arch)
{
    switch (arch) {
      case Arch::Scalar:
        return true;
      case Arch::Avx2:
#if defined(XBSP_SIMD_AVX2) && defined(__x86_64__)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
      case Arch::Neon:
#if defined(XBSP_SIMD_NEON) && defined(__aarch64__)
        return true; // NEON is architectural baseline on aarch64
#else
        return false;
#endif
    }
    return false;
}

Arch
bestSupported()
{
    if (supported(Arch::Avx2))
        return Arch::Avx2;
    if (supported(Arch::Neon))
        return Arch::Neon;
    return Arch::Scalar;
}

const Kernels&
active()
{
    const Kernels* table = current.load(std::memory_order_acquire);
    if (table)
        return *table;
    std::lock_guard<std::mutex> lock(dispatchMutex);
    table = current.load(std::memory_order_acquire);
    if (!table) {
        publish(initialTable());
        table = current.load(std::memory_order_acquire);
    }
    return *table;
}

const Kernels&
scalarKernels()
{
    return scalarTable;
}

bool
select(std::string_view mode)
{
    std::lock_guard<std::mutex> lock(dispatchMutex);
    if (mode == "off" || mode == "scalar") {
        publish(&scalarTable);
        return true;
    }
    if (mode == "auto" || mode == "on" || mode.empty()) {
        publish(tableFor(bestSupported()));
        return true;
    }
    if (mode == "avx2" || mode == "neon") {
        const Arch arch = mode == "avx2" ? Arch::Avx2 : Arch::Neon;
        if (!supported(arch)) {
            warn("simd arch '{}' not available in this build/CPU; "
                 "dispatch unchanged",
                 mode);
            return false;
        }
        publish(tableFor(arch));
        return true;
    }
    warn("unknown simd mode '{}' (off|scalar|auto|on|avx2|neon); "
         "dispatch unchanged",
         mode);
    return false;
}

} // namespace xbsp::simd
