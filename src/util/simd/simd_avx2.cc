/**
 * @file
 * AVX2 kernels — the only translation unit compiled with -mavx2, so
 * the rest of the binary stays runnable on any x86-64 and these
 * functions are only reached after the runtime dispatch confirms CPU
 * support.
 *
 * Bit-identity with the scalar reference follows from the lane
 * mapping: a 4-double register accumulates element i into lane
 * i % 4, exactly the reference's accumulator array, with the same
 * sub/mul/add instruction per element (explicit intrinsics, never
 * FMA — and the build pins -ffp-contract=off so the compiler cannot
 * fuse the tail loops either), and the horizontal combine extracts
 * the lanes and adds them in the pinned (l0+l1)+(l2+l3) order.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "util/simd/simd.hh"

namespace xbsp::simd
{

namespace
{

/** Scalar tail + pinned horizontal combine of one accumulator. */
double
finishSqDist(__m256d acc, const double* a, const double* b,
             std::size_t i, std::size_t n)
{
    alignas(kAlign) double lanes[kLanes];
    _mm256_store_pd(lanes, acc);
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        lanes[i % kLanes] = lanes[i % kLanes] + d * d;
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double
sqDistAvx2(const double* a, const double* b, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                        _mm256_loadu_pd(b + i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    return finishSqDist(acc, a, b, i, n);
}

void
sqDistBatchAvx2(const double* point, const double* rows,
                std::size_t k, std::size_t n, std::size_t stride,
                double* out)
{
    // Four centroid rows per pass: the point row is loaded once per
    // block, and the four independent accumulators overlap the add
    // latency chains that bound the single-row kernel.  Each out[c]
    // is still bit-for-bit the single-row kernel on the same
    // operands — interleaving across centroids never reorders any
    // one centroid's accumulation.
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
        const double* r0 = rows + c * stride;
        const double* r1 = r0 + stride;
        const double* r2 = r1 + stride;
        const double* r3 = r2 + stride;
        __m256d a0 = _mm256_setzero_pd();
        __m256d a1 = _mm256_setzero_pd();
        __m256d a2 = _mm256_setzero_pd();
        __m256d a3 = _mm256_setzero_pd();
        std::size_t i = 0;
        // Two vector steps per iteration to amortize loop overhead;
        // both steps feed each centroid's single accumulator in
        // element order, so the reduction order is unchanged.
        for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
            const __m256d p = _mm256_loadu_pd(point + i);
            const __m256d q = _mm256_loadu_pd(point + i + kLanes);
            __m256d d = _mm256_sub_pd(p, _mm256_loadu_pd(r0 + i));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r0 + i + kLanes));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r1 + i));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r1 + i + kLanes));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r2 + i));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r2 + i + kLanes));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r3 + i));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r3 + i + kLanes));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d, d));
        }
        for (; i + kLanes <= n; i += kLanes) {
            const __m256d p = _mm256_loadu_pd(point + i);
            __m256d d = _mm256_sub_pd(p, _mm256_loadu_pd(r0 + i));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r1 + i));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r2 + i));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r3 + i));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d, d));
        }
        if (i == n) {
            // No scalar tail (the production case: n is the padded
            // stride).  hadd yields exactly l0+l1 and l2+l3 per
            // accumulator, and the cross-half add is the pinned
            // (l0+l1)+(l2+l3) — the same combine, four at a time.
            const __m256d h01 = _mm256_hadd_pd(a0, a1);
            const __m256d h23 = _mm256_hadd_pd(a2, a3);
            _mm_storeu_pd(out + c,
                          _mm_add_pd(_mm256_castpd256_pd128(h01),
                                     _mm256_extractf128_pd(h01, 1)));
            _mm_storeu_pd(out + c + 2,
                          _mm_add_pd(_mm256_castpd256_pd128(h23),
                                     _mm256_extractf128_pd(h23, 1)));
        } else {
            out[c] = finishSqDist(a0, point, r0, i, n);
            out[c + 1] = finishSqDist(a1, point, r1, i, n);
            out[c + 2] = finishSqDist(a2, point, r2, i, n);
            out[c + 3] = finishSqDist(a3, point, r3, i, n);
        }
    }
    for (; c < k; ++c)
        out[c] = sqDistAvx2(point, rows + c * stride, n);
}

void
axpyAvx2(double* dst, const double* src, double a, std::size_t n)
{
    const __m256d va = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256d s = _mm256_mul_pd(va, _mm256_loadu_pd(src + i));
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(_mm256_loadu_pd(dst + i), s));
    }
    for (; i < n; ++i)
        dst[i] = dst[i] + a * src[i];
}

double
sumAvx2(const double* a, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
    alignas(kAlign) double lanes[kLanes];
    _mm256_store_pd(lanes, acc);
    for (; i < n; ++i)
        lanes[i % kLanes] = lanes[i % kLanes] + a[i];
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/**
 * The set-scan kernels return way indices, so equivalence with the
 * scalar reference is structural: cmpeq + movemask turns each
 * 4-way group into a bitmask whose lowest set bit (ctz) is the
 * lowest matching way, and groups are visited low to high.  Caches
 * with an associativity that is not a multiple of four fall back to
 * the reference walk — the production geometries the dispatch is for
 * (8- and 16-way L2/L3) are multiples, and the small 2-way L1 never
 * reaches these kernels at all (cache.hh scans it inline).
 */
u32
findWayAvx2(const u64* tags, u32 ways, u64 key)
{
    if ((ways & 3u) != 0) {
        for (u32 w = 0; w < ways; ++w) {
            if (tags[w] == key)
                return w;
        }
        return kWayNotFound;
    }
    const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
    for (u32 w = 0; w < ways; w += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags + w));
        const int hit = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(t, vkey)));
        if (hit)
            return w + static_cast<u32>(__builtin_ctz(hit));
    }
    return kWayNotFound;
}

u32
victimWayAvx2(const u64* tags, const u64* metas, u32 ways)
{
    if ((ways & 3u) != 0) {
        u32 way = 0;
        u64 best = ~0ull;
        for (u32 w = 0; w < ways; ++w) {
            if ((tags[w] & 1) == 0)
                return w;
            if (metas[w] < best) {
                best = metas[w];
                way = w;
            }
        }
        return way;
    }
    // Pass 1: lowest way with the valid bit clear.
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i zero = _mm256_setzero_si256();
    for (u32 w = 0; w < ways; w += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags + w));
        const int freeMask = _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(_mm256_and_si256(t, one), zero)));
        if (freeMask)
            return w + static_cast<u32>(__builtin_ctz(freeMask));
    }
    // Pass 2: unsigned minimum of the packed metadata words.  AVX2
    // only compares epi64 signed, so flip the sign bit (the classic
    // order-preserving map from unsigned to signed) before taking
    // the running lanewise minimum.
    const __m256i flip =
        _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
    __m256i best = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(metas)),
        flip);
    for (u32 w = 4; w < ways; w += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(metas + w)),
            flip);
        best = _mm256_blendv_epi8(best, v,
                                  _mm256_cmpgt_epi64(best, v));
    }
    // Undo the flip per lane before the horizontal reduction — the
    // flipped values only order correctly under *signed* compares,
    // and here we want a plain unsigned min of the originals.
    alignas(kAlign) u64 lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    u64 minMeta = lanes[0] ^ (1ull << 63);
    for (int l = 1; l < 4; ++l) {
        const u64 v = lanes[l] ^ (1ull << 63);
        minMeta = v < minMeta ? v : minMeta;
    }
    // The lowest way holding the minimum.
    const __m256i vmin =
        _mm256_set1_epi64x(static_cast<long long>(minMeta));
    for (u32 w = 0; w < ways; w += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(metas + w));
        const int eq = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vmin)));
        if (eq)
            return w + static_cast<u32>(__builtin_ctz(eq));
    }
    return 0; // unreachable: the minimum exists in some group
}

constexpr Kernels avx2Table{
    Arch::Avx2,
    &sqDistAvx2,
    &sqDistBatchAvx2,
    &axpyAvx2,
    &sumAvx2,
    &findWayAvx2,
    &victimWayAvx2,
};

} // namespace

const Kernels&
avx2Kernels()
{
    return avx2Table;
}

} // namespace xbsp::simd

#endif // x86-64
