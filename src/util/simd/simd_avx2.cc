/**
 * @file
 * AVX2 kernels — the only translation unit compiled with -mavx2, so
 * the rest of the binary stays runnable on any x86-64 and these
 * functions are only reached after the runtime dispatch confirms CPU
 * support.
 *
 * Bit-identity with the scalar reference follows from the lane
 * mapping: a 4-double register accumulates element i into lane
 * i % 4, exactly the reference's accumulator array, with the same
 * sub/mul/add instruction per element (explicit intrinsics, never
 * FMA — and the build pins -ffp-contract=off so the compiler cannot
 * fuse the tail loops either), and the horizontal combine extracts
 * the lanes and adds them in the pinned (l0+l1)+(l2+l3) order.
 */

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "util/simd/simd.hh"

namespace xbsp::simd
{

namespace
{

/** Scalar tail + pinned horizontal combine of one accumulator. */
double
finishSqDist(__m256d acc, const double* a, const double* b,
             std::size_t i, std::size_t n)
{
    alignas(kAlign) double lanes[kLanes];
    _mm256_store_pd(lanes, acc);
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        lanes[i % kLanes] = lanes[i % kLanes] + d * d;
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double
sqDistAvx2(const double* a, const double* b, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                        _mm256_loadu_pd(b + i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    return finishSqDist(acc, a, b, i, n);
}

void
sqDistBatchAvx2(const double* point, const double* rows,
                std::size_t k, std::size_t n, std::size_t stride,
                double* out)
{
    // Four centroid rows per pass: the point row is loaded once per
    // block, and the four independent accumulators overlap the add
    // latency chains that bound the single-row kernel.  Each out[c]
    // is still bit-for-bit the single-row kernel on the same
    // operands — interleaving across centroids never reorders any
    // one centroid's accumulation.
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
        const double* r0 = rows + c * stride;
        const double* r1 = r0 + stride;
        const double* r2 = r1 + stride;
        const double* r3 = r2 + stride;
        __m256d a0 = _mm256_setzero_pd();
        __m256d a1 = _mm256_setzero_pd();
        __m256d a2 = _mm256_setzero_pd();
        __m256d a3 = _mm256_setzero_pd();
        std::size_t i = 0;
        // Two vector steps per iteration to amortize loop overhead;
        // both steps feed each centroid's single accumulator in
        // element order, so the reduction order is unchanged.
        for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
            const __m256d p = _mm256_loadu_pd(point + i);
            const __m256d q = _mm256_loadu_pd(point + i + kLanes);
            __m256d d = _mm256_sub_pd(p, _mm256_loadu_pd(r0 + i));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r0 + i + kLanes));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r1 + i));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r1 + i + kLanes));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r2 + i));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r2 + i + kLanes));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r3 + i));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(q, _mm256_loadu_pd(r3 + i + kLanes));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d, d));
        }
        for (; i + kLanes <= n; i += kLanes) {
            const __m256d p = _mm256_loadu_pd(point + i);
            __m256d d = _mm256_sub_pd(p, _mm256_loadu_pd(r0 + i));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r1 + i));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r2 + i));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(d, d));
            d = _mm256_sub_pd(p, _mm256_loadu_pd(r3 + i));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(d, d));
        }
        if (i == n) {
            // No scalar tail (the production case: n is the padded
            // stride).  hadd yields exactly l0+l1 and l2+l3 per
            // accumulator, and the cross-half add is the pinned
            // (l0+l1)+(l2+l3) — the same combine, four at a time.
            const __m256d h01 = _mm256_hadd_pd(a0, a1);
            const __m256d h23 = _mm256_hadd_pd(a2, a3);
            _mm_storeu_pd(out + c,
                          _mm_add_pd(_mm256_castpd256_pd128(h01),
                                     _mm256_extractf128_pd(h01, 1)));
            _mm_storeu_pd(out + c + 2,
                          _mm_add_pd(_mm256_castpd256_pd128(h23),
                                     _mm256_extractf128_pd(h23, 1)));
        } else {
            out[c] = finishSqDist(a0, point, r0, i, n);
            out[c + 1] = finishSqDist(a1, point, r1, i, n);
            out[c + 2] = finishSqDist(a2, point, r2, i, n);
            out[c + 3] = finishSqDist(a3, point, r3, i, n);
        }
    }
    for (; c < k; ++c)
        out[c] = sqDistAvx2(point, rows + c * stride, n);
}

void
axpyAvx2(double* dst, const double* src, double a, std::size_t n)
{
    const __m256d va = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const __m256d s = _mm256_mul_pd(va, _mm256_loadu_pd(src + i));
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(_mm256_loadu_pd(dst + i), s));
    }
    for (; i < n; ++i)
        dst[i] = dst[i] + a * src[i];
}

double
sumAvx2(const double* a, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
    alignas(kAlign) double lanes[kLanes];
    _mm256_store_pd(lanes, acc);
    for (; i < n; ++i)
        lanes[i % kLanes] = lanes[i % kLanes] + a[i];
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

constexpr Kernels avx2Table{
    Arch::Avx2,
    &sqDistAvx2,
    &sqDistBatchAvx2,
    &axpyAvx2,
    &sumAvx2,
};

} // namespace

const Kernels&
avx2Kernels()
{
    return avx2Table;
}

} // namespace xbsp::simd

#endif // x86-64
