/**
 * @file
 * NEON kernels (aarch64).  A pair of 2-double registers plays the
 * role of one AVX2 register: the low pair carries lanes 0..1, the
 * high pair lanes 2..3, so element i lands in pinned lane i % 4 and
 * the horizontal combine is the same (l0+l1)+(l2+l3) as the scalar
 * reference.  Explicit vmulq/vaddq only — vfmaq would fuse the
 * rounding and change bits.
 */

#if defined(__aarch64__)

#include <arm_neon.h>

#include "util/simd/simd.hh"

namespace xbsp::simd
{

namespace
{

/** Scalar tail + pinned horizontal combine of one accumulator pair. */
double
finishSqDist(float64x2_t acc01, float64x2_t acc23, const double* a,
             const double* b, std::size_t i, std::size_t n)
{
    double lanes[kLanes] = {
        vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
        vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        lanes[i % kLanes] = lanes[i % kLanes] + d * d;
    }
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double
sqDistNeon(const double* a, const double* b, std::size_t n)
{
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const float64x2_t d01 =
            vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
        const float64x2_t d23 =
            vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
        acc01 = vaddq_f64(acc01, vmulq_f64(d01, d01));
        acc23 = vaddq_f64(acc23, vmulq_f64(d23, d23));
    }
    return finishSqDist(acc01, acc23, a, b, i, n);
}

void
sqDistBatchNeon(const double* point, const double* rows,
                std::size_t k, std::size_t n, std::size_t stride,
                double* out)
{
    // Two centroid rows per pass (four accumulator pairs would spill
    // on narrower cores): the point row is loaded once per block and
    // the independent accumulator pairs overlap the vaddq latency
    // chains.  Each out[c] is still bit-for-bit the single-row
    // kernel — interleaving across centroids never reorders any one
    // centroid's accumulation.
    std::size_t c = 0;
    for (; c + 2 <= k; c += 2) {
        const double* r0 = rows + c * stride;
        const double* r1 = r0 + stride;
        float64x2_t a001 = vdupq_n_f64(0.0);
        float64x2_t a023 = vdupq_n_f64(0.0);
        float64x2_t a101 = vdupq_n_f64(0.0);
        float64x2_t a123 = vdupq_n_f64(0.0);
        std::size_t i = 0;
        for (; i + kLanes <= n; i += kLanes) {
            const float64x2_t p01 = vld1q_f64(point + i);
            const float64x2_t p23 = vld1q_f64(point + i + 2);
            float64x2_t d01 = vsubq_f64(p01, vld1q_f64(r0 + i));
            float64x2_t d23 = vsubq_f64(p23, vld1q_f64(r0 + i + 2));
            a001 = vaddq_f64(a001, vmulq_f64(d01, d01));
            a023 = vaddq_f64(a023, vmulq_f64(d23, d23));
            d01 = vsubq_f64(p01, vld1q_f64(r1 + i));
            d23 = vsubq_f64(p23, vld1q_f64(r1 + i + 2));
            a101 = vaddq_f64(a101, vmulq_f64(d01, d01));
            a123 = vaddq_f64(a123, vmulq_f64(d23, d23));
        }
        if (i == n) {
            // No scalar tail (the production case: n is the padded
            // stride).  vpaddq gives exactly [l0+l1, l2+l3] per
            // centroid, and the second vpaddq adds those pairs — the
            // pinned (l0+l1)+(l2+l3) combine, two at a time.
            const float64x2_t t0 = vpaddq_f64(a001, a023);
            const float64x2_t t1 = vpaddq_f64(a101, a123);
            vst1q_f64(out + c, vpaddq_f64(t0, t1));
        } else {
            out[c] = finishSqDist(a001, a023, point, r0, i, n);
            out[c + 1] = finishSqDist(a101, a123, point, r1, i, n);
        }
    }
    for (; c < k; ++c)
        out[c] = sqDistNeon(point, rows + c * stride, n);
}

void
axpyNeon(double* dst, const double* src, double a, std::size_t n)
{
    const float64x2_t va = vdupq_n_f64(a);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t s = vmulq_f64(va, vld1q_f64(src + i));
        vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), s));
    }
    for (; i < n; ++i)
        dst[i] = dst[i] + a * src[i];
}

double
sumNeon(const double* a, std::size_t n)
{
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        acc01 = vaddq_f64(acc01, vld1q_f64(a + i));
        acc23 = vaddq_f64(acc23, vld1q_f64(a + i + 2));
    }
    double lanes[kLanes] = {
        vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
        vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
    for (; i < n; ++i)
        lanes[i % kLanes] = lanes[i % kLanes] + a[i];
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

/**
 * Set scans stay scalar on NEON: two 64-bit lanes per register and
 * no movemask instruction mean a vectorized 8/16-way walk saves
 * nothing over the reference loop, so the NEON table reuses the
 * reference semantics verbatim.
 */
u32
findWayNeon(const u64* tags, u32 ways, u64 key)
{
    for (u32 w = 0; w < ways; ++w) {
        if (tags[w] == key)
            return w;
    }
    return kWayNotFound;
}

u32
victimWayNeon(const u64* tags, const u64* metas, u32 ways)
{
    u32 way = 0;
    u64 best = ~0ull;
    for (u32 w = 0; w < ways; ++w) {
        if ((tags[w] & 1) == 0)
            return w;
        if (metas[w] < best) {
            best = metas[w];
            way = w;
        }
    }
    return way;
}

constexpr Kernels neonTable{
    Arch::Neon,
    &sqDistNeon,
    &sqDistBatchNeon,
    &axpyNeon,
    &sumNeon,
    &findWayNeon,
    &victimWayNeon,
};

} // namespace

const Kernels&
neonKernels()
{
    return neonTable;
}

} // namespace xbsp::simd

#endif // aarch64
