/**
 * @file
 * Vector-kernel layer for the clustering and cache-simulation hot
 * paths: squared-distance, batched point-vs-centroids distance, axpy
 * and pinned sums over dense double rows, plus the integer set-scan
 * kernels the cache hierarchy's tag walks run on, with one-time
 * runtime dispatch between a scalar reference, AVX2 (x86-64) and
 * NEON (aarch64) implementations.
 *
 * **Determinism contract.**  Every kernel is defined by the *pinned
 * 4-lane reduction order* the scalar reference implements: element i
 * is accumulated into lane `i % 4` (elements in increasing i order
 * within each lane) and the four lane partials are combined as
 * `(l0 + l1) + (l2 + l3)`.  Elementwise kernels (axpy) have no
 * reduction and are defined elementwise.  All arithmetic is plain
 * IEEE-754 multiply/add — **no FMA** (a fused multiply-add rounds
 * once where mul+add rounds twice, so fusing would change bits; the
 * build pins `-ffp-contract=off` so the compiler cannot fuse behind
 * our back either).  A 4-double AVX2 register and a pair of 2-double
 * NEON registers both map lanes 0..3 onto the same element classes,
 * so every implementation produces **bit-identical** results to the
 * scalar reference on every input — asserted exhaustively by
 * tests/test_simd.cc and end-to-end by tests/test_clustering_equiv.cc.
 * `simd` is therefore a pure speed knob, exactly like `accelerate`:
 * labels, SSE, BIC, phases, reports and artifact-store keys do not
 * depend on it.
 *
 * **Set-scan kernels.**  findWay/victimWay operate on the cache's
 * set-blocked u64 words (cache/cache.hh) and return way indices, so
 * exactness is structural rather than numeric: every implementation
 * must return the lowest matching way (findWay) and the first free
 * way, else the unsigned-minimum metadata word with ties going to
 * the lowest way (victimWay).  tests/test_simd.cc asserts the
 * dispatched implementations against the scalar reference across
 * every geometry and tie shape.
 *
 * **Padding.**  Rows padded with +0.0 to a multiple of the lane
 * count are transparent: a zero element contributes `(0-0)^2 = +0.0`
 * to a lane (sqDist/sum accumulators are never -0.0, so adding +0.0
 * is an exact no-op) and `w * 0.0 = +0.0` to an axpy destination that
 * holds +0.0.  Hence a kernel over a padded row of length
 * `padded(dims)` returns the same bits as over the unpadded `dims`
 * prefix — callers pad once (ProjectedData/KMeansResult rows) and
 * kernels then run tail-free.
 *
 * Dispatch: resolved once, on first use, from the `XBSP_SIMD`
 * environment variable ("off"/"scalar", "auto"/"on", "avx2", "neon");
 * `select()` overrides it at runtime (the `--simd` option).  Builds
 * configured with `-DXBSP_SIMD=OFF` contain only the scalar
 * reference.
 */

#ifndef XBSP_UTIL_SIMD_SIMD_HH
#define XBSP_UTIL_SIMD_SIMD_HH

#include <cstddef>
#include <new>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace xbsp::simd
{

/** Reduction lanes of the pinned kernel semantics (arch-independent). */
inline constexpr std::size_t kLanes = 4;

/** Row alignment (bytes) of padded matrices — one AVX2 vector. */
inline constexpr std::size_t kAlign = 32;

/** findWay result when no way of the set holds the key. */
inline constexpr u32 kWayNotFound = ~0u;

/** `n` rounded up to a multiple of the lane count. */
constexpr std::size_t
padded(std::size_t n)
{
    return (n + kLanes - 1) / kLanes * kLanes;
}

/**
 * Minimal aligned allocator so padded matrices can hand the kernels
 * 32-byte-aligned rows without a custom container.
 */
template <typename T, std::size_t Align = kAlign>
struct AlignedAllocator
{
    using value_type = T;

    // The non-type Align parameter defeats allocator_traits' default
    // rebind deduction; spell it out.
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T* p, std::size_t n) noexcept
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align>&) const noexcept
    {
        return true;
    }
};

/** Dense double storage with rows alignable to kAlign. */
using AlignedVec = std::vector<double, AlignedAllocator<double>>;

/** Kernel implementations the dispatcher can select between. */
enum class Arch
{
    Scalar = 1,  ///< portable reference; the semantic ground truth
    Avx2 = 2,    ///< x86-64 AVX2 (4 doubles per register)
    Neon = 3,    ///< aarch64 NEON (2x2 doubles per register pair)
};

/** Human-readable arch name ("scalar", "avx2", "neon"). */
const char* archName(Arch arch);

/**
 * One implementation of the kernel set.  All functions tolerate
 * n == 0 (sqDist/sum return +0.0, axpy is a no-op) and arbitrary
 * (unpadded) lengths via the pinned tail handling.
 */
struct Kernels
{
    Arch arch = Arch::Scalar;

    /** Squared Euclidean distance over n doubles (pinned reduction). */
    double (*sqDist)(const double* a, const double* b, std::size_t n);

    /**
     * Distances from one point row to k matrix rows spaced `stride`
     * doubles apart, each over the first n doubles; out[c] is exactly
     * sqDist(point, rows + c * stride, n).
     */
    void (*sqDistBatch)(const double* point, const double* rows,
                        std::size_t k, std::size_t n,
                        std::size_t stride, double* out);

    /** dst[i] = dst[i] + a * src[i] for i in [0, n) — elementwise. */
    void (*axpy)(double* dst, const double* src, double a,
                 std::size_t n);

    /** Sum of n doubles under the pinned reduction order. */
    double (*sum)(const double* a, std::size_t n);

    /**
     * Lowest way w in [0, ways) with tags[w] == key, else
     * kWayNotFound.  `tags` are the packed tag words of one cache
     * set (cache/cache.hh); a valid tag has its low bit set, so a
     * key (always odd) never matches a free way.
     */
    u32 (*findWay)(const u64* tags, u32 ways, u64 key);

    /**
     * Replacement victim of one set: the lowest way whose tag word
     * has the valid bit clear, else the way with the unsigned-
     * smallest packed metadata word (ties to the lowest way).
     */
    u32 (*victimWay)(const u64* tags, const u64* metas, u32 ways);
};

/**
 * The active kernel set.  First call resolves the dispatch: XBSP_SIMD
 * environment variable if set, else the best implementation this
 * build contains that the CPU supports.  Thread-safe; the returned
 * reference is valid for the process lifetime.
 */
const Kernels& active();

/** The scalar reference kernels (always available; used by tests). */
const Kernels& scalarKernels();

/** True when this build + CPU can run `arch`. */
bool supported(Arch arch);

/** Best arch this build + CPU supports (>= Scalar). */
Arch bestSupported();

/**
 * Force the dispatch: "off"/"scalar" selects the reference,
 * "auto"/"on" the best supported, "avx2"/"neon" that implementation.
 * Returns false (state unchanged, with a warning) on an unknown mode
 * or an implementation this build/CPU cannot run.  Safe to call any
 * time no kernel is concurrently in flight.
 */
bool select(std::string_view mode);

} // namespace xbsp::simd

#endif // XBSP_UTIL_SIMD_SIMD_HH
