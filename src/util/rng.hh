/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (k-means seeding, random
 * linear projection, synthetic memory-access patterns) draws from an
 * explicitly seeded Rng so that whole experiments are reproducible
 * bit-for-bit.  The generator is xoshiro256** seeded through
 * SplitMix64, which is both fast and statistically strong for the
 * simulation workloads here.
 */

#ifndef XBSP_UTIL_RNG_HH
#define XBSP_UTIL_RNG_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace xbsp
{

/** SplitMix64 step; used for seeding and cheap stateless hashing. */
u64 splitMix64(u64& state);

/** Stateless 64-bit mix of a value (useful for per-id streams). */
u64 hashMix(u64 value);

/**
 * xoshiro256** generator with convenience draws.  Copyable; copies
 * continue the sequence independently from the copied state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    u64 next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    u64 nextBelow(u64 bound);

    /** Uniform integer in [lo, hi]; requires lo <= hi. */
    u64 nextRange(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal draw (Box-Muller, cached pair). */
    double nextGaussian();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (stable per label). */
    Rng fork(u64 label) const;

  private:
    u64 s[4];
    bool hasSpare = false;
    double spare = 0.0;
};

} // namespace xbsp

#endif // XBSP_UTIL_RNG_HH
