/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (k-means seeding, random
 * linear projection, synthetic memory-access patterns) draws from an
 * explicitly seeded Rng so that whole experiments are reproducible
 * bit-for-bit.  The generator is xoshiro256** seeded through
 * SplitMix64, which is both fast and statistically strong for the
 * simulation workloads here.
 */

#ifndef XBSP_UTIL_RNG_HH
#define XBSP_UTIL_RNG_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace xbsp
{

/** SplitMix64 step; used for seeding and cheap stateless hashing. */
u64 splitMix64(u64& state);

/** Stateless 64-bit mix of a value (useful for per-id streams). */
u64 hashMix(u64 value);

/**
 * xoshiro256** generator with convenience draws.  Copyable; copies
 * continue the sequence independently from the copied state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    u64 next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    u64 nextBelow(u64 bound);

    /** Uniform integer in [lo, hi]; requires lo <= hi. */
    u64 nextRange(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal draw (Box-Muller, cached pair). */
    double nextGaussian();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (stable per label). */
    Rng fork(u64 label) const;

  private:
    u64 s[4];
    bool hasSpare = false;
    double spare = 0.0;
};

/**
 * Repeated nextBelow() draws against one fixed bound, bit-identical
 * to Rng::nextBelow(bound) (same raw draws consumed, same rejection
 * decisions, same results) but with the per-call divisions hoisted:
 * the rejection threshold is computed once, and the remainder uses a
 * precomputed 128-bit reciprocal (Lemire & Kaser's direct-remainder
 * construction, exact for every 64-bit bound) instead of the
 * hardware divider.  The address-pattern batch loops draw millions
 * of times against a loop-invariant bound, which is exactly the case
 * this class exists for.
 */
class BoundedBelow
{
  public:
    explicit BoundedBelow(u64 bound);

    /** Exactly rng.nextBelow(bound), divider-free. */
    u64
    draw(Rng& rng) const
    {
        for (;;) {
            const u64 r = rng.next();
            if (r >= threshold)
                return mod(r);
        }
    }

    /** Exactly `value % bound`, divider-free. */
    u64
    mod(u64 value) const
    {
        if (boundValue == 1)
            return 0;
        // frac = the lower 128 bits of reciprocal * value, i.e. the
        // fractional part of value / bound in 0.128 fixed point; the
        // remainder is then the high half of frac * bound.
        const unsigned __int128 frac = reciprocal * value;
        const u64 fracHi = static_cast<u64>(frac >> 64);
        const u64 fracLo = static_cast<u64>(frac);
        const unsigned __int128 scaled =
            static_cast<unsigned __int128>(fracHi) * boundValue +
            ((static_cast<unsigned __int128>(fracLo) * boundValue) >>
             64);
        return static_cast<u64>(scaled >> 64);
    }

    u64 bound() const { return boundValue; }

  private:
    u64 boundValue = 1;
    u64 threshold = 0;  ///< smallest unbiased raw draw
    unsigned __int128 reciprocal = 0;  ///< ceil(2^128 / bound)
};

} // namespace xbsp

#endif // XBSP_UTIL_RNG_HH
