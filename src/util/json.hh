/**
 * @file
 * Streaming JSON emitter shared by the bench summaries, the stats
 * registry dump and the trace writer, plus a small recursive-descent
 * reader (JsonValue/parseJson) for the tools that consume our own
 * documents back — the `xbsp manifest` pretty-printer and tests that
 * validate trace/manifest output.  One writer per document:
 * containers are opened/closed explicitly, commas, newlines and
 * indentation are managed automatically, strings are escaped per RFC
 * 8259, and key order is exactly the call order — so documents built
 * from sorted containers have stable, diffable key order.
 */

#ifndef XBSP_UTIL_JSON_HH
#define XBSP_UTIL_JSON_HH

#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace xbsp
{

/** Stream-backed JSON writer; see the file comment for contracts. */
class JsonWriter
{
  public:
    /** Write to `os`, indenting nested containers by `indent`. */
    explicit JsonWriter(std::ostream& os, int indent = 2);

    /** All containers must be closed before destruction (panics). */
    ~JsonWriter();

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Emit an object key; the next value call supplies its value. */
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text);
    JsonWriter& value(bool flag);

    /** Any integer type (char included — it renders as a number). */
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    JsonWriter&
    value(T number)
    {
        if constexpr (std::is_signed_v<T>)
            return intValue(static_cast<long long>(number));
        else
            return uintValue(static_cast<unsigned long long>(number));
    }

    /**
     * Emit a double: fixed with `decimals` places when >= 0, shortest
     * round-trip form otherwise.  Non-finite values become null (JSON
     * has no NaN/Inf).
     */
    JsonWriter& value(double number, int decimals = -1);

    /** Emit JSON null. */
    JsonWriter& null();

    /** key() + value() in one call, for scalar members. */
    template <typename T>
    JsonWriter&
    member(std::string_view name, const T& val)
    {
        key(name);
        return value(val);
    }

    JsonWriter&
    member(std::string_view name, double val, int decimals)
    {
        key(name);
        return value(val, decimals);
    }

    /** Escape `text` as the *inside* of a JSON string literal. */
    static std::string escape(std::string_view text);

  private:
    struct Level
    {
        bool array = false;
        bool empty = true;
    };

    std::ostream& os;
    const int indentWidth;
    std::vector<Level> stack;
    bool keyPending = false;

    /** Comma/newline/indent bookkeeping before a value or key. */
    void beforeItem();
    void writeIndent();
    void scalar(std::string_view rendered);
    JsonWriter& intValue(long long number);
    JsonWriter& uintValue(unsigned long long number);
};

/** Malformed input handed to parseJson(). */
class JsonParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Parsed JSON document node.  Objects keep their members in document
 * order (our writers emit deterministic key order; the reader
 * preserves it).  Numbers are stored as doubles — every integer this
 * repo emits fits a double's 53-bit mantissa exactly.  Accessors
 * throw JsonParseError on kind mismatch so consumers of malformed
 * documents fail with a message instead of crashing.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return what; }
    bool isNull() const { return what == Kind::Null; }
    bool isObject() const { return what == Kind::Object; }
    bool isArray() const { return what == Kind::Array; }

    /** Checked scalar accessors. */
    bool asBool() const;
    double asNumber() const;
    u64 asU64() const;
    const std::string& asString() const;

    /** Checked container accessors. */
    const std::vector<JsonValue>& items() const;
    const std::vector<Member>& members() const;

    /** Object member by key; throws when absent or not an object. */
    const JsonValue& at(std::string_view key) const;

    /** Object member by key; nullptr when absent. */
    const JsonValue* find(std::string_view key) const;

    /** Array element; throws when out of range or not an array. */
    const JsonValue& at(std::size_t index) const;

    std::size_t size() const;

  private:
    friend class JsonParser;

    Kind what = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<Member> object;
};

/**
 * Re-emit a parsed document through a writer, preserving member
 * order.  Lets tools that post-process our JSON (e.g. `xbsp manifest
 * --json`) round-trip documents through the one escaping/formatting
 * path instead of hand-printing.  `w` must be positioned where a
 * value is legal (fresh writer, after key(), or inside an array).
 */
void writeJsonValue(JsonWriter& w, const JsonValue& value);

/**
 * Parse one complete JSON document (trailing whitespace allowed,
 * trailing garbage is an error).  Throws JsonParseError with an
 * offset-bearing message on malformed input.
 */
JsonValue parseJson(std::string_view text);

/** parseJson() over the full contents of a file. */
JsonValue parseJsonFile(const std::string& path);

} // namespace xbsp

#endif // XBSP_UTIL_JSON_HH
