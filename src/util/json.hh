/**
 * @file
 * Streaming JSON emitter shared by the bench summaries, the stats
 * registry dump and the trace writer.  One writer per document:
 * containers are opened/closed explicitly, commas, newlines and
 * indentation are managed automatically, strings are escaped per RFC
 * 8259, and key order is exactly the call order — so documents built
 * from sorted containers have stable, diffable key order.
 */

#ifndef XBSP_UTIL_JSON_HH
#define XBSP_UTIL_JSON_HH

#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/types.hh"

namespace xbsp
{

/** Stream-backed JSON writer; see the file comment for contracts. */
class JsonWriter
{
  public:
    /** Write to `os`, indenting nested containers by `indent`. */
    explicit JsonWriter(std::ostream& os, int indent = 2);

    /** All containers must be closed before destruction (panics). */
    ~JsonWriter();

    JsonWriter(const JsonWriter&) = delete;
    JsonWriter& operator=(const JsonWriter&) = delete;

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Emit an object key; the next value call supplies its value. */
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text);
    JsonWriter& value(bool flag);

    /** Any integer type (char included — it renders as a number). */
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    JsonWriter&
    value(T number)
    {
        if constexpr (std::is_signed_v<T>)
            return intValue(static_cast<long long>(number));
        else
            return uintValue(static_cast<unsigned long long>(number));
    }

    /**
     * Emit a double: fixed with `decimals` places when >= 0, shortest
     * round-trip form otherwise.  Non-finite values become null (JSON
     * has no NaN/Inf).
     */
    JsonWriter& value(double number, int decimals = -1);

    /** Emit JSON null. */
    JsonWriter& null();

    /** key() + value() in one call, for scalar members. */
    template <typename T>
    JsonWriter&
    member(std::string_view name, const T& val)
    {
        key(name);
        return value(val);
    }

    JsonWriter&
    member(std::string_view name, double val, int decimals)
    {
        key(name);
        return value(val, decimals);
    }

    /** Escape `text` as the *inside* of a JSON string literal. */
    static std::string escape(std::string_view text);

  private:
    struct Level
    {
        bool array = false;
        bool empty = true;
    };

    std::ostream& os;
    const int indentWidth;
    std::vector<Level> stack;
    bool keyPending = false;

    /** Comma/newline/indent bookkeeping before a value or key. */
    void beforeItem();
    void writeIndent();
    void scalar(std::string_view rendered);
    JsonWriter& intValue(long long number);
    JsonWriter& uintValue(unsigned long long number);
};

} // namespace xbsp

#endif // XBSP_UTIL_JSON_HH
