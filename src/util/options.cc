#include "util/options.hh"

#include <cstdio>
#include <cstdlib>
#include "util/format.hh"

#include "util/logging.hh"
#include "util/threadpool.hh"

namespace xbsp
{

Options::Options(std::string desc) : description(std::move(desc))
{
}

void
Options::addString(const std::string& name, const std::string& help,
                   const std::string& def)
{
    opts.push_back({name, help, Kind::String, def, 0, 0.0, false});
}

void
Options::addUint(const std::string& name, const std::string& help,
                 u64 def)
{
    opts.push_back({name, help, Kind::Uint, "", def, 0.0, false});
}

void
Options::addDouble(const std::string& name, const std::string& help,
                   double def)
{
    opts.push_back({name, help, Kind::Double, "", 0, def, false});
}

void
Options::addBool(const std::string& name, const std::string& help,
                 bool def)
{
    opts.push_back({name, help, Kind::Bool, "", 0, 0.0, def});
}

void
Options::addJobs()
{
    addUint("jobs",
            "worker threads (0 = auto: XBSP_JOBS env, else hardware "
            "concurrency)",
            0);
}

u64
Options::applyJobs() const
{
    setGlobalJobs(getUint("jobs"));
    return configuredJobs();
}

Options::Option*
Options::find(const std::string& name)
{
    for (auto& opt : opts) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

const Options::Option&
Options::require(const std::string& name, Kind kind) const
{
    for (const auto& opt : opts) {
        if (opt.name == name) {
            if (opt.kind != kind)
                panic("option --{} accessed with wrong type", name);
            return opt;
        }
    }
    panic("unknown option --{}", name);
}

void
Options::assign(Option& opt, const std::string& value)
{
    switch (opt.kind) {
      case Kind::String:
        opt.strVal = value;
        break;
      case Kind::Uint:
        try {
            opt.uintVal = std::stoull(value);
        } catch (...) {
            fatal("--{} expects an unsigned integer, got '{}'",
                  opt.name, value);
        }
        break;
      case Kind::Double:
        try {
            opt.dblVal = std::stod(value);
        } catch (...) {
            fatal("--{} expects a number, got '{}'", opt.name, value);
        }
        break;
      case Kind::Bool:
        if (value == "true" || value == "1") {
            opt.boolVal = true;
        } else if (value == "false" || value == "0") {
            opt.boolVal = false;
        } else {
            fatal("--{} expects true/false, got '{}'", opt.name, value);
        }
        break;
    }
}

bool
Options::parse(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            extra.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string value;
        bool hasValue = false;
        if (auto eq = body.find('='); eq != std::string::npos) {
            value = body.substr(eq + 1);
            body = body.substr(0, eq);
            hasValue = true;
        }
        Option* opt = find(body);
        if (!opt && body.rfind("no-", 0) == 0) {
            Option* base = find(body.substr(3));
            if (base && base->kind == Kind::Bool) {
                base->boolVal = false;
                continue;
            }
        }
        if (!opt)
            fatal("unknown option --{} (try --help)", body);
        if (opt->kind == Kind::Bool && !hasValue) {
            opt->boolVal = true;
            continue;
        }
        if (!hasValue) {
            if (i + 1 >= argc)
                fatal("--{} requires a value", body);
            value = argv[++i];
        }
        assign(*opt, value);
    }
    return true;
}

const std::string&
Options::getString(const std::string& name) const
{
    return require(name, Kind::String).strVal;
}

u64
Options::getUint(const std::string& name) const
{
    return require(name, Kind::Uint).uintVal;
}

double
Options::getDouble(const std::string& name) const
{
    return require(name, Kind::Double).dblVal;
}

bool
Options::getBool(const std::string& name) const
{
    return require(name, Kind::Bool).boolVal;
}

void
Options::printHelp() const
{
    std::printf("%s\n\nOptions:\n", description.c_str());
    for (const auto& opt : opts) {
        std::string def;
        switch (opt.kind) {
          case Kind::String:
            def = opt.strVal.empty() ? "\"\"" : opt.strVal;
            break;
          case Kind::Uint:
            def = xbsp::format("{}", opt.uintVal);
            break;
          case Kind::Double:
            def = xbsp::format("{}", opt.dblVal);
            break;
          case Kind::Bool:
            def = opt.boolVal ? "true" : "false";
            break;
        }
        std::printf("  --%-24s %s (default: %s)\n", opt.name.c_str(),
                    opt.help.c_str(), def.c_str());
    }
}

} // namespace xbsp
