/**
 * @file
 * ASCII table rendering and CSV export for the experiment harness.
 * Every figure/table bench prints its results through this class so
 * all output shares one format and can be parsed back from logs.
 */

#ifndef XBSP_UTIL_TABLE_HH
#define XBSP_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace xbsp
{

/**
 * A rectangular table of strings with named columns.  Cells are added
 * row-major; addCell() with a double applies fixed formatting.
 */
class Table
{
  public:
    /** Create a table with a caption and column headers. */
    Table(std::string caption, std::vector<std::string> columns);

    /** Begin a new (empty) row. */
    void startRow();

    /** Append a string cell to the current row. */
    void addCell(std::string value);

    /** Append a numeric cell with the given decimal places. */
    void addNumber(double value, int decimals = 3);

    /** Append an integer cell. */
    void addInteger(long long value);

    /** Append a percentage cell, e.g. 0.123 -> "12.3%". */
    void addPercent(double fraction, int decimals = 1);

    /** Number of complete data rows. */
    std::size_t rowCount() const { return rows.size(); }

    /** Number of columns. */
    std::size_t columnCount() const { return headers.size(); }

    /** Read a cell back (row-major), for tests and post-processing. */
    const std::string& cell(std::size_t row, std::size_t col) const;

    /** Read a column header back. */
    const std::string& header(std::size_t col) const
    {
        return headers.at(col);
    }

    /** The caption supplied at construction. */
    const std::string& caption() const { return title; }

    /** Render the table with aligned columns and a rule under headers. */
    void print(std::ostream& os) const;

    /** Render the table as CSV (header row first). */
    void printCsv(std::ostream& os) const;

  private:
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;

    void ensureOpenRow();
};

} // namespace xbsp

#endif // XBSP_UTIL_TABLE_HH
