#include "util/threadpool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "util/logging.hh"

namespace xbsp
{

namespace
{

/** The pool (if any) the calling thread is a worker of. */
thread_local const ThreadPool* tlsWorkerPool = nullptr;

/** 1-based index within that pool (0 on non-worker threads). */
thread_local unsigned tlsWorkerIndex = 0;

/** Upper bound on worker counts; protects against absurd --jobs. */
constexpr unsigned maxJobs = 512;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads <= 1)
        return; // inline-only pool: no workers, no queue traffic
    threads = std::min(threads, maxJobs);
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this, i]() { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread& worker : workers)
        worker.join();
}

bool
ThreadPool::onWorkerThread() const
{
    return tlsWorkerPool == this;
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    // Inline execution when queueing could not help: no workers, or
    // the caller already occupies a worker slot (queuing + blocking
    // from a worker can exhaust the pool and deadlock).
    if (workers.empty() || onWorkerThread()) {
        fn();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping)
            panic("ThreadPool::submit after shutdown began");
        queue.push_back(std::move(fn));
    }
    wake.notify_one();
}

unsigned
currentWorkerId()
{
    return tlsWorkerIndex;
}

void
ThreadPool::workerLoop(unsigned index)
{
    tlsWorkerPool = this;
    tlsWorkerIndex = index;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wake.wait(lock,
                      [this]() { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task(); // packaged_task: exceptions land in the future
    }
}

std::size_t
parallelChunkCount(std::size_t n)
{
    // A pure function of n so that chunk-ordered reductions are
    // bit-identical regardless of how many workers execute them.
    return std::min<std::size_t>(n, 64);
}

void
parallelChunks(ThreadPool& pool, std::size_t n,
               const std::function<void(std::size_t, std::size_t,
                                        std::size_t)>& fn)
{
    const std::size_t chunks = parallelChunkCount(n);
    if (chunks == 0)
        return;

    std::vector<std::exception_ptr> errors(chunks);
    auto runChunk = [&](std::size_t c) {
        const std::size_t begin = c * n / chunks;
        const std::size_t end = (c + 1) * n / chunks;
        try {
            fn(begin, end, c);
        } catch (...) {
            errors[c] = std::current_exception();
        }
    };

    if (chunks == 1 || pool.size() == 0 || pool.onWorkerThread()) {
        for (std::size_t c = 0; c < chunks; ++c)
            runChunk(c);
    } else {
        std::vector<std::future<void>> futures;
        futures.reserve(chunks);
        for (std::size_t c = 0; c < chunks; ++c)
            futures.push_back(pool.submit([&runChunk, c]() {
                runChunk(c);
            }));
        for (std::future<void>& future : futures)
            future.wait();
    }

    for (std::exception_ptr& err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
}

namespace
{

std::mutex globalPoolMutex;
std::unique_ptr<ThreadPool> globalPoolInstance;
u64 requestedJobs = 0;    ///< 0 = automatic
unsigned builtJobs = 0;   ///< job count the live pool was built with

unsigned
autoJobs()
{
    if (const char* env = std::getenv("XBSP_JOBS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(
                std::min<unsigned long>(v, maxJobs));
        // autoJobs() is consulted by several entry points; nag once.
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("ignoring invalid XBSP_JOBS value '{}'", env);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

unsigned
configuredJobs()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    return requestedJobs
               ? static_cast<unsigned>(std::min<u64>(requestedJobs,
                                                     maxJobs))
               : autoJobs();
}

ThreadPool&
globalPool()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (!globalPoolInstance) {
        builtJobs = requestedJobs
                        ? static_cast<unsigned>(
                              std::min<u64>(requestedJobs, maxJobs))
                        : autoJobs();
        globalPoolInstance = std::make_unique<ThreadPool>(builtJobs);
    }
    return *globalPoolInstance;
}

void
setGlobalJobs(u64 jobs)
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    requestedJobs = jobs;
    const unsigned target = jobs ? static_cast<unsigned>(
                                       std::min<u64>(jobs, maxJobs))
                                 : autoJobs();
    if (globalPoolInstance && builtJobs == target)
        return;
    globalPoolInstance.reset();
    builtJobs = target;
    globalPoolInstance = std::make_unique<ThreadPool>(target);
}

} // namespace xbsp
