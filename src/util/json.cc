#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace xbsp
{

JsonWriter::JsonWriter(std::ostream& stream, int indent)
    : os(stream), indentWidth(indent)
{
}

JsonWriter::~JsonWriter()
{
    // A half-open document is a caller bug; surface it loudly rather
    // than writing syntactically broken JSON.
    if (!stack.empty() || keyPending)
        panic("JsonWriter destroyed with {} open container(s)",
              stack.size());
}

void
JsonWriter::writeIndent()
{
    os << '\n';
    for (std::size_t i = 0; i < stack.size() * indentWidth; ++i)
        os << ' ';
}

void
JsonWriter::beforeItem()
{
    if (keyPending)
        return; // the key already placed us after "name: "
    if (stack.empty())
        return; // top-level value
    if (!stack.back().empty)
        os << ',';
    stack.back().empty = false;
    writeIndent();
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeItem();
    keyPending = false;
    os << '{';
    stack.push_back({false, true});
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    if (stack.empty() || stack.back().array)
        panic("JsonWriter::endObject without matching beginObject");
    const bool wasEmpty = stack.back().empty;
    stack.pop_back();
    if (!wasEmpty)
        writeIndent();
    os << '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeItem();
    keyPending = false;
    os << '[';
    stack.push_back({true, true});
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    if (stack.empty() || !stack.back().array)
        panic("JsonWriter::endArray without matching beginArray");
    const bool wasEmpty = stack.back().empty;
    stack.pop_back();
    if (!wasEmpty)
        writeIndent();
    os << ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view name)
{
    if (stack.empty() || stack.back().array)
        panic("JsonWriter::key outside an object");
    if (keyPending)
        panic("JsonWriter::key '{}' while a key awaits its value",
              name);
    beforeItem();
    os << '"' << escape(name) << "\": ";
    keyPending = true;
    return *this;
}

void
JsonWriter::scalar(std::string_view rendered)
{
    beforeItem();
    keyPending = false;
    os << rendered;
}

JsonWriter&
JsonWriter::value(std::string_view text)
{
    beforeItem();
    keyPending = false;
    os << '"' << escape(text) << '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string_view(text));
}

JsonWriter&
JsonWriter::value(bool flag)
{
    scalar(flag ? "true" : "false");
    return *this;
}

JsonWriter&
JsonWriter::intValue(long long number)
{
    scalar(std::to_string(number));
    return *this;
}

JsonWriter&
JsonWriter::uintValue(unsigned long long number)
{
    scalar(std::to_string(number));
    return *this;
}

JsonWriter&
JsonWriter::value(double number, int decimals)
{
    if (!std::isfinite(number))
        return null();
    char buf[64];
    if (decimals >= 0)
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, number);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", number);
    scalar(buf);
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    scalar("null");
    return *this;
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace xbsp
