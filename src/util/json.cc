#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace xbsp
{

JsonWriter::JsonWriter(std::ostream& stream, int indent)
    : os(stream), indentWidth(indent)
{
}

JsonWriter::~JsonWriter()
{
    // A half-open document is a caller bug; surface it loudly rather
    // than writing syntactically broken JSON.
    if (!stack.empty() || keyPending)
        panic("JsonWriter destroyed with {} open container(s)",
              stack.size());
}

void
JsonWriter::writeIndent()
{
    os << '\n';
    for (std::size_t i = 0; i < stack.size() * indentWidth; ++i)
        os << ' ';
}

void
JsonWriter::beforeItem()
{
    if (keyPending)
        return; // the key already placed us after "name: "
    if (stack.empty())
        return; // top-level value
    if (!stack.back().empty)
        os << ',';
    stack.back().empty = false;
    writeIndent();
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeItem();
    keyPending = false;
    os << '{';
    stack.push_back({false, true});
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    if (stack.empty() || stack.back().array)
        panic("JsonWriter::endObject without matching beginObject");
    const bool wasEmpty = stack.back().empty;
    stack.pop_back();
    if (!wasEmpty)
        writeIndent();
    os << '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeItem();
    keyPending = false;
    os << '[';
    stack.push_back({true, true});
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    if (stack.empty() || !stack.back().array)
        panic("JsonWriter::endArray without matching beginArray");
    const bool wasEmpty = stack.back().empty;
    stack.pop_back();
    if (!wasEmpty)
        writeIndent();
    os << ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view name)
{
    if (stack.empty() || stack.back().array)
        panic("JsonWriter::key outside an object");
    if (keyPending)
        panic("JsonWriter::key '{}' while a key awaits its value",
              name);
    beforeItem();
    os << '"' << escape(name) << "\": ";
    keyPending = true;
    return *this;
}

void
JsonWriter::scalar(std::string_view rendered)
{
    beforeItem();
    keyPending = false;
    os << rendered;
}

JsonWriter&
JsonWriter::value(std::string_view text)
{
    beforeItem();
    keyPending = false;
    os << '"' << escape(text) << '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string_view(text));
}

JsonWriter&
JsonWriter::value(bool flag)
{
    scalar(flag ? "true" : "false");
    return *this;
}

JsonWriter&
JsonWriter::intValue(long long number)
{
    scalar(std::to_string(number));
    return *this;
}

JsonWriter&
JsonWriter::uintValue(unsigned long long number)
{
    scalar(std::to_string(number));
    return *this;
}

JsonWriter&
JsonWriter::value(double number, int decimals)
{
    if (!std::isfinite(number))
        return null();
    char buf[64];
    if (decimals >= 0)
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, number);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", number);
    scalar(buf);
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    scalar("null");
    return *this;
}

namespace
{

void
appendUnicodeEscape(std::string& out, unsigned codepoint)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\u%04x", codepoint);
    out += buf;
}

} // namespace

std::string
JsonWriter::escape(std::string_view text)
{
    // Beyond the mandatory JSON escapes, the string is scanned as
    // UTF-8: encoded surrogate code points (which real UTF-8 forbids
    // but sloppy producers emit) become \uXXXX escapes and invalid
    // bytes become U+FFFD, so the emitted document is always valid
    // UTF-8 *and* valid JSON no matter what the key or name held.
    std::string out;
    out.reserve(text.size());
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(text.data());
    const std::size_t n = text.size();
    auto continuation = [&](std::size_t i) {
        return i < n && (bytes[i] & 0xc0) == 0x80;
    };
    for (std::size_t i = 0; i < n;) {
        const unsigned char c = bytes[i];
        if (c < 0x80) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\b':
                out += "\\b";
                break;
              case '\f':
                out += "\\f";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\r':
                out += "\\r";
                break;
              case '\t':
                out += "\\t";
                break;
              default:
                if (c < 0x20)
                    appendUnicodeEscape(out, c);
                else
                    out += static_cast<char>(c);
            }
            ++i;
            continue;
        }
        if (c >= 0xc2 && c <= 0xdf && continuation(i + 1)) {
            out.append(text, i, 2);
            i += 2;
            continue;
        }
        if (c >= 0xe0 && c <= 0xef && continuation(i + 1) &&
            continuation(i + 2)) {
            const unsigned codepoint =
                (static_cast<unsigned>(c & 0x0f) << 12) |
                (static_cast<unsigned>(bytes[i + 1] & 0x3f) << 6) |
                static_cast<unsigned>(bytes[i + 2] & 0x3f);
            if (codepoint < 0x800) {           // overlong
                appendUnicodeEscape(out, 0xfffd);
            } else if (codepoint >= 0xd800 && codepoint <= 0xdfff) {
                // Encoded (lone) surrogate: escape rather than emit
                // bytes no UTF-8 validator accepts.
                appendUnicodeEscape(out, codepoint);
            } else {
                out.append(text, i, 3);
            }
            i += 3;
            continue;
        }
        if (c >= 0xf0 && c <= 0xf4 && continuation(i + 1) &&
            continuation(i + 2) && continuation(i + 3)) {
            const unsigned codepoint =
                (static_cast<unsigned>(c & 0x07) << 18) |
                (static_cast<unsigned>(bytes[i + 1] & 0x3f) << 12) |
                (static_cast<unsigned>(bytes[i + 2] & 0x3f) << 6) |
                static_cast<unsigned>(bytes[i + 3] & 0x3f);
            if (codepoint < 0x10000 || codepoint > 0x10ffff)
                appendUnicodeEscape(out, 0xfffd);  // overlong/range
            else
                out.append(text, i, 4);
            i += 4;
            continue;
        }
        // Stray continuation byte, truncated sequence or 0xf5..0xff.
        appendUnicodeEscape(out, 0xfffd);
        ++i;
    }
    return out;
}

} // namespace xbsp
