#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/format.hh"
#include "util/logging.hh"

namespace xbsp
{

JsonWriter::JsonWriter(std::ostream& stream, int indent)
    : os(stream), indentWidth(indent)
{
}

JsonWriter::~JsonWriter()
{
    // A half-open document is a caller bug; surface it loudly rather
    // than writing syntactically broken JSON.
    if (!stack.empty() || keyPending)
        panic("JsonWriter destroyed with {} open container(s)",
              stack.size());
}

void
JsonWriter::writeIndent()
{
    os << '\n';
    for (std::size_t i = 0; i < stack.size() * indentWidth; ++i)
        os << ' ';
}

void
JsonWriter::beforeItem()
{
    if (keyPending)
        return; // the key already placed us after "name: "
    if (stack.empty())
        return; // top-level value
    if (!stack.back().empty)
        os << ',';
    stack.back().empty = false;
    writeIndent();
}

JsonWriter&
JsonWriter::beginObject()
{
    beforeItem();
    keyPending = false;
    os << '{';
    stack.push_back({false, true});
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    if (stack.empty() || stack.back().array)
        panic("JsonWriter::endObject without matching beginObject");
    const bool wasEmpty = stack.back().empty;
    stack.pop_back();
    if (!wasEmpty)
        writeIndent();
    os << '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    beforeItem();
    keyPending = false;
    os << '[';
    stack.push_back({true, true});
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    if (stack.empty() || !stack.back().array)
        panic("JsonWriter::endArray without matching beginArray");
    const bool wasEmpty = stack.back().empty;
    stack.pop_back();
    if (!wasEmpty)
        writeIndent();
    os << ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view name)
{
    if (stack.empty() || stack.back().array)
        panic("JsonWriter::key outside an object");
    if (keyPending)
        panic("JsonWriter::key '{}' while a key awaits its value",
              name);
    beforeItem();
    os << '"' << escape(name) << "\": ";
    keyPending = true;
    return *this;
}

void
JsonWriter::scalar(std::string_view rendered)
{
    beforeItem();
    keyPending = false;
    os << rendered;
}

JsonWriter&
JsonWriter::value(std::string_view text)
{
    beforeItem();
    keyPending = false;
    os << '"' << escape(text) << '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string_view(text));
}

JsonWriter&
JsonWriter::value(bool flag)
{
    scalar(flag ? "true" : "false");
    return *this;
}

JsonWriter&
JsonWriter::intValue(long long number)
{
    scalar(std::to_string(number));
    return *this;
}

JsonWriter&
JsonWriter::uintValue(unsigned long long number)
{
    scalar(std::to_string(number));
    return *this;
}

JsonWriter&
JsonWriter::value(double number, int decimals)
{
    if (!std::isfinite(number))
        return null();
    char buf[64];
    if (decimals >= 0)
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, number);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", number);
    scalar(buf);
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    scalar("null");
    return *this;
}

namespace
{

void
appendUnicodeEscape(std::string& out, unsigned codepoint)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\u%04x", codepoint);
    out += buf;
}

} // namespace

std::string
JsonWriter::escape(std::string_view text)
{
    // Beyond the mandatory JSON escapes, the string is scanned as
    // UTF-8: encoded surrogate code points (which real UTF-8 forbids
    // but sloppy producers emit) become \uXXXX escapes and invalid
    // bytes become U+FFFD, so the emitted document is always valid
    // UTF-8 *and* valid JSON no matter what the key or name held.
    std::string out;
    out.reserve(text.size());
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(text.data());
    const std::size_t n = text.size();
    auto continuation = [&](std::size_t i) {
        return i < n && (bytes[i] & 0xc0) == 0x80;
    };
    for (std::size_t i = 0; i < n;) {
        const unsigned char c = bytes[i];
        if (c < 0x80) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\b':
                out += "\\b";
                break;
              case '\f':
                out += "\\f";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\r':
                out += "\\r";
                break;
              case '\t':
                out += "\\t";
                break;
              default:
                if (c < 0x20)
                    appendUnicodeEscape(out, c);
                else
                    out += static_cast<char>(c);
            }
            ++i;
            continue;
        }
        if (c >= 0xc2 && c <= 0xdf && continuation(i + 1)) {
            out.append(text, i, 2);
            i += 2;
            continue;
        }
        if (c >= 0xe0 && c <= 0xef && continuation(i + 1) &&
            continuation(i + 2)) {
            const unsigned codepoint =
                (static_cast<unsigned>(c & 0x0f) << 12) |
                (static_cast<unsigned>(bytes[i + 1] & 0x3f) << 6) |
                static_cast<unsigned>(bytes[i + 2] & 0x3f);
            if (codepoint < 0x800) {           // overlong
                appendUnicodeEscape(out, 0xfffd);
            } else if (codepoint >= 0xd800 && codepoint <= 0xdfff) {
                // Encoded (lone) surrogate: escape rather than emit
                // bytes no UTF-8 validator accepts.
                appendUnicodeEscape(out, codepoint);
            } else {
                out.append(text, i, 3);
            }
            i += 3;
            continue;
        }
        if (c >= 0xf0 && c <= 0xf4 && continuation(i + 1) &&
            continuation(i + 2) && continuation(i + 3)) {
            const unsigned codepoint =
                (static_cast<unsigned>(c & 0x07) << 18) |
                (static_cast<unsigned>(bytes[i + 1] & 0x3f) << 12) |
                (static_cast<unsigned>(bytes[i + 2] & 0x3f) << 6) |
                static_cast<unsigned>(bytes[i + 3] & 0x3f);
            if (codepoint < 0x10000 || codepoint > 0x10ffff)
                appendUnicodeEscape(out, 0xfffd);  // overlong/range
            else
                out.append(text, i, 4);
            i += 4;
            continue;
        }
        // Stray continuation byte, truncated sequence or 0xf5..0xff.
        appendUnicodeEscape(out, 0xfffd);
        ++i;
    }
    return out;
}

bool
JsonValue::asBool() const
{
    if (what != Kind::Bool)
        throw JsonParseError("JSON value is not a boolean");
    return boolean;
}

double
JsonValue::asNumber() const
{
    if (what != Kind::Number)
        throw JsonParseError("JSON value is not a number");
    return number;
}

u64
JsonValue::asU64() const
{
    const double n = asNumber();
    if (n < 0.0 || n != std::floor(n))
        throw JsonParseError("JSON number is not a non-negative "
                             "integer");
    return static_cast<u64>(n);
}

const std::string&
JsonValue::asString() const
{
    if (what != Kind::String)
        throw JsonParseError("JSON value is not a string");
    return text;
}

const std::vector<JsonValue>&
JsonValue::items() const
{
    if (what != Kind::Array)
        throw JsonParseError("JSON value is not an array");
    return array;
}

const std::vector<JsonValue::Member>&
JsonValue::members() const
{
    if (what != Kind::Object)
        throw JsonParseError("JSON value is not an object");
    return object;
}

const JsonValue*
JsonValue::find(std::string_view key) const
{
    if (what != Kind::Object)
        return nullptr;
    for (const Member& member : object) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const JsonValue&
JsonValue::at(std::string_view key) const
{
    const JsonValue* value = find(key);
    if (!value)
        throw JsonParseError(format("JSON object has no member '{}'",
                                    std::string(key)));
    return *value;
}

const JsonValue&
JsonValue::at(std::size_t index) const
{
    const std::vector<JsonValue>& elems = items();
    if (index >= elems.size())
        throw JsonParseError(format("JSON array index {} out of "
                                    "range ({} elements)", index,
                                    elems.size()));
    return elems[index];
}

std::size_t
JsonValue::size() const
{
    switch (what) {
      case Kind::Array:
        return array.size();
      case Kind::Object:
        return object.size();
      default:
        throw JsonParseError("JSON value is not a container");
    }
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view input) : text(input) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters after the document");
        return value;
    }

  private:
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;

    /** Containers deeper than this reject the document (stack). */
    static constexpr int maxDepth = 256;

    [[noreturn]] void
    fail(const std::string& why) const
    {
        throw JsonParseError(
            format("JSON parse error at offset {}: {}", pos, why));
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(format("expected '{}'", c));
        ++pos;
    }

    bool
    consumeLiteral(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue value;
            value.what = JsonValue::Kind::String;
            value.text = parseString();
            return value;
          }
          case 't':
          case 'f': {
            JsonValue value;
            value.what = JsonValue::Kind::Bool;
            if (consumeLiteral("true"))
                value.boolean = true;
            else if (consumeLiteral("false"))
                value.boolean = false;
            else
                fail("bad literal");
            return value;
          }
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return {};
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        if (++depth > maxDepth)
            fail("containers nested too deeply");
        expect('{');
        JsonValue value;
        value.what = JsonValue::Kind::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos;
            --depth;
            return value;
        }
        while (true) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            value.object.emplace_back(std::move(key), parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            --depth;
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        if (++depth > maxDepth)
            fail("containers nested too deeply");
        expect('[');
        JsonValue value;
        value.what = JsonValue::Kind::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos;
            --depth;
            return value;
        }
        while (true) {
            value.array.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            --depth;
            return value;
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a value");
        const std::string lexeme(text.substr(start, pos - start));
        char* end = nullptr;
        const double parsed = std::strtod(lexeme.c_str(), &end);
        if (end != lexeme.c_str() + lexeme.size())
            fail(format("bad number '{}'", lexeme));
        JsonValue value;
        value.what = JsonValue::Kind::Number;
        value.number = parsed;
        return value;
    }

    unsigned
    parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape");
            ++pos;
        }
        return code;
    }

    void
    appendUtf8(std::string& out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            switch (peek()) {
              case '"':
                out += '"';
                ++pos;
                break;
              case '\\':
                out += '\\';
                ++pos;
                break;
              case '/':
                out += '/';
                ++pos;
                break;
              case 'b':
                out += '\b';
                ++pos;
                break;
              case 'f':
                out += '\f';
                ++pos;
                break;
              case 'n':
                out += '\n';
                ++pos;
                break;
              case 'r':
                out += '\r';
                ++pos;
                break;
              case 't':
                out += '\t';
                ++pos;
                break;
              case 'u': {
                ++pos;
                unsigned code = parseHex4();
                // Surrogate pair: combine; a lone surrogate is kept
                // as-is (our own writer emits them for robustness).
                if (code >= 0xd800 && code <= 0xdbff &&
                    pos + 1 < text.size() && text[pos] == '\\' &&
                    text[pos + 1] == 'u') {
                    const std::size_t save = pos;
                    pos += 2;
                    const unsigned low = parseHex4();
                    if (low >= 0xdc00 && low <= 0xdfff) {
                        code = 0x10000 + ((code - 0xd800) << 10) +
                               (low - 0xdc00);
                    } else {
                        pos = save;  // not a pair; emit high alone
                    }
                }
                appendUtf8(out, code);
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }
};

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parseDocument();
}

JsonValue
parseJsonFile(const std::string& path)
{
    std::ifstream is(path);
    if (!is)
        throw JsonParseError(format("cannot open '{}'", path));
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return parseJson(buffer.str());
}

void
writeJsonValue(JsonWriter& w, const JsonValue& value)
{
    switch (value.kind()) {
      case JsonValue::Kind::Null:
        w.null();
        break;
      case JsonValue::Kind::Bool:
        w.value(value.asBool());
        break;
      case JsonValue::Kind::Number: {
        // Integral doubles render through the integer path: every
        // integer this repo emits fits the 53-bit mantissa, and
        // "%.17g" would be a lossy-looking way to print them.
        const double n = value.asNumber();
        if (n == std::floor(n) && std::abs(n) <= 9.007199254740992e15) {
            if (n < 0)
                w.value(static_cast<long long>(n));
            else
                w.value(static_cast<unsigned long long>(n));
        } else {
            w.value(n);
        }
        break;
      }
      case JsonValue::Kind::String:
        w.value(value.asString());
        break;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue& item : value.items())
            writeJsonValue(w, item);
        w.endArray();
        break;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto& [name, member] : value.members()) {
            w.key(name);
            writeJsonValue(w, member);
        }
        w.endObject();
        break;
    }
}

} // namespace xbsp
