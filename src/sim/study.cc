#include "sim/study.hh"

#include <utility>

#include "obs/trace.hh"
#include "pipeline/taskgraph.hh"
#include "sim/stages.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"

namespace xbsp::sim
{

std::string
methodName(Method method)
{
    return method == Method::PerBinaryFli ? "fli" : "vli";
}

CrossBinaryStudy
CrossBinaryStudy::run(const ir::Program& program,
                      const StudyConfig& config)
{
    // Every stage (see sim/stages.hh) is memoized through
    // store::ArtifactStore::global(), keyed by the exact hash of its
    // inputs.  A warm run therefore reads every artifact from disk
    // and reassembles this struct bit-identically — the study itself
    // needs no cache logic of its own, and cached stages resolve
    // their graph nodes without occupying a worker slot.
    StudyBuild build(program, config);
    pipeline::TaskGraph graph;
    appendStudyGraph(graph, build);
    graph.setManifestInfo(format("study.{}", program.name),
                          studyConfigDigest(program.name, config));
    graph.run(globalPool());
    return build.takeStudy();
}

CrossBinaryStudy
CrossBinaryStudy::runBarrier(const ir::Program& program,
                             const StudyConfig& config)
{
    // The pre-graph orchestration shape: the same stage functions,
    // with a full barrier after each parallel step.  The per-stage
    // data flow is identical, so results match run() field for field.
    obs::TraceSpan span(format("study {} (barrier)", program.name),
                       "study");
    StudyBuild build(program, config);
    ThreadPool& pool = globalPool();
    build.compile();
    parallelFor(pool, build.binaryCount(),
                [&build](std::size_t b) { build.profile(b); });
    build.match();
    build.vliCluster();
    parallelFor(pool, build.binaryCount(),
                [&build](std::size_t b) { build.binary(b); });
    build.finish();
    return build.takeStudy();
}

double
CrossBinaryStudy::avgSimPointCount(Method method) const
{
    std::vector<double> counts;
    for (const BinaryStudy& bs : studies) {
        if (method == Method::PerBinaryFli)
            counts.push_back(
                static_cast<double>(bs.fliClustering.phases.size()));
        else
            counts.push_back(
                static_cast<double>(vliCluster.phases.size()));
    }
    return mean(counts);
}

double
CrossBinaryStudy::avgIntervalSize(Method method) const
{
    std::vector<double> sizes;
    for (const BinaryStudy& bs : studies) {
        if (method == Method::PerBinaryFli) {
            sizes.push_back(static_cast<double>(bs.totalInstrs) /
                            static_cast<double>(bs.fliIntervalCount));
        } else {
            sizes.push_back(bs.avgVliIntervalSize);
        }
    }
    return mean(sizes);
}

double
CrossBinaryStudy::avgCpiError(Method method) const
{
    std::vector<double> errors;
    for (const BinaryStudy& bs : studies) {
        const BinaryEstimate& est = method == Method::PerBinaryFli
                                        ? bs.fliEstimate
                                        : bs.vliEstimate;
        errors.push_back(est.cpiError);
    }
    return mean(errors);
}

const BinaryEstimate&
CrossBinaryStudy::estimateOf(Method method, std::size_t idx) const
{
    if (idx >= studies.size())
        fatal("study '{}': binary index {} out of range (study has "
              "{} binaries)", name, idx, studies.size());
    return method == Method::PerBinaryFli ? studies[idx].fliEstimate
                                          : studies[idx].vliEstimate;
}

double
CrossBinaryStudy::trueSpeedup(std::size_t a, std::size_t b) const
{
    return speedup(estimateOf(Method::PerBinaryFli, a).trueCycles,
                   estimateOf(Method::PerBinaryFli, b).trueCycles);
}

double
CrossBinaryStudy::estimatedSpeedup(Method method, std::size_t a,
                                   std::size_t b) const
{
    return speedup(estimateOf(method, a).estCycles,
                   estimateOf(method, b).estCycles);
}

double
CrossBinaryStudy::speedupError(Method method, std::size_t a,
                               std::size_t b) const
{
    const BinaryEstimate& estA = estimateOf(method, a);
    const BinaryEstimate& estB = estimateOf(method, b);
    return sim::speedupError(estA.trueCycles, estB.trueCycles,
                             estA.estCycles, estB.estCycles);
}

namespace
{

void
checkPairTargets(std::size_t binaryCount)
{
    if (binaryCount < 4)
        fatal("speedup pairs index the four standard binaries "
              "(0=32u, 1=32o, 2=64u, 3=64o) but only {} are "
              "available", binaryCount);
}

} // namespace

std::vector<SpeedupPair>
samePlatformPairs(std::size_t binaryCount)
{
    checkPairTargets(binaryCount);
    return {{0, 1, "32u32o"}, {2, 3, "64u64o"}};
}

std::vector<SpeedupPair>
crossPlatformPairs(std::size_t binaryCount)
{
    checkPairTargets(binaryCount);
    return {{0, 2, "32u64u"}, {1, 3, "32o64o"}};
}

DetailedRunRequest
makeRunRequest(const StudyConfig& config)
{
    DetailedRunRequest request;
    request.memory = config.memory;
    request.core = config.core;
    request.seed = config.engineSeed;
    return request;
}

} // namespace xbsp::sim
