#include "sim/study.hh"

#include <utility>

#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"

namespace xbsp::sim
{

std::string
methodName(Method method)
{
    return method == Method::PerBinaryFli ? "fli" : "vli";
}

CrossBinaryStudy
CrossBinaryStudy::run(const ir::Program& program,
                      const StudyConfig& config)
{
    // Every stage called below (compileAllTargets, runProfilePass,
    // buildVliPartition, pickSimulationPoints, runDetailed) is
    // memoized through store::ArtifactStore::global(), keyed by the
    // exact hash of its inputs.  A warm run therefore reads every
    // artifact from disk and reassembles this struct bit-identically
    // — the study itself needs no cache logic of its own.
    CrossBinaryStudy study;
    study.cfg = config;
    study.name = program.name;

    obs::TraceSpan studySpan(format("study {}", program.name),
                             "study");
    obs::Progress& progress = obs::Progress::global();
    obs::StatRegistry::global().counter("study.runs").add();

    // 1. Compile the four standard binaries.
    {
        obs::TraceSpan span(format("compile {}", program.name),
                            "study");
        study.bins =
            compile::compileAllTargets(program, config.compileOptions);
    }
    if (config.primaryIdx >= study.bins.size())
        fatal("primary binary index {} out of range",
              config.primaryIdx);

    // Step layout for --progress: compile, one profile pass per
    // binary, the VLI build+cluster, one per-binary study step.
    progress.addSteps(2 + 2 * study.bins.size());
    progress.completeStep(format("study.{}.compile", program.name));

    ThreadPool& pool = globalPool();

    // 2. Profile pass per binary: marker counts + FLI BBVs.  Every
    // binary owns its own engine and per-block address-generator
    // seeds (derived from config.engineSeed and block ids only), so
    // the four passes are independent and their results do not depend
    // on execution order — running them in parallel is bit-identical
    // to the sequential loop.
    std::vector<prof::ProfilePass> passes(study.bins.size());
    parallelFor(pool, study.bins.size(), [&](std::size_t b) {
        passes[b] = prof::runProfilePass(
            study.bins[b], config.intervalTarget, config.engineSeed);
        progress.completeStep(
            format("study.{}.profile.{}", program.name,
                   study.bins[b].displayName()));
    });

    // 3. Match mappable points across all binaries.
    std::vector<const bin::Binary*> binPtrs;
    std::vector<const prof::MarkerProfile*> profPtrs;
    for (std::size_t b = 0; b < study.bins.size(); ++b) {
        binPtrs.push_back(&study.bins[b]);
        profPtrs.push_back(&passes[b].markers);
    }
    study.mappableSet = core::findMappablePoints(binPtrs, profPtrs);
    if (study.mappableSet.points.empty())
        fatal("program '{}': no mappable points found across the "
              "binaries; cross-binary SimPoint cannot proceed",
              program.name);

    // 4. Build VLIs on the primary and cluster them.
    {
        obs::TraceSpan span(format("cluster {}", program.name),
                            "study");
        core::VliBuild vliBuild = core::buildVliPartition(
            study.bins[config.primaryIdx], study.mappableSet,
            config.primaryIdx, config.intervalTarget,
            config.engineSeed);
        study.vliPartition = vliBuild.partition;
        study.vliCluster = sp::pickSimulationPoints(
            vliBuild.intervals, config.simpoint);
    }
    progress.completeStep(format("study.{}.cluster", program.name));

    // 5/6/7. Per-binary clustering, detailed run and estimates.
    // Each iteration touches only its own BinaryStudy slot and reads
    // shared state (bins, mappableSet, vliPartition, vliCluster)
    // const-only, so the binaries proceed in parallel while producing
    // results bit-identical to the sequential order.
    study.studies.resize(study.bins.size());
    parallelFor(pool, study.bins.size(), [&](std::size_t b) {
        obs::TraceSpan span(
            format("binary {} {}", program.name,
                   study.bins[b].displayName()),
            "study");
        // Every exit of this step (including the early no-detailed
        // return) counts it complete.
        struct StepDone
        {
            obs::Progress& progress;
            std::string label;
            ~StepDone() { progress.completeStep(label); }
        } stepDone{progress,
                   format("study.{}.binary.{}", program.name,
                          study.bins[b].displayName())};
        BinaryStudy& bs = study.studies[b];
        bs.target = study.bins[b].target;
        bs.totalInstrs = passes[b].totalInstructions;
        bs.fliIntervalCount = passes[b].fliIntervals.size();
        bs.fliClustering = sp::pickSimulationPoints(
            std::move(passes[b].fliIntervals), config.simpoint);
        // The profile pass is dead from here on: steal its buffers
        // rather than deep-copying them.
        bs.markers = std::move(passes[b].markers);
        bs.fliBoundaries = std::move(passes[b].fliBoundaries);

        if (!config.detailed) {
            // Interval sizes are still known without timing: compute
            // the mapped VLI sizes with a cheap (no-cache) run.
            exec::Engine engine(study.bins[b], config.engineSeed);
            std::vector<InstrCount> cuts;
            core::BoundaryTracker tracker(
                study.mappableSet, b, study.vliPartition,
                [&](std::size_t) {
                    cuts.push_back(engine.instructionsExecuted());
                });
            engine.addObserver(&tracker, {false, false, true});
            engine.run();
            if (!tracker.finished())
                panic("binary {}: VLI boundaries not all crossed",
                      study.bins[b].displayName());
            bs.avgVliIntervalSize =
                static_cast<double>(engine.instructionsExecuted()) /
                static_cast<double>(study.vliPartition.intervalCount());
            return;
        }

        DetailedRunRequest req;
        req.fliBoundaries = bs.fliBoundaries;
        req.mappable = &study.mappableSet;
        req.binaryIdx = b;
        req.partition = &study.vliPartition;
        req.memory = config.memory;
        req.seed = config.engineSeed;
        bs.detailedRun = runDetailed(study.bins[b], req);

        bs.fliEstimate = estimateSampled(bs.fliClustering,
                                         bs.detailedRun.fliIntervals);
        bs.vliEstimate = estimateSampled(study.vliCluster,
                                         bs.detailedRun.vliIntervals);
        bs.avgVliIntervalSize =
            static_cast<double>(bs.totalInstrs) /
            static_cast<double>(study.vliPartition.intervalCount());
    });
    return study;
}

double
CrossBinaryStudy::avgSimPointCount(Method method) const
{
    std::vector<double> counts;
    for (const BinaryStudy& bs : studies) {
        if (method == Method::PerBinaryFli)
            counts.push_back(
                static_cast<double>(bs.fliClustering.phases.size()));
        else
            counts.push_back(
                static_cast<double>(vliCluster.phases.size()));
    }
    return mean(counts);
}

double
CrossBinaryStudy::avgIntervalSize(Method method) const
{
    std::vector<double> sizes;
    for (const BinaryStudy& bs : studies) {
        if (method == Method::PerBinaryFli) {
            sizes.push_back(static_cast<double>(bs.totalInstrs) /
                            static_cast<double>(bs.fliIntervalCount));
        } else {
            sizes.push_back(bs.avgVliIntervalSize);
        }
    }
    return mean(sizes);
}

double
CrossBinaryStudy::avgCpiError(Method method) const
{
    std::vector<double> errors;
    for (const BinaryStudy& bs : studies) {
        const BinaryEstimate& est = method == Method::PerBinaryFli
                                        ? bs.fliEstimate
                                        : bs.vliEstimate;
        errors.push_back(est.cpiError);
    }
    return mean(errors);
}

const BinaryEstimate&
CrossBinaryStudy::estimateOf(Method method, std::size_t idx) const
{
    if (idx >= studies.size())
        panic("binary index {} out of range", idx);
    return method == Method::PerBinaryFli ? studies[idx].fliEstimate
                                          : studies[idx].vliEstimate;
}

double
CrossBinaryStudy::trueSpeedup(std::size_t a, std::size_t b) const
{
    return speedup(estimateOf(Method::PerBinaryFli, a).trueCycles,
                   estimateOf(Method::PerBinaryFli, b).trueCycles);
}

double
CrossBinaryStudy::estimatedSpeedup(Method method, std::size_t a,
                                   std::size_t b) const
{
    return speedup(estimateOf(method, a).estCycles,
                   estimateOf(method, b).estCycles);
}

double
CrossBinaryStudy::speedupError(Method method, std::size_t a,
                               std::size_t b) const
{
    const BinaryEstimate& estA = estimateOf(method, a);
    const BinaryEstimate& estB = estimateOf(method, b);
    return sim::speedupError(estA.trueCycles, estB.trueCycles,
                             estA.estCycles, estB.estCycles);
}

std::vector<SpeedupPair>
samePlatformPairs()
{
    return {{0, 1, "32u32o"}, {2, 3, "64u64o"}};
}

std::vector<SpeedupPair>
crossPlatformPairs()
{
    return {{0, 2, "32u64u"}, {1, 3, "32o64o"}};
}

} // namespace xbsp::sim
