#include "sim/region.hh"

#include "util/logging.hh"

namespace xbsp::sim
{

namespace
{

/**
 * Gate helper shared by both region flavours: records core counters
 * at region start/end and optionally flushes the hierarchy at start.
 */
struct RegionGate
{
    cpu::Core& core;
    cache::Hierarchy& hierarchy;
    RegionWarming warming;
    IntervalStats startSnap;
    IntervalStats endSnap;
    bool started = false;
    bool ended = false;

    void
    begin(const exec::Engine& engine)
    {
        if (started)
            panic("region started twice");
        started = true;
        if (warming == RegionWarming::Cold)
            hierarchy.flushAll();
        startSnap = IntervalStats{engine.instructionsExecuted(),
                                  core.cycles()};
    }

    void
    end(const exec::Engine& engine)
    {
        if (!started || ended)
            panic("region ended out of order");
        ended = true;
        endSnap = IntervalStats{engine.instructionsExecuted(),
                                core.cycles()};
    }

    IntervalStats
    stats() const
    {
        if (!started || !ended)
            panic("region never fully executed");
        return IntervalStats{endSnap.instrs - startSnap.instrs,
                             endSnap.cycles - startSnap.cycles};
    }
};

/** FLI gating observer: region = [bounds[i-1], bounds[i]). */
class FliRegionObserver : public exec::Observer
{
  public:
    FliRegionObserver(const exec::Engine& eng, RegionGate& g,
                      InstrCount startAt, InstrCount endAt)
        : engine(eng), gate(g), startInstr(startAt), endInstr(endAt)
    {
        if (startAt == 0)
            gate.begin(engine);
    }

    void
    onBlock(u32, u32) override
    {
        const InstrCount now = engine.instructionsExecuted();
        if (!gate.started && now >= startInstr)
            gate.begin(engine);
        if (gate.started && !gate.ended && now >= endInstr)
            gate.end(engine);
    }

    void
    onRunEnd() override
    {
        if (gate.started && !gate.ended)
            gate.end(engine);
    }

  private:
    const exec::Engine& engine;
    RegionGate& gate;
    InstrCount startInstr;
    InstrCount endInstr;
};

/** VLI gating observer driven by boundary events. */
class VliRegionObserver : public exec::Observer
{
  public:
    VliRegionObserver(const exec::Engine& eng, RegionGate& g,
                      const core::MappableSet& mappable,
                      std::size_t binaryIdx,
                      const core::VliPartition& partition,
                      std::size_t index)
        : engine(eng), gate(g), regionIdx(index),
          tracker(mappable, binaryIdx, partition,
                  [this](std::size_t boundary) {
                      if (boundary + 1 == regionIdx)
                          gate.begin(engine);
                      else if (boundary == regionIdx)
                          gate.end(engine);
                  })
    {
        if (regionIdx == 0)
            gate.begin(engine);
    }

    void
    onMarker(u32 markerId) override
    {
        tracker.onMarker(markerId);
    }

    void
    onRunEnd() override
    {
        if (gate.started && !gate.ended)
            gate.end(engine);
    }

  private:
    const exec::Engine& engine;
    RegionGate& gate;
    std::size_t regionIdx;
    core::BoundaryTracker tracker;
};

/**
 * Common machinery of both flavours: engine + hierarchy + the
 * backend request.core describes, with the core registered first
 * (snapshotting observers read fully updated counters) and
 * subscribed per its own hooks so marker-fed frontends see their
 * training events.
 */
struct RegionRun
{
    exec::Engine engine;
    cache::Hierarchy hierarchy;
    std::unique_ptr<cpu::Core> core;
    RegionGate gate;

    RegionRun(const bin::Binary& binary,
              const DetailedRunRequest& request, RegionWarming warming)
        : engine(binary, request.seed), hierarchy(request.memory),
          core(cpu::makeCore(request.core, hierarchy)),
          gate{*core, hierarchy, warming, {}, {}, false, false}
    {
        engine.addObserver(core.get(), core->hooks());
    }

    IntervalStats
    run(exec::Observer* observer, const exec::ObserverHooks& hooks)
    {
        engine.addObserver(observer, hooks);
        engine.run();
        core->flushStats();
        return gate.stats();
    }
};

} // namespace

IntervalStats
simulateFliRegion(const bin::Binary& binary,
                  const DetailedRunRequest& request, std::size_t index,
                  RegionWarming warming)
{
    const std::vector<InstrCount>& boundaries = request.fliBoundaries;
    if (index >= boundaries.size())
        fatal("FLI region index {} out of range ({} intervals)",
              index, boundaries.size());
    RegionRun run(binary, request, warming);
    const InstrCount startAt = index == 0 ? 0 : boundaries[index - 1];
    FliRegionObserver observer(run.engine, run.gate, startAt,
                               boundaries[index]);
    return run.run(&observer, {true, false, false});
}

IntervalStats
simulateVliRegion(const bin::Binary& binary,
                  const DetailedRunRequest& request, std::size_t index,
                  RegionWarming warming)
{
    if (request.partition == nullptr)
        fatal("VLI region simulation needs request.partition");
    if (index >= request.partition->intervalCount())
        fatal("VLI region index {} out of range ({} intervals)",
              index, request.partition->intervalCount());
    RegionRun run(binary, request, warming);
    VliRegionObserver observer(run.engine, run.gate, *request.mappable,
                               request.binaryIdx, *request.partition,
                               index);
    return run.run(&observer, {false, false, true});
}

} // namespace xbsp::sim
