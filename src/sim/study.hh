/**
 * @file
 * CrossBinaryStudy: the end-to-end pipeline of the paper for one
 * program.
 *
 *   1. compile the program for the four standard targets;
 *   2. profile each binary (marker counts + FLI basic-block vectors);
 *   3. match mappable points across all binaries (§3.2.1–3.2.2);
 *   4. build variable-length intervals on the primary binary
 *      (§3.2.3) and cluster them with SimPoint (§3.2.4–3.2.5);
 *   5. cluster each binary's own FLI vectors (the per-binary
 *      baseline, §2);
 *   6. run one detailed simulation per binary, collecting full-run
 *      truth plus per-interval statistics under both partitions;
 *   7. form sampled estimates with per-binary recalculated weights
 *      (§3.2.6) and expose the paper's error metrics.
 *
 * This is the primary public entry point of the library.
 */

#ifndef XBSP_SIM_STUDY_HH
#define XBSP_SIM_STUDY_HH

#include <string>
#include <vector>

#include "compile/compiler.hh"
#include "core/mappable.hh"
#include "core/vli.hh"
#include "ir/program.hh"
#include "profile/profile.hh"
#include "sim/detailed.hh"
#include "sim/estimate.hh"
#include "simpoint/simpoint.hh"

namespace xbsp::sim
{

/** Which sampling scheme an estimate came from. */
enum class Method
{
    PerBinaryFli,  ///< classic SimPoint run separately per binary
    MappableVli    ///< the paper's cross-binary simulation points
};

/** Short display name: "fli" / "vli". */
std::string methodName(Method method);

/** Everything configurable about a study. */
struct StudyConfig
{
    /** Desired interval size in (machine) instructions. */
    InstrCount intervalTarget = 500'000;

    /** SimPoint configuration, shared by both methods (§5.1). */
    sp::SimPointOptions simpoint;

    /** Which of the four binaries is the VLI primary (§3.2.4). */
    std::size_t primaryIdx = 0;

    /** Memory system (paper Table 1 by default). */
    cache::HierarchyConfig memory;

    /**
     * Timing backend (in-order by default).  A model knob like
     * `memory`: it parameterizes every detailed run, flows into the
     * detailed-run store key and the study config digest, and ships
     * inside StageTask over the dist wire.
     */
    cpu::CoreConfig core;

    /** Model-compiler pass toggles. */
    compile::CompileOptions compileOptions;

    /** Seed for the execution engines' address generators. */
    u64 engineSeed = 0x5EEDull;

    /** Run detailed (timing) simulation; figures 1–2 don't need it. */
    bool detailed = true;
};

/** Per-binary artifacts and results of a study. */
struct BinaryStudy
{
    bin::Target target;
    InstrCount totalInstrs = 0;

    /** Profile-pass outputs. */
    prof::MarkerProfile markers;
    std::vector<InstrCount> fliBoundaries;
    std::size_t fliIntervalCount = 0;

    /** Per-binary SimPoint clustering (on this binary's FLI BBVs). */
    sp::SimPointResult fliClustering;

    /** Detailed results (only when config.detailed). */
    DetailedRunResult detailedRun;
    BinaryEstimate fliEstimate;
    BinaryEstimate vliEstimate;

    /** Mean mapped-VLI interval size in this binary (instructions). */
    double avgVliIntervalSize = 0.0;
};

/** The full study result. */
class CrossBinaryStudy
{
  public:
    /**
     * Run the complete pipeline for one program, scheduled as a
     * pipeline::TaskGraph of stages on the global pool (see
     * sim/stages.hh).  Bit-identical at any --jobs count.
     */
    static CrossBinaryStudy run(const ir::Program& program,
                                const StudyConfig& config);

    /**
     * Run the same stages as run(), but with the pre-graph barrier
     * orchestration (parallelFor over profiles, then over binaries,
     * with full barriers between stages).  Produces field-identical
     * results; kept for the golden equivalence test and the
     * barrier-vs-graph wall-time benchmark.
     */
    static CrossBinaryStudy runBarrier(const ir::Program& program,
                                       const StudyConfig& config);

    const StudyConfig& config() const { return cfg; }
    const std::vector<bin::Binary>& binaries() const { return bins; }
    const core::MappableSet& mappable() const { return mappableSet; }
    const core::VliPartition& partition() const { return vliPartition; }
    const sp::SimPointResult& vliClustering() const { return vliCluster; }
    const std::vector<BinaryStudy>& perBinary() const { return studies; }
    const std::string& programName() const { return name; }

    /** Number of simulation points, averaged over binaries (Fig 1). */
    double avgSimPointCount(Method method) const;

    /** Mean interval size averaged over binaries (Fig 2). */
    double avgIntervalSize(Method method) const;

    /** Mean CPI error over the four binaries (Fig 3). */
    double avgCpiError(Method method) const;

    /** True speedup cyclesA / cyclesB from the full runs. */
    double trueSpeedup(std::size_t a, std::size_t b) const;

    /** Estimated speedup from sampled estimates of the method. */
    double estimatedSpeedup(Method method, std::size_t a,
                            std::size_t b) const;

    /** |(true - est) / true| speedup error (Figs 4, 5). */
    double speedupError(Method method, std::size_t a,
                        std::size_t b) const;

  private:
    friend class StudyBuild;  // assembles the fields stage by stage

    StudyConfig cfg;
    std::string name;
    std::vector<bin::Binary> bins;
    std::vector<BinaryStudy> studies;
    core::MappableSet mappableSet;
    core::VliPartition vliPartition;
    sp::SimPointResult vliCluster;

    const BinaryEstimate& estimateOf(Method method,
                                     std::size_t idx) const;
};

/**
 * The four speedup pair configurations of Figures 4 and 5, as
 * (indexA, indexB, label): 32u/32o and 64u/64o (same platform,
 * Fig 4), 32u/64u and 32o/64o (cross platform, Fig 5).  Indices
 * follow compileAllTargets order: 0=32u, 1=32o, 2=64u, 3=64o.
 */
struct SpeedupPair
{
    std::size_t a = 0;
    std::size_t b = 0;
    std::string label;
};

/**
 * The pairs assume the canonical four-binary layout; pass the actual
 * binary count of the study (or studies) the pairs will index into —
 * a count below four is a clear `fatal` here instead of an
 * out-of-range access later.
 */
std::vector<SpeedupPair> samePlatformPairs(std::size_t binaryCount = 4);
std::vector<SpeedupPair> crossPlatformPairs(std::size_t binaryCount = 4);

/**
 * The one place a DetailedRunRequest is derived from a StudyConfig:
 * memory, core and seed are copied here and nowhere else, so the
 * FLI, VLI and region-replay call sites cannot silently diverge.
 * Scheme fields (fliBoundaries / mappable / partition) start empty;
 * callers fill in the ones they need.
 */
DetailedRunRequest makeRunRequest(const StudyConfig& config);

} // namespace xbsp::sim

#endif // XBSP_SIM_STUDY_HH
