#include "sim/snapshots.hh"

#include "util/logging.hh"

namespace xbsp::sim
{

void
SnapshotSeries::snapshot(InstrCount instrs, Cycles cycles)
{
    if (finished)
        panic("SnapshotSeries::snapshot after finish");
    cuts.push_back(IntervalStats{instrs, cycles});
}

void
SnapshotSeries::finish(InstrCount instrs, Cycles cycles)
{
    if (finished)
        panic("SnapshotSeries::finish called twice");
    // Drop a final cut that coincides with the end of the run (an
    // interval boundary exactly at program end yields no interval).
    if (!cuts.empty() && cuts.back().instrs == instrs)
        cuts.pop_back();
    cuts.push_back(IntervalStats{instrs, cycles});
    finished = true;

    deltas.reserve(cuts.size());
    IntervalStats prev{};
    for (const IntervalStats& cut : cuts) {
        if (cut.instrs < prev.instrs || cut.cycles < prev.cycles)
            panic("snapshot series is not monotonic");
        deltas.push_back(IntervalStats{cut.instrs - prev.instrs,
                                       cut.cycles - prev.cycles});
        prev = cut;
    }
}

const std::vector<IntervalStats>&
SnapshotSeries::intervals() const
{
    if (!finished)
        panic("SnapshotSeries::intervals before finish");
    return deltas;
}

FliSnapshotter::FliSnapshotter(const exec::Engine& eng,
                               const cpu::Core& c,
                               std::vector<InstrCount> boundaries)
    : engine(eng), core(c), bounds(std::move(boundaries))
{
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        if (bounds[i] <= bounds[i - 1])
            fatal("FLI boundaries must be strictly increasing");
    }
}

void
FliSnapshotter::onBlock(u32 blockId, u32 instrs)
{
    (void)blockId;
    (void)instrs;
    const InstrCount now = engine.instructionsExecuted();
    while (next < bounds.size() && now >= bounds[next]) {
        if (now != bounds[next])
            panic("FLI boundary {} ({} instrs) missed; engine is at "
                  "{} — boundary list does not match this execution",
                  next, bounds[next], now);
        if (next + 1 < bounds.size())
            series.snapshot(now, core.cycles());
        ++next;
    }
}

void
FliSnapshotter::onRunEnd()
{
    if (next != bounds.size())
        panic("run ended with {} of {} FLI boundaries crossed", next,
              bounds.size());
    series.finish(engine.instructionsExecuted(), core.cycles());
}

VliSnapshotter::VliSnapshotter(const exec::Engine& eng,
                               const cpu::Core& c,
                               const core::MappableSet& mappable,
                               std::size_t binaryIdx,
                               const core::VliPartition& partition)
    : engine(eng), core(c),
      tracker(mappable, binaryIdx, partition,
              [this](std::size_t) {
                  series.snapshot(engine.instructionsExecuted(),
                                  core.cycles());
              })
{
}

void
VliSnapshotter::onMarker(u32 markerId)
{
    tracker.onMarker(markerId);
}

void
VliSnapshotter::onRunEnd()
{
    if (!tracker.finished())
        panic("run ended with {} VLI boundaries still pending",
              tracker.crossed());
    series.finish(engine.instructionsExecuted(), core.cycles());
}

const std::vector<IntervalStats>&
FliSnapshotter::intervals() const
{
    return series.intervals();
}

const std::vector<IntervalStats>&
VliSnapshotter::intervals() const
{
    return series.intervals();
}

} // namespace xbsp::sim
