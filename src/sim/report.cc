#include "sim/report.hh"

#include <iomanip>

namespace xbsp::sim
{

namespace
{

void
statLine(std::ostream& os, const std::string& name, double value,
         const std::string& desc)
{
    os << std::left << std::setw(44) << name << " " << std::setw(16)
       << std::setprecision(6) << value << " # " << desc << "\n";
}

void
statLine(std::ostream& os, const std::string& name, u64 value,
         const std::string& desc)
{
    os << std::left << std::setw(44) << name << " " << std::setw(16)
       << value << " # " << desc << "\n";
}

} // namespace

void
dumpRunStats(std::ostream& os, const std::string& prefix,
             const DetailedRunResult& result)
{
    statLine(os, prefix + ".sim_insts", result.totals.instructions,
             "instructions simulated");
    statLine(os, prefix + ".sim_cycles", result.totals.cycles,
             "cycles simulated");
    statLine(os, prefix + ".cpi", result.totals.cpi(),
             "cycles per instruction");
    statLine(os, prefix + ".mem.refs", result.memory.refs,
             "data references");
    statLine(os, prefix + ".mem.l1_hits", result.memory.l1Hits,
             "references serviced by L1D");
    statLine(os, prefix + ".mem.l2_hits", result.memory.l2Hits,
             "references serviced by L2D");
    statLine(os, prefix + ".mem.l3_hits", result.memory.l3Hits,
             "references serviced by L3D");
    statLine(os, prefix + ".mem.dram_accesses",
             result.memory.dramAccesses,
             "references serviced by DRAM");
    statLine(os, prefix + ".mem.dram_writebacks",
             result.memory.dramWritebacks, "dirty lines written back");
    statLine(os, prefix + ".mem.l1_miss_rate",
             result.memory.l1MissRate(), "L1D miss rate");
}

void
dumpStudyStats(std::ostream& os, const CrossBinaryStudy& study)
{
    os << "---------- study " << study.programName()
       << " ----------\n";
    statLine(os, "mappable.points",
             static_cast<u64>(study.mappable().points.size()),
             "markers mappable across all binaries");
    statLine(os, "mappable.rejected",
             static_cast<u64>(study.mappable().rejected.size()),
             "candidate keys rejected");
    statLine(os, "vli.intervals",
             static_cast<u64>(study.partition().intervalCount()),
             "mapped variable-length intervals");
    statLine(os, "vli.phases",
             static_cast<u64>(study.vliClustering().phases.size()),
             "phases chosen on the primary binary");

    for (const BinaryStudy& bs : study.perBinary()) {
        const std::string prefix =
            study.programName() + "." + bin::targetName(bs.target);
        dumpRunStats(os, prefix, bs.detailedRun);
        statLine(os, prefix + ".fli.est_cpi", bs.fliEstimate.estCpi,
                 "per-binary SimPoint CPI estimate");
        statLine(os, prefix + ".fli.cpi_error",
                 bs.fliEstimate.cpiError, "per-binary SimPoint error");
        statLine(os, prefix + ".vli.est_cpi", bs.vliEstimate.estCpi,
                 "mappable SimPoint CPI estimate");
        statLine(os, prefix + ".vli.cpi_error",
                 bs.vliEstimate.cpiError, "mappable SimPoint error");
    }

    auto pairs = samePlatformPairs();
    for (const auto& pair : crossPlatformPairs())
        pairs.push_back(pair);
    for (const auto& pair : pairs) {
        const std::string prefix =
            study.programName() + ".speedup." + pair.label;
        statLine(os, prefix + ".true",
                 study.trueSpeedup(pair.a, pair.b),
                 "cycles ratio from full simulation");
        statLine(os, prefix + ".fli_error",
                 study.speedupError(Method::PerBinaryFli, pair.a,
                                    pair.b),
                 "per-binary SimPoint speedup error");
        statLine(os, prefix + ".vli_error",
                 study.speedupError(Method::MappableVli, pair.a,
                                    pair.b),
                 "mappable SimPoint speedup error");
    }
}

} // namespace xbsp::sim
