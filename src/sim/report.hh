/**
 * @file
 * gem5-style statistics dump for detailed runs: a flat
 * "name value # description" listing that scripts can grep, matching
 * the conventions simulator users expect.
 */

#ifndef XBSP_SIM_REPORT_HH
#define XBSP_SIM_REPORT_HH

#include <ostream>
#include <string>

#include "sim/detailed.hh"
#include "sim/study.hh"

namespace xbsp::sim
{

/** Dump one detailed run's statistics under a `prefix.` namespace. */
void dumpRunStats(std::ostream& os, const std::string& prefix,
                  const DetailedRunResult& result);

/** Dump a whole study: per-binary truth, both estimates, speedups. */
void dumpStudyStats(std::ostream& os, const CrossBinaryStudy& study);

} // namespace xbsp::sim

#endif // XBSP_SIM_REPORT_HH
