/**
 * @file
 * Standalone simulation of a single sampling region, with a choice of
 * warm (functionally warmed caches, the default everywhere else) or
 * cold (caches flushed at region start) initial state.  Used by the
 * warming ablation bench and by integration tests that validate the
 * snapshot-gating fast path against an explicit region run.
 *
 * Both flavours consume the same DetailedRunRequest a full detailed
 * run does (build it with makeRunRequest so memory/core/seed cannot
 * diverge from the study configuration): simulateFliRegion reads
 * request.fliBoundaries, simulateVliRegion reads request.mappable /
 * binaryIdx / partition, and both build the timing backend that
 * request.core describes.
 */

#ifndef XBSP_SIM_REGION_HH
#define XBSP_SIM_REGION_HH

#include "cache/hierarchy.hh"
#include "core/vli.hh"
#include "sim/detailed.hh"
#include "sim/snapshots.hh"

namespace xbsp::sim
{

/** Initial cache state when the sampling region begins. */
enum class RegionWarming
{
    Warm,  ///< caches carry the state the fast-forward left behind
    Cold   ///< caches invalidated at region start
};

/**
 * Simulate interval `index` of the binary's FLI partition
 * (request.fliBoundaries: cumulative interval ends incl. final, from
 * the binary's profile pass; must be non-empty).
 */
IntervalStats simulateFliRegion(const bin::Binary& binary,
                                const DetailedRunRequest& request,
                                std::size_t index,
                                RegionWarming warming);

/**
 * Simulate interval `index` of the mapped VLI partition
 * (request.mappable / binaryIdx / partition; partition must be set).
 */
IntervalStats simulateVliRegion(const bin::Binary& binary,
                                const DetailedRunRequest& request,
                                std::size_t index,
                                RegionWarming warming);

} // namespace xbsp::sim

#endif // XBSP_SIM_REGION_HH
