/**
 * @file
 * Standalone simulation of a single sampling region, with a choice of
 * warm (functionally warmed caches, the default everywhere else) or
 * cold (caches flushed at region start) initial state.  Used by the
 * warming ablation bench and by integration tests that validate the
 * snapshot-gating fast path against an explicit region run.
 */

#ifndef XBSP_SIM_REGION_HH
#define XBSP_SIM_REGION_HH

#include "cache/hierarchy.hh"
#include "core/vli.hh"
#include "sim/snapshots.hh"

namespace xbsp::sim
{

/** Initial cache state when the sampling region begins. */
enum class RegionWarming
{
    Warm,  ///< caches carry the state the fast-forward left behind
    Cold   ///< caches invalidated at region start
};

/**
 * Simulate interval `index` of a binary's FLI partition.
 * `boundaries` are the cumulative interval ends (incl. final) from
 * the binary's profile pass.
 */
IntervalStats simulateFliRegion(const bin::Binary& binary,
                                const cache::HierarchyConfig& memory,
                                const std::vector<InstrCount>& boundaries,
                                std::size_t index,
                                RegionWarming warming,
                                u64 seed = 0x5EEDull);

/**
 * Simulate interval `index` of the mapped VLI partition in any
 * binary of the mappable set.
 */
IntervalStats simulateVliRegion(const bin::Binary& binary,
                                const cache::HierarchyConfig& memory,
                                const core::MappableSet& mappable,
                                std::size_t binaryIdx,
                                const core::VliPartition& partition,
                                std::size_t index,
                                RegionWarming warming,
                                u64 seed = 0x5EEDull);

} // namespace xbsp::sim

#endif // XBSP_SIM_REGION_HH
