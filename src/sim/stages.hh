/**
 * @file
 * The cross-binary study pipeline, decomposed into named stages with
 * explicit inputs and outputs, plus the wiring that lays them out as
 * nodes of a pipeline::TaskGraph:
 *
 *   compile ──> profile[b] (×4) ──> match ──> vliCluster
 *      │             │                │           │
 *      └───────┬─────┴──────┬─────────┴───────────┘
 *              v            v
 *          binary[b] (×4) ──────> finish
 *
 * A StudyBuild owns all intermediate state (program, config, profile
 * passes) and the CrossBinaryStudy being assembled; each stage method
 * reads only outputs of its declared predecessors and writes only its
 * own slots, so stages of *different* builds interleave freely on one
 * pool.  CrossBinaryStudy::run() wires a single build into a private
 * graph; harness::buildSuiteGraph() wires many builds into one global
 * graph so the serial match/vliCluster stages of one workload overlap
 * with the profile/binary stages of others.
 *
 * Stages that are memoized through store::ArtifactStore carry cache
 * probes (the *Cached() methods): when every artifact a stage would
 * compute is already on disk, the scheduler resolves the node inline
 * instead of occupying a worker slot (see taskgraph.hh).
 */

#ifndef XBSP_SIM_STAGES_HH
#define XBSP_SIM_STAGES_HH

#include <chrono>
#include <cstddef>

#include "pipeline/taskgraph.hh"
#include "sim/study.hh"

namespace xbsp::sim
{

/** One study mid-assembly; see the file comment. */
class StudyBuild
{
  public:
    StudyBuild(ir::Program program, StudyConfig config);

    StudyBuild(const StudyBuild&) = delete;
    StudyBuild& operator=(const StudyBuild&) = delete;

    /** Workload name (stable from construction). */
    const std::string& workload() const { return prog.name; }

    /** Number of per-binary stages (the four standard targets). */
    std::size_t binaryCount() const { return targets; }

    /**
     * Stage bodies, in dependency order.  Callers must respect the
     * graph in the file comment; appendStudyGraph() encodes it.
     */
    void compile();
    void profile(std::size_t b);
    void match();
    void vliCluster();
    void binary(std::size_t b);
    void finish();

    /**
     * Cache probes: true when the stage's entire output is already
     * in the artifact store (read-only; see TaskGraph::setProbe).
     */
    bool compileCached() const;
    bool profileCached(std::size_t b) const;
    bool binaryCached(std::size_t b) const;

    /**
     * Provenance keys for the run manifest (hex; "" when the stage
     * has no store key).  Only valid after the corresponding stage
     * completed — TaskGraph::setProvenance guarantees exactly that
     * by evaluating lazily, for finished nodes only.
     */
    std::string compileKeyHex() const;
    std::string profileKeyHex(std::size_t b) const;
    std::string vliKeyHex() const;
    std::string binaryKeyHex(std::size_t b) const;

    /** Wall-clock from compile() start to finish(), milliseconds. */
    long long elapsedMs() const { return elapsed; }

    /** Move the assembled study out (after finish()). */
    CrossBinaryStudy takeStudy();

  private:
    ir::Program prog;
    std::size_t targets;
    std::vector<prof::ProfilePass> passes;
    CrossBinaryStudy study;
    std::chrono::steady_clock::time_point started;
    long long elapsed = 0;
    bool finished = false;
};

/** Node ids of one study's stages within a graph. */
struct StudyNodes
{
    pipeline::NodeId compile{};
    std::vector<pipeline::NodeId> profiles;  ///< one per binary
    pipeline::NodeId match{};
    pipeline::NodeId vli{};
    std::vector<pipeline::NodeId> binaries;  ///< one per binary
    pipeline::NodeId finish{};
};

/**
 * Append one study's stage nodes to `graph`, with dependencies and
 * cache probes wired; returns every node id so callers can attach
 * extra per-node policy (the harness wires remote-dispatch specs onto
 * the memoized stages; see harness::buildSuiteGraph).  Attach a
 * commit hook to `finish` to consume the study in deterministic
 * order.  `build` must outlive the graph run.
 */
StudyNodes appendStudyGraphNodes(pipeline::TaskGraph& graph,
                                 StudyBuild& build);

/** Convenience wrapper returning only the finish node. */
pipeline::NodeId appendStudyGraph(pipeline::TaskGraph& graph,
                                  StudyBuild& build);

/**
 * Content digest over everything that parameterizes one study —
 * workload name, interval target, SimPoint knobs, memory hierarchy,
 * compile options, seeds, detailed flag — stamped into the run
 * manifest so a recorded result names the exact configuration that
 * produced it.
 */
std::string studyConfigDigest(std::string_view workload,
                              const StudyConfig& config);

} // namespace xbsp::sim

#endif // XBSP_SIM_STAGES_HH
