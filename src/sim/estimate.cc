#include "sim/estimate.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace xbsp::sim
{

std::vector<PhaseEstimate>
BinaryEstimate::phasesByWeight() const
{
    std::vector<PhaseEstimate> sorted = phases;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const PhaseEstimate& a, const PhaseEstimate& b) {
                         return a.weight > b.weight;
                     });
    return sorted;
}

BinaryEstimate
estimateSampled(const sp::SimPointResult& clustering,
                const std::vector<IntervalStats>& intervals)
{
    if (clustering.labels.size() != intervals.size())
        panic("estimateSampled: clustering has {} intervals but stats "
              "have {}", clustering.labels.size(), intervals.size());

    BinaryEstimate est;
    double totalCycles = 0.0;
    for (const IntervalStats& iv : intervals) {
        est.totalInstrs += iv.instrs;
        totalCycles += static_cast<double>(iv.cycles);
    }
    est.trueCycles = totalCycles;
    est.trueCpi = est.totalInstrs
                      ? totalCycles / static_cast<double>(est.totalInstrs)
                      : 0.0;

    double estCpi = 0.0;
    for (const sp::Phase& phase : clustering.phases) {
        PhaseEstimate pe;
        pe.phaseId = phase.id;
        pe.representative = phase.representative;

        InstrCount phaseInstrs = 0;
        double phaseCycles = 0.0;
        for (u32 member : phase.members) {
            phaseInstrs += intervals[member].instrs;
            phaseCycles += static_cast<double>(intervals[member].cycles);
        }
        pe.weight = est.totalInstrs
                        ? static_cast<double>(phaseInstrs) /
                              static_cast<double>(est.totalInstrs)
                        : 0.0;
        pe.trueCpi = phaseInstrs
                         ? phaseCycles / static_cast<double>(phaseInstrs)
                         : 0.0;
        pe.spCpi = intervals[phase.representative].cpi();
        pe.bias = signedRelativeError(pe.trueCpi, pe.spCpi);
        estCpi += pe.weight * pe.spCpi;
        est.phases.push_back(std::move(pe));
    }
    est.estCpi = estCpi;
    est.estCycles = estCpi * static_cast<double>(est.totalInstrs);
    est.cpiError = relativeError(est.trueCpi, est.estCpi);
    obs::StatRegistry::global().counter("sim.estimates").add();
    return est;
}

double
speedup(double cyclesA, double cyclesB)
{
    if (cyclesB == 0.0)
        panic("speedup with zero cycles in the denominator");
    return cyclesA / cyclesB;
}

double
speedupError(double trueCyclesA, double trueCyclesB,
             double estCyclesA, double estCyclesB)
{
    const double truth = speedup(trueCyclesA, trueCyclesB);
    const double estimate = speedup(estCyclesA, estCyclesB);
    return relativeError(truth, estimate);
}

} // namespace xbsp::sim
