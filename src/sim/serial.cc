#include "sim/serial.hh"

#include "cpu/serial.hh"

namespace xbsp::sim
{

namespace
{

void
encodeIntervals(serial::Encoder& e,
                const std::vector<IntervalStats>& intervals)
{
    e.varint(intervals.size());
    for (const IntervalStats& stats : intervals) {
        e.varint(stats.instrs);
        e.varint(stats.cycles);
    }
}

std::vector<IntervalStats>
decodeIntervals(serial::Decoder& d)
{
    const u64 n = d.arrayCount(2);
    std::vector<IntervalStats> intervals;
    intervals.reserve(static_cast<std::size_t>(n));
    for (u64 i = 0; i < n; ++i) {
        IntervalStats stats;
        stats.instrs = d.varint();
        stats.cycles = d.varint();
        intervals.push_back(stats);
    }
    return intervals;
}

void
hashLevel(serial::Hasher& h, const cache::LevelConfig& level)
{
    h.str(level.name);
    h.u64v(level.capacityBytes);
    h.u32v(level.associativity);
    h.u32v(level.lineSize);
    h.u64v(level.hitLatency);
}

} // namespace

void
encodeDetailedRun(serial::Encoder& e, const DetailedRunResult& r)
{
    cpu::encodeCoreStats(e, r.totals);
    e.varint(r.memory.refs);
    e.varint(r.memory.l1Hits);
    e.varint(r.memory.l2Hits);
    e.varint(r.memory.l3Hits);
    e.varint(r.memory.dramAccesses);
    e.varint(r.memory.dramWritebacks);
    encodeIntervals(e, r.fliIntervals);
    encodeIntervals(e, r.vliIntervals);
}

DetailedRunResult
decodeDetailedRun(serial::Decoder& d)
{
    DetailedRunResult r;
    r.totals = cpu::decodeCoreStats(d);
    r.memory.refs = d.varint();
    r.memory.l1Hits = d.varint();
    r.memory.l2Hits = d.varint();
    r.memory.l3Hits = d.varint();
    r.memory.dramAccesses = d.varint();
    r.memory.dramWritebacks = d.varint();
    r.fliIntervals = decodeIntervals(d);
    r.vliIntervals = decodeIntervals(d);
    return r;
}

void
hashHierarchy(serial::Hasher& h, const cache::HierarchyConfig& config)
{
    hashLevel(h, config.l1);
    hashLevel(h, config.l2);
    hashLevel(h, config.l3);
    h.u64v(config.dramLatency);
}

namespace
{

void
encodeLevel(serial::Encoder& e, const cache::LevelConfig& level)
{
    e.str(level.name);
    e.varint(level.capacityBytes);
    e.varint(level.associativity);
    e.varint(level.lineSize);
    e.varint(level.hitLatency);
}

cache::LevelConfig
decodeLevel(serial::Decoder& d)
{
    cache::LevelConfig level;
    level.name = d.str();
    level.capacityBytes = d.varint();
    level.associativity = static_cast<u32>(d.varint());
    level.lineSize = static_cast<u32>(d.varint());
    level.hitLatency = d.varint();
    return level;
}

} // namespace

void
encodeStudyConfig(serial::Encoder& e, const StudyConfig& c)
{
    e.varint(c.intervalTarget);
    e.varint(c.simpoint.maxK);
    e.varint(c.simpoint.projectedDims);
    e.varint(c.simpoint.seedsPerK);
    e.f64(c.simpoint.bicThreshold);
    e.varint(c.simpoint.seed);
    e.varint(static_cast<u64>(c.simpoint.init));
    e.varint(c.simpoint.maxIterations);
    e.boolean(c.simpoint.earlyPoints);
    e.f64(c.simpoint.earlyTolerance);
    e.boolean(c.simpoint.accelerate);
    e.f64(c.simpoint.dedupQuantum);
    e.varint(c.primaryIdx);
    encodeLevel(e, c.memory.l1);
    encodeLevel(e, c.memory.l2);
    encodeLevel(e, c.memory.l3);
    e.varint(c.memory.dramLatency);
    e.boolean(c.compileOptions.enableInlining);
    e.boolean(c.compileOptions.enableUnrolling);
    e.boolean(c.compileOptions.enableLoopSplitting);
    e.varint(c.compileOptions.unrollFactor);
    e.varint(c.compileOptions.jitterSeed);
    e.varint(c.engineSeed);
    e.boolean(c.detailed);
    cpu::encodeCoreConfig(e, c.core);
}

StudyConfig
decodeStudyConfig(serial::Decoder& d)
{
    StudyConfig c;
    c.intervalTarget = d.varint();
    c.simpoint.maxK = static_cast<u32>(d.varint());
    c.simpoint.projectedDims = static_cast<u32>(d.varint());
    c.simpoint.seedsPerK = static_cast<u32>(d.varint());
    c.simpoint.bicThreshold = d.f64();
    c.simpoint.seed = d.varint();
    c.simpoint.init = static_cast<sp::InitMethod>(d.varint());
    c.simpoint.maxIterations = static_cast<u32>(d.varint());
    c.simpoint.earlyPoints = d.boolean();
    c.simpoint.earlyTolerance = d.f64();
    c.simpoint.accelerate = d.boolean();
    c.simpoint.dedupQuantum = d.f64();
    c.primaryIdx = static_cast<std::size_t>(d.varint());
    c.memory.l1 = decodeLevel(d);
    c.memory.l2 = decodeLevel(d);
    c.memory.l3 = decodeLevel(d);
    c.memory.dramLatency = d.varint();
    c.compileOptions.enableInlining = d.boolean();
    c.compileOptions.enableUnrolling = d.boolean();
    c.compileOptions.enableLoopSplitting = d.boolean();
    c.compileOptions.unrollFactor = static_cast<u32>(d.varint());
    c.compileOptions.jitterSeed = d.varint();
    c.engineSeed = d.varint();
    c.detailed = d.boolean();
    c.core = cpu::decodeCoreConfig(d);
    return c;
}

} // namespace xbsp::sim
