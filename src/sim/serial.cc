#include "sim/serial.hh"

namespace xbsp::sim
{

namespace
{

void
encodeIntervals(serial::Encoder& e,
                const std::vector<IntervalStats>& intervals)
{
    e.varint(intervals.size());
    for (const IntervalStats& stats : intervals) {
        e.varint(stats.instrs);
        e.varint(stats.cycles);
    }
}

std::vector<IntervalStats>
decodeIntervals(serial::Decoder& d)
{
    const u64 n = d.arrayCount(2);
    std::vector<IntervalStats> intervals;
    intervals.reserve(static_cast<std::size_t>(n));
    for (u64 i = 0; i < n; ++i) {
        IntervalStats stats;
        stats.instrs = d.varint();
        stats.cycles = d.varint();
        intervals.push_back(stats);
    }
    return intervals;
}

void
hashLevel(serial::Hasher& h, const cache::LevelConfig& level)
{
    h.str(level.name);
    h.u64v(level.capacityBytes);
    h.u32v(level.associativity);
    h.u32v(level.lineSize);
    h.u64v(level.hitLatency);
}

} // namespace

void
encodeDetailedRun(serial::Encoder& e, const DetailedRunResult& r)
{
    e.varint(r.totals.instructions);
    e.varint(r.totals.cycles);
    e.varint(r.totals.memRefs);
    e.varint(r.memory.refs);
    e.varint(r.memory.l1Hits);
    e.varint(r.memory.l2Hits);
    e.varint(r.memory.l3Hits);
    e.varint(r.memory.dramAccesses);
    e.varint(r.memory.dramWritebacks);
    encodeIntervals(e, r.fliIntervals);
    encodeIntervals(e, r.vliIntervals);
}

DetailedRunResult
decodeDetailedRun(serial::Decoder& d)
{
    DetailedRunResult r;
    r.totals.instructions = d.varint();
    r.totals.cycles = d.varint();
    r.totals.memRefs = d.varint();
    r.memory.refs = d.varint();
    r.memory.l1Hits = d.varint();
    r.memory.l2Hits = d.varint();
    r.memory.l3Hits = d.varint();
    r.memory.dramAccesses = d.varint();
    r.memory.dramWritebacks = d.varint();
    r.fliIntervals = decodeIntervals(d);
    r.vliIntervals = decodeIntervals(d);
    return r;
}

void
hashHierarchy(serial::Hasher& h, const cache::HierarchyConfig& config)
{
    hashLevel(h, config.l1);
    hashLevel(h, config.l2);
    hashLevel(h, config.l3);
    h.u64v(config.dramLatency);
}

} // namespace xbsp::sim
