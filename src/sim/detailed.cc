#include "sim/detailed.hh"

#include <memory>

#include "binary/serial.hh"
#include "core/serial.hh"
#include "cpu/decoupled.hh"
#include "cpu/inorder.hh"
#include "cpu/serial.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/serial.hh"
#include "store/store.hh"
#include "util/format.hh"

namespace xbsp::sim
{

namespace
{

DetailedRunResult runDetailedUncached(const bin::Binary& binary,
                                      const DetailedRunRequest& req);

} // namespace

serial::Hash128
detailedRunKey(const bin::Binary& binary,
               const DetailedRunRequest& req)
{
    serial::Hasher h;
    h.str("detailed");
    bin::hashBinary(h, binary);
    h.u64v(req.fliBoundaries.size());
    for (InstrCount boundary : req.fliBoundaries)
        h.u64v(boundary);
    h.boolean(req.partition != nullptr);
    if (req.partition) {
        core::hashMappable(h, *req.mappable);
        h.u64v(req.binaryIdx);
        core::hashPartition(h, *req.partition);
    }
    hashHierarchy(h, req.memory);
    cpu::hashCoreConfig(h, req.core);
    h.u64v(req.seed);
    return h.finish();
}

DetailedRunResult
runDetailed(const bin::Binary& binary, const DetailedRunRequest& req)
{
    return store::ArtifactStore::global()
        .getOrCompute<DetailedRunCodec>(
            detailedRunKey(binary, req), "detailed", [&] {
                return runDetailedUncached(binary, req);
            });
}

namespace
{

/**
 * Concrete sink for the detailed run, specialized over the timing
 * backend and over which snapshot collectors are attached.  Memory
 * references and block events hit the core first, then the FLI
 * snapshotter (the "core is registered first" contract: snapshotters
 * read fully updated counters); markers go to the core (when its
 * model consumes them) before the VLI tracker; run-end order matches
 * the legacy registration (core has no run-end hook, then fli, then
 * vli).  Core and observer classes are final, so the whole hot path
 * devirtualizes per backend.
 */
template <typename CoreT, bool HasFli, bool HasVli>
struct DetailedSink
{
    CoreT& core;
    FliSnapshotter* fli;
    VliSnapshotter* vli;

    bool wantsBlocks() const { return true; }
    bool wantsMems() const { return true; }
    bool wantsMarkers() const { return HasVli || CoreT::usesMarkers; }

    void
    onBlock(u32 blockId, u32 instrs)
    {
        core.onBlock(blockId, instrs);
        if constexpr (HasFli)
            fli->onBlock(blockId, instrs);
    }

    void
    onMemRefs(std::span<const mem::MemRef> refs)
    {
        core.onMemRefs(refs);
    }

    void
    onMarker(u32 markerId)
    {
        if constexpr (CoreT::usesMarkers)
            core.onMarker(markerId);
        if constexpr (HasVli)
            vli->onMarker(markerId);
        else if constexpr (!CoreT::usesMarkers)
            (void)markerId;
    }

    void
    onRunEnd()
    {
        if constexpr (HasFli)
            fli->onRunEnd();
        if constexpr (HasVli)
            vli->onRunEnd();
    }
};

template <typename CoreT, bool HasFli, bool HasVli>
void
runDetailedWith(exec::Engine& engine, CoreT& core,
                FliSnapshotter* fli, VliSnapshotter* vli)
{
    DetailedSink<CoreT, HasFli, HasVli> sink{core, fli, vli};
    engine.runWith(sink);
}

/** One full run over a concrete (devirtualized) backend. */
template <typename CoreT>
DetailedRunResult
runDetailedOn(const bin::Binary& binary,
              const DetailedRunRequest& req, CoreT& core,
              cache::Hierarchy& hierarchy)
{
    exec::Engine engine(binary, req.seed);

    std::unique_ptr<FliSnapshotter> fli;
    if (!req.fliBoundaries.empty()) {
        fli = std::make_unique<FliSnapshotter>(engine, core,
                                               req.fliBoundaries);
    }

    std::unique_ptr<VliSnapshotter> vli;
    if (req.partition) {
        vli = std::make_unique<VliSnapshotter>(
            engine, core, *req.mappable, req.binaryIdx,
            *req.partition);
    }

    if (fli && vli) {
        runDetailedWith<CoreT, true, true>(engine, core, fli.get(),
                                           vli.get());
    } else if (fli) {
        runDetailedWith<CoreT, true, false>(engine, core, fli.get(),
                                            nullptr);
    } else if (vli) {
        runDetailedWith<CoreT, false, true>(engine, core, nullptr,
                                            vli.get());
    } else {
        runDetailedWith<CoreT, false, false>(engine, core, nullptr,
                                             nullptr);
    }
    core.flushStats();

    DetailedRunResult result;
    result.totals = core.totals();
    result.memory.refs = hierarchy.totalAccesses();
    result.memory.l1Hits = hierarchy.servicedAt(cache::HitLevel::L1);
    result.memory.l2Hits = hierarchy.servicedAt(cache::HitLevel::L2);
    result.memory.l3Hits = hierarchy.servicedAt(cache::HitLevel::L3);
    result.memory.dramAccesses =
        hierarchy.servicedAt(cache::HitLevel::Memory);
    result.memory.dramWritebacks = hierarchy.dramWritebacks();
    if (fli)
        result.fliIntervals = fli->intervals();
    if (vli)
        result.vliIntervals = vli->intervals();
    return result;
}

DetailedRunResult
runDetailedUncached(const bin::Binary& binary,
                    const DetailedRunRequest& req)
{
    obs::TraceSpan span(
        format("detailed {}", binary.displayName()), "sim");
    obs::StatRegistry::global().counter("sim.detailedRuns").add();
    cache::Hierarchy hierarchy(req.memory);
    // Dispatch on the backend once, here, so every event of the run
    // flows through a concrete core type.
    if (req.core.kind == cpu::CoreKind::Decoupled) {
        cpu::DecoupledCore core(hierarchy, req.core);
        return runDetailedOn(binary, req, core, hierarchy);
    }
    cpu::InOrderCore core(hierarchy);
    return runDetailedOn(binary, req, core, hierarchy);
}

} // namespace

} // namespace xbsp::sim
