#include "sim/detailed.hh"

#include <memory>

#include "binary/serial.hh"
#include "core/serial.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/serial.hh"
#include "store/store.hh"
#include "util/format.hh"

namespace xbsp::sim
{

namespace
{

DetailedRunResult runDetailedUncached(const bin::Binary& binary,
                                      const DetailedRunRequest& req);

} // namespace

serial::Hash128
detailedRunKey(const bin::Binary& binary,
               const DetailedRunRequest& req)
{
    serial::Hasher h;
    h.str("detailed");
    bin::hashBinary(h, binary);
    h.u64v(req.fliBoundaries.size());
    for (InstrCount boundary : req.fliBoundaries)
        h.u64v(boundary);
    h.boolean(req.partition != nullptr);
    if (req.partition) {
        core::hashMappable(h, *req.mappable);
        h.u64v(req.binaryIdx);
        core::hashPartition(h, *req.partition);
    }
    hashHierarchy(h, req.memory);
    h.u64v(req.seed);
    return h.finish();
}

DetailedRunResult
runDetailed(const bin::Binary& binary, const DetailedRunRequest& req)
{
    return store::ArtifactStore::global()
        .getOrCompute<DetailedRunCodec>(
            detailedRunKey(binary, req), "detailed", [&] {
                return runDetailedUncached(binary, req);
            });
}

namespace
{

DetailedRunResult
runDetailedUncached(const bin::Binary& binary,
                    const DetailedRunRequest& req)
{
    obs::TraceSpan span(
        format("detailed {}", binary.displayName()), "sim");
    obs::StatRegistry::global().counter("sim.detailedRuns").add();
    exec::Engine engine(binary, req.seed);
    cache::Hierarchy hierarchy(req.memory);
    cpu::InOrderCore core(hierarchy);

    // The core is registered first so snapshot observers read fully
    // updated counters (see the engine's ordering contract).
    engine.addObserver(&core, {true, true, false});

    std::unique_ptr<FliSnapshotter> fli;
    if (!req.fliBoundaries.empty()) {
        fli = std::make_unique<FliSnapshotter>(engine, core,
                                               req.fliBoundaries);
        engine.addObserver(fli.get(), {true, false, false});
    }

    std::unique_ptr<VliSnapshotter> vli;
    if (req.partition) {
        vli = std::make_unique<VliSnapshotter>(
            engine, core, *req.mappable, req.binaryIdx,
            *req.partition);
        engine.addObserver(vli.get(), {false, false, true});
    }

    engine.run();

    DetailedRunResult result;
    result.totals = core.totals();
    result.memory.refs = hierarchy.totalAccesses();
    result.memory.l1Hits = hierarchy.servicedAt(cache::HitLevel::L1);
    result.memory.l2Hits = hierarchy.servicedAt(cache::HitLevel::L2);
    result.memory.l3Hits = hierarchy.servicedAt(cache::HitLevel::L3);
    result.memory.dramAccesses =
        hierarchy.servicedAt(cache::HitLevel::Memory);
    result.memory.dramWritebacks = hierarchy.dramWritebacks();
    if (fli)
        result.fliIntervals = fli->intervals();
    if (vli)
        result.vliIntervals = vli->intervals();
    return result;
}

} // namespace

} // namespace xbsp::sim
