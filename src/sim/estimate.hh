/**
 * @file
 * Sampled-simulation estimation math: combine a SimPoint clustering
 * with per-interval detailed statistics to estimate whole-program
 * CPI/cycles from the simulation points alone, recalculating phase
 * weights from the target binary's interval sizes (paper §3.2.6),
 * and compute the paper's error metrics.
 */

#ifndef XBSP_SIM_ESTIMATE_HH
#define XBSP_SIM_ESTIMATE_HH

#include <vector>

#include "sim/snapshots.hh"
#include "simpoint/simpoint.hh"

namespace xbsp::sim
{

/** Per-phase row, matching the columns of the paper's Tables 2/3. */
struct PhaseEstimate
{
    u32 phaseId = 0;
    u32 representative = 0;  ///< interval index (the simulation point)
    double weight = 0.0;     ///< fraction of this binary's instructions
    double trueCpi = 0.0;    ///< instr-weighted CPI over member intervals
    double spCpi = 0.0;      ///< CPI of the simulation point alone
    double bias = 0.0;       ///< signed (spCpi - trueCpi) / trueCpi
};

/** Whole-binary estimate derived from the simulation points. */
struct BinaryEstimate
{
    InstrCount totalInstrs = 0;
    double trueCycles = 0.0;
    double trueCpi = 0.0;
    double estCpi = 0.0;
    double estCycles = 0.0;
    double cpiError = 0.0;  ///< |(true - est) / true|
    std::vector<PhaseEstimate> phases;

    /** Phases sorted by descending weight (Tables 2/3 ordering). */
    std::vector<PhaseEstimate> phasesByWeight() const;
};

/**
 * Estimate a binary's performance from simulation points.
 *
 * `clustering` supplies the interval->phase labels and the chosen
 * representative per phase; `intervals` supplies this binary's
 * per-interval detailed statistics under the *same* partition the
 * clustering labels refer to (the binary's own FLI intervals for
 * per-binary SimPoint, or the mapped VLI intervals for cross-binary
 * SimPoint).  Weights are recomputed from `intervals`' instruction
 * counts, which is what makes the estimate correct in binaries other
 * than the primary.
 */
BinaryEstimate estimateSampled(const sp::SimPointResult& clustering,
                               const std::vector<IntervalStats>& intervals);

/** Speedup of A over B as the paper defines it: cyclesA / cyclesB. */
double speedup(double cyclesA, double cyclesB);

/** |(trueSpeedup - estSpeedup) / trueSpeedup| (paper §5.2). */
double speedupError(double trueCyclesA, double trueCyclesB,
                    double estCyclesA, double estCyclesB);

} // namespace xbsp::sim

#endif // XBSP_SIM_ESTIMATE_HH
