/**
 * @file
 * Artifact-store codec for detailed (timing) runs — the most
 * expensive stage in the pipeline — plus hashing of the memory
 * hierarchy configuration that parameterizes them, and a wire codec
 * for StudyConfig so the distributed executor can ship a stage's
 * full parameterization to a worker process (see src/dist).
 */

#ifndef XBSP_SIM_SERIAL_HH
#define XBSP_SIM_SERIAL_HH

#include "cache/hierarchy.hh"
#include "sim/detailed.hh"
#include "sim/study.hh"
#include "util/serial.hh"

namespace xbsp::sim
{

void encodeDetailedRun(serial::Encoder& e, const DetailedRunResult& r);
DetailedRunResult decodeDetailedRun(serial::Decoder& d);

/**
 * Round-trip every field of a StudyConfig bit-exactly (doubles travel
 * as IEEE-754 patterns).  Two processes that exchange a config this
 * way compute identical stage keys and identical artifacts — the
 * invariant the remote-worker protocol rests on.
 */
void encodeStudyConfig(serial::Encoder& e, const StudyConfig& c);
StudyConfig decodeStudyConfig(serial::Decoder& d);

/** Fold the full memory-hierarchy configuration into `h`. */
void hashHierarchy(serial::Hasher& h,
                   const cache::HierarchyConfig& config);

/**
 * Artifact-store codec for runDetailed results.  Version 2: the
 * CoreStats payload grew the frontend counters (branches,
 * mispredicts, flushes, fetch bubbles) of the pluggable CPU-backend
 * layer; version-1 artifacts are simply recomputed.
 */
struct DetailedRunCodec
{
    using Value = DetailedRunResult;
    static constexpr u32 tag = serial::fourcc("DETR");
    static constexpr u32 version = 2;

    static void
    encode(serial::Encoder& e, const DetailedRunResult& r)
    {
        encodeDetailedRun(e, r);
    }

    static DetailedRunResult
    decode(serial::Decoder& d)
    {
        return decodeDetailedRun(d);
    }
};

} // namespace xbsp::sim

#endif // XBSP_SIM_SERIAL_HH
