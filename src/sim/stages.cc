#include "sim/stages.hh"

#include <utility>

#include "binary/serial.hh"
#include "core/serial.hh"
#include "cpu/serial.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "profile/serial.hh"
#include "simpoint/serial.hh"
#include "sim/serial.hh"
#include "store/store.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace xbsp::sim
{

StudyBuild::StudyBuild(ir::Program program, StudyConfig config)
    : prog(std::move(program)),
      targets(compile::standardTargets().size())
{
    study.cfg = std::move(config);
    study.name = prog.name;
}

void
StudyBuild::compile()
{
    obs::StatRegistry::global().counter("study.runs").add();
    started = std::chrono::steady_clock::now();
    study.bins = compile::compileAllTargets(prog,
                                            study.cfg.compileOptions);
    if (study.cfg.primaryIdx >= study.bins.size())
        fatal("primary binary index {} out of range",
              study.cfg.primaryIdx);

    // Step layout for --progress: compile, one profile pass per
    // binary, the VLI build+cluster, one per-binary study step.
    obs::Progress& progress = obs::Progress::global();
    progress.addSteps(2 + 2 * study.bins.size());
    progress.completeStep(format("study.{}.compile", prog.name));

    passes.resize(study.bins.size());
    study.studies.resize(study.bins.size());
}

void
StudyBuild::profile(std::size_t b)
{
    // Every binary owns its own engine and per-block address-
    // generator seeds (derived from config.engineSeed and block ids
    // only), so the four passes are independent and their results do
    // not depend on execution order.
    passes[b] = prof::runProfilePass(study.bins[b],
                                     study.cfg.intervalTarget,
                                     study.cfg.engineSeed);
    obs::Progress::global().completeStep(
        format("study.{}.profile.{}", prog.name,
               study.bins[b].displayName()));
}

void
StudyBuild::match()
{
    std::vector<const bin::Binary*> binPtrs;
    std::vector<const prof::MarkerProfile*> profPtrs;
    for (std::size_t b = 0; b < study.bins.size(); ++b) {
        binPtrs.push_back(&study.bins[b]);
        profPtrs.push_back(&passes[b].markers);
    }
    study.mappableSet = core::findMappablePoints(binPtrs, profPtrs);
    if (study.mappableSet.points.empty())
        fatal("program '{}': no mappable points found across the "
              "binaries; cross-binary SimPoint cannot proceed",
              prog.name);
}

void
StudyBuild::vliCluster()
{
    core::VliBuild vliBuild = core::buildVliPartition(
        study.bins[study.cfg.primaryIdx], study.mappableSet,
        study.cfg.primaryIdx, study.cfg.intervalTarget,
        study.cfg.engineSeed);
    study.vliPartition = vliBuild.partition;
    study.vliCluster = sp::pickSimulationPoints(vliBuild.intervals,
                                                study.cfg.simpoint);
    obs::Progress::global().completeStep(
        format("study.{}.cluster", prog.name));
}

void
StudyBuild::binary(std::size_t b)
{
    // Reads shared state (bins, mappableSet, vliPartition,
    // vliCluster) const-only and writes only its own BinaryStudy
    // slot, so the four binaries proceed independently.  The step is
    // only counted complete on success: a throwing stage leaves the
    // progress meter short and surfaces as a failed node instead.
    const StudyConfig& config = study.cfg;
    BinaryStudy& bs = study.studies[b];
    bs.target = study.bins[b].target;
    bs.totalInstrs = passes[b].totalInstructions;
    bs.fliIntervalCount = passes[b].fliIntervals.size();
    bs.fliClustering = sp::pickSimulationPoints(
        std::move(passes[b].fliIntervals), config.simpoint);
    // The profile pass is dead from here on: steal its buffers
    // rather than deep-copying them.
    bs.markers = std::move(passes[b].markers);
    bs.fliBoundaries = std::move(passes[b].fliBoundaries);

    const std::string stepLabel = format(
        "study.{}.binary.{}", prog.name, study.bins[b].displayName());

    if (!config.detailed) {
        // Interval sizes are still known without timing: compute
        // the mapped VLI sizes with a cheap (no-cache) run.
        exec::Engine engine(study.bins[b], config.engineSeed);
        std::vector<InstrCount> cuts;
        core::BoundaryTracker tracker(
            study.mappableSet, b, study.vliPartition,
            [&](std::size_t) {
                cuts.push_back(engine.instructionsExecuted());
            });
        engine.addObserver(&tracker, {false, false, true});
        engine.run();
        if (!tracker.finished())
            panic("binary {}: VLI boundaries not all crossed",
                  study.bins[b].displayName());
        bs.avgVliIntervalSize =
            static_cast<double>(engine.instructionsExecuted()) /
            static_cast<double>(study.vliPartition.intervalCount());
        obs::Progress::global().completeStep(stepLabel);
        return;
    }

    DetailedRunRequest req = makeRunRequest(config);
    req.fliBoundaries = bs.fliBoundaries;
    req.mappable = &study.mappableSet;
    req.binaryIdx = b;
    req.partition = &study.vliPartition;
    bs.detailedRun = runDetailed(study.bins[b], req);

    bs.fliEstimate = estimateSampled(bs.fliClustering,
                                     bs.detailedRun.fliIntervals);
    bs.vliEstimate = estimateSampled(study.vliCluster,
                                     bs.detailedRun.vliIntervals);
    bs.avgVliIntervalSize =
        static_cast<double>(bs.totalInstrs) /
        static_cast<double>(study.vliPartition.intervalCount());
    obs::Progress::global().completeStep(stepLabel);
}

void
StudyBuild::finish()
{
    elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - started)
                  .count();
    finished = true;
}

CrossBinaryStudy
StudyBuild::takeStudy()
{
    if (!finished)
        panic("StudyBuild::takeStudy before finish()");
    return std::move(study);
}

bool
StudyBuild::compileCached() const
{
    const store::ArtifactStore& store = store::ArtifactStore::global();
    for (const bin::Target& target : compile::standardTargets()) {
        if (!store.contains(
                compile::compileKey(prog, target,
                                    study.cfg.compileOptions),
                bin::BinaryCodec::tag, bin::BinaryCodec::version))
            return false;
    }
    return true;
}

bool
StudyBuild::profileCached(std::size_t b) const
{
    if (b >= study.bins.size())
        return false;  // compile itself failed or hasn't run
    return store::ArtifactStore::global().contains(
        prof::profilePassKey(study.bins[b], study.cfg.intervalTarget,
                             study.cfg.engineSeed),
        prof::ProfilePassCodec::tag, prof::ProfilePassCodec::version);
}

bool
StudyBuild::binaryCached(std::size_t b) const
{
    // The no-detailed branch always runs a (cheap, unmemoized)
    // engine pass, so only the detailed path can cache-resolve.
    if (!study.cfg.detailed)
        return false;
    if (b >= study.bins.size() || b >= passes.size())
        return false;
    const store::ArtifactStore& store = store::ArtifactStore::global();
    if (!store.contains(
            sp::simPointKey(passes[b].fliIntervals,
                            study.cfg.simpoint),
            sp::SimPointCodec::tag, sp::SimPointCodec::version))
        return false;
    DetailedRunRequest req = makeRunRequest(study.cfg);
    req.fliBoundaries = passes[b].fliBoundaries;
    req.mappable = &study.mappableSet;
    req.binaryIdx = b;
    req.partition = &study.vliPartition;
    return store.contains(detailedRunKey(study.bins[b], req),
                          DetailedRunCodec::tag,
                          DetailedRunCodec::version);
}

std::string
StudyBuild::compileKeyHex() const
{
    // One digest covering all four targets' compile keys, so the
    // manifest entry pins the complete binary set, not just one.
    serial::Hasher h;
    for (const bin::Target& target : compile::standardTargets())
        h.str(compile::compileKey(prog, target,
                                  study.cfg.compileOptions)
                  .hex());
    return h.finish().hex();
}

std::string
StudyBuild::profileKeyHex(std::size_t b) const
{
    if (b >= study.bins.size())
        return {};
    return prof::profilePassKey(study.bins[b],
                                study.cfg.intervalTarget,
                                study.cfg.engineSeed)
        .hex();
}

std::string
StudyBuild::vliKeyHex() const
{
    if (study.cfg.primaryIdx >= study.bins.size())
        return {};
    return core::vliBuildKey(study.bins[study.cfg.primaryIdx],
                             study.mappableSet, study.cfg.primaryIdx,
                             study.cfg.intervalTarget,
                             study.cfg.engineSeed)
        .hex();
}

std::string
StudyBuild::binaryKeyHex(std::size_t b) const
{
    // Only the detailed path is memoized (see binaryCached); the
    // boundaries were moved into the BinaryStudy slot by binary(),
    // so the key must be rebuilt from there, not from the pass.
    if (!study.cfg.detailed || b >= study.bins.size() ||
        b >= study.studies.size())
        return {};
    DetailedRunRequest req = makeRunRequest(study.cfg);
    req.fliBoundaries = study.studies[b].fliBoundaries;
    req.mappable = &study.mappableSet;
    req.binaryIdx = b;
    req.partition = &study.vliPartition;
    return detailedRunKey(study.bins[b], req).hex();
}

std::string
studyConfigDigest(std::string_view workload, const StudyConfig& config)
{
    serial::Hasher h;
    h.str(workload);
    h.u64v(config.intervalTarget);
    sp::hashSimPointOptions(h, config.simpoint);
    h.u64v(config.primaryIdx);
    hashHierarchy(h, config.memory);
    cpu::hashCoreConfig(h, config.core);
    h.boolean(config.compileOptions.enableInlining);
    h.boolean(config.compileOptions.enableUnrolling);
    h.boolean(config.compileOptions.enableLoopSplitting);
    h.u32v(config.compileOptions.unrollFactor);
    h.u64v(config.compileOptions.jitterSeed);
    h.u64v(config.engineSeed);
    h.boolean(config.detailed);
    return h.finish().hex();
}

StudyNodes
appendStudyGraphNodes(pipeline::TaskGraph& graph, StudyBuild& build)
{
    const std::string& name = build.workload();
    const std::vector<bin::Target> targets = compile::standardTargets();
    StudyNodes nodes;

    nodes.compile = graph.add(
        format("study.{}.compile", name), "compile", {},
        [&build] { build.compile(); });
    graph.setProbe(nodes.compile,
                   [&build] { return build.compileCached(); });
    graph.setProvenance(nodes.compile,
                        [&build] { return build.compileKeyHex(); });

    for (std::size_t b = 0; b < build.binaryCount(); ++b) {
        const pipeline::NodeId id = graph.add(
            format("study.{}.profile.{}", name,
                   bin::targetName(targets[b])),
            "profile", {nodes.compile},
            [&build, b] { build.profile(b); });
        graph.setProbe(id,
                       [&build, b] { return build.profileCached(b); });
        graph.setProvenance(
            id, [&build, b] { return build.profileKeyHex(b); });
        nodes.profiles.push_back(id);
    }

    nodes.match = graph.add(
        format("study.{}.match", name), "match", nodes.profiles,
        [&build] { build.match(); });

    nodes.vli = graph.add(
        format("study.{}.cluster", name), "vli",
        {nodes.compile, nodes.match}, [&build] { build.vliCluster(); });
    graph.setProvenance(nodes.vli,
                        [&build] { return build.vliKeyHex(); });

    for (std::size_t b = 0; b < build.binaryCount(); ++b) {
        const pipeline::NodeId id = graph.add(
            format("study.{}.binary.{}", name,
                   bin::targetName(targets[b])),
            "binary", {nodes.profiles[b], nodes.match, nodes.vli},
            [&build, b] { build.binary(b); });
        graph.setProbe(id,
                       [&build, b] { return build.binaryCached(b); });
        graph.setProvenance(
            id, [&build, b] { return build.binaryKeyHex(b); });
        nodes.binaries.push_back(id);
    }

    nodes.finish = graph.add(format("study.{}.finish", name),
                             "finish", nodes.binaries,
                             [&build] { build.finish(); });
    return nodes;
}

pipeline::NodeId
appendStudyGraph(pipeline::TaskGraph& graph, StudyBuild& build)
{
    return appendStudyGraphNodes(graph, build).finish;
}

} // namespace xbsp::sim
