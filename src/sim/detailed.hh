/**
 * @file
 * One detailed (timing) simulation of a binary, with optional FLI and
 * VLI snapshot collection.  A single pass produces the full-program
 * truth *and* the per-interval statistics both sampling schemes need,
 * because warm sampled simulation of a region is statistically
 * identical to gating statistics over that region of the full run.
 */

#ifndef XBSP_SIM_DETAILED_HH
#define XBSP_SIM_DETAILED_HH

#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/vli.hh"
#include "cpu/core.hh"
#include "sim/snapshots.hh"

namespace xbsp::sim
{

/** Memory-system summary of a detailed run. */
struct MemoryStats
{
    u64 refs = 0;
    u64 l1Hits = 0;
    u64 l2Hits = 0;
    u64 l3Hits = 0;
    u64 dramAccesses = 0;
    u64 dramWritebacks = 0;

    double
    l1MissRate() const
    {
        return refs ? 1.0 - static_cast<double>(l1Hits) /
                                static_cast<double>(refs)
                    : 0.0;
    }
};

/** Everything a detailed run produces. */
struct DetailedRunResult
{
    cpu::CoreStats totals;
    MemoryStats memory;
    std::vector<IntervalStats> fliIntervals;  ///< empty if not asked
    std::vector<IntervalStats> vliIntervals;  ///< empty if not asked

    double trueCpi() const { return totals.cpi(); }
};

/** Inputs selecting which interval schemes to snapshot. */
struct DetailedRunRequest
{
    /** FLI boundary list (cumulative ends incl. final); empty = skip. */
    std::vector<InstrCount> fliBoundaries;

    /** VLI partition mapped via `mappable`; null = skip. */
    const core::MappableSet* mappable = nullptr;
    std::size_t binaryIdx = 0;
    const core::VliPartition* partition = nullptr;

    cache::HierarchyConfig memory;

    /** Timing backend (a model knob: part of the run's identity). */
    cpu::CoreConfig core;

    u64 seed = 0x5EEDull;
};

/** Run one binary to completion under the timing model. */
DetailedRunResult runDetailed(const bin::Binary& binary,
                              const DetailedRunRequest& request);

/**
 * Artifact-store key of one detailed run (binary + every request
 * knob) — the exact key runDetailed memoizes under (artifact type
 * DetailedRunCodec).  Exposed so the pipeline scheduler can probe
 * whether a detailed-simulation stage is already cached.
 */
serial::Hash128 detailedRunKey(const bin::Binary& binary,
                               const DetailedRunRequest& request);

} // namespace xbsp::sim

#endif // XBSP_SIM_DETAILED_HH
