/**
 * @file
 * Interval snapshot collectors: observers that cut one detailed
 * simulation run into per-interval (instruction, cycle) statistics,
 * for both interval schemes:
 *
 *  - FliSnapshotter cuts at recorded cumulative instruction counts
 *    (the per-binary fixed-length-interval boundaries);
 *  - VliSnapshotter cuts at mapped (mappable point, firing count)
 *    boundary events replayed by a core::BoundaryTracker.
 *
 * Because the cache hierarchy stays live across the whole run, the
 * per-interval statistics are exactly what warm (functionally-warmed)
 * sampled simulation of those regions would measure — the way
 * PinPoints drives CMP$im.
 */

#ifndef XBSP_SIM_SNAPSHOTS_HH
#define XBSP_SIM_SNAPSHOTS_HH

#include <vector>

#include "core/vli.hh"
#include "cpu/core.hh"
#include "exec/engine.hh"
#include "util/types.hh"

namespace xbsp::sim
{

/** Performance of one interval of execution. */
struct IntervalStats
{
    InstrCount instrs = 0;
    Cycles cycles = 0;

    double
    cpi() const
    {
        return instrs ? static_cast<double>(cycles) /
                            static_cast<double>(instrs)
                      : 0.0;
    }
};

/** Absolute (instr, cycle) snapshots -> per-interval deltas. */
class SnapshotSeries
{
  public:
    /** Record an interior boundary snapshot. */
    void snapshot(InstrCount instrs, Cycles cycles);

    /** Record the end-of-run snapshot and seal the series. */
    void finish(InstrCount instrs, Cycles cycles);

    /** Per-interval deltas; valid after finish(). */
    const std::vector<IntervalStats>& intervals() const;

  private:
    std::vector<IntervalStats> cuts;  ///< absolute values
    std::vector<IntervalStats> deltas;
    bool finished = false;
};

/** Cuts at recorded cumulative instruction counts (FLI). */
class FliSnapshotter final : public exec::Observer
{
  public:
    /**
     * `boundaries` are the cumulative instruction counts at each
     * interval end, *including* the final one (as produced by
     * prof::FliBbvCollector::boundaries()).
     */
    FliSnapshotter(const exec::Engine& engine,
                   const cpu::Core& core,
                   std::vector<InstrCount> boundaries);

    exec::ObserverHooks
    hooks() const override
    {
        return {true, false, false};
    }

    void onBlock(u32 blockId, u32 instrs) override;
    void onRunEnd() override;

    const std::vector<IntervalStats>& intervals() const;

  private:
    const exec::Engine& engine;
    const cpu::Core& core;
    std::vector<InstrCount> bounds;
    std::size_t next = 0;
    SnapshotSeries series;
};

/** Cuts at mapped VLI boundary events in any binary of the set. */
class VliSnapshotter final : public exec::Observer
{
  public:
    VliSnapshotter(const exec::Engine& engine,
                   const cpu::Core& core,
                   const core::MappableSet& mappable,
                   std::size_t binaryIdx,
                   const core::VliPartition& partition);

    exec::ObserverHooks
    hooks() const override
    {
        return {false, false, true};
    }

    void onMarker(u32 markerId) override;
    void onRunEnd() override;

    const std::vector<IntervalStats>& intervals() const;

  private:
    const exec::Engine& engine;
    const cpu::Core& core;
    core::BoundaryTracker tracker;
    SnapshotSeries series;
};

} // namespace xbsp::sim

#endif // XBSP_SIM_SNAPSHOTS_HH
