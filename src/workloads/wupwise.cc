/**
 * @file
 * wupwise analogue: lattice-QCD BiCGStab solver.  Iterations apply
 * the Wilson-Dirac operator (streaming matrix-vector kernels over a
 * 4 MiB lattice with unrollable SU(3) arithmetic) and BLAS-style
 * vector updates (zaxpy/zdotc), which are fully inlined under -O2.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeWupwise(double scale)
{
    ir::ProgramBuilder b("wupwise");

    b.procedure("muldeo").loop(
        trips(scale, 4800), [&](StmtSeq& outer) {
            outer.block(16, 8,
                    withDrift(stridePattern(1, 1_MiB, 8, 0.3, 0.0),
                              1600, 0.3));
            outer.loop(4, [&](StmtSeq& s) { s.compute(18); },
                       LoopOpts{.unrollable = true});
        });

    b.procedure("muldoe").loop(
        trips(scale, 4800), [&](StmtSeq& outer) {
            outer.block(16, 8,
                    withDrift(stridePattern(2, 1280_KiB, 8, 0.3, 0.0),
                              1600, 0.3));
            outer.loop(4, [&](StmtSeq& s) { s.compute(18); },
                       LoopOpts{.unrollable = true});
        });

    b.procedure("zaxpy", ir::InlineHint::Always)
        .loop(trips(scale, 2400), [&](StmtSeq& s) {
            s.block(12, 6, stridePattern(3, 768_KiB, 8, 0.5, 0.0));
        });

    b.procedure("zdotc", ir::InlineHint::Always)
        .loop(trips(scale, 2000), [&](StmtSeq& s) {
            s.block(10, 5, stridePattern(4, 768_KiB, 8, 0.0, 0.0));
            s.compute(6);
        });

    b.procedure("lattice_init").loop(
        trips(scale, 2400), [&](StmtSeq& s) {
            s.block(30, 13, stridePattern(5, 1_MiB, 8, 0.7, 0.0));
        });

    StmtSeq main = b.procedure("main");
    main.call("lattice_init");
    main.loop(trips(scale, 9), [&](StmtSeq& iter) {
        iter.call("muldeo");
        iter.call("zaxpy");
        iter.call("muldoe");
        iter.call("zdotc");
    });
    return b.build();
}

} // namespace xbsp::workloads
