/**
 * @file
 * bzip2 analogue: block compression.  Per input block the program
 * runs a Burrows-Wheeler-style sort (random traffic dominated, high
 * CPI), a move-to-front pass (small strided), and Huffman coding
 * (compute-heavy, tiny footprint).  Input blocks cycle through three
 * compressibility classes with different sort effort, giving
 * recurring behaviour variants.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeBzip2(double scale)
{
    ir::ProgramBuilder b("bzip2");

    struct BlockClass
    {
        const char* suffix;
        u64 sortTrips;
        u64 ws;
    };
    const BlockClass classes[] = {
        {"text", 5200, 512_KiB},
        {"binary", 7600, 768_KiB},
        {"random", 10400, 1_MiB},
    };

    for (const BlockClass& cls : classes) {
        b.procedure(std::string("block_sort_") + cls.suffix)
            .loop(trips(scale, cls.sortTrips), [&](StmtSeq& s) {
                s.block(30, 14,
                        withDrift(randomPattern(1, cls.ws / 2, 0.3, 0.1),
                                  2400, 0.2));
                s.compute(8);
            });
    }

    b.procedure("mtf_encode").loop(
        trips(scale, 4400), [&](StmtSeq& s) {
            s.block(26, 11, stridePattern(2, 256_KiB, 8, 0.5, 0.0));
        });

    b.procedure("huffman", ir::InlineHint::Partial)
        .loop(trips(scale, 3800), [&](StmtSeq& s) {
            s.block(22, 6, randomPattern(3, 64_KiB, 0.2, 0.0));
            s.compute(20);
        });

    b.procedure("read_input", ir::InlineHint::Always)
        .loop(trips(scale, 1500), [&](StmtSeq& s) {
            s.block(18, 8, stridePattern(4, 1_MiB, 8, 0.7, 0.0));
        });

    StmtSeq main = b.procedure("main");
    main.loop(trips(scale, 6), [&](StmtSeq& file) {
        for (const BlockClass& cls : classes) {
            file.call("read_input");
            file.call(std::string("block_sort_") + cls.suffix);
            file.call("mtf_encode");
            file.call("huffman");
        }
    });
    return b.build();
}

} // namespace xbsp::workloads
