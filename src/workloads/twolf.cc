/**
 * @file
 * twolf analogue: simulated-annealing standard-cell placement.  Each
 * temperature stage perturbs cells (random traffic over the cell
 * array), evaluates wirelength deltas (gathers over the net list)
 * and applies accepted moves.  Hot stages do full move application;
 * cold stages mostly reject, shifting the block mix toward
 * evaluation.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeTwolf(double scale)
{
    ir::ProgramBuilder b("twolf");

    b.procedure("perturb", ir::InlineHint::Always)
        .block(18, 8, randomPattern(1, 384_KiB, 0.2, 0.6));

    b.procedure("wire_eval").loop(
        trips(scale, 3000), [&](StmtSeq& s) {
            s.block(22, 10,
                    withDrift(gatherPattern(2, 1_MiB, 0.93, 0.05, 0.5),
                              1200, 0.22));
            s.compute(12);
        });

    b.procedure("stage_hot").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.call("perturb");
            s.block(20, 9,
                    withDrift(randomPattern(3, 448_KiB, 0.5, 0.6),
                              2000, 0.3));
            s.compute(10);
        });

    b.procedure("stage_cold").loop(
        trips(scale, 7400), [&](StmtSeq& s) {
            s.call("perturb");
            s.compute(19);
        });

    b.procedure("netlist_init").loop(
        trips(scale, 2000), [&](StmtSeq& s) {
            s.block(32, 14, stridePattern(4, 768_KiB, 8, 0.6, 0.5));
        });

    StmtSeq main = b.procedure("main");
    main.call("netlist_init");
    main.loop(trips(scale, 11), [&](StmtSeq& stage) {
        stage.call("stage_hot");
        stage.call("wire_eval");
    });
    main.loop(trips(scale, 11), [&](StmtSeq& stage) {
        stage.call("stage_cold");
        stage.call("wire_eval");
    });
    return b.build();
}

} // namespace xbsp::workloads
