/**
 * @file
 * art analogue: adaptive resonance theory neural network with two
 * long-running mega-phases — training epochs that scan the F1 weight
 * arrays, then match scans against learned categories.  Few, very
 * stable behaviours: the classic SimPoint-friendly benchmark.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeArt(double scale)
{
    ir::ProgramBuilder b("art");

    b.procedure("scan_weights").loop(
        trips(scale, 14000), [&](StmtSeq& s) {
            s.block(36, 10, stridePattern(1, 448_KiB, 8, 0.3, 0.0));
            s.compute(12);
        });

    b.procedure("f2_update").loop(
        trips(scale, 9000), [&](StmtSeq& s) {
            s.block(32, 9, gatherPattern(2, 512_KiB, 0.95, 0.2, 0.1));
        });

    b.procedure("compare", ir::InlineHint::Always)
        .loop(trips(scale, 7000), [&](StmtSeq& s) {
            s.block(28, 10, randomPattern(3, 128_KiB, 0.05, 0.0));
            s.compute(14);
        });

    b.procedure("load_network").loop(
        trips(scale, 2600), [&](StmtSeq& s) {
            s.block(30, 12, stridePattern(4, 640_KiB, 8, 0.6, 0.1));
        });

    StmtSeq main = b.procedure("main");
    main.call("load_network");
    // Training epochs.
    main.loop(trips(scale, 6), [&](StmtSeq& epoch) {
        epoch.call("scan_weights");
        epoch.call("f2_update");
    });
    // Recognition scans.
    main.loop(trips(scale, 4), [&](StmtSeq& match) {
        match.call("scan_weights");
        match.call("compare");
    });
    return b.build();
}

} // namespace xbsp::workloads
