/**
 * @file
 * The synthetic workload suite: one program per SPEC CPU2000
 * benchmark the paper evaluates (Figures 1–5).
 *
 * Each workload is written in the source IR with loop/call structure,
 * instruction mixes, memory-access patterns and optimizer hints that
 * mimic the documented behaviour of the real benchmark at the level
 * the rest of the system observes: phase structure (what SimPoint
 * clusters), marker topology (what the cross-binary matcher maps),
 * and memory locality (what drives CPI on the Table-1 hierarchy).
 *
 * `scale` multiplies the outer trip counts; 1.0 gives runs of roughly
 * 10–25M source instructions (25–60M machine instructions when
 * compiled unoptimized), sized so a full detailed simulation takes
 * around a second.
 */

#ifndef XBSP_WORKLOADS_WORKLOADS_HH
#define XBSP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace xbsp::workloads
{

/** Registry entry for one workload. */
struct WorkloadInfo
{
    std::string name;
    std::string description;
    ir::Program (*factory)(double scale);
};

/** All 21 workloads in the paper's benchmark order. */
const std::vector<WorkloadInfo>& suite();

/** Find a workload by name; nullptr when unknown. */
const WorkloadInfo* findWorkload(const std::string& name);

/** Build a workload by name; fatal() on unknown names. */
ir::Program makeWorkload(const std::string& name, double scale = 1.0);

/** All workload names, in suite order. */
std::vector<std::string> workloadNames();

/** Individual factories (also reachable through the registry). */
ir::Program makeAmmp(double scale);
ir::Program makeApplu(double scale);
ir::Program makeApsi(double scale);
ir::Program makeArt(double scale);
ir::Program makeBzip2(double scale);
ir::Program makeCrafty(double scale);
ir::Program makeEon(double scale);
ir::Program makeEquake(double scale);
ir::Program makeFma3d(double scale);
ir::Program makeGcc(double scale);
ir::Program makeGzip(double scale);
ir::Program makeLucas(double scale);
ir::Program makeMcf(double scale);
ir::Program makeMesa(double scale);
ir::Program makePerlbmk(double scale);
ir::Program makeSixtrack(double scale);
ir::Program makeSwim(double scale);
ir::Program makeTwolf(double scale);
ir::Program makeVortex(double scale);
ir::Program makeVpr(double scale);
ir::Program makeWupwise(double scale);

} // namespace xbsp::workloads

#endif // XBSP_WORKLOADS_WORKLOADS_HH
