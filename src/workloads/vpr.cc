/**
 * @file
 * vpr analogue: FPGA place-and-route in two very different
 * mega-phases — annealing placement (random traffic over the block
 * grid plus delta evaluation) followed by maze routing (pointer
 * chasing through a large routing-resource graph).  The phase split
 * makes consistent cross-binary sampling matter: a scheme that
 * weights placement vs routing differently per binary misestimates
 * the speedup badly.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeVpr(double scale)
{
    ir::ProgramBuilder b("vpr");

    b.procedure("try_swap", ir::InlineHint::Always)
        .block(20, 9, randomPattern(1, 320_KiB, 0.35, 0.5))
        .compute(13);

    b.procedure("place_stage").loop(
        trips(scale, 6000), [&](StmtSeq& s) {
            s.call("try_swap");
            s.block(10, 4,
                    withDrift(gatherPattern(2, 640_KiB, 0.95, 0.1, 0.4),
                              2200, 0.3));
        });

    b.procedure("route_net").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.block(24, 8, withDrift(chasePattern(3, 1_MiB, 0.8), 1900, 0.35));
            s.compute(9);
        });

    b.procedure("rr_graph_build").loop(
        trips(scale, 3000), [&](StmtSeq& s) {
            s.block(34, 15, stridePattern(4, 1536_KiB, 8, 0.65, 0.8));
        });

    StmtSeq main = b.procedure("main");
    main.loop(trips(scale, 18),
              [&](StmtSeq& t) { t.call("place_stage"); });
    main.call("rr_graph_build");
    main.loop(trips(scale, 16),
              [&](StmtSeq& t) { t.call("route_net"); });
    return b.build();
}

} // namespace xbsp::workloads
