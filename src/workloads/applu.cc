/**
 * @file
 * applu analogue — the paper's mapping-failure case study (§5.1).
 *
 * Five PDE solver procedures (jacld, blts, jacu, buts, rhs) share a
 * similar loop structure and are called from the outer timestep
 * loop.  Under -O2 the model optimizer inlines all five (their
 * symbols disappear) *and* splits their loops (duplicating the loop
 * markers' source lines), so no marker inside a timestep survives
 * matching.  The only mappable points left are the outer loop and
 * the init code, which forces the VLI builder to emit intervals far
 * larger than the target — reproducing applu's outlier bar in
 * Figure 2.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeApplu(double scale)
{
    ir::ProgramBuilder b("applu");

    struct Solver
    {
        const char* name;
        u32 region;
        u64 ws;
        u32 instrs;
    };
    const Solver solvers[] = {
        {"jacld", 1, 512_KiB, 34},
        {"blts", 2, 512_KiB, 30},
        {"jacu", 3, 768_KiB, 34},
        {"buts", 4, 768_KiB, 30},
        {"rhs", 5, 1_MiB, 38},
    };

    for (const Solver& sv : solvers) {
        // Each solver: two sweeps with the same looping structure
        // (the paper notes the five procedures look alike), both
        // split by the optimizer.
        b.procedure(sv.name, ir::InlineHint::Always)
            .loop(trips(scale, 680),
                  [&](StmtSeq& s) {
                      s.block(sv.instrs, 12,
                              withDrift(stridePattern(sv.region, sv.ws,
                                                      8, 0.35, 0.0),
                                        170, 0.3));
                      s.block(sv.instrs - 6, 8,
                              randomPattern(sv.region + 10, 192_KiB,
                                            0.2, 0.1));
                  },
                  LoopOpts{.splittable = true})
            .loop(trips(scale, 520),
                  [&](StmtSeq& s) {
                      s.block(sv.instrs + 4, 11,
                              stridePattern(sv.region, sv.ws, 16, 0.3,
                                            0.0));
                      s.compute(16);
                  },
                  LoopOpts{.splittable = true});
    }

    b.procedure("init").loop(trips(scale, 2600), [&](StmtSeq& s) {
        s.block(42, 14, stridePattern(20, 1_MiB, 8, 0.5, 0.0));
    });

    b.procedure("l2norm").loop(trips(scale, 800), [&](StmtSeq& s) {
        s.block(26, 10, stridePattern(21, 512_KiB, 8, 0.1, 0.0));
    });

    StmtSeq main = b.procedure("main");
    main.call("init");
    main.loop(trips(scale, 30), [&](StmtSeq& ts) {
        ts.call("jacld");
        ts.call("blts");
        ts.call("jacu");
        ts.call("buts");
        ts.call("rhs");
    });
    main.call("l2norm");
    return b.build();
}

} // namespace xbsp::workloads
