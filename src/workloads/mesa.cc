/**
 * @file
 * mesa analogue: software 3D rendering pipeline.  Frames alternate
 * between a simple scene (vertex-transform bound) and a complex
 * scene (texture-fetch bound); each frame runs vertex transform
 * (compute, unrollable), rasterization (streaming into the frame
 * buffer) and texturing (hot/cold gathers into texture memory).
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeMesa(double scale)
{
    ir::ProgramBuilder b("mesa");

    b.procedure("vertex_transform").loop(
        trips(scale, 5400), [&](StmtSeq& outer) {
            outer.loop(4, [&](StmtSeq& s) { s.compute(14); },
                       LoopOpts{.unrollable = true});
            outer.block(10, 4,
                        stridePattern(1, 384_KiB, 8, 0.2, 0.2));
        });

    b.procedure("rasterize").loop(
        trips(scale, 4800), [&](StmtSeq& s) {
            s.block(24, 11, stridePattern(2, 640_KiB, 8, 0.75, 0.0));
            s.compute(8);
        });

    b.procedure("texture_simple").loop(
        trips(scale, 2200), [&](StmtSeq& s) {
            s.block(20, 9, gatherPattern(3, 768_KiB, 0.96, 0.05, 0.1));
        });

    b.procedure("texture_complex").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.block(24, 12,
                    withDrift(gatherPattern(4, 2_MiB, 0.91, 0.05, 0.1),
                              1800, 0.3));
            s.compute(6);
        });

    b.procedure("clear_buffers", ir::InlineHint::Always)
        .loop(trips(scale, 1000), [&](StmtSeq& s) {
            s.block(10, 5, stridePattern(2, 640_KiB, 8, 1.0, 0.0));
        });

    StmtSeq main = b.procedure("main");
    main.loop(trips(scale, 6), [&](StmtSeq& frame) {
        frame.call("clear_buffers");
        frame.call("vertex_transform");
        frame.call("rasterize");
        frame.call("texture_simple");
        frame.call("clear_buffers");
        frame.call("vertex_transform");
        frame.call("rasterize");
        frame.call("texture_complex");
    });
    return b.build();
}

} // namespace xbsp::workloads
