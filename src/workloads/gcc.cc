/**
 * @file
 * gcc/166 analogue (the paper's Table 2 subject).
 *
 * The compiler is modelled as a pipeline of passes (parse, ssa
 * optimization, register allocation, emission) applied to a stream of
 * input functions in three size classes.  Each (pass, size class)
 * pair is a distinct static code body with its own working set, which
 * yields 13+ distinct behaviours — more than the maxK=10 cluster cap,
 * so per-binary SimPoint is forced to group behaviours, and it groups
 * them differently in different binaries.  That is exactly the
 * changing-bias failure mode Table 2 demonstrates.
 *
 * A shared symbol-lookup helper is marked InlineHint::Partial: the
 * optimizer inlines it at alternating call sites, so its entry counts
 * diverge between optimization levels and the matcher must reject it.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeGcc(double scale)
{
    ir::ProgramBuilder b("gcc");

    // Shared hash/symbol helper, partially inlined under -O2.
    b.procedure("lookup_symbol", ir::InlineHint::Partial)
        .block(26, 10, chasePattern(1, 320_KiB, 1.0));

    struct SizeClass
    {
        const char* suffix;
        u64 mult;        // trip multiplier
        u64 symtab;      // parse working set
        u64 irPool;      // ssa working set
    };
    const SizeClass classes[] = {
        {"small", 1, 192_KiB, 256_KiB},
        {"medium", 2, 448_KiB, 640_KiB},
        {"large", 4, 896_KiB, 1280_KiB},
    };

    for (const SizeClass& cls : classes) {
        const std::string sfx = cls.suffix;

        b.procedure("parse_" + sfx).loop(
            trips(scale, 3600 * cls.mult), [&](StmtSeq& s) {
                s.block(30, 11,
                        withDrift(chasePattern(2, cls.symtab, 0.9),
                                  2600, 0.3));
                s.call("lookup_symbol");
                s.block(22, 6,
                        stridePattern(3, 192_KiB, 8, 0.3, 0.1));
            });

        b.procedure("ssa_opt_" + sfx)
            .loop(trips(scale, 4200 * cls.mult), [&](StmtSeq& s) {
                s.block(40, 15,
                        withDrift(randomPattern(4, cls.irPool, 0.25,
                                                0.6),
                                  2100, 0.35));
                // Dataflow bit-vector kernel, unrollable under -O2.
                s.loop(8,
                       [&](StmtSeq& inner) { inner.compute(12); },
                       LoopOpts{.unrollable = true});
            });

        b.procedure("regalloc_" + sfx)
            .loop(trips(scale, 3400 * cls.mult), [&](StmtSeq& s) {
                s.block(34, 12,
                        gatherPattern(5, cls.irPool, 0.93, 0.2, 0.5));
                s.compute(18);
            });

        b.procedure("emit_" + sfx).loop(
            trips(scale, 2600 * cls.mult), [&](StmtSeq& s) {
                s.block(24, 9,
                        stridePattern(6, 256_KiB, 8, 0.55, 0.0));
            });
    }

    // Option parsing / file IO at startup.
    b.procedure("init").loop(trips(scale, 2200), [&](StmtSeq& s) {
        s.block(36, 12, stridePattern(7, 128_KiB, 8, 0.4, 0.2));
    });

    StmtSeq main = b.procedure("main");
    main.call("init");
    main.loop(trips(scale, 3), [&](StmtSeq& s) {
        for (const SizeClass& cls : classes) {
            const std::string sfx = cls.suffix;
            s.call("parse_" + sfx);
            s.call("ssa_opt_" + sfx);
            s.call("regalloc_" + sfx);
            s.call("emit_" + sfx);
        }
    });
    return b.build();
}

} // namespace xbsp::workloads
