/**
 * @file
 * mcf analogue: network-simplex minimum-cost flow.  Dominated by
 * dependent pointer chasing through a multi-megabyte, pointer-heavy
 * arc/node graph (the highest-CPI program in the suite, and the one
 * whose footprint grows most on 64-bit targets), alternating pricing
 * sweeps with flow updates and occasional basis refactorisations.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeMcf(double scale)
{
    ir::ProgramBuilder b("mcf");

    b.procedure("price_arcs").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.block(22, 7,
                    withDrift(chasePattern(1, 1280_KiB, 1.0),
                              1700, 0.35));
            s.compute(8);
        });

    b.procedure("update_flow").loop(
        trips(scale, 3600), [&](StmtSeq& s) {
            s.block(26, 8,
                    withDrift(gatherPattern(2, 3_MiB, 0.9, 0.35, 1.0),
                              1300, 0.3));
        });

    b.procedure("refactor_basis").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.block(20, 8, stridePattern(3, 384_KiB, 8, 0.4, 0.6));
            s.compute(16);
        });

    b.procedure("read_network").loop(
        trips(scale, 2600), [&](StmtSeq& s) {
            s.block(34, 15, stridePattern(4, 2_MiB, 8, 0.7, 1.0));
        });

    StmtSeq main = b.procedure("main");
    main.call("read_network");
    main.loop(trips(scale, 30), [&](StmtSeq& iter) {
        iter.call("price_arcs");
        iter.call("update_flow");
    });
    main.call("refactor_basis");
    return b.build();
}

} // namespace xbsp::workloads
