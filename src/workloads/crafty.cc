/**
 * @file
 * crafty analogue: chess search.  Iterative-deepening rounds of
 * alpha-beta search: compute-dominated move generation and
 * evaluation with transposition-table probes (random traffic into a
 * pointer-heavy hash table).  Evaluation is partially inlined under
 * -O2, and the endgame rounds shift the block mix toward the
 * table-probe side.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeCrafty(double scale)
{
    ir::ProgramBuilder b("crafty");

    b.procedure("evaluate", ir::InlineHint::Partial)
        .block(30, 6, stridePattern(1, 96_KiB, 8, 0.1, 0.0))
        .compute(26);

    b.procedure("hash_probe", ir::InlineHint::Always)
        .block(14, 6,
               withDrift(randomPattern(2, 448_KiB, 0.15, 1.0),
                         3200, 0.35));

    b.procedure("search_midgame").loop(
        trips(scale, 9500), [&](StmtSeq& s) {
            s.compute(24);
            s.call("hash_probe");
            s.call("evaluate");
            s.loop(4, [&](StmtSeq& gen) { gen.compute(11); },
                   LoopOpts{.unrollable = true});
        });

    b.procedure("search_endgame").loop(
        trips(scale, 6500), [&](StmtSeq& s) {
            s.compute(14);
            s.call("hash_probe");
            s.block(16, 7, randomPattern(3, 320_KiB, 0.1, 0.4));
            s.call("evaluate");
        });

    b.procedure("book_init").loop(
        trips(scale, 1200), [&](StmtSeq& s) {
            s.block(28, 12, stridePattern(4, 512_KiB, 8, 0.5, 0.3));
        });

    StmtSeq main = b.procedure("main");
    main.call("book_init");
    main.loop(trips(scale, 5), [&](StmtSeq& round) {
        round.call("search_midgame");
    });
    main.loop(trips(scale, 4), [&](StmtSeq& round) {
        round.call("search_endgame");
    });
    return b.build();
}

} // namespace xbsp::workloads
