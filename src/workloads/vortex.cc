/**
 * @file
 * vortex analogue: object-oriented database.  Transactions traverse
 * pointer-dense object graphs (lookups), allocate and link new
 * objects (inserts) and run integrity validation (compute).  Many
 * small helper procedures with partial inlining mirror vortex's
 * notoriously call-heavy profile.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeVortex(double scale)
{
    ir::ProgramBuilder b("vortex");

    b.procedure("obj_deref", ir::InlineHint::Partial)
        .block(12, 6, withDrift(chasePattern(1, 768_KiB, 1.0), 4500, 0.22));

    b.procedure("mem_alloc", ir::InlineHint::Partial)
        .block(14, 6, randomPattern(2, 256_KiB, 0.5, 0.8));

    b.procedure("txn_lookup").loop(
        trips(scale, 6600), [&](StmtSeq& s) {
            s.call("obj_deref");
            s.compute(14);
            s.block(10, 5, gatherPattern(3, 1536_KiB, 0.94, 0.1, 0.9));
        });

    b.procedure("txn_insert").loop(
        trips(scale, 4200), [&](StmtSeq& s) {
            s.call("obj_deref");
            s.call("mem_alloc");
            s.block(14, 7,
                    withDrift(randomPattern(4, 640_KiB, 0.45, 0.9),
                              1400, 0.3));
        });

    b.procedure("txn_validate").loop(
        trips(scale, 3600), [&](StmtSeq& s) {
            s.call("obj_deref");
            s.compute(22);
        });

    b.procedure("db_load").loop(
        trips(scale, 2600), [&](StmtSeq& s) {
            s.block(30, 14, stridePattern(5, 1536_KiB, 8, 0.7, 0.9));
        });

    StmtSeq main = b.procedure("main");
    main.call("db_load");
    main.loop(trips(scale, 12), [&](StmtSeq& round) {
        round.call("txn_lookup");
        round.call("txn_insert");
        round.call("txn_lookup");
        round.call("txn_validate");
    });
    return b.build();
}

} // namespace xbsp::workloads
