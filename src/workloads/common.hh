/**
 * @file
 * Shared helpers for workload definitions.
 */

#ifndef XBSP_WORKLOADS_COMMON_HH
#define XBSP_WORKLOADS_COMMON_HH

#include <algorithm>
#include <cmath>

#include "ir/builder.hh"

namespace xbsp::workloads
{

using ir::chasePattern;
using ir::gatherPattern;
using ir::LoopOpts;
using ir::randomPattern;
using ir::StmtSeq;
using ir::stridePattern;
using ir::operator""_KiB;
using ir::operator""_MiB;

/** Scale an outer trip count, never below 1. */
inline u64
trips(double scale, u64 base)
{
    return std::max<u64>(
        1, static_cast<u64>(std::llround(scale *
                                         static_cast<double>(base))));
}

} // namespace xbsp::workloads

#endif // XBSP_WORKLOADS_COMMON_HH
