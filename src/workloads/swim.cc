/**
 * @file
 * swim analogue: shallow-water stencil code.  Three long grid sweeps
 * (calc1, calc2, calc3) per timestep over multi-megabyte arrays,
 * each dominated by unit-stride streaming with a distinct footprint,
 * plus a periodic smoothing pass.  Very regular: a handful of clean
 * phases.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeSwim(double scale)
{
    ir::ProgramBuilder b("swim");

    b.procedure("calc1").loop(trips(scale, 4200), [&](StmtSeq& s) {
        s.block(46, 20,
                withDrift(stridePattern(1, 1_MiB, 8, 0.4, 0.0),
                          1400, 0.3));
        s.compute(14);
    });

    b.procedure("calc2").loop(trips(scale, 4200), [&](StmtSeq& s) {
        s.block(50, 22,
                withDrift(stridePattern(2, 1280_KiB, 8, 0.4, 0.0),
                          1400, 0.3));
        s.compute(10);
    });

    b.procedure("calc3").loop(trips(scale, 3600), [&](StmtSeq& s) {
        s.block(42, 18, stridePattern(3, 896_KiB, 8, 0.35, 0.0));
        s.compute(12);
    });

    // Periodic smoothing, vectorizable: unrolled under -O2.
    b.procedure("smooth", ir::InlineHint::Always)
        .loop(trips(scale, 1200), [&](StmtSeq& outer) {
            outer.loop(8,
                       [&](StmtSeq& s) {
                           s.block(12, 5,
                                   stridePattern(4, 512_KiB, 8, 0.5,
                                                 0.0));
                       },
                       LoopOpts{.unrollable = true});
        });

    b.procedure("inital").loop(trips(scale, 3000), [&](StmtSeq& s) {
        s.block(34, 14, stridePattern(5, 1_MiB, 8, 0.6, 0.0));
    });

    StmtSeq main = b.procedure("main");
    main.call("inital");
    main.loop(trips(scale, 14), [&](StmtSeq& ts) {
        ts.call("calc1");
        ts.call("calc2");
        ts.call("calc3");
        ts.call("smooth");
    });
    return b.build();
}

} // namespace xbsp::workloads
