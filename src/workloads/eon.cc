/**
 * @file
 * eon analogue: probabilistic ray tracer rendered with three
 * different shading models in sequence (kajiya, cook, rushmeier).
 * Almost entirely compute with a small scene cache — the low-CPI,
 * low-variance end of the suite, with exactly three clean phases.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

namespace
{

void
defineShader(ir::ProgramBuilder& b, const char* name, double scale,
             u64 rays, u32 shadeCost, u32 region)
{
    b.procedure(name).loop(trips(scale, rays), [&](StmtSeq& s) {
        s.compute(shadeCost);
        s.block(16, 6,
                randomPattern(region, 160_KiB, 0.05, 0.2));
        s.loop(4, [&](StmtSeq& bounce) { bounce.compute(13); },
               LoopOpts{.unrollable = true});
    });
}

} // namespace

ir::Program
makeEon(double scale)
{
    ir::ProgramBuilder b("eon");

    defineShader(b, "render_kajiya", scale, 22000, 34, 1);
    defineShader(b, "render_cook", scale, 27000, 26, 2);
    defineShader(b, "render_rushmeier", scale, 20000, 42, 3);

    b.procedure("build_scene", ir::InlineHint::Never)
        .loop(trips(scale, 2200), [&](StmtSeq& s) {
            s.block(30, 12, stridePattern(4, 384_KiB, 8, 0.6, 0.4));
        });

    StmtSeq main = b.procedure("main");
    main.call("build_scene");
    main.call("render_kajiya");
    main.call("render_cook");
    main.call("render_rushmeier");
    return b.build();
}

} // namespace xbsp::workloads
