/**
 * @file
 * apsi analogue (the paper's Table 3 subject): a meteorology code
 * sweeping six field kernels over two grid configurations per
 * timestep.  The 12 (kernel, grid) behaviours exceed the maxK=10
 * cluster cap, so phase grouping differs across binaries under
 * per-binary SimPoint — the changing-bias effect of Table 3.  The
 * dominant kernels drift (pressure systems move through the grid),
 * so a single simulation point per phase is a biased estimator.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeApsi(double scale)
{
    ir::ProgramBuilder b("apsi");

    struct Kernel
    {
        const char* name;
        u32 region;
        ir::MemPattern (*make)(u32 region, u64 ws);
        u64 wsFine;
        u64 wsCoarse;
        u32 instrs;
        u32 memOps;
    };
    auto strideK = [](u32 r, u64 ws) {
        return stridePattern(r, ws, 8, 0.35, 0.0);
    };
    auto randomK = [](u32 r, u64 ws) {
        return randomPattern(r, ws, 0.2, 0.3);
    };
    auto gatherK = [](u32 r, u64 ws) {
        return gatherPattern(r, ws, 0.93, 0.15, 0.2);
    };
    auto chaseK = [](u32 r, u64 ws) { return chasePattern(r, ws, 0.7); };

    const Kernel kernels[] = {
        {"dcdtz", 1, +strideK, 896_KiB, 256_KiB, 44, 16},
        {"dtdtz", 2, +strideK, 512_KiB, 160_KiB, 38, 14},
        {"dudtz", 3, +randomK, 320_KiB, 96_KiB, 42, 12},
        {"dvdtz", 4, +gatherK, 1536_KiB, 512_KiB, 40, 11},
        {"wcont", 5, +chaseK, 384_KiB, 128_KiB, 36, 9},
        {"smth", 6, +strideK, 192_KiB, 96_KiB, 30, 10},
    };

    for (const Kernel& k : kernels) {
        // Fine-grid variant: long sweeps, big footprint, drifting.
        b.procedure(std::string(k.name) + "_fine")
            .loop(trips(scale, 3200), [&](StmtSeq& s) {
                s.block(k.instrs, k.memOps,
                        withDrift(k.make(k.region, k.wsFine), 1100,
                                  0.35));
                s.compute(10);
            });
        // Coarse-grid variant: shorter sweeps, small footprint.
        b.procedure(std::string(k.name) + "_coarse")
            .loop(trips(scale, 1800), [&](StmtSeq& s) {
                s.block(k.instrs, k.memOps,
                        k.make(k.region + 10, k.wsCoarse));
                s.compute(6);
            });
    }

    // Vertical interpolation helper, fully inlined under -O2.
    b.procedure("interp", ir::InlineHint::Always)
        .loop(trips(scale, 900), [&](StmtSeq& s) {
            s.block(28, 10, stridePattern(30, 256_KiB, 8, 0.3, 0.0));
        });

    b.procedure("setup").loop(trips(scale, 2400), [&](StmtSeq& s) {
        s.block(40, 14, stridePattern(31, 768_KiB, 8, 0.5, 0.1));
    });

    StmtSeq main = b.procedure("main");
    main.call("setup");
    main.loop(trips(scale, 8), [&](StmtSeq& ts) {
        for (const Kernel& k : kernels)
            ts.call(std::string(k.name) + "_fine");
        ts.call("interp");
        for (const Kernel& k : kernels)
            ts.call(std::string(k.name) + "_coarse");
    });
    return b.build();
}

} // namespace xbsp::workloads
