/**
 * @file
 * fma3d analogue: explicit finite-element crash simulation.  Element
 * force assembly streams over element data with an unrollable
 * constitutive kernel; contact search is irregular over a large node
 * pool; nodal update streams.  Contact grows more expensive in the
 * second half of the run (two contact variants).
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeFma3d(double scale)
{
    ir::ProgramBuilder b("fma3d");

    b.procedure("element_forces").loop(
        trips(scale, 5600), [&](StmtSeq& s) {
            s.block(26, 11,
                    withDrift(stridePattern(1, 768_KiB, 8, 0.35, 0.0),
                              1900, 0.3));
            s.loop(4, [&](StmtSeq& k) { k.compute(12); },
                   LoopOpts{.unrollable = true});
        });

    b.procedure("contact_light").loop(
        trips(scale, 2600), [&](StmtSeq& s) {
            s.block(30, 13, randomPattern(2, 512_KiB, 0.2, 0.4));
        });

    b.procedure("contact_heavy").loop(
        trips(scale, 4400), [&](StmtSeq& s) {
            s.block(32, 15,
                    withDrift(gatherPattern(3, 2_MiB, 0.92, 0.25, 0.4),
                              1500, 0.3));
            s.compute(8);
        });

    b.procedure("nodal_update", ir::InlineHint::Always)
        .loop(trips(scale, 2400), [&](StmtSeq& s) {
            s.block(22, 10, stridePattern(4, 640_KiB, 8, 0.55, 0.0));
        });

    b.procedure("gen_mesh").loop(
        trips(scale, 2200), [&](StmtSeq& s) {
            s.block(36, 15, stridePattern(5, 1_MiB, 8, 0.6, 0.3));
        });

    StmtSeq main = b.procedure("main");
    main.call("gen_mesh");
    main.loop(trips(scale, 6), [&](StmtSeq& ts) {
        ts.call("element_forces");
        ts.call("contact_light");
        ts.call("nodal_update");
    });
    main.loop(trips(scale, 6), [&](StmtSeq& ts) {
        ts.call("element_forces");
        ts.call("contact_heavy");
        ts.call("nodal_update");
    });
    return b.build();
}

} // namespace xbsp::workloads
