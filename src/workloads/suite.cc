#include "workloads/workloads.hh"

#include "util/logging.hh"

namespace xbsp::workloads
{

const std::vector<WorkloadInfo>&
suite()
{
    static const std::vector<WorkloadInfo> workloads = {
        {"ammp", "molecular dynamics: neighbor rebuilds + force "
                 "streaming", &makeAmmp},
        {"applu", "PDE solver whose inlined+split loops defeat "
                  "mapping (paper's failure case)", &makeApplu},
        {"apsi", "meteorology kernels, 12 behaviours > maxK "
                 "(Table 3 subject)", &makeApsi},
        {"art", "neural network with two long stable mega-phases",
         &makeArt},
        {"bzip2", "block sorting compression over input classes",
         &makeBzip2},
        {"crafty", "chess search: compute + hash-table probes",
         &makeCrafty},
        {"eon", "ray tracer, three shading models, compute bound",
         &makeEon},
        {"equake", "unstructured-mesh sparse solver", &makeEquake},
        {"fma3d", "finite-element crash simulation with contact",
         &makeFma3d},
        {"gcc", "compiler passes over input size classes, 13 "
                "behaviours > maxK (Table 2 subject)", &makeGcc},
        {"gzip", "LZ77 deflate over entropy classes", &makeGzip},
        {"lucas", "FFT squaring with doubling strides", &makeLucas},
        {"mcf", "network simplex: pointer-chase dominated, "
                "pointer-heavy data", &makeMcf},
        {"mesa", "software 3D pipeline, alternating scenes",
         &makeMesa},
        {"perlbmk", "Perl interpreter over a script mix",
         &makePerlbmk},
        {"sixtrack", "particle tracking, tight compute kernels",
         &makeSixtrack},
        {"swim", "shallow-water stencils, streaming sweeps",
         &makeSwim},
        {"twolf", "annealing placement, hot/cold stages", &makeTwolf},
        {"vortex", "OO database transactions, call heavy",
         &makeVortex},
        {"vpr", "place (random) then route (chase) mega-phases",
         &makeVpr},
        {"wupwise", "lattice QCD solver with BLAS helpers",
         &makeWupwise},
    };
    return workloads;
}

const WorkloadInfo*
findWorkload(const std::string& name)
{
    for (const WorkloadInfo& info : suite()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

ir::Program
makeWorkload(const std::string& name, double scale)
{
    const WorkloadInfo* info = findWorkload(name);
    if (!info)
        fatal("unknown workload '{}'", name);
    return info->factory(scale);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadInfo& info : suite())
        names.push_back(info.name);
    return names;
}

} // namespace xbsp::workloads
