/**
 * @file
 * ammp analogue: molecular dynamics.  Each timestep rebuilds part of
 * the neighbor structure (hot/cold gathers over a large atom pool)
 * and then evaluates pairwise forces (streaming with an unrollable
 * inner kernel).  Neighbor-list churn drifts over the run, so the
 * rebuild phase's cost is time-varying within the phase.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeAmmp(double scale)
{
    ir::ProgramBuilder b("ammp");

    b.procedure("rebuild_neighbors").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.block(38, 10,
                    withDrift(gatherPattern(1, 2_MiB, 0.95, 0.25, 0.5),
                              1600, 0.2));
            s.compute(10);
        });

    b.procedure("force_eval").loop(
        trips(scale, 7000), [&](StmtSeq& outer) {
            outer.block(18, 7,
                        withDrift(stridePattern(2, 640_KiB, 8, 0.3,
                                                0.2),
                                  2200, 0.3));
            outer.loop(8,
                       [&](StmtSeq& s) { s.compute(9); },
                       LoopOpts{.unrollable = true});
        });

    b.procedure("integrate", ir::InlineHint::Always)
        .loop(trips(scale, 2600), [&](StmtSeq& s) {
            s.block(24, 10, stridePattern(3, 512_KiB, 8, 0.5, 0.0));
        });

    b.procedure("setup").loop(trips(scale, 2000), [&](StmtSeq& s) {
        s.block(40, 12, randomPattern(4, 384_KiB, 0.5, 0.5));
    });

    StmtSeq main = b.procedure("main");
    main.call("setup");
    main.loop(trips(scale, 9), [&](StmtSeq& ts) {
        ts.call("rebuild_neighbors");
        ts.loop(3, [&](StmtSeq& sub) {
            sub.call("force_eval");
            sub.call("integrate");
        });
    });
    return b.build();
}

} // namespace xbsp::workloads
