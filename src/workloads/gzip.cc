/**
 * @file
 * gzip analogue: LZ77 deflate over a stream of input files that
 * cycle through entropy classes.  The match finder chases hash
 * chains inside a 256 KiB window; low-entropy inputs find long
 * matches (cheap) while high-entropy inputs hammer the hash chains
 * (expensive), giving recurring per-file behaviour variants.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeGzip(double scale)
{
    ir::ProgramBuilder b("gzip");

    b.procedure("deflate_low").loop(
        trips(scale, 5200), [&](StmtSeq& s) {
            s.block(20, 8, stridePattern(1, 256_KiB, 8, 0.3, 0.0));
            s.compute(18);
        });

    b.procedure("deflate_high").loop(
        trips(scale, 8200), [&](StmtSeq& s) {
            s.block(24, 11,
                    withDrift(chasePattern(2, 320_KiB, 0.6),
                              3000, 0.3));
            s.compute(10);
        });

    b.procedure("huffman_emit", ir::InlineHint::Partial)
        .loop(trips(scale, 3000), [&](StmtSeq& s) {
            s.compute(22);
            s.block(12, 5, stridePattern(3, 128_KiB, 8, 0.8, 0.0));
        });

    b.procedure("crc_update", ir::InlineHint::Always)
        .loop(trips(scale, 2200), [&](StmtSeq& outer) {
            outer.loop(8, [&](StmtSeq& s) { s.compute(6); },
                       LoopOpts{.unrollable = true});
        });

    StmtSeq main = b.procedure("main");
    main.loop(trips(scale, 11), [&](StmtSeq& file) {
        file.call("deflate_low");
        file.call("huffman_emit");
        file.call("crc_update");
        file.call("deflate_high");
        file.call("huffman_emit");
        file.call("crc_update");
    });
    return b.build();
}

} // namespace xbsp::workloads
