/**
 * @file
 * lucas analogue: Lucas-Lehmer primality testing via FFT-based
 * squaring.  Each iteration runs butterfly passes with successively
 * doubling strides over a 4 MiB signal (progressively worse
 * locality), then a carry-propagation streaming pass and a pointwise
 * modular kernel.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeLucas(double scale)
{
    ir::ProgramBuilder b("lucas");

    const u64 strides[] = {64, 256, 1024, 4096};
    for (std::size_t i = 0; i < 4; ++i) {
        b.procedure("fft_pass" + std::to_string(i))
            .loop(trips(scale, 2600), [&](StmtSeq& s) {
                s.block(24, 8,
                        stridePattern(static_cast<u32>(i + 1), 1_MiB,
                                      strides[i], 0.45, 0.0));
                s.compute(15);
            });
    }

    b.procedure("carry_prop", ir::InlineHint::Always)
        .loop(trips(scale, 2000), [&](StmtSeq& s) {
            s.block(18, 8, stridePattern(10, 768_KiB, 8, 0.5, 0.0));
        });

    b.procedure("pointwise_mod").loop(
        trips(scale, 1600), [&](StmtSeq& outer) {
            outer.loop(4, [&](StmtSeq& s) { s.compute(16); },
                       LoopOpts{.unrollable = true});
            outer.block(10, 4,
                        stridePattern(11, 512_KiB, 8, 0.5, 0.0));
        });

    StmtSeq main = b.procedure("main");
    main.loop(trips(scale, 18), [&](StmtSeq& iter) {
        for (int i = 0; i < 4; ++i)
            iter.call("fft_pass" + std::to_string(i));
        iter.call("pointwise_mod");
        iter.call("carry_prop");
    });
    return b.build();
}

} // namespace xbsp::workloads
