/**
 * @file
 * sixtrack analogue: particle tracking through an accelerator
 * lattice.  Tiny resident working set and tight vectorizable kernels
 * — the most compute-bound, lowest-CPI program in the suite, with a
 * single dominant behaviour.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeSixtrack(double scale)
{
    ir::ProgramBuilder b("sixtrack");

    b.procedure("track_turn").loop(
        trips(scale, 11000), [&](StmtSeq& outer) {
            outer.loop(8, [&](StmtSeq& s) { s.compute(12); },
                       LoopOpts{.unrollable = true});
            outer.block(8, 3, stridePattern(1, 64_KiB, 8, 0.3, 0.0));
        });

    b.procedure("aperture_check", ir::InlineHint::Always)
        .loop(trips(scale, 4500), [&](StmtSeq& s) {
            s.compute(15);
            s.block(6, 2, stridePattern(2, 32_KiB, 8, 0.2, 0.0));
        });

    b.procedure("lattice_setup").loop(
        trips(scale, 1400), [&](StmtSeq& s) {
            s.block(30, 12, stridePattern(3, 384_KiB, 8, 0.5, 0.1));
        });

    StmtSeq main = b.procedure("main");
    main.call("lattice_setup");
    main.loop(trips(scale, 10), [&](StmtSeq& turn) {
        turn.call("track_turn");
        turn.call("aperture_check");
    });
    return b.build();
}

} // namespace xbsp::workloads
