/**
 * @file
 * equake analogue: unstructured-mesh earthquake simulation.  Each
 * timestep performs a sparse matrix-vector product (indexed gathers
 * over the mesh), followed by time integration (streaming) — plus an
 * irregular quake-excitation phase early in the run.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makeEquake(double scale)
{
    ir::ProgramBuilder b("equake");

    b.procedure("smvp").loop(trips(scale, 6200), [&](StmtSeq& s) {
        s.block(34, 16,
                withDrift(gatherPattern(1, 2_MiB, 0.93, 0.1, 0.5),
                          2100, 0.35));
        s.compute(12);
    });

    b.procedure("time_integrate", ir::InlineHint::Always)
        .loop(trips(scale, 3600), [&](StmtSeq& s) {
            s.block(26, 12, stridePattern(2, 768_KiB, 8, 0.5, 0.0));
        });

    b.procedure("excitation").loop(
        trips(scale, 4200), [&](StmtSeq& s) {
            s.block(30, 13, randomPattern(3, 448_KiB, 0.3, 0.2));
            s.compute(9);
        });

    b.procedure("mesh_init").loop(
        trips(scale, 2800), [&](StmtSeq& s) {
            s.block(38, 16, stridePattern(4, 1_MiB, 8, 0.6, 0.5));
        });

    StmtSeq main = b.procedure("main");
    main.call("mesh_init");
    main.loop(trips(scale, 6),
              [&](StmtSeq& q) { q.call("excitation"); });
    main.loop(trips(scale, 22), [&](StmtSeq& ts) {
        ts.call("smvp");
        ts.call("time_integrate");
    });
    return b.build();
}

} // namespace xbsp::workloads
