/**
 * @file
 * perlbmk analogue: Perl interpreter running a mix of scripts.  The
 * opcode dispatch loop chases through the compiled op tree; regex
 * matching is compute-dense over small buffers; hash-table scripts
 * hit a larger associative-array pool.  Scripts cycle, producing
 * interleaved interpreter behaviours.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace xbsp::workloads
{

ir::Program
makePerlbmk(double scale)
{
    ir::ProgramBuilder b("perlbmk");

    b.procedure("interp_optree").loop(
        trips(scale, 7800), [&](StmtSeq& s) {
            s.block(18, 8,
                    withDrift(chasePattern(1, 384_KiB, 0.9),
                              3100, 0.2));
            s.compute(16);
        });

    b.procedure("regex_match").loop(
        trips(scale, 6400), [&](StmtSeq& s) {
            s.compute(26);
            s.block(10, 4, stridePattern(2, 96_KiB, 8, 0.1, 0.0));
        });

    b.procedure("hash_ops").loop(
        trips(scale, 4600), [&](StmtSeq& s) {
            s.block(24, 11,
                    withDrift(randomPattern(3, 384_KiB, 0.3, 0.8),
                              1800, 0.22));
        });

    b.procedure("sv_alloc", ir::InlineHint::Partial)
        .block(16, 7, randomPattern(4, 192_KiB, 0.5, 0.7));

    b.procedure("compile_script").loop(
        trips(scale, 2400), [&](StmtSeq& s) {
            s.block(28, 11, chasePattern(5, 448_KiB, 0.9));
            s.call("sv_alloc");
            s.compute(9);
        });

    StmtSeq main = b.procedure("main");
    main.loop(trips(scale, 9), [&](StmtSeq& script) {
        script.call("compile_script");
        script.call("interp_optree");
        script.call("regex_match");
        script.call("interp_optree");
        script.call("hash_ops");
    });
    return b.build();
}

} // namespace xbsp::workloads
