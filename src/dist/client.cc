#include "dist/client.hh"

#include <stdexcept>

#include "dist/transport.hh"

namespace xbsp::dist
{

SuiteResponse
submitSuite(const std::string& addressSpec,
            const SuiteRequest& request, int timeoutMs)
{
    const int fd = connectTo(parseAddress(addressSpec));
    SuiteResponse response;
    try {
        if (!sendFrame(fd, frameSuiteRequest(request)))
            throw std::runtime_error("dist: request send failed");
        const std::optional<std::string> reply =
            recvFrame(fd, timeoutMs);
        if (!reply)
            throw std::runtime_error(
                "dist: no response from server");
        serial::Decoder d(*reply);
        if (decodeMsgType(d) != MsgType::SuiteResponse)
            throw serial::DecodeError("expected SuiteResponse");
        response = decodeSuiteResponse(d);
    } catch (const serial::DecodeError& e) {
        closeFd(fd);
        throw std::runtime_error(
            std::string("dist: bad response: ") + e.what());
    } catch (...) {
        closeFd(fd);
        throw;
    }
    closeFd(fd);
    return response;
}

} // namespace xbsp::dist
