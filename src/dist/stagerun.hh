/**
 * @file
 * Stage-task payloads and their worker-side replay.
 *
 * A StageTask names one memoized pipeline stage by its full
 * parameterization — workload name + scale (programs are rebuilt from
 * the registry, never shipped), the complete StudyConfig, the stage
 * kind, and the per-binary index where one applies.  Two processes
 * holding the same StageTask compute the same artifact-store keys, so
 * the worker's results land exactly where the scheduler's probe will
 * look for them.
 *
 * runStageTask() replays the dependency prefix of the requested stage
 * through a throwaway StudyBuild.  Every prefix stage is either
 * memoized (compile, profile, the VLI build, detailed runs — all
 * served from the shared store) or cheap (match), so replay cost is
 * dominated by the one stage that actually missed.  Artifacts publish
 * through the shared ArtifactStore as a side effect; the reply frame
 * carries no data (see dist/wire).
 */

#ifndef XBSP_DIST_STAGERUN_HH
#define XBSP_DIST_STAGERUN_HH

#include <string>

#include "sim/study.hh"

namespace xbsp::dist
{

/** One remote-eligible stage, fully parameterized. */
struct StageTask
{
    std::string workload;      ///< registry name (workloads::suite)
    double workScale = 1.0;    ///< trip-count multiplier
    sim::StudyConfig config;   ///< complete study parameterization
    std::string stage;         ///< "compile" | "profile" | "vli" | "binary"
    u64 index = 0;             ///< binary index (profile/binary only)
};

/** Serialize to the opaque Task.payload wire field. */
std::string encodeStageTask(const StageTask& task);

/** Inverse of encodeStageTask; throws serial::DecodeError. */
StageTask decodeStageTask(const std::string& payload);

/**
 * Single-flight identity: a digest over every field.  Tasks with
 * equal keys compute byte-identical artifacts, so the executor runs
 * one and fans the completion out to all waiters.
 */
std::string stageTaskKey(const StageTask& task);

/**
 * Execute the stage (and its dependency prefix) in this process,
 * publishing artifacts through the global ArtifactStore.  Throws on
 * unknown workloads, malformed stage names, or stage failure.
 */
void runStageTask(const StageTask& task);

} // namespace xbsp::dist

#endif // XBSP_DIST_STAGERUN_HH
