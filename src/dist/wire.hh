/**
 * @file
 * Wire protocol of the distributed executor: length-prefixed frames
 * carrying util/serial-encoded messages over a stream socket.
 *
 * Frame layout (all little-endian, written by serial::Encoder):
 *
 *   fixed32 magic "XBSD" | fixed32 payload size | payload bytes
 *
 * The payload starts with a varint message type followed by the
 * message fields.  Artifacts never travel in frames: a worker
 * publishes its results through the shared ArtifactStore and replies
 * with a tiny TaskDone — the store is the data plane, the socket only
 * the control plane.  Framing or version violations throw
 * serial::DecodeError; the peer is then treated as dead (see
 * src/dist/executor).
 *
 * Message inventory:
 *
 *   Hello        worker -> server   protocol version, worker name,
 *                                   the worker's cache dir ("" when
 *                                   unconfigured)
 *   HelloAck     server -> worker   protocol version, server name,
 *                                   the shared cache dir the worker
 *                                   must publish artifacts into
 *   Task         server -> worker   task id, single-flight spec key,
 *                                   opaque stage payload (see
 *                                   dist/stagerun)
 *   TaskDone     worker -> server   task id, ok/error, busy time
 *   Shutdown     server -> worker   drain and exit
 *   SuiteRequest client -> server   figures + study parameters
 *   SuiteResponse server -> client  rendered report (or error)
 */

#ifndef XBSP_DIST_WIRE_HH
#define XBSP_DIST_WIRE_HH

#include <string>
#include <vector>

#include "util/serial.hh"

namespace xbsp::dist
{

/** Frame magic ("XBSD" = xbsp distributed). */
constexpr u32 frameMagic = serial::fourcc("XBSD");

/**
 * Protocol version; peers with a different version are rejected.
 * Version 2: SuiteRequest carries the timing-core selection and
 * StageTask's embedded StudyConfig grew the CoreConfig fields.
 */
constexpr u32 protocolVersion = 2;

/** Largest accepted frame payload (a malformed length cannot OOM). */
constexpr u64 maxFrameBytes = 16ull * 1024 * 1024;

/** Message type discriminator (first varint of every payload). */
enum class MsgType : u64
{
    Hello = 1,
    HelloAck = 2,
    Task = 3,
    TaskDone = 4,
    Shutdown = 5,
    SuiteRequest = 6,
    SuiteResponse = 7
};

struct Hello
{
    u32 version = protocolVersion;
    std::string workerName;
    std::string cacheDir;
};

struct HelloAck
{
    u32 version = protocolVersion;
    std::string serverName;
    std::string cacheDir;
};

struct Task
{
    u64 taskId = 0;
    std::string specKey;   ///< store-key digest (single-flight id)
    std::string payload;   ///< opaque stage description
};

struct TaskDone
{
    u64 taskId = 0;
    bool ok = false;
    std::string error;     ///< "" when ok
    u64 busyNanos = 0;     ///< worker-side stage execution time
};

struct SuiteRequest
{
    std::vector<std::string> figures;    ///< "figure1".."figure5"
    std::vector<std::string> workloads;  ///< empty = full suite
    double workScale = 1.0;
    u64 intervalTarget = 250'000;
    u64 maxK = 10;
    u64 seed = 42;

    /**
     * Timing core ("inorder"/"decoupled"; "" = server default).
     * Clients resolve --core/XBSP_CORE before submitting, so the
     * rendered report never depends on the daemon's environment.
     */
    std::string core;
};

struct SuiteResponse
{
    bool ok = false;
    std::string error;   ///< "" when ok
    std::string report;  ///< rendered figure tables
};

/** Encode one message as a complete frame (magic + size + payload). */
std::string frameHello(const Hello& m);
std::string frameHelloAck(const HelloAck& m);
std::string frameTask(const Task& m);
std::string frameTaskDone(const TaskDone& m);
std::string frameShutdown();
std::string frameSuiteRequest(const SuiteRequest& m);
std::string frameSuiteResponse(const SuiteResponse& m);

/**
 * Split one received frame payload into its type; the per-message
 * decoders below consume the rest of the decoder.  All throw
 * serial::DecodeError on malformed input.
 */
MsgType decodeMsgType(serial::Decoder& d);

Hello decodeHello(serial::Decoder& d);
HelloAck decodeHelloAck(serial::Decoder& d);
Task decodeTask(serial::Decoder& d);
TaskDone decodeTaskDone(serial::Decoder& d);
SuiteRequest decodeSuiteRequest(serial::Decoder& d);
SuiteResponse decodeSuiteResponse(serial::Decoder& d);

} // namespace xbsp::dist

#endif // XBSP_DIST_WIRE_HH
