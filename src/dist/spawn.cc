#include "dist/spawn.hh"

#include <csignal>
#include <cstdlib>

#include <sys/wait.h>
#include <unistd.h>

namespace xbsp::dist
{

int
spawnProcess(const std::vector<std::string>& argv,
             const std::vector<std::string>& extraEnv)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid > 0)
        return static_cast<int>(pid);

    // Child.  Only async-signal-unsafe work left is setenv/execv;
    // acceptable because the parent is single-purpose test/bench
    // scaffolding, not a general-purpose threaded host.
    for (const std::string& entry : extraEnv) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos)
            continue;
        ::setenv(entry.substr(0, eq).c_str(),
                 entry.substr(eq + 1).c_str(), 1);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv)
        args.push_back(const_cast<char*>(arg.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    ::_exit(127);
}

int
waitProcess(int pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0)
        return -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

void
killProcess(int pid, bool graceful)
{
    ::kill(pid, graceful ? SIGTERM : SIGKILL);
}

} // namespace xbsp::dist
