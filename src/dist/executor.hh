/**
 * @file
 * Scheduler-side remote executor: the pipeline::RemoteBackend that
 * ships probe-missed stage tasks to connected worker processes.
 *
 * Structure: one I/O thread per worker connection, all pulling from a
 * shared FIFO of pending tasks.  Completions report back through the
 * DoneFn the scheduler registered; the TaskGraph run loop remains the
 * only merge point, so commit order (and therefore every figure and
 * manifest byte) is identical to a purely local run.
 *
 * Robustness model:
 *   - single-flight: tasks with equal spec keys coalesce; one flies,
 *     all callbacks fire on its completion (dist.tasks.coalesced).
 *   - per-task deadline: a worker that neither replies nor dies
 *     within the timeout is declared dead and its connection closed.
 *   - bounded retry: a task whose worker died is requeued up to
 *     `maxRetries` times (dist.tasks.retries), then failed.
 *   - fail fast: with zero live workers a submit fails immediately,
 *     so the scheduler's local-pool fallback kicks in without delay.
 *   - a worker-reported stage *error* (as opposed to worker death) is
 *     deterministic and fails the task without retry.
 *
 * A failed task is never fatal: the scheduler reruns the stage on the
 * local pool (see taskgraph.cc), so workers only ever accelerate.
 */

#ifndef XBSP_DIST_EXECUTOR_HH
#define XBSP_DIST_EXECUTOR_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pipeline/taskgraph.hh"
#include "util/types.hh"

namespace xbsp::dist
{

class Executor : public pipeline::RemoteBackend
{
  public:
    /**
     * `taskTimeoutMs` bounds one stage round-trip (send to TaskDone);
     * `maxRetries` bounds re-dispatches after worker death.
     */
    explicit Executor(int taskTimeoutMs = 120'000, int maxRetries = 2);
    ~Executor() override;

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /**
     * Adopt an accepted, hello-complete worker connection.  The
     * executor owns `fd` from here and services it on a dedicated
     * thread until the worker dies or drain() runs.
     */
    void addWorker(int fd, const std::string& workerName);

    /** Live (connected, not yet lost) worker count. */
    std::size_t workerCount() const;

    /**
     * Stop accepting work, send Shutdown to every live worker, fail
     * all queued/in-flight tasks, and join the I/O threads.  Called
     * on SIGTERM-initiated server drain and from the destructor.
     */
    void drain();

    // pipeline::RemoteBackend
    void submit(const pipeline::RemoteSpec& spec,
                DoneFn done) override;

  private:
    struct Flight
    {
        std::string key;
        std::string payload;
        std::vector<DoneFn> callbacks;
        int retries = 0;
    };

    void serviceWorker(int fd, std::string workerName);
    /** Fire a flight's callbacks (outside the lock). */
    static void settle(Flight&& flight, bool ok,
                       const std::string& workerName);
    /** Requeue after worker death, or fail when retries exhausted. */
    void requeueOrFail(Flight&& flight);

    mutable std::mutex mutex;
    std::condition_variable workAvailable;
    std::deque<std::string> queue;  ///< keys with a pending Flight
    std::unordered_map<std::string, Flight> flights;  ///< by key
    std::vector<std::thread> threads;
    std::vector<int> workerFds;
    std::size_t liveWorkers = 0;
    u64 nextTaskId = 1;
    bool stopping = false;
    const int taskTimeoutMs;
    const int maxRetries;
};

} // namespace xbsp::dist

#endif // XBSP_DIST_EXECUTOR_HH
