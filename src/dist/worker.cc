#include "dist/worker.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "dist/stagerun.hh"
#include "dist/transport.hh"
#include "dist/wire.hh"
#include "store/store.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace xbsp::dist
{

namespace
{

std::atomic<bool> drainRequested{false};

void
onSigterm(int)
{
    drainRequested.store(true, std::memory_order_relaxed);
}

/** Parsed XBSP_DIST_FAULT directive; kind "" = no fault armed. */
struct Fault
{
    std::string kind;   ///< "kill" | "kill-after" | "stall" | ""
    std::string stage;  ///< for kill/stall
    long after = 0;     ///< for kill-after
};

Fault
parseFault()
{
    Fault fault;
    const char* raw = std::getenv("XBSP_DIST_FAULT");
    if (!raw || !*raw)
        return fault;
    const std::string spec(raw);
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
        warn("dist: ignoring malformed XBSP_DIST_FAULT '{}'", spec);
        return fault;
    }
    fault.kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);
    if (fault.kind == "kill" || fault.kind == "stall") {
        fault.stage = arg;
    } else if (fault.kind == "kill-after") {
        fault.after = std::atol(arg.c_str());
    } else {
        warn("dist: ignoring malformed XBSP_DIST_FAULT '{}'", spec);
        fault.kind.clear();
    }
    return fault;
}

/** Poll tick so the loop notices SIGTERM between frames. */
constexpr int idleTickMs = 200;

} // namespace

int
runWorker(const WorkerOptions& options)
{
    const std::string name =
        options.name.empty() ? format("worker-{}", ::getpid())
                             : options.name;
    const Fault fault = parseFault();

    struct sigaction action{};
    action.sa_handler = onSigterm;
    ::sigaction(SIGTERM, &action, nullptr);

    int fd = -1;
    try {
        fd = connectTo(parseAddress(options.connect));
    } catch (const std::exception& e) {
        fatal("dist: {}", e.what());
    }

    Hello hello;
    hello.workerName = name;
    hello.cacheDir = store::ArtifactStore::global().enabled()
                         ? store::ArtifactStore::global().directory()
                         : "";
    if (!sendFrame(fd, frameHello(hello)))
        fatal("dist: handshake send failed");
    const std::optional<std::string> ackFrame = recvFrame(fd, 10'000);
    if (!ackFrame)
        fatal("dist: no HelloAck from server");
    try {
        serial::Decoder d(*ackFrame);
        if (decodeMsgType(d) != MsgType::HelloAck)
            throw serial::DecodeError("expected HelloAck");
        const HelloAck ack = decodeHelloAck(d);
        if (hello.cacheDir.empty()) {
            // Publish into the server's store; without a shared
            // cache directory remote execution cannot move results.
            store::ArtifactStore::configureGlobal(
                {ack.cacheDir, true});
        } else if (hello.cacheDir != ack.cacheDir) {
            warn("dist: worker cache dir '{}' differs from server "
                 "'{}'; artifacts will not be shared",
                 hello.cacheDir, ack.cacheDir);
        }
        inform("dist: {} connected to {} (cache {})", name,
               ack.serverName,
               store::ArtifactStore::global().directory());
    } catch (const serial::DecodeError& e) {
        fatal("dist: bad HelloAck: {}", e.what());
    }

    long executed = 0;
    int exitCode = 0;
    for (;;) {
        if (drainRequested.load(std::memory_order_relaxed)) {
            inform("dist: {} draining on SIGTERM", name);
            break;
        }
        // Wait for readability WITHOUT consuming, so an idle tick
        // never strands a half-read frame header; only once bytes
        // are pending does recvFrame take over (with its own
        // deadline against torn frames).
        pollfd pending{fd, POLLIN, 0};
        const int ready = ::poll(&pending, 1, idleTickMs);
        if (ready < 0 && errno != EINTR) {
            exitCode = 1;
            break;
        }
        if (ready <= 0)
            continue;  // idle tick or EINTR: recheck the drain flag
        const std::optional<std::string> frameData =
            recvFrame(fd, 10'000);
        if (!frameData) {
            inform("dist: {} lost server connection", name);
            exitCode = 1;
            break;
        }

        try {
            serial::Decoder d(*frameData);
            const MsgType type = decodeMsgType(d);
            if (type == MsgType::Shutdown) {
                inform("dist: {} shutting down on server request",
                       name);
                break;
            }
            if (type != MsgType::Task)
                throw serial::DecodeError("unexpected message type");
            const Task request = decodeTask(d);
            const StageTask stageTask =
                decodeStageTask(request.payload);

            if (fault.kind == "kill" && fault.stage == stageTask.stage)
                ::_exit(3);
            if (fault.kind == "kill-after" && executed >= fault.after)
                ::_exit(3);
            if (fault.kind == "stall" &&
                fault.stage == stageTask.stage) {
                // Outlive any reasonable deadline; the server will
                // declare us dead and redispatch.
                std::this_thread::sleep_for(
                    std::chrono::seconds(3600));
            }

            TaskDone reply;
            reply.taskId = request.taskId;
            const auto begin = std::chrono::steady_clock::now();
            try {
                runStageTask(stageTask);
                reply.ok = true;
            } catch (const std::exception& e) {
                reply.ok = false;
                reply.error = e.what();
            }
            reply.busyNanos = static_cast<u64>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - begin)
                    .count());
            ++executed;
            if (!sendFrame(fd, frameTaskDone(reply))) {
                exitCode = 1;
                break;
            }
        } catch (const serial::DecodeError& e) {
            warn("dist: {} dropping malformed frame: {}", name,
                 e.what());
            exitCode = 1;
            break;
        }
    }

    closeFd(fd);
    return exitCode;
}

} // namespace xbsp::dist
