#include "dist/executor.hh"

#include <sys/socket.h>

#include "dist/transport.hh"
#include "dist/wire.hh"
#include "obs/stats.hh"
#include "util/logging.hh"

namespace xbsp::dist
{

namespace
{

obs::Counter
counter(const char* name)
{
    return obs::StatRegistry::global().counter(name);
}

} // namespace

Executor::Executor(int taskTimeoutMs, int maxRetries)
    : taskTimeoutMs(taskTimeoutMs), maxRetries(maxRetries)
{
}

Executor::~Executor()
{
    drain();
}

void
Executor::addWorker(int fd, const std::string& workerName)
{
    {
        std::lock_guard lock(mutex);
        if (stopping) {
            closeFd(fd);
            return;
        }
        workerFds.push_back(fd);
        ++liveWorkers;
    }
    counter("dist.workers.connected").add();
    threads.emplace_back(
        [this, fd, workerName] { serviceWorker(fd, workerName); });
}

std::size_t
Executor::workerCount() const
{
    std::lock_guard lock(mutex);
    return liveWorkers;
}

void
Executor::submit(const pipeline::RemoteSpec& spec, DoneFn done)
{
    {
        std::unique_lock lock(mutex);
        if (!stopping && liveWorkers > 0) {
            counter("dist.tasks.submitted").add();
            auto it = flights.find(spec.key);
            if (it != flights.end()) {
                // Identical stage already queued or flying: join it.
                counter("dist.tasks.coalesced").add();
                it->second.callbacks.push_back(std::move(done));
                return;
            }
            Flight flight;
            flight.key = spec.key;
            flight.payload = spec.payload;
            flight.callbacks.push_back(std::move(done));
            flights.emplace(spec.key, std::move(flight));
            queue.push_back(spec.key);
            lock.unlock();
            workAvailable.notify_one();
            return;
        }
    }
    // No workers (or draining): fail fast so the scheduler falls
    // back to its local pool without waiting on a deadline.
    counter("dist.tasks.failed").add();
    done(false, {});
}

void
Executor::settle(Flight&& flight, bool ok,
                 const std::string& workerName)
{
    for (DoneFn& callback : flight.callbacks)
        callback(ok, workerName);
}

void
Executor::requeueOrFail(Flight&& flight)
{
    // Caller holds no lock.  The flight was removed from `flights`
    // by the caller; decide its fate under the lock, fire callbacks
    // outside it.
    bool retry = false;
    {
        std::lock_guard lock(mutex);
        if (!stopping && liveWorkers > 0 &&
            flight.retries < maxRetries) {
            ++flight.retries;
            retry = true;
            queue.push_front(flight.key);
            flights.emplace(flight.key, std::move(flight));
        }
    }
    if (retry) {
        counter("dist.tasks.retries").add();
        workAvailable.notify_one();
        return;
    }
    counter("dist.tasks.failed").add();
    settle(std::move(flight), false, {});
}

void
Executor::serviceWorker(int fd, std::string workerName)
{
    for (;;) {
        std::string key;
        std::string payload;
        u64 taskId = 0;
        {
            std::unique_lock lock(mutex);
            workAvailable.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (stopping)
                return;
            key = std::move(queue.front());
            queue.pop_front();
            auto it = flights.find(key);
            if (it == flights.end())
                continue;  // settled while queued (drain race)
            taskId = nextTaskId++;
            payload = it->second.payload;
        }

        bool dead = false;
        bool ok = false;
        if (!sendFrame(fd, frameTask({taskId, key, payload}))) {
            dead = true;
        } else {
            const std::optional<std::string> reply =
                recvFrame(fd, taskTimeoutMs);
            if (!reply) {
                dead = true;  // death, or a deadline blown == death
            } else {
                try {
                    serial::Decoder d(*reply);
                    if (decodeMsgType(d) != MsgType::TaskDone)
                        throw serial::DecodeError("expected TaskDone");
                    const TaskDone done = decodeTaskDone(d);
                    if (done.taskId != taskId)
                        throw serial::DecodeError("task id mismatch");
                    ok = done.ok;
                    if (!ok && !done.error.empty())
                        warn("dist: worker {} failed stage: {}",
                             workerName, done.error);
                } catch (const serial::DecodeError&) {
                    dead = true;
                }
            }
        }

        // Pull the flight back out; it may already be gone if drain
        // swept it while we were blocked on the socket.
        Flight flight;
        bool haveFlight = false;
        {
            std::lock_guard lock(mutex);
            auto it = flights.find(key);
            if (it != flights.end()) {
                flight = std::move(it->second);
                flights.erase(it);
                haveFlight = true;
            }
        }

        if (!dead) {
            counter(ok ? "dist.tasks.completed"
                       : "dist.tasks.failed")
                .add();
            if (haveFlight)
                settle(std::move(flight), ok, workerName);
            continue;
        }

        // Worker death: retire this connection, give the task back.
        counter("dist.workers.lost").add();
        std::vector<Flight> orphans;
        bool ownClose = false;
        {
            std::lock_guard lock(mutex);
            --liveWorkers;
            // Whoever removes the fd from workerFds owns the close.
            // If drain() already claimed the whole set, it is still
            // writing Shutdown/shutdown(2) to this fd and will close
            // it after joining us — closing here would race a reused
            // fd number.
            ownClose = std::erase(workerFds, fd) > 0;
            if (liveWorkers == 0 && !stopping) {
                // Nobody left to run the queue: fail it all now so
                // the scheduler's pool fallback proceeds.
                for (auto& [flightKey, queued] : flights)
                    orphans.push_back(std::move(queued));
                flights.clear();
                queue.clear();
            }
        }
        if (ownClose)
            closeFd(fd);
        if (haveFlight)
            requeueOrFail(std::move(flight));
        for (Flight& orphan : orphans) {
            counter("dist.tasks.failed").add();
            settle(std::move(orphan), false, {});
        }
        return;
    }
}

void
Executor::drain()
{
    std::vector<Flight> orphans;
    std::vector<int> fds;
    {
        std::lock_guard lock(mutex);
        if (stopping && threads.empty())
            return;
        stopping = true;
        // Claim every live fd: once out of workerFds, a service
        // thread that detects its worker's death will not close it
        // (see serviceWorker), so writing to these outside the lock
        // cannot hit a closed-and-reused descriptor.
        fds = std::move(workerFds);
        workerFds.clear();
        for (auto& [key, flight] : flights)
            orphans.push_back(std::move(flight));
        flights.clear();
        queue.clear();
    }
    workAvailable.notify_all();
    for (const int fd : fds) {
        sendFrame(fd, frameShutdown());
        // Wake any thread parked in recvFrame; plain close() does
        // not reliably interrupt poll() on the same fd.
        ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& t : threads) {
        if (t.joinable())
            t.join();
    }
    threads.clear();
    // Claimed fds close only after every service thread is gone.
    for (const int fd : fds)
        closeFd(fd);
    {
        std::lock_guard lock(mutex);
        liveWorkers = 0;
    }
    for (Flight& orphan : orphans) {
        counter("dist.tasks.failed").add();
        settle(std::move(orphan), false, {});
    }
}

} // namespace xbsp::dist
