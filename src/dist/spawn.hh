/**
 * @file
 * Minimal child-process helper for tests and benches that need real
 * multi-process topology (an `xbsp work` fleet, a codec round-trip
 * helper): fork/exec with per-child environment additions, wait,
 * kill.  Not a general process library — no pipes, no pgids.
 */

#ifndef XBSP_DIST_SPAWN_HH
#define XBSP_DIST_SPAWN_HH

#include <string>
#include <vector>

namespace xbsp::dist
{

/**
 * Fork and exec `argv[0]` with the given arguments; `extraEnv`
 * ("NAME=value") entries are added to the child's environment.
 * Returns the child pid, or -1 when the fork failed (an exec failure
 * surfaces as exit code 127 from waitProcess instead).
 */
int spawnProcess(const std::vector<std::string>& argv,
                 const std::vector<std::string>& extraEnv = {});

/**
 * Wait for `pid`; returns its exit code, 128+signal when it died on
 * a signal, or -1 on wait failure.
 */
int waitProcess(int pid);

/** Send SIGTERM (graceful = true) or SIGKILL to `pid`. */
void killProcess(int pid, bool graceful = true);

} // namespace xbsp::dist

#endif // XBSP_DIST_SPAWN_HH
