#include "dist/server.hh"

#include <exception>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "cpu/core.hh"
#include "dist/stagerun.hh"
#include "store/store.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/workloads.hh"

namespace xbsp::dist
{

harness::ExperimentConfig
suiteConfig(const SuiteRequest& request)
{
    harness::ExperimentConfig config;
    config.workloads = request.workloads;
    config.workScale = request.workScale;
    config.study = harness::defaultStudyConfig();
    config.study.intervalTarget = request.intervalTarget;
    config.study.simpoint.maxK = static_cast<u32>(request.maxK);
    config.study.simpoint.seed = request.seed;
    if (!request.core.empty()) {
        const auto kind = cpu::parseCoreKind(request.core);
        if (!kind) {
            throw std::runtime_error("unknown core '" + request.core +
                                     "' (want inorder|decoupled)");
        }
        config.study.core = cpu::coreConfigFor(*kind);
    }
    // The report is the deliverable; progress chatter stays off so
    // serve-mode and --local runs print through one code path only.
    config.verbose = false;
    return config;
}

void
enableRemote(harness::ExperimentConfig& config,
             pipeline::RemoteBackend* backend)
{
    config.remote = backend;
    // Capture the study parameterization by value: every spec the
    // graph wiring asks for later describes exactly this config.
    const sim::StudyConfig study = config.study;
    const double scale = config.workScale;
    config.remoteSpec = [study, scale](const std::string& workload,
                                       const std::string& stage,
                                       std::size_t index) {
        StageTask task;
        task.workload = workload;
        task.workScale = scale;
        task.config = study;
        task.stage = stage;
        task.index = index;
        return pipeline::RemoteSpec{stageTaskKey(task),
                                    encodeStageTask(task)};
    };
}

namespace
{

Table
renderFigure(harness::ExperimentSuite& suite, const std::string& name,
             const harness::ExperimentConfig& config)
{
    if (name == "table1")
        return harness::ExperimentSuite::table1(config.study.memory);
    if (name == "figure1")
        return suite.figure1();
    if (name == "figure2")
        return suite.figure2();
    if (name == "figure3")
        return suite.figure3();
    if (name == "figure4")
        return suite.figure4();
    if (name == "figure5")
        return suite.figure5();
    if (name == "table2")
        return suite.table2();
    if (name == "table3")
        return suite.table3();
    if (name == "mappability")
        return suite.mappabilityReport();
    throw std::runtime_error(format("unknown figure '{}'", name));
}

} // namespace

std::string
renderSuiteReport(const SuiteRequest& request,
                  pipeline::RemoteBackend* backend)
{
    harness::ExperimentConfig config = suiteConfig(request);
    // Validate up front with a catchable error: the harness treats
    // unknown workloads as fatal(), which would take the daemon down
    // with the request.
    for (const std::string& workload : config.workloads) {
        if (!workloads::findWorkload(workload))
            throw std::runtime_error(
                format("unknown workload '{}'", workload));
    }
    if (backend)
        enableRemote(config, backend);
    harness::ExperimentSuite suite(config);
    const std::vector<std::string> figures =
        request.figures.empty()
            ? std::vector<std::string>{"figure3"}
            : request.figures;
    std::ostringstream os;
    for (const std::string& name : figures) {
        renderFigure(suite, name, config).print(os);
        os << "\n";
    }
    return os.str();
}

Server::Server(ServerOptions options)
    : opts(std::move(options)),
      serverName(opts.name.empty() ? format("serve-{}", ::getpid())
                                   : opts.name),
      acceptor(opts.unixPath, opts.tcpPort),
      exec(opts.taskTimeoutMs, opts.maxRetries)
{
    if (!store::ArtifactStore::global().enabled())
        fatal("xbsp serve needs an artifact store (--cache-dir or "
              "XBSP_CACHE_DIR): workers publish results through it");
}

Server::~Server()
{
    stop();
    std::lock_guard lock(handlersMutex);
    for (Handler& handler : handlers) {
        if (handler.thread.joinable())
            handler.thread.join();
    }
}

void
Server::reapFinishedHandlers()
{
    std::erase_if(handlers, [](Handler& handler) {
        if (!handler.done->load(std::memory_order_acquire))
            return false;
        if (handler.thread.joinable())
            handler.thread.join();
        return true;
    });
}

void
Server::serve()
{
    if (!opts.unixPath.empty())
        inform("dist: {} listening on unix:{}", serverName,
               opts.unixPath);
    if (opts.tcpPort >= 0)
        inform("dist: {} listening on tcp:{}", serverName,
               boundPort());
    for (;;) {
        const int fd = acceptor.accept(-1);
        if (fd < 0)
            break;  // stop() or listener failure
        std::lock_guard lock(handlersMutex);
        if (stopping.load(std::memory_order_relaxed)) {
            closeFd(fd);
            break;
        }
        // A long-lived daemon serves unbounded requests; reap the
        // threads of finished ones instead of hoarding them until
        // serve() exits.
        reapFinishedHandlers();
        auto done = std::make_shared<std::atomic<bool>>(false);
        Handler handler;
        handler.done = done;
        handler.thread = std::thread([this, fd, done] {
            handleConnection(fd);
            done->store(true, std::memory_order_release);
        });
        handlers.push_back(std::move(handler));
    }
    // Loop over: settle clients, then drain workers.
    {
        std::lock_guard lock(handlersMutex);
        for (Handler& handler : handlers) {
            if (handler.thread.joinable())
                handler.thread.join();
        }
        handlers.clear();
    }
    exec.drain();
    inform("dist: {} stopped", serverName);
}

void
Server::stop()
{
    stopping.store(true, std::memory_order_relaxed);
    acceptor.stop();
}

void
Server::handleConnection(int fd)
{
    const std::optional<std::string> first = recvFrame(fd, 10'000);
    if (!first) {
        closeFd(fd);
        return;
    }
    try {
        serial::Decoder d(*first);
        const MsgType type = decodeMsgType(d);
        if (type == MsgType::Hello) {
            const Hello hello = decodeHello(d);
            HelloAck ack;
            ack.serverName = serverName;
            ack.cacheDir = store::ArtifactStore::global().directory();
            if (!sendFrame(fd, frameHelloAck(ack))) {
                closeFd(fd);
                return;
            }
            inform("dist: worker {} joined", hello.workerName);
            exec.addWorker(fd, hello.workerName);
            return;  // the executor owns the fd now
        }
        if (type == MsgType::SuiteRequest) {
            handleSuite(fd, decodeSuiteRequest(d));
            closeFd(fd);
            return;
        }
        throw serial::DecodeError("unexpected first message");
    } catch (const serial::DecodeError& e) {
        warn("dist: rejecting connection: {}", e.what());
        closeFd(fd);
    }
}

void
Server::handleSuite(int fd, const SuiteRequest& request)
{
    inform("dist: suite request ({} figure(s), {} workload(s), "
           "scale {}) with {} worker(s)",
           request.figures.empty() ? 1 : request.figures.size(),
           request.workloads.size(), request.workScale,
           exec.workerCount());
    SuiteResponse response;
    try {
        response.report = renderSuiteReport(request, &exec);
        response.ok = true;
    } catch (const std::exception& e) {
        response.ok = false;
        response.error = e.what();
        warn("dist: suite request failed: {}", e.what());
    }
    sendFrame(fd, frameSuiteResponse(response));
}

} // namespace xbsp::dist
