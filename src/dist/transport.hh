/**
 * @file
 * Stream-socket transport for the distributed executor: unix-domain
 * sockets and loopback TCP, following the idioms of the metrics
 * endpoint (src/obs/live/endpoint.cc), plus blocking frame I/O with
 * deadlines on top of dist/wire framing.
 *
 * Addresses are strings: "unix:PATH" (or a bare path) for a
 * unix-domain socket, "tcp:PORT" for 127.0.0.1:PORT.  Every call is
 * synchronous; concurrency is the caller's business (the executor
 * runs one I/O thread per worker connection).
 */

#ifndef XBSP_DIST_TRANSPORT_HH
#define XBSP_DIST_TRANSPORT_HH

#include <optional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace xbsp::dist
{

/** Parsed peer address. */
struct Address
{
    bool tcp = false;
    std::string path;  ///< unix socket path (when !tcp)
    int port = 0;      ///< loopback TCP port (when tcp)

    /** Render back to the canonical "unix:..."/"tcp:..." form. */
    std::string text() const;
};

/**
 * Parse "unix:PATH", "tcp:PORT", or a bare path (= unix).  Throws
 * std::runtime_error on a malformed spec.
 */
Address parseAddress(const std::string& spec);

/**
 * Listening socket over one or both transports.  accept() is
 * poll-driven so stop() (from any thread) interrupts it promptly.
 */
class Listener
{
  public:
    /**
     * Bind a unix-domain listener at `unixPath` (pre-unlinked, like
     * the metrics endpoint) and/or a loopback TCP listener at
     * `tcpPort` (0 picks an ephemeral port, readable via boundPort).
     * Throws std::runtime_error when nothing could be bound.
     */
    Listener(const std::string& unixPath, int tcpPort);
    ~Listener();

    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /**
     * Wait for one connection; -1 when stop() was called (or the
     * optional timeout expired).  Safe to call from one thread while
     * another calls stop().
     */
    int accept(int timeoutMs = -1);

    /** Unblock accept() permanently. */
    void stop();

    int boundPort() const { return tcpPortBound; }

  private:
    std::vector<int> fds;
    std::string unixPath;
    int tcpPortBound = -1;
    int wakePipe[2] = {-1, -1};
};

/** Connect to `address`; throws std::runtime_error on failure. */
int connectTo(const Address& address);

/** Write one pre-framed message; false on any socket error. */
bool sendFrame(int fd, const std::string& frame);

/**
 * Read one complete frame payload (header validated and stripped).
 * nullopt on orderly EOF before any byte, on a deadline expiry
 * (timeoutMs >= 0), or on any socket/framing error.
 */
std::optional<std::string> recvFrame(int fd, int timeoutMs = -1);

/** Close a connection fd (idempotent for fd < 0). */
void closeFd(int fd);

} // namespace xbsp::dist

#endif // XBSP_DIST_TRANSPORT_HH
