/**
 * @file
 * Client side of `xbsp submit`: one SuiteRequest in, one
 * SuiteResponse out, over a single short-lived connection.
 */

#ifndef XBSP_DIST_CLIENT_HH
#define XBSP_DIST_CLIENT_HH

#include <string>

#include "dist/wire.hh"

namespace xbsp::dist
{

/**
 * Send `request` to the daemon at `addressSpec` and wait for the
 * report.  `timeoutMs` bounds the whole round-trip (suites can run
 * for minutes; < 0 waits forever).  Throws std::runtime_error on
 * connection or protocol failure; a server-side failure comes back
 * as ok=false with the error text instead.
 */
SuiteResponse submitSuite(const std::string& addressSpec,
                          const SuiteRequest& request,
                          int timeoutMs = -1);

} // namespace xbsp::dist

#endif // XBSP_DIST_CLIENT_HH
