#include "dist/transport.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "dist/wire.hh"
#include "util/format.hh"
#include "util/serial.hh"

namespace xbsp::dist
{

namespace
{

int
makeUnixListener(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            format("dist socket path too long: {}", path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_UNIX): {}",
                                        std::strerror(errno)));
    // A previous run's socket file is dead weight by definition (a
    // live listener would still hold it); see obs/live/endpoint.cc.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("bind({}): {}", path,
                                        std::strerror(err)));
    }
    if (::listen(fd, 64) < 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throw std::runtime_error(format("listen({}): {}", path,
                                        std::strerror(err)));
    }
    return fd;
}

int
makeTcpListener(int port, int& boundPort)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_INET): {}",
                                        std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<u16>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(
            format("bind/listen(127.0.0.1:{}): {}", port,
                   std::strerror(err)));
    }
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) <
        0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("getsockname: {}",
                                        std::strerror(err)));
    }
    boundPort = ntohs(got.sin_port);
    return fd;
}

using clock_type = std::chrono::steady_clock;

/** Milliseconds left before `deadline`; -1 for "no deadline". */
int
remainingMs(const std::optional<clock_type::time_point>& deadline)
{
    if (!deadline)
        return -1;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            *deadline - clock_type::now())
            .count();
    return left <= 0 ? 0 : static_cast<int>(left);
}

/**
 * Read exactly `n` bytes into `out`, honouring the deadline; false
 * on EOF, error, or expiry.  `sawBytes` reports whether anything
 * arrived (distinguishes orderly EOF from a torn frame).
 */
bool
readExact(int fd, char* out, std::size_t n,
          const std::optional<clock_type::time_point>& deadline,
          bool* sawBytes)
{
    std::size_t off = 0;
    while (off < n) {
        pollfd p{fd, POLLIN, 0};
        const int waitMs = remainingMs(deadline);
        if (waitMs == 0)
            return false;  // deadline expired
        const int ready = ::poll(&p, 1, waitMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (ready == 0)
            return false;  // timeout
        const ssize_t got = ::read(fd, out + off, n - off);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false;  // EOF
        if (sawBytes)
            *sawBytes = true;
        off += static_cast<std::size_t>(got);
    }
    return true;
}

} // namespace

std::string
Address::text() const
{
    return tcp ? format("tcp:{}", port) : "unix:" + path;
}

Address
parseAddress(const std::string& spec)
{
    Address address;
    if (spec.rfind("tcp:", 0) == 0) {
        address.tcp = true;
        address.port = std::atoi(spec.c_str() + 4);
        if (address.port <= 0 || address.port > 65535)
            throw std::runtime_error(
                format("bad tcp port in '{}'", spec));
        return address;
    }
    address.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
    if (address.path.empty())
        throw std::runtime_error(
            format("empty socket path in '{}'", spec));
    return address;
}

Listener::Listener(const std::string& unixSocketPath, int tcpPort)
    : unixPath(unixSocketPath)
{
    if (unixPath.empty() && tcpPort < 0)
        throw std::runtime_error("dist listener has no address");
    try {
        if (!unixPath.empty())
            fds.push_back(makeUnixListener(unixPath));
        if (tcpPort >= 0)
            fds.push_back(makeTcpListener(tcpPort, tcpPortBound));
        if (::pipe(wakePipe) < 0)
            throw std::runtime_error(format("pipe: {}",
                                            std::strerror(errno)));
    } catch (...) {
        for (const int fd : fds)
            ::close(fd);
        fds.clear();
        throw;
    }
}

Listener::~Listener()
{
    for (const int fd : fds)
        ::close(fd);
    if (!unixPath.empty())
        ::unlink(unixPath.c_str());
    for (int& fd : wakePipe) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
}

int
Listener::accept(int timeoutMs)
{
    std::vector<pollfd> polled;
    for (const int fd : fds)
        polled.push_back({fd, POLLIN, 0});
    polled.push_back({wakePipe[0], POLLIN, 0});

    const std::optional<clock_type::time_point> deadline =
        timeoutMs < 0 ? std::nullopt
                      : std::optional(clock_type::now() +
                                      std::chrono::milliseconds(
                                          timeoutMs));
    for (;;) {
        for (pollfd& p : polled)
            p.revents = 0;
        const int waitMs = remainingMs(deadline);
        const int ready = ::poll(polled.data(), polled.size(), waitMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (ready == 0)
            return -1;  // timeout
        if (polled.back().revents & POLLIN)
            return -1;  // stop() poked the wake pipe
        for (std::size_t i = 0; i + 1 < polled.size(); ++i) {
            if (!(polled[i].revents & POLLIN))
                continue;
            const int client =
                ::accept(polled[i].fd, nullptr, nullptr);
            if (client >= 0)
                return client;
        }
    }
}

void
Listener::stop()
{
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wakePipe[1], &byte, 1);
}

int
connectTo(const Address& address)
{
    if (address.tcp) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throw std::runtime_error(format("socket(AF_INET): {}",
                                            std::strerror(errno)));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<u16>(address.port));
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) < 0) {
            const int err = errno;
            ::close(fd);
            throw std::runtime_error(
                format("connect({}): {}", address.text(),
                       std::strerror(err)));
        }
        return fd;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            format("dist socket path too long: {}", address.path));
    std::memcpy(addr.sun_path, address.path.c_str(),
                address.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_UNIX): {}",
                                        std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("connect({}): {}",
                                        address.text(),
                                        std::strerror(err)));
    }
    return fd;
}

bool
sendFrame(int fd, const std::string& frame)
{
    std::size_t off = 0;
    while (off < frame.size()) {
        // MSG_NOSIGNAL: a peer that reset the connection (killed
        // worker, disconnected client) must surface as EPIPE, not a
        // process-killing SIGPIPE in the serve daemon.
        const ssize_t n = ::send(fd, frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
recvFrame(int fd, int timeoutMs)
{
    const std::optional<clock_type::time_point> deadline =
        timeoutMs < 0 ? std::nullopt
                      : std::optional(clock_type::now() +
                                      std::chrono::milliseconds(
                                          timeoutMs));
    char header[8];
    bool sawBytes = false;
    if (!readExact(fd, header, sizeof(header), deadline, &sawBytes))
        return std::nullopt;
    u64 size = 0;
    try {
        serial::Decoder d(std::string_view(header, sizeof(header)));
        if (d.fixed32() != frameMagic)
            return std::nullopt;
        size = d.fixed32();
    } catch (const serial::DecodeError&) {
        return std::nullopt;
    }
    if (size > maxFrameBytes)
        return std::nullopt;
    std::string payload(static_cast<std::size_t>(size), '\0');
    if (size > 0 &&
        !readExact(fd, payload.data(), payload.size(), deadline,
                   nullptr))
        return std::nullopt;
    return payload;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace xbsp::dist
