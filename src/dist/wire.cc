#include "dist/wire.hh"

namespace xbsp::dist
{

namespace
{

/** Wrap an encoded payload in the frame header. */
std::string
frame(serial::Encoder&& payload)
{
    serial::Encoder out;
    out.fixed32(frameMagic);
    out.fixed32(static_cast<u32>(payload.size()));
    const std::string body = payload.take();
    out.bytes(body.data(), body.size());
    return out.take();
}

void
checkVersion(u32 version)
{
    if (version != protocolVersion)
        throw serial::DecodeError(
            "protocol version " + std::to_string(version) + " != " +
            std::to_string(protocolVersion));
}

} // namespace

std::string
frameHello(const Hello& m)
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::Hello));
    e.varint(m.version);
    e.str(m.workerName);
    e.str(m.cacheDir);
    return frame(std::move(e));
}

std::string
frameHelloAck(const HelloAck& m)
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::HelloAck));
    e.varint(m.version);
    e.str(m.serverName);
    e.str(m.cacheDir);
    return frame(std::move(e));
}

std::string
frameTask(const Task& m)
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::Task));
    e.varint(m.taskId);
    e.str(m.specKey);
    e.str(m.payload);
    return frame(std::move(e));
}

std::string
frameTaskDone(const TaskDone& m)
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::TaskDone));
    e.varint(m.taskId);
    e.boolean(m.ok);
    e.str(m.error);
    e.varint(m.busyNanos);
    return frame(std::move(e));
}

std::string
frameShutdown()
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::Shutdown));
    return frame(std::move(e));
}

std::string
frameSuiteRequest(const SuiteRequest& m)
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::SuiteRequest));
    e.varint(m.figures.size());
    for (const std::string& f : m.figures)
        e.str(f);
    e.varint(m.workloads.size());
    for (const std::string& w : m.workloads)
        e.str(w);
    e.f64(m.workScale);
    e.varint(m.intervalTarget);
    e.varint(m.maxK);
    e.varint(m.seed);
    e.str(m.core);
    return frame(std::move(e));
}

std::string
frameSuiteResponse(const SuiteResponse& m)
{
    serial::Encoder e;
    e.varint(static_cast<u64>(MsgType::SuiteResponse));
    e.boolean(m.ok);
    e.str(m.error);
    e.str(m.report);
    return frame(std::move(e));
}

MsgType
decodeMsgType(serial::Decoder& d)
{
    const u64 type = d.varint();
    switch (static_cast<MsgType>(type)) {
      case MsgType::Hello:
      case MsgType::HelloAck:
      case MsgType::Task:
      case MsgType::TaskDone:
      case MsgType::Shutdown:
      case MsgType::SuiteRequest:
      case MsgType::SuiteResponse:
        return static_cast<MsgType>(type);
    }
    throw serial::DecodeError("unknown message type " +
                              std::to_string(type));
}

Hello
decodeHello(serial::Decoder& d)
{
    Hello m;
    m.version = static_cast<u32>(d.varint());
    checkVersion(m.version);
    m.workerName = d.str();
    m.cacheDir = d.str();
    d.expectEnd();
    return m;
}

HelloAck
decodeHelloAck(serial::Decoder& d)
{
    HelloAck m;
    m.version = static_cast<u32>(d.varint());
    checkVersion(m.version);
    m.serverName = d.str();
    m.cacheDir = d.str();
    d.expectEnd();
    return m;
}

Task
decodeTask(serial::Decoder& d)
{
    Task m;
    m.taskId = d.varint();
    m.specKey = d.str();
    m.payload = d.str();
    d.expectEnd();
    return m;
}

TaskDone
decodeTaskDone(serial::Decoder& d)
{
    TaskDone m;
    m.taskId = d.varint();
    m.ok = d.boolean();
    m.error = d.str();
    m.busyNanos = d.varint();
    d.expectEnd();
    return m;
}

SuiteRequest
decodeSuiteRequest(serial::Decoder& d)
{
    SuiteRequest m;
    const u64 figures = d.arrayCount();
    m.figures.reserve(static_cast<std::size_t>(figures));
    for (u64 i = 0; i < figures; ++i)
        m.figures.push_back(d.str());
    const u64 workloads = d.arrayCount();
    m.workloads.reserve(static_cast<std::size_t>(workloads));
    for (u64 i = 0; i < workloads; ++i)
        m.workloads.push_back(d.str());
    m.workScale = d.f64();
    m.intervalTarget = d.varint();
    m.maxK = d.varint();
    m.seed = d.varint();
    m.core = d.str();
    d.expectEnd();
    return m;
}

SuiteResponse
decodeSuiteResponse(serial::Decoder& d)
{
    SuiteResponse m;
    m.ok = d.boolean();
    m.error = d.str();
    m.report = d.str();
    d.expectEnd();
    return m;
}

} // namespace xbsp::dist
