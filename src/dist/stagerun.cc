#include "dist/stagerun.hh"

#include <stdexcept>

#include "sim/serial.hh"
#include "sim/stages.hh"
#include "util/format.hh"
#include "util/serial.hh"
#include "workloads/workloads.hh"

namespace xbsp::dist
{

std::string
encodeStageTask(const StageTask& task)
{
    serial::Encoder e;
    e.str(task.workload);
    e.f64(task.workScale);
    sim::encodeStudyConfig(e, task.config);
    e.str(task.stage);
    e.varint(task.index);
    return e.take();
}

StageTask
decodeStageTask(const std::string& payload)
{
    serial::Decoder d(payload);
    StageTask task;
    task.workload = d.str();
    task.workScale = d.f64();
    task.config = sim::decodeStudyConfig(d);
    task.stage = d.str();
    task.index = d.varint();
    d.expectEnd();
    return task;
}

std::string
stageTaskKey(const StageTask& task)
{
    // The encoded payload already covers every field bit-exactly, so
    // its digest is the canonical single-flight identity.
    serial::Hasher h;
    h.str(encodeStageTask(task));
    return h.finish().hex();
}

void
runStageTask(const StageTask& task)
{
    if (!workloads::findWorkload(task.workload))
        throw std::runtime_error(
            format("unknown workload '{}'", task.workload));

    sim::StudyBuild build(
        workloads::makeWorkload(task.workload, task.workScale),
        task.config);

    // Replay the dependency prefix; memoized prefix stages resolve
    // from the shared store, so only the missed stage costs anything.
    build.compile();
    if (task.stage == "compile")
        return;

    if (task.stage == "profile") {
        if (task.index >= build.binaryCount())
            throw std::runtime_error(
                format("profile index {} out of range", task.index));
        build.profile(task.index);
        return;
    }

    if (task.stage == "vli" || task.stage == "binary") {
        for (std::size_t b = 0; b < build.binaryCount(); ++b)
            build.profile(b);
        build.match();
        build.vliCluster();
        if (task.stage == "vli")
            return;
        if (task.index >= build.binaryCount())
            throw std::runtime_error(
                format("binary index {} out of range", task.index));
        build.binary(task.index);
        return;
    }

    throw std::runtime_error(
        format("unknown stage kind '{}'", task.stage));
}

} // namespace xbsp::dist
