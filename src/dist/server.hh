/**
 * @file
 * The `xbsp serve` daemon: one listener, two kinds of peers.
 *
 * A connection's first frame declares its role: Hello makes it a
 * worker (handed to the Executor after a HelloAck carrying the shared
 * cache directory), SuiteRequest makes it a client (served on its own
 * handler thread and closed after one SuiteResponse).
 *
 * Concurrent clients share everything that matters: the process-wide
 * ArtifactStore stays warm across requests, and identical in-flight
 * stages single-flight inside the Executor on their stage keys — two
 * clients asking for the same figure at the same time compute each
 * stage once.
 *
 * Shutdown (stop(), typically from a SIGTERM handler) stops the
 * accept loop, joins client handlers, and drains the executor, which
 * sends Shutdown to every worker so they exit cleanly.
 *
 * The helpers at the bottom are the single rendering path shared by
 * the daemon and `xbsp submit --local`, which is what makes
 * byte-for-byte report comparison between the two modes meaningful.
 */

#ifndef XBSP_DIST_SERVER_HH
#define XBSP_DIST_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/executor.hh"
#include "dist/transport.hh"
#include "dist/wire.hh"
#include "harness/experiments.hh"

namespace xbsp::dist
{

/** Options for Server (CLI flags of `xbsp serve`). */
struct ServerOptions
{
    std::string unixPath;       ///< unix socket ("" = none)
    int tcpPort = -1;           ///< loopback TCP (-1 none, 0 ephemeral)
    std::string name;           ///< self-reported identity ("" = pid)
    int taskTimeoutMs = 120'000;
    int maxRetries = 2;
};

class Server
{
  public:
    /** Binds immediately; fatal when the global store is disabled. */
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Ephemeral-port readback for tcpPort == 0. */
    int boundPort() const { return acceptor.boundPort(); }

    /** The remote backend (tests drive graphs through it directly). */
    Executor& executor() { return exec; }

    /** Accept loop; blocks until stop(). */
    void serve();

    /** End serve(), join handlers, drain workers.  Idempotent. */
    void stop();

  private:
    /** A client-connection thread plus a flag it raises on exit, so
     *  the accept loop can reap finished handlers without joining
     *  (and thus blocking on) live ones. */
    struct Handler
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void handleConnection(int fd);
    void handleSuite(int fd, const SuiteRequest& request);
    /** Join and drop every handler whose done flag is set.  Caller
     *  holds handlersMutex. */
    void reapFinishedHandlers();

    ServerOptions opts;
    std::string serverName;
    Listener acceptor;
    Executor exec;
    std::atomic<bool> stopping{false};
    std::mutex handlersMutex;
    std::vector<Handler> handlers;
};

/**
 * Translate a SuiteRequest into the harness configuration, exactly as
 * the bench binaries build theirs (defaultStudyConfig + the request's
 * scalars).  Shared by the daemon and `xbsp submit --local`.
 */
harness::ExperimentConfig suiteConfig(const SuiteRequest& request);

/**
 * Arm a finalized config for remote dispatch: every remote-eligible
 * stage node (compile, profile, vli, and — under detailed timing —
 * binary) gets a StageTask spec, and graphs built from the config
 * route probe misses through `backend`.  Must run after the config's
 * study/scale fields are final (specs capture them by value).
 */
void enableRemote(harness::ExperimentConfig& config,
                  pipeline::RemoteBackend* backend);

/**
 * Run the requested figures and render them as one report string.
 * `backend` may be null (purely local).  Throws on unknown figure
 * names or workloads.
 */
std::string renderSuiteReport(const SuiteRequest& request,
                              pipeline::RemoteBackend* backend);

} // namespace xbsp::dist

#endif // XBSP_DIST_SERVER_HH
