/**
 * @file
 * Worker process loop behind `xbsp work`: connect to a serve daemon,
 * handshake, and execute StageTasks until told to stop.
 *
 * The worker's only output channel is the shared ArtifactStore — the
 * handshake hands it the server's cache directory (adopted when the
 * worker has none of its own), every runStageTask publishes through
 * it, and the TaskDone reply carries just ok/error/busy-time.
 *
 * Fault injection (tests and the CI smoke job), selected through the
 * XBSP_DIST_FAULT environment variable:
 *
 *   kill:<stage>      _exit(3) the moment a task of that stage kind
 *                     arrives (mid-protocol death)
 *   kill-after:<n>    execute n tasks normally, then _exit(3) on the
 *                     next one
 *   stall:<stage>     sleep through the server's deadline instead of
 *                     executing (exercises the timeout path)
 *
 * SIGTERM requests a graceful drain: the current task finishes and
 * its TaskDone is sent before the loop exits.
 */

#ifndef XBSP_DIST_WORKER_HH
#define XBSP_DIST_WORKER_HH

#include <string>

namespace xbsp::dist
{

/** Options for runWorker (CLI flags of `xbsp work`). */
struct WorkerOptions
{
    std::string connect;     ///< address spec ("unix:..."/"tcp:...")
    std::string name;        ///< self-reported identity ("" = pid)
};

/**
 * Run the worker loop until the server shuts us down, the connection
 * drops, or SIGTERM drains us.  Returns the process exit code.
 */
int runWorker(const WorkerOptions& options);

} // namespace xbsp::dist

#endif // XBSP_DIST_WORKER_HH
