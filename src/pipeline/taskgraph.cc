#include "pipeline/taskgraph.hh"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "obs/manifest/manifest.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace xbsp::pipeline
{

std::string
nodeStatusName(NodeStatus status)
{
    switch (status) {
      case NodeStatus::Pending:
        return "pending";
      case NodeStatus::Running:
        return "running";
      case NodeStatus::Done:
        return "done";
      case NodeStatus::CacheResolved:
        return "cache";
      case NodeStatus::Failed:
        return "failed";
      case NodeStatus::Skipped:
        return "skipped";
    }
    return "?";
}

NodeId
TaskGraph::add(std::string label, std::string stage,
               std::vector<NodeId> deps, std::function<void()> work)
{
    if (ran)
        panic("TaskGraph::add after run()");
    const NodeId id = nodes.size();
    for (NodeId dep : deps) {
        if (dep >= id)
            fatal("task graph: node {} ('{}') depends on node {}, "
                  "which has not been added yet (dependencies must "
                  "point at earlier nodes)", id, label, dep);
    }
    Node node;
    node.label = std::move(label);
    node.stage = std::move(stage);
    node.deps = std::move(deps);
    node.work = std::move(work);
    edges += node.deps.size();
    nodes.push_back(std::move(node));
    for (NodeId dep : nodes.back().deps)
        nodes[dep].dependents.push_back(id);
    return id;
}

void
TaskGraph::setProbe(NodeId id, std::function<bool()> probe)
{
    nodes.at(id).probe = std::move(probe);
}

void
TaskGraph::setCommit(NodeId id, std::function<void()> commit)
{
    nodes.at(id).commit = std::move(commit);
}

void
TaskGraph::setProvenance(NodeId id, std::function<std::string()> key)
{
    nodes.at(id).provenance = std::move(key);
}

void
TaskGraph::setManifestInfo(std::string label, std::string configDigest)
{
    manifestLabel = std::move(label);
    manifestDigest = std::move(configDigest);
}

void
TaskGraph::setRemote(NodeId id, std::function<RemoteSpec()> spec)
{
    nodes.at(id).remote = std::move(spec);
}

void
TaskGraph::setRemoteBackend(RemoteBackend* backend)
{
    remoteBackend = backend;
}

namespace
{

const char*
probeOutcomeName(int outcome)
{
    switch (outcome) {
      case 1:
        return "hit";
      case 2:
        return "miss";
      default:
        return "none";
    }
}

u64
nanosSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

} // namespace

void
TaskGraph::run(ThreadPool& pool)
{
    if (ran)
        panic("TaskGraph::run called twice");
    ran = true;

    obs::StatRegistry& reg = obs::StatRegistry::global();
    reg.counter("scheduler.runs").add();
    reg.counter("scheduler.nodes.added").add(nodes.size());
    reg.counter("scheduler.edges").add(edges);
    reg.distribution("scheduler.criticalPath")
        .sample(criticalPathLength());
    const obs::Counter readyCount = reg.counter("scheduler.nodes.ready");
    const obs::Counter runCount = reg.counter("scheduler.nodes.run");
    const obs::Counter cacheCount =
        reg.counter("scheduler.nodes.cacheResolved");
    const obs::Counter failCount = reg.counter("scheduler.nodes.failed");
    const obs::Counter skipCount =
        reg.counter("scheduler.nodes.skipped");
    const obs::Counter remoteCount =
        reg.counter("scheduler.nodes.remote");
    const obs::Counter remoteFallbackCount =
        reg.counter("scheduler.nodes.remoteFallback");
    const obs::Timer busyTimer = reg.timer("scheduler.nodeBusy");
    obs::ScopedTimer wallTimer(reg.timer("scheduler.wall"));

    // Per-stage tallies for the live view: `xbsp top` renders
    // started - settled as "running".  Final values are a function of
    // the graph alone, so stats dumps stay deterministic.
    auto stageTally = [&reg](const std::string& stage,
                             const char* what) {
        reg.counter("scheduler.stage." + stage + "." + what).add();
    };

    const auto runStart = std::chrono::steady_clock::now();
    const u64 runStartWallMillis = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    std::unique_lock lock(mutex);

    // Dependency counters and the initial ready set.  std::set keeps
    // ready nodes in id order, so the single-threaded (and probe-hit)
    // execution order is the topological order the caller declared.
    std::set<NodeId> ready;
    for (NodeId id = 0; id < nodes.size(); ++id) {
        nodes[id].remaining = nodes[id].deps.size();
        if (nodes[id].remaining == 0)
            ready.insert(id);
    }
    std::size_t active = 0;  // nodes in flight on the pool
    std::vector<std::chrono::steady_clock::time_point> dispatched(
        nodes.size());

    // Remote in-flight bookkeeping.  Backend completion callbacks may
    // fire from any thread; they only enqueue an outcome under the
    // graph mutex — the scheduling thread drains the queue, so the
    // post-remote inline replay (and the local-pool fallback) always
    // run in scheduler context.
    struct RemoteOutcome
    {
        NodeId id = 0;
        bool ok = false;
        std::string worker;
    };
    std::size_t remoteActive = 0;  // specs in flight at the backend
    std::vector<RemoteOutcome> remoteSettled;

    // Settle a node (lock held): record status, release dependents.
    auto settle = [this, &ready](NodeId id, NodeStatus status,
                                 std::exception_ptr error,
                                 std::string errorText) {
        Node& node = nodes[id];
        node.status = status;
        node.error = std::move(error);
        node.errorText = std::move(errorText);
        for (NodeId dep : node.dependents) {
            if (--nodes[dep].remaining == 0)
                ready.insert(dep);
        }
    };

    // How a node's work is being run: on a pool worker, inline after
    // a probe hit, or inline after a remote worker published the
    // stage's artifacts.  Probe hits settle CacheResolved; remote
    // replays settle Done — the work computed, just not here.
    enum class ExecVia { Pool, Probe, Remote };

    // Run a node's work (no lock held), then settle it.  Exceptions
    // are captured here — pool futures are discarded, so nothing may
    // escape into them.
    auto execute = [this, &settle, &active, &busyTimer, &failCount,
                    &stageTally, &dispatched](NodeId id, ExecVia via) {
        NodeStatus status = via == ExecVia::Probe
                                ? NodeStatus::CacheResolved
                                : NodeStatus::Done;
        std::exception_ptr error;
        std::string errorText;
        nodes[id].worker = currentWorkerId();
        const auto busyStart = std::chrono::steady_clock::now();
        {
            obs::TraceSpan span(nodes[id].label, "pipeline");
            obs::ScopedTimer busy(busyTimer);
            try {
                if (nodes[id].work)
                    nodes[id].work();
            } catch (const std::exception& e) {
                status = NodeStatus::Failed;
                error = std::current_exception();
                errorText = e.what();
            } catch (...) {
                status = NodeStatus::Failed;
                error = std::current_exception();
                errorText = "unknown exception";
            }
        }
        nodes[id].busyNanos = nanosSince(busyStart);
        if (status == NodeStatus::Failed)
            failCount.add();
        stageTally(nodes[id].stage, "settled");
        std::lock_guard guard(mutex);
        nodes[id].wallNanos = nanosSince(dispatched[id]);
        settle(id, status, std::move(error), std::move(errorText));
        if (via == ExecVia::Pool)
            --active;
        wake.notify_all();
    };

    while (true) {
        wake.wait(lock, [&] {
            return !remoteSettled.empty() || !ready.empty() ||
                   (active == 0 && remoteActive == 0);
        });

        // Remote outcomes first: a settled remote node either replays
        // inline (its artifacts are in the shared store now) or falls
        // back to the local pool.  Either way dependents release only
        // through the regular settle path.
        if (!remoteSettled.empty()) {
            RemoteOutcome outcome = std::move(remoteSettled.back());
            remoteSettled.pop_back();
            --remoteActive;
            lock.unlock();
            if (outcome.ok) {
                nodes[outcome.id].remoteWorker =
                    std::move(outcome.worker);
                // The worker published every artifact this node
                // computes; the inline replay only decodes them, so
                // its progress steps are zero-cost for the ETA.
                obs::Progress::ZeroCostScope zeroCost;
                execute(outcome.id, ExecVia::Remote);
            } else {
                remoteFallbackCount.add();
                runCount.add();
                {
                    std::lock_guard guard(mutex);
                    ++active;
                }
                pool.submit([&execute, id = outcome.id] {
                    execute(id, ExecVia::Pool);
                });
            }
            lock.lock();
            continue;
        }
        if (ready.empty()) {
            if (active == 0 && remoteActive == 0)
                break;  // every node settled
            continue;
        }
        const NodeId id = *ready.begin();
        ready.erase(ready.begin());
        readyCount.add();
        Node& node = nodes[id];

        // A failed (or skipped) dependency skips the whole subtree.
        const bool depFailed = std::any_of(
            node.deps.begin(), node.deps.end(), [this](NodeId dep) {
                return nodes[dep].status == NodeStatus::Failed ||
                       nodes[dep].status == NodeStatus::Skipped;
            });
        if (depFailed) {
            skipCount.add();
            stageTally(node.stage, "skipped");
            settle(id, NodeStatus::Skipped, nullptr, {});
            continue;
        }

        node.status = NodeStatus::Running;
        dispatched[id] = std::chrono::steady_clock::now();
        lock.unlock();
        stageTally(node.stage, "started");
        const bool cached = node.probe && node.probe();
        node.probeOutcome = node.probe ? (cached ? 1 : 2) : 0;
        if (cached) {
            // The store will serve every artifact this node needs:
            // decode inline here instead of occupying a worker slot.
            // The work only replays already-stored artifacts, so any
            // progress steps it reports are zero-cost for the ETA.
            cacheCount.add();
            stageTally(node.stage, "cache");
            obs::Progress::ZeroCostScope zeroCost;
            execute(id, ExecVia::Probe);
        } else if (node.remote && remoteBackend) {
            // Probe missed and the node is remote-eligible: ship it.
            // The spec generator runs here, after dependencies have
            // settled — some stage keys only exist by then.
            remoteCount.add();
            stageTally(node.stage, "remote");
            const RemoteSpec spec = node.remote();
            {
                std::lock_guard guard(mutex);
                ++remoteActive;
            }
            remoteBackend->submit(
                spec, [this, id, &remoteSettled](
                          bool ok, const std::string& workerName) {
                    std::lock_guard guard(mutex);
                    remoteSettled.push_back({id, ok, workerName});
                    wake.notify_all();
                });
        } else {
            runCount.add();
            {
                std::lock_guard guard(mutex);
                ++active;
            }
            pool.submit(
                [&execute, id] { execute(id, ExecVia::Pool); });
        }
        lock.lock();
    }
    lock.unlock();

    // Everything has settled: commit in node-id order, then report
    // failures — also in node-id order — and rethrow the first one.
    for (Node& node : nodes) {
        if ((node.status == NodeStatus::Done ||
             node.status == NodeStatus::CacheResolved) &&
            node.commit)
            node.commit();
    }
    std::exception_ptr first;
    for (const Node& node : nodes) {
        if (node.status != NodeStatus::Failed)
            continue;
        warn("pipeline: node '{}' failed: {}", node.label,
             node.errorText);
        if (!first)
            first = node.error;
    }

    // Provenance: one manifest run per graph execution, entries in
    // node-id order, recorded even when a node failed (a manifest of
    // a broken run is exactly when you want one).
    obs::ManifestRun record;
    record.label = manifestLabel.empty() ? "pipeline" : manifestLabel;
    record.configDigest = manifestDigest;
    record.startWallMillis = runStartWallMillis;
    record.wallNanos = nanosSince(runStart);
    record.workers = pool.size();
    record.entries.reserve(nodes.size());
    for (NodeId id = 0; id < nodes.size(); ++id) {
        const Node& node = nodes[id];
        obs::ManifestEntry entry;
        entry.node = id;
        entry.label = node.label;
        entry.stage = node.stage;
        entry.status = nodeStatusName(node.status);
        entry.probe = probeOutcomeName(node.probeOutcome);
        entry.wallNanos = node.wallNanos;
        entry.busyNanos = node.busyNanos;
        entry.worker = node.worker;
        entry.remoteWorker = node.remoteWorker;
        if (node.provenance &&
            (node.status == NodeStatus::Done ||
             node.status == NodeStatus::CacheResolved))
            entry.storeKey = node.provenance();
        record.entries.push_back(std::move(entry));
    }
    obs::RunManifest::global().addRun(std::move(record));

    if (first)
        std::rethrow_exception(first);
}

NodeStatus
TaskGraph::status(NodeId id) const
{
    std::lock_guard guard(mutex);
    return nodes.at(id).status;
}

const std::string&
TaskGraph::label(NodeId id) const
{
    return nodes.at(id).label;
}

std::size_t
TaskGraph::criticalPathLocked() const
{
    std::size_t longest = 0;
    std::vector<std::size_t> depth(nodes.size(), 0);
    for (NodeId id = 0; id < nodes.size(); ++id) {
        std::size_t best = 0;
        for (NodeId dep : nodes[id].deps)
            best = std::max(best, depth[dep]);
        depth[id] = best + 1;
        longest = std::max(longest, depth[id]);
    }
    return longest;
}

std::size_t
TaskGraph::criticalPathLength() const
{
    return criticalPathLocked();
}

void
TaskGraph::writeJson(JsonWriter& w) const
{
    std::lock_guard guard(mutex);
    w.beginObject();
    w.member("nodeCount", nodes.size());
    w.member("edgeCount", edges);
    w.member("criticalPath", criticalPathLocked());
    w.key("nodes").beginArray();
    for (NodeId id = 0; id < nodes.size(); ++id) {
        const Node& node = nodes[id];
        w.beginObject();
        w.member("id", id);
        w.member("label", node.label);
        w.member("stage", node.stage);
        w.member("status", nodeStatusName(node.status));
        w.member("probed", static_cast<bool>(node.probe));
        w.key("deps").beginArray();
        for (NodeId dep : node.deps)
            w.value(dep);
        w.endArray();
        if (node.status == NodeStatus::Failed)
            w.member("error", node.errorText);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

namespace
{

std::string
dotEscape(const std::string& text)
{
    std::string out;
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

const char*
dotColor(NodeStatus status)
{
    switch (status) {
      case NodeStatus::Done:
        return "palegreen";
      case NodeStatus::CacheResolved:
        return "lightblue";
      case NodeStatus::Failed:
        return "lightcoral";
      case NodeStatus::Skipped:
        return "khaki";
      case NodeStatus::Pending:
      case NodeStatus::Running:
        break;
    }
    return "white";
}

} // namespace

void
TaskGraph::writeDot(std::ostream& os) const
{
    std::lock_guard guard(mutex);
    os << "digraph pipeline {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
    for (NodeId id = 0; id < nodes.size(); ++id) {
        const Node& node = nodes[id];
        os << "  n" << id << " [label=\"" << dotEscape(node.label)
           << "\\n[" << nodeStatusName(node.status)
           << "]\", style=filled, fillcolor=\""
           << dotColor(node.status) << "\"];\n";
    }
    for (NodeId id = 0; id < nodes.size(); ++id) {
        for (NodeId dep : nodes[id].deps)
            os << "  n" << dep << " -> n" << id << ";\n";
    }
    os << "}\n";
}

} // namespace xbsp::pipeline
