/**
 * @file
 * Deterministic task-graph scheduler over the fixed-size ThreadPool.
 *
 * A TaskGraph is a DAG of named nodes, each carrying a work function
 * and the ids of the nodes it depends on.  run() executes every node
 * exactly once, dispatching ready nodes (all dependencies settled) to
 * the pool.  The contracts extend the threading model of
 * util/threadpool (see DESIGN.md, "Pipeline graph"):
 *
 *  - **Acyclic by construction.**  A node may only depend on nodes
 *    with smaller ids (i.e. added before it), so cycles cannot be
 *    expressed and node-id order is a topological order.
 *  - **Deterministic output at any --jobs.**  Work functions write
 *    into per-node slots owned by the caller; commit hooks run on the
 *    scheduling thread in node-id order after every node settles, and
 *    the exception of the *lowest-id* failed node is rethrown — so
 *    cache state, log lines and errors never depend on how the pool
 *    interleaved execution.  (With a 1-thread pool, nodes run inline
 *    in ready-order, lowest id first.)
 *  - **Cache probes bypass the pool.**  A node may carry a probe that
 *    answers "are all of this node's artifact-store entries already
 *    on disk?".  When the probe says yes at dispatch time, the work
 *    runs inline on the scheduling thread (it will only decode cached
 *    artifacts) instead of occupying a worker slot, keeping workers
 *    free for nodes that actually compute.
 *  - **Failure isolates, never poisons.**  A failed node marks its
 *    transitive dependents Skipped; unrelated subgraphs still run to
 *    completion.  Commit hooks of failed/skipped nodes do not run.
 *  - **Remote dispatch is an accelerator, never a dependency.**  A
 *    node carrying a RemoteSpec whose probe missed is shipped to the
 *    attached RemoteBackend (worker processes publishing artifacts
 *    into the shared store); on success its work still runs inline on
 *    the scheduling thread, decoding what the worker stored, so
 *    results and commit order are bit-identical to a local run.  Any
 *    remote failure falls back to the local pool.
 *
 * Scheduling is observable: every node runs under a TraceSpan
 * (category "pipeline"), and run() reports scheduler.* counters —
 * including per-stage scheduler.stage.<stage>.* tallies — plus a
 * scheduler.criticalPath distribution, all independent of the worker
 * count.  writeJson()/writeDot() dump the graph with per-node status
 * for `xbsp graph`.  Each run() also appends a provenance record (per
 * node: probe outcome, wall/busy time, worker, store key) to
 * obs::RunManifest::global(), in node-id order — see obs/manifest.
 */

#ifndef XBSP_PIPELINE_TASKGRAPH_HH
#define XBSP_PIPELINE_TASKGRAPH_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace xbsp
{
class JsonWriter;
class ThreadPool;
} // namespace xbsp

namespace xbsp::pipeline
{

/** Index of a node within its graph (also its commit order). */
using NodeId = std::size_t;

/** Lifecycle of one node; terminal states after run() returns. */
enum class NodeStatus
{
    Pending,        ///< not yet dispatched
    Running,        ///< work in flight
    Done,           ///< work completed on a pool worker
    CacheResolved,  ///< probe hit: work completed inline off-pool
    Failed,         ///< work threw; exception captured
    Skipped         ///< a (transitive) dependency failed
};

/** Display name: "pending", "running", "done", "cache", ... */
std::string nodeStatusName(NodeStatus status);

/**
 * A stage shipped to a remote worker: `key` is the node's
 * artifact-store key digest (the single-flight identity — two nodes
 * with equal keys compute the same artifacts), `payload` an opaque
 * serialized description a worker can recompute the stage from.
 */
struct RemoteSpec
{
    std::string key;
    std::string payload;
};

/**
 * Where remote-eligible nodes are shipped.  submit() must not block:
 * it enqueues the spec and returns; `done` is invoked exactly once,
 * from any thread, with ok=true when the stage's artifacts have been
 * published to the shared store (workerName identifies the executing
 * worker) or ok=false when remote execution failed and the scheduler
 * should fall back to running the node locally.  Implementations
 * outlive every graph run they are attached to.
 */
class RemoteBackend
{
  public:
    virtual ~RemoteBackend() = default;

    using DoneFn =
        std::function<void(bool ok, const std::string& workerName)>;

    virtual void submit(const RemoteSpec& spec, DoneFn done) = 0;
};

/** See the file comment for the full contract. */
class TaskGraph
{
  public:
    TaskGraph() = default;

    TaskGraph(const TaskGraph&) = delete;
    TaskGraph& operator=(const TaskGraph&) = delete;

    /**
     * Append a node.  `deps` must name already-added nodes (fatal
     * otherwise).  `label` is the display/trace name, `stage` a short
     * stage kind ("compile", "profile", ...) for grouping in dumps.
     * `work` runs exactly once, off the scheduler's lock; it must
     * write results only into state owned by this node.
     */
    NodeId add(std::string label, std::string stage,
               std::vector<NodeId> deps, std::function<void()> work);

    /**
     * Attach a cache probe: called (off-lock) when the node becomes
     * ready; returning true promises that `work` will be served
     * entirely from the artifact store, so it runs inline on the
     * scheduling thread instead of a pool worker.  A probe must be
     * read-only and side-effect free.
     */
    void setProbe(NodeId id, std::function<bool()> probe);

    /**
     * Attach a commit hook: runs on the scheduling thread after all
     * nodes settle, in node-id order, only for Done/CacheResolved
     * nodes.  This is the place for cache insertion and user-visible
     * "done" log lines — anything whose order must not depend on
     * scheduling.
     */
    void setCommit(NodeId id, std::function<void()> commit);

    /**
     * Attach a provenance callback: returns the node's artifact-store
     * key (hex) for the run manifest.  Called on the scheduling
     * thread after the run, only for Done/CacheResolved nodes — lazily
     * on purpose, because some stage keys (a binary's detailed-run
     * key) only exist once upstream stages have resolved.
     */
    void setProvenance(NodeId id, std::function<std::string()> key);

    /**
     * Label and config digest stamped onto the ManifestRun this graph
     * appends to RunManifest::global() at the end of run().
     */
    void setManifestInfo(std::string label, std::string configDigest);

    /**
     * Mark a node remote-eligible: when a backend is attached and the
     * node's cache probe misses at dispatch time, the scheduler ships
     * `spec()` to the backend instead of the local pool.  The spec
     * generator runs on the scheduling thread after the node's
     * dependencies settled (some store keys only exist by then).  On
     * remote success the node's work function still runs inline on
     * the scheduling thread — it decodes the artifacts the worker
     * published to the shared store, so results and commit order are
     * bit-identical to a local run.  On any remote failure the node
     * falls back to the local pool; remote execution can slow a run
     * down, never break it.
     */
    void setRemote(NodeId id, std::function<RemoteSpec()> spec);

    /**
     * Attach the backend remote-eligible nodes are shipped to (null
     * detaches).  Must outlive run().
     */
    void setRemoteBackend(RemoteBackend* backend);

    /**
     * Execute the graph on `pool` (inline when it has no workers).
     * Blocks until every node settles, runs commit hooks in node-id
     * order, then rethrows the exception of the lowest-id failed
     * node, if any.  A graph runs at most once.
     */
    void run(ThreadPool& pool);

    std::size_t nodeCount() const { return nodes.size(); }
    std::size_t edgeCount() const { return edges; }

    NodeStatus status(NodeId id) const;
    const std::string& label(NodeId id) const;

    /** Longest dependency chain, in nodes (0 for an empty graph). */
    std::size_t criticalPathLength() const;

    /**
     * Emit the graph as one JSON object value: node/edge counts,
     * critical path, and per-node {id, label, stage, status, probed,
     * deps}.  Callable before or after run().
     */
    void writeJson(JsonWriter& w) const;

    /** Emit Graphviz DOT, nodes colored by status. */
    void writeDot(std::ostream& os) const;

  private:
    struct Node
    {
        std::string label;
        std::string stage;
        std::vector<NodeId> deps;
        std::vector<NodeId> dependents;
        std::function<void()> work;
        std::function<bool()> probe;
        std::function<void()> commit;
        std::function<std::string()> provenance;
        std::function<RemoteSpec()> remote;
        NodeStatus status = NodeStatus::Pending;
        std::size_t remaining = 0;  ///< unsettled deps during run()
        std::exception_ptr error;
        std::string errorText;

        // Provenance captured during run() (see obs/manifest).
        int probeOutcome = 0;  ///< 0 none, 1 hit, 2 miss
        u64 wallNanos = 0;     ///< dispatch -> settled
        u64 busyNanos = 0;     ///< work-function execution time
        u64 worker = 0;        ///< pool worker id (0 = scheduler)
        std::string remoteWorker;  ///< executing remote worker ("")
    };

    std::vector<Node> nodes;
    std::size_t edges = 0;
    bool ran = false;
    std::string manifestLabel;
    std::string manifestDigest;
    RemoteBackend* remoteBackend = nullptr;

    mutable std::mutex mutex;       ///< guards node status during run
    std::condition_variable wake;   ///< completions -> scheduler loop

    std::size_t criticalPathLocked() const;
};

} // namespace xbsp::pipeline

#endif // XBSP_PIPELINE_TASKGRAPH_HH
