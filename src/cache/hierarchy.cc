#include "cache/hierarchy.hh"

#include "util/logging.hh"

namespace xbsp::cache
{

std::string
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        return "L1";
      case HitLevel::L2:
        return "L2";
      case HitLevel::L3:
        return "L3";
      case HitLevel::Memory:
        return "DRAM";
    }
    panic("unknown HitLevel {}", static_cast<int>(level));
}

Hierarchy::Hierarchy(const HierarchyConfig& config)
    : cfg(config),
      levels{SetAssociativeCache(config.l1),
             SetAssociativeCache(config.l2),
             SetAssociativeCache(config.l3)}
{
    if (cfg.l1.lineSize != cfg.l2.lineSize ||
        cfg.l2.lineSize != cfg.l3.lineSize) {
        fatal("hierarchy requires a uniform line size, got {}/{}/{}",
              cfg.l1.lineSize, cfg.l2.lineSize, cfg.l3.lineSize);
    }
    latencyTable = {cfg.l1.hitLatency, cfg.l2.hitLatency,
                    cfg.l3.hitLatency, cfg.dramLatency};
}

void
Hierarchy::writebackInto(std::size_t level, Addr lineAddr)
{
    if (level >= levels.size()) {
        ++dramWbCount;
        return;
    }
    // Non-inclusive write-back: a line already resident in the next
    // level down is just re-touched and dirtied (one set scan; not a
    // demand access in the hit/miss statistics); otherwise the dirty
    // line is installed there (allocating), possibly cascading.
    if (levels[level].touchIfPresent(lineAddr))
        return;
    const Eviction ev = levels[level].fill(lineAddr, true);
    if (ev.valid && ev.dirty)
        writebackInto(level + 1, ev.lineAddr);
}

HitLevel
Hierarchy::accessMissFrom(Addr addr, bool isWrite)
{
    HitLevel result = HitLevel::Memory;
    std::size_t hitAt = levels.size();
    for (std::size_t i = 1; i < levels.size(); ++i) {
        if (levels[i].lookup(addr, false)) {
            result = static_cast<HitLevel>(i);
            hitAt = i;
            break;
        }
    }
    // Fill every level above the hit (or all levels on a DRAM access).
    for (std::size_t i = hitAt; i-- > 0;) {
        const Eviction ev = levels[i].fill(addr, isWrite && i == 0);
        if (ev.valid && ev.dirty)
            writebackInto(i + 1, ev.lineAddr);
    }
    ++serviced[static_cast<std::size_t>(result)];
    return result;
}

void
Hierarchy::flushAll()
{
    for (auto& level : levels)
        level.flush();
}

void
Hierarchy::resetStats()
{
    for (auto& level : levels)
        level.resetStats();
    serviced.fill(0);
    dramWbCount = 0;
}

u64
Hierarchy::servicedAt(HitLevel level) const
{
    return serviced[static_cast<std::size_t>(level)];
}

u64
Hierarchy::totalAccesses() const
{
    u64 total = 0;
    for (u64 s : serviced)
        total += s;
    return total;
}

} // namespace xbsp::cache
