/**
 * @file
 * Set-associative cache with true-LRU replacement and write-back
 * dirty tracking — one level of the CMP$im-style hierarchy.
 */

#ifndef XBSP_CACHE_CACHE_HH
#define XBSP_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace xbsp::cache
{

/** Geometry and timing of one cache level. */
struct LevelConfig
{
    std::string name = "L1D";
    u64 capacityBytes = 32 * 1024;
    u32 associativity = 2;
    u32 lineSize = 64;
    Cycles hitLatency = 3;
};

/** Result of filling a line: what got evicted, if anything. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
};

/**
 * One set-associative, true-LRU, write-back cache level.  Addresses
 * are full byte addresses; the cache derives line/set indices itself.
 */
class SetAssociativeCache
{
  public:
    explicit SetAssociativeCache(const LevelConfig& config);

    /**
     * Look up an address.  On a hit the line's LRU state is updated
     * and, for writes, the line is marked dirty.
     * @return true on hit.
     */
    bool lookup(Addr addr, bool isWrite);

    /**
     * Install the line containing `addr` (allocate-on-miss), evicting
     * the LRU way if the set is full.
     * @param dirty install the line already dirty (writeback fills).
     * @return the eviction, with valid=false when a way was free.
     */
    Eviction fill(Addr addr, bool dirty);

    /** Invalidate everything (cold-start a sampling region). */
    void flush();

    /** True if the line containing `addr` is present (no LRU touch). */
    bool probe(Addr addr) const;

    const LevelConfig& config() const { return cfg; }
    u64 accesses() const { return accessCount; }
    u64 misses() const { return missCount; }
    u64 writebacksOut() const { return writebackCount; }
    double missRate() const;
    void resetStats();

  private:
    struct Line
    {
        Addr tag = 0;
        u64 lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    LevelConfig cfg;
    u32 numSets = 0;
    u32 setShift = 0;   ///< log2(lineSize)
    u64 setMask = 0;    ///< numSets - 1
    std::vector<Line> lines;  ///< numSets x associativity
    u64 tick = 0;
    u64 accessCount = 0;
    u64 missCount = 0;
    u64 writebackCount = 0;

    Line* findLine(Addr addr);
    const Line* findLine(Addr addr) const;
    Line* victimLine(Addr addr);
};

} // namespace xbsp::cache

#endif // XBSP_CACHE_CACHE_HH
