/**
 * @file
 * Set-associative cache with true-LRU replacement and write-back
 * dirty tracking — one level of the CMP$im-style hierarchy.
 *
 * The line state is stored set-blocked: each set owns one contiguous
 * block of `2 * ways` u64 words — first the packed tags (one word
 * per way: `(lineAddr << 1) | 1`, 0 = invalid), then the packed
 * replacement metadata (`(tick << 1) | dirty`).  A tag walk
 * therefore compares one word per way against a single precomputed
 * key and touches one cache line per 8 ways — which is what makes
 * the L2/L3 set scans on the miss path cheap — while the metadata a
 * fill needs sits in the lines directly after the tags it just
 * walked.  Because the per-cache tick is unique, the smallest packed
 * meta word still selects the true LRU victim without unpacking.
 *
 * Wide sets (8 ways and up — the L2/L3 geometries, where misses
 * spend their time) scan through the runtime-dispatched set-scan
 * kernels of util/simd/simd.hh, which compare four tag words per
 * AVX2 instruction; narrow sets keep the inline walk, which beats an
 * indirect call at 2 ways.  The kernels return way indices with
 * pinned semantics (lowest match; first free way, else minimum
 * metadata with ties low), so which implementation runs is invisible
 * to the simulation — the same speed-knob contract as the rest of
 * the simd layer.
 *
 * lookup() is defined inline (and first probes the set's MRU way)
 * because it is the innermost operation of the simulation hot loop:
 * the hierarchy's batched access path inlines straight through it.
 * The MRU hint is purely an access-order accelerator — tags are
 * unique within a set, so probing the hinted way first finds the same
 * line a full scan would, and the LRU timestamp (`lastUse`) is bumped
 * exactly as before.  ReferenceCache (cache/reference.hh) keeps the
 * pre-fast-path implementation for equivalence tests and benchmarks.
 */

#ifndef XBSP_CACHE_CACHE_HH
#define XBSP_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "util/simd/simd.hh"
#include "util/types.hh"

namespace xbsp::cache
{

/** Geometry and timing of one cache level. */
struct LevelConfig
{
    std::string name = "L1D";
    u64 capacityBytes = 32 * 1024;
    u32 associativity = 2;
    u32 lineSize = 64;
    Cycles hitLatency = 3;
};

/** Result of filling a line: what got evicted, if anything. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
};

/**
 * One set-associative, true-LRU, write-back cache level.  Addresses
 * are full byte addresses; the cache derives line/set indices itself.
 */
class SetAssociativeCache
{
  public:
    explicit SetAssociativeCache(const LevelConfig& config);

    /**
     * Look up an address.  On a hit the line's LRU state is updated
     * and, for writes, the line is marked dirty.
     * @return true on hit.
     */
    bool
    lookup(Addr addr, bool isWrite)
    {
        ++accessCount;
        ++tick;
        const Addr lineAddr = addr >> setShift;
        const u64 set = lineAddr & setMask;
        const u64 key = (lineAddr << 1) | 1;
        u64* tag = &state[set * ways * 2];
        u64* meta = tag + ways;
        const u32 mru = mruWay[set];
        if (tag[mru] == key) {
            meta[mru] = (tick << 1) |
                        ((meta[mru] | static_cast<u64>(isWrite)) & 1);
            return true;
        }
        // The hinted way already failed, so it cannot match again;
        // rescanning it keeps the scan oblivious to the hint.
        const u32 w = scanFor(tag, key);
        if (w != simd::kWayNotFound) {
            meta[w] = (tick << 1) |
                      ((meta[w] | static_cast<u64>(isWrite)) & 1);
            mruWay[set] = w;
            return true;
        }
        ++missCount;
        return false;
    }

    /**
     * Touch the line containing `addr` if it is present: bump its LRU
     * state and mark it dirty, counting one access — exactly what the
     * old probe()-then-lookup(addr, true) pair did for a writeback
     * landing on a resident line, but with a single set scan.  A miss
     * changes nothing (the probe half of the old pair was stateless).
     * @return true when the line was present (and is now dirty).
     */
    bool
    touchIfPresent(Addr addr)
    {
        const Addr lineAddr = addr >> setShift;
        const u64 set = lineAddr & setMask;
        const u64 key = (lineAddr << 1) | 1;
        u64* tag = &state[set * ways * 2];
        u64* meta = tag + ways;
        const u32 w = scanFor(tag, key);
        if (w != simd::kWayNotFound) {
            ++accessCount;
            ++tick;
            meta[w] = (tick << 1) | 1;
            mruWay[set] = w;
            return true;
        }
        return false;
    }

    /**
     * Install the line containing `addr` (allocate-on-miss), evicting
     * the LRU way if the set is full.
     * @param dirty install the line already dirty (writeback fills).
     * @return the eviction, with valid=false when a way was free.
     */
    Eviction fill(Addr addr, bool dirty);

    /** Invalidate everything (cold-start a sampling region). */
    void flush();

    /** True if the line containing `addr` is present (no LRU touch). */
    bool probe(Addr addr) const;

    /**
     * Hint the hardware to pull the set block of `addr` into the
     * real cache.  Purely a performance hint — no simulated state or
     * statistics change; the batched hierarchy walk issues these for
     * a whole reference batch before walking it, overlapping the
     * metadata fetches that dominate miss-heavy streams.
     */
    void
    prefetchSet(Addr addr) const
    {
        const u64 set = (addr >> setShift) & setMask;
        const u64* block = &state[set * ways * 2];
        __builtin_prefetch(block);
        if (ways > 8)
            __builtin_prefetch(block + 8);
    }

    const LevelConfig& config() const { return cfg; }
    u64 accesses() const { return accessCount; }
    u64 misses() const { return missCount; }
    u64 writebacksOut() const { return writebackCount; }
    double missRate() const;
    void resetStats();

  private:
    /**
     * Way of `key` within one set's tag block, else kWayNotFound.
     * Wide sets go through the dispatched vector kernel; narrow sets
     * (the 2-way L1) inline the walk, which is cheaper than any
     * call.  `ways` is fixed per cache, so the branch is free.
     */
    u32
    scanFor(const u64* tag, u64 key) const
    {
        if (ways >= 8)
            return findWayFn(tag, ways, key);
        for (u32 w = 0; w < ways; ++w) {
            if (tag[w] == key)
                return w;
        }
        return simd::kWayNotFound;
    }

    LevelConfig cfg;
    u32 ways = 0;       ///< cfg.associativity, hot copy
    u32 numSets = 0;
    u32 setShift = 0;   ///< log2(lineSize)
    u64 setMask = 0;    ///< numSets - 1
    /**
     * Per-set block of 2*ways words: packed tags
     * (`(lineAddr << 1) | valid`, 0 = free) then packed metadata
     * (`(LRU tick << 1) | dirty`).
     */
    std::vector<u64> state;
    std::vector<u32> mruWay;  ///< per-set most-recently-hit way hint
    // Set-scan kernels, resolved from the simd dispatch once at
    // construction (caches are built after --simd is applied).
    u32 (*findWayFn)(const u64*, u32, u64) = nullptr;
    u32 (*victimWayFn)(const u64*, const u64*, u32) = nullptr;
    u64 tick = 0;
    u64 accessCount = 0;
    u64 missCount = 0;
    u64 writebackCount = 0;
};

} // namespace xbsp::cache

#endif // XBSP_CACHE_CACHE_HH
