/**
 * @file
 * Three-level non-inclusive write-back cache hierarchy with the
 * paper's Table 1 configuration as default: L1D 32KB/2-way,
 * L2 512KB/8-way, L3 1MB/16-way, all 64-byte lines and LRU, with
 * 3/14/35-cycle hit latencies and 250-cycle DRAM.
 *
 * The access path is split into an inline L1-hit fast path (one
 * inlined lookup, one latency-table read) and an out-of-line miss
 * slow path (L2/L3 walk, fills, writeback cascade).  accessBatch()
 * therefore keeps the dominant case — an L1 hit — inside one
 * branch-light inner loop; statistics and LRU state are updated
 * exactly as if access() had been called per reference.
 */

#ifndef XBSP_CACHE_HIERARCHY_HH
#define XBSP_CACHE_HIERARCHY_HH

#include <array>
#include <span>

#include "cache/cache.hh"
#include "mem/pattern.hh"
#include "util/types.hh"

namespace xbsp::cache
{

/** Which level serviced a reference. */
enum class HitLevel { L1, L2, L3, Memory };

/** Display name, e.g. "L2". */
std::string hitLevelName(HitLevel level);

/** Full hierarchy configuration. */
struct HierarchyConfig
{
    LevelConfig l1{"L1D", 32 * 1024, 2, 64, 3};
    LevelConfig l2{"L2D", 512 * 1024, 8, 64, 14};
    LevelConfig l3{"L3D", 1024 * 1024, 16, 64, 35};
    Cycles dramLatency = 250;

    /** The configuration of the paper's Table 1 (also the default). */
    static HierarchyConfig paperTable1() { return HierarchyConfig{}; }
};

/**
 * The memory system: lookups walk L1 -> L2 -> L3 -> DRAM; misses fill
 * every level on the way back (allocate-on-miss); dirty evictions are
 * written back into the next level without back-invalidation
 * (non-inclusive).  Writeback traffic is counted but costs no cycles,
 * matching CMP$im's simple timing.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(
        const HierarchyConfig& config = HierarchyConfig::paperTable1());

    /** Service one reference; returns the level that hit. */
    HitLevel
    access(Addr addr, bool isWrite)
    {
        if (levels[0].lookup(addr, isWrite)) {
            ++serviced[0];
            return HitLevel::L1;
        }
        return accessMissFrom(addr, isWrite);
    }

    /**
     * Service a whole block's reference batch in issue order and
     * return the summed latency.  Statistics are updated exactly as
     * if access() had been called per reference; this entry point
     * exists so batch-aware timing observers pay one call per block
     * instead of two virtual dispatches per reference.
     */
    Cycles
    accessBatch(std::span<const mem::MemRef> refs)
    {
        // Knowing the whole batch up front is what lets the walk
        // overlap its metadata fetches: hint every referenced L2/L3
        // set block before the first (serially dependent) set scan.
        // The simulated L1's state is small enough to stay resident.
        for (const mem::MemRef& ref : refs) {
            levels[1].prefetchSet(ref.addr);
            levels[2].prefetchSet(ref.addr);
        }
        Cycles total = 0;
        for (const mem::MemRef& ref : refs) {
            if (levels[0].lookup(ref.addr, ref.isWrite)) {
                ++serviced[0];
                total += latencyTable[0];
            } else {
                total += latencyTable[static_cast<std::size_t>(
                    accessMissFrom(ref.addr, ref.isWrite))];
            }
        }
        return total;
    }

    /** Total latency of a reference serviced at `level`. */
    Cycles
    latency(HitLevel level) const
    {
        return latencyTable[static_cast<std::size_t>(level)];
    }

    /** Invalidate all levels (cold-start sampling ablation). */
    void flushAll();

    /** Zero all per-level statistics (cache contents kept). */
    void resetStats();

    const SetAssociativeCache& l1() const { return levels[0]; }
    const SetAssociativeCache& l2() const { return levels[1]; }
    const SetAssociativeCache& l3() const { return levels[2]; }
    const HierarchyConfig& config() const { return cfg; }

    /** References serviced per level plus DRAM writebacks. */
    u64 servicedAt(HitLevel level) const;
    u64 dramWritebacks() const { return dramWbCount; }
    u64 totalAccesses() const;

  private:
    HierarchyConfig cfg;
    std::array<SetAssociativeCache, 3> levels;
    std::array<Cycles, 4> latencyTable{};  ///< per HitLevel
    std::array<u64, 4> serviced{};         ///< per HitLevel
    u64 dramWbCount = 0;

    /** Slow path: L1 already looked up and missed. */
    HitLevel accessMissFrom(Addr addr, bool isWrite);
    void writebackInto(std::size_t level, Addr lineAddr);
};

} // namespace xbsp::cache

#endif // XBSP_CACHE_HIERARCHY_HH
