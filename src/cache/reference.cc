#include "cache/reference.hh"

#include "util/logging.hh"

namespace xbsp::cache
{

namespace
{

bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

u32
log2u(u64 v)
{
    u32 n = 0;
    while ((1ull << n) < v)
        ++n;
    return n;
}

} // namespace

ReferenceCache::ReferenceCache(const LevelConfig& config)
    : cfg(config)
{
    if (cfg.lineSize == 0 || !isPow2(cfg.lineSize))
        fatal("cache {}: line size {} is not a power of two",
              cfg.name, cfg.lineSize);
    if (cfg.associativity == 0)
        fatal("cache {}: associativity must be > 0", cfg.name);
    const u64 numLines = cfg.capacityBytes / cfg.lineSize;
    if (numLines == 0 || numLines % cfg.associativity != 0)
        fatal("cache {}: capacity {} not divisible into {}-way sets",
              cfg.name, cfg.capacityBytes, cfg.associativity);
    numSets = static_cast<u32>(numLines / cfg.associativity);
    if (!isPow2(numSets))
        fatal("cache {}: set count {} is not a power of two",
              cfg.name, numSets);
    setShift = log2u(cfg.lineSize);
    setMask = numSets - 1;
    lines.resize(numLines);
}

ReferenceCache::Line*
ReferenceCache::findLine(Addr addr)
{
    const Addr lineAddr = addr >> setShift;
    const u64 set = lineAddr & setMask;
    Line* base = &lines[set * cfg.associativity];
    for (u32 w = 0; w < cfg.associativity; ++w) {
        if (base[w].valid && base[w].tag == lineAddr)
            return &base[w];
    }
    return nullptr;
}

const ReferenceCache::Line*
ReferenceCache::findLine(Addr addr) const
{
    return const_cast<ReferenceCache*>(this)->findLine(addr);
}

ReferenceCache::Line*
ReferenceCache::victimLine(Addr addr)
{
    const Addr lineAddr = addr >> setShift;
    const u64 set = lineAddr & setMask;
    Line* base = &lines[set * cfg.associativity];
    Line* victim = &base[0];
    for (u32 w = 0; w < cfg.associativity; ++w) {
        if (!base[w].valid)
            return &base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return victim;
}

bool
ReferenceCache::lookup(Addr addr, bool isWrite)
{
    ++accessCount;
    ++tick;
    if (Line* line = findLine(addr)) {
        line->lastUse = tick;
        if (isWrite)
            line->dirty = true;
        return true;
    }
    ++missCount;
    return false;
}

Eviction
ReferenceCache::fill(Addr addr, bool dirty)
{
    Line* victim = victimLine(addr);
    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.lineAddr = victim->tag << setShift;
        if (victim->dirty)
            ++writebackCount;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = addr >> setShift;
    victim->lastUse = ++tick;
    return ev;
}

void
ReferenceCache::flush()
{
    for (Line& line : lines)
        line = Line{};
}

bool
ReferenceCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
ReferenceCache::resetStats()
{
    accessCount = 0;
    missCount = 0;
    writebackCount = 0;
}

ReferenceHierarchy::ReferenceHierarchy(const HierarchyConfig& config)
    : cfg(config),
      levels{ReferenceCache(config.l1), ReferenceCache(config.l2),
             ReferenceCache(config.l3)}
{
    if (cfg.l1.lineSize != cfg.l2.lineSize ||
        cfg.l2.lineSize != cfg.l3.lineSize) {
        fatal("hierarchy requires a uniform line size, got {}/{}/{}",
              cfg.l1.lineSize, cfg.l2.lineSize, cfg.l3.lineSize);
    }
}

void
ReferenceHierarchy::writebackInto(std::size_t level, Addr lineAddr)
{
    if (level >= levels.size()) {
        ++dramWbCount;
        return;
    }
    // Non-inclusive write-back: the dirty line is installed in the
    // next level down (allocating there), possibly cascading.
    if (levels[level].probe(lineAddr)) {
        // Already present: just mark it dirty via a write lookup.
        // This is not counted as a demand access.
        levels[level].lookup(lineAddr, true);
        return;
    }
    const Eviction ev = levels[level].fill(lineAddr, true);
    if (ev.valid && ev.dirty)
        writebackInto(level + 1, ev.lineAddr);
}

HitLevel
ReferenceHierarchy::access(Addr addr, bool isWrite)
{
    HitLevel result = HitLevel::Memory;
    std::size_t hitAt = levels.size();
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (levels[i].lookup(addr, isWrite && i == 0)) {
            result = static_cast<HitLevel>(i);
            hitAt = i;
            break;
        }
    }
    // Fill every level above the hit (or all levels on a DRAM access).
    for (std::size_t i = hitAt; i-- > 0;) {
        const Eviction ev = levels[i].fill(addr, isWrite && i == 0);
        if (ev.valid && ev.dirty)
            writebackInto(i + 1, ev.lineAddr);
    }
    ++serviced[static_cast<std::size_t>(result)];
    return result;
}

Cycles
ReferenceHierarchy::latency(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        return cfg.l1.hitLatency;
      case HitLevel::L2:
        return cfg.l2.hitLatency;
      case HitLevel::L3:
        return cfg.l3.hitLatency;
      case HitLevel::Memory:
        return cfg.dramLatency;
    }
    panic("unknown HitLevel {}", static_cast<int>(level));
}

void
ReferenceHierarchy::flushAll()
{
    for (auto& level : levels)
        level.flush();
}

void
ReferenceHierarchy::resetStats()
{
    for (auto& level : levels)
        level.resetStats();
    serviced.fill(0);
    dramWbCount = 0;
}

u64
ReferenceHierarchy::servicedAt(HitLevel level) const
{
    return serviced[static_cast<std::size_t>(level)];
}

u64
ReferenceHierarchy::totalAccesses() const
{
    u64 total = 0;
    for (u64 s : serviced)
        total += s;
    return total;
}

} // namespace xbsp::cache
