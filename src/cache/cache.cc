#include "cache/cache.hh"

#include "util/logging.hh"

namespace xbsp::cache
{

namespace
{

bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

u32
log2u(u64 v)
{
    u32 n = 0;
    while ((1ull << n) < v)
        ++n;
    return n;
}

} // namespace

SetAssociativeCache::SetAssociativeCache(const LevelConfig& config)
    : cfg(config)
{
    if (cfg.lineSize == 0 || !isPow2(cfg.lineSize))
        fatal("cache {}: line size {} is not a power of two",
              cfg.name, cfg.lineSize);
    if (cfg.associativity == 0)
        fatal("cache {}: associativity must be > 0", cfg.name);
    const u64 numLines = cfg.capacityBytes / cfg.lineSize;
    if (numLines == 0 || numLines % cfg.associativity != 0)
        fatal("cache {}: capacity {} not divisible into {}-way sets",
              cfg.name, cfg.capacityBytes, cfg.associativity);
    numSets = static_cast<u32>(numLines / cfg.associativity);
    if (!isPow2(numSets))
        fatal("cache {}: set count {} is not a power of two",
              cfg.name, numSets);
    setShift = log2u(cfg.lineSize);
    setMask = numSets - 1;
    lines.resize(numLines);
}

SetAssociativeCache::Line*
SetAssociativeCache::findLine(Addr addr)
{
    const Addr lineAddr = addr >> setShift;
    const u64 set = lineAddr & setMask;
    Line* base = &lines[set * cfg.associativity];
    for (u32 w = 0; w < cfg.associativity; ++w) {
        if (base[w].valid && base[w].tag == lineAddr)
            return &base[w];
    }
    return nullptr;
}

const SetAssociativeCache::Line*
SetAssociativeCache::findLine(Addr addr) const
{
    return const_cast<SetAssociativeCache*>(this)->findLine(addr);
}

SetAssociativeCache::Line*
SetAssociativeCache::victimLine(Addr addr)
{
    const Addr lineAddr = addr >> setShift;
    const u64 set = lineAddr & setMask;
    Line* base = &lines[set * cfg.associativity];
    Line* victim = &base[0];
    for (u32 w = 0; w < cfg.associativity; ++w) {
        if (!base[w].valid)
            return &base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return victim;
}

bool
SetAssociativeCache::lookup(Addr addr, bool isWrite)
{
    ++accessCount;
    ++tick;
    if (Line* line = findLine(addr)) {
        line->lastUse = tick;
        if (isWrite)
            line->dirty = true;
        return true;
    }
    ++missCount;
    return false;
}

Eviction
SetAssociativeCache::fill(Addr addr, bool dirty)
{
    Line* victim = victimLine(addr);
    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.lineAddr = victim->tag << setShift;
        if (victim->dirty)
            ++writebackCount;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = addr >> setShift;
    victim->lastUse = ++tick;
    return ev;
}

void
SetAssociativeCache::flush()
{
    for (Line& line : lines)
        line = Line{};
}

bool
SetAssociativeCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

double
SetAssociativeCache::missRate() const
{
    return accessCount
               ? static_cast<double>(missCount) /
                     static_cast<double>(accessCount)
               : 0.0;
}

void
SetAssociativeCache::resetStats()
{
    accessCount = 0;
    missCount = 0;
    writebackCount = 0;
}

} // namespace xbsp::cache
