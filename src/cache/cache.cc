#include "cache/cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace xbsp::cache
{

namespace
{

bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

u32
log2u(u64 v)
{
    u32 n = 0;
    while ((1ull << n) < v)
        ++n;
    return n;
}

} // namespace

SetAssociativeCache::SetAssociativeCache(const LevelConfig& config)
    : cfg(config)
{
    if (cfg.lineSize < 2 || !isPow2(cfg.lineSize))
        fatal("cache {}: line size {} is not a power of two >= 2",
              cfg.name, cfg.lineSize);
    if (cfg.associativity == 0)
        fatal("cache {}: associativity must be > 0", cfg.name);
    const u64 numLines = cfg.capacityBytes / cfg.lineSize;
    if (numLines == 0 || numLines % cfg.associativity != 0)
        fatal("cache {}: capacity {} not divisible into {}-way sets",
              cfg.name, cfg.capacityBytes, cfg.associativity);
    ways = cfg.associativity;
    numSets = static_cast<u32>(numLines / cfg.associativity);
    if (!isPow2(numSets))
        fatal("cache {}: set count {} is not a power of two",
              cfg.name, numSets);
    setShift = log2u(cfg.lineSize);
    setMask = numSets - 1;
    // setShift >= 1 keeps every line address inside 63 bits, so the
    // packed `(lineAddr << 1) | 1` tag key can never collide or wrap.
    state.assign(static_cast<std::size_t>(numLines) * 2, 0);
    mruWay.assign(numSets, 0);
    const simd::Kernels& kernels = simd::active();
    findWayFn = kernels.findWay;
    victimWayFn = kernels.victimWay;
}

Eviction
SetAssociativeCache::fill(Addr addr, bool dirty)
{
    const Addr lineAddr = addr >> setShift;
    const u64 set = lineAddr & setMask;
    u64* tag = &state[set * ways * 2];
    u64* meta = tag + ways;
    // Victim in one fused scan: the first free way, else the
    // true-LRU way.  Ticks are unique, so the smallest packed meta
    // word is the smallest LRU tick (the dirty bit only breaks exact
    // ties, which cannot occur); ties in way order go low, as always.
    // Wide sets use the dispatched kernel, same split as scanFor().
    u32 way;
    if (ways >= 8) {
        way = victimWayFn(tag, meta, ways);
    } else {
        way = 0;
        u64 best = ~0ull;
        for (u32 w = 0; w < ways; ++w) {
            if ((tag[w] & 1) == 0) {
                way = w;
                break;
            }
            if (meta[w] < best) {
                best = meta[w];
                way = w;
            }
        }
    }
    Eviction ev;
    if ((tag[way] & 1) != 0) {
        ev.valid = true;
        ev.dirty = (meta[way] & 1) != 0;
        ev.lineAddr = (tag[way] >> 1) << setShift;
        if (ev.dirty)
            ++writebackCount;
    }
    tag[way] = (lineAddr << 1) | 1;
    meta[way] = (++tick << 1) | static_cast<u64>(dirty);
    mruWay[set] = way;
    return ev;
}

void
SetAssociativeCache::flush()
{
    std::fill(state.begin(), state.end(), 0);
    std::fill(mruWay.begin(), mruWay.end(), 0);
}

bool
SetAssociativeCache::probe(Addr addr) const
{
    const Addr lineAddr = addr >> setShift;
    const u64 set = lineAddr & setMask;
    const u64 key = (lineAddr << 1) | 1;
    const u64* tag = &state[set * ways * 2];
    return scanFor(tag, key) != simd::kWayNotFound;
}

double
SetAssociativeCache::missRate() const
{
    return accessCount
               ? static_cast<double>(missCount) /
                     static_cast<double>(accessCount)
               : 0.0;
}

void
SetAssociativeCache::resetStats()
{
    accessCount = 0;
    missCount = 0;
    writebackCount = 0;
}

} // namespace xbsp::cache
