/**
 * @file
 * Reference memory-system model: the cache and hierarchy exactly as
 * they were before the engine fast path — array-of-structs lines,
 * full set walks with no MRU hint, per-reference level loop, probe()-
 * then-lookup() writebacks and a switch for latencies.
 *
 * This is an independent twin of SetAssociativeCache/Hierarchy (the
 * same idiom as simd::scalarKernels() for the clustering kernels):
 * it shares no state or code with the optimized classes, so it both
 * pins down the semantics the fast path must reproduce bit for bit
 * (see test_hierarchy) and serves as the honest baseline for
 * bench_micro_engine.  Keep it boring; never optimize it.
 */

#ifndef XBSP_CACHE_REFERENCE_HH
#define XBSP_CACHE_REFERENCE_HH

#include <array>
#include <vector>

#include "cache/hierarchy.hh"
#include "util/types.hh"

namespace xbsp::cache
{

/** One cache level of the reference model (pre-fast-path verbatim). */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const LevelConfig& config);

    /** Full set walk; on a hit bump LRU and (for writes) dirty. */
    bool lookup(Addr addr, bool isWrite);

    /** Allocate-on-miss install, evicting the LRU way if needed. */
    Eviction fill(Addr addr, bool dirty);

    /** Presence check without any state change. */
    bool probe(Addr addr) const;

    void flush();

    const LevelConfig& config() const { return cfg; }
    u64 accesses() const { return accessCount; }
    u64 misses() const { return missCount; }
    u64 writebacksOut() const { return writebackCount; }
    void resetStats();

  private:
    struct Line
    {
        Addr tag = 0;
        u64 lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    LevelConfig cfg;
    u32 numSets = 0;
    u32 setShift = 0;
    u64 setMask = 0;
    std::vector<Line> lines;
    u64 tick = 0;
    u64 accessCount = 0;
    u64 missCount = 0;
    u64 writebackCount = 0;

    Line* findLine(Addr addr);
    const Line* findLine(Addr addr) const;
    Line* victimLine(Addr addr);
};

/**
 * The reference three-level hierarchy: one out-of-line lookup per
 * level per reference, fills on the way back, probe()-then-lookup()
 * writeback handling, latencies via a switch.  Must agree with
 * Hierarchy on every observable — hit levels, latencies, statistics
 * and final contents — for any access sequence.
 */
class ReferenceHierarchy
{
  public:
    explicit ReferenceHierarchy(
        const HierarchyConfig& config = HierarchyConfig::paperTable1());

    /** Service one reference; returns the level that hit. */
    HitLevel access(Addr addr, bool isWrite);

    /** Total latency of a reference serviced at `level`. */
    Cycles latency(HitLevel level) const;

    void flushAll();
    void resetStats();

    const ReferenceCache& l1() const { return levels[0]; }
    const ReferenceCache& l2() const { return levels[1]; }
    const ReferenceCache& l3() const { return levels[2]; }
    const HierarchyConfig& config() const { return cfg; }

    u64 servicedAt(HitLevel level) const;
    u64 dramWritebacks() const { return dramWbCount; }
    u64 totalAccesses() const;

  private:
    HierarchyConfig cfg;
    std::array<ReferenceCache, 3> levels;
    std::array<u64, 4> serviced{};
    u64 dramWbCount = 0;

    void writebackInto(std::size_t level, Addr lineAddr);
};

} // namespace xbsp::cache

#endif // XBSP_CACHE_REFERENCE_HH
