/**
 * @file
 * In-order core timing model in the CMP$im style: one cycle per
 * instruction plus the full memory-hierarchy latency of every data
 * reference (a blocking, non-overlapping memory model).  The core is
 * an execution observer; snapshot collectors read its monotonically
 * increasing cycle/instruction counters at interval boundaries.
 */

#ifndef XBSP_CPU_CORE_HH
#define XBSP_CPU_CORE_HH

#include "cache/hierarchy.hh"
#include "exec/engine.hh"
#include "util/types.hh"

namespace xbsp::cpu
{

/** Aggregate performance counters of one (partial) execution. */
struct CoreStats
{
    InstrCount instructions = 0;
    Cycles cycles = 0;
    u64 memRefs = 0;

    /** Cycles per instruction; 0 when nothing executed. */
    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/** The timing model; subscribe with blocks + memRefs hooks. */
class InOrderCore final : public exec::Observer
{
  public:
    /** The hierarchy is shared and not owned. */
    explicit InOrderCore(cache::Hierarchy& hierarchy);

    exec::ObserverHooks
    hooks() const override
    {
        return {true, true, false};
    }

    void
    onBlock(u32 blockId, u32 instrs) override
    {
        (void)blockId;
        stats.instructions += instrs;
        stats.cycles += instrs;
    }

    void
    onMemRef(Addr addr, bool isWrite) override
    {
        const cache::HitLevel level = hier.access(addr, isWrite);
        stats.cycles += hier.latency(level);
        ++stats.memRefs;
    }

    void
    onMemRefs(std::span<const mem::MemRef> refs) override
    {
        stats.cycles += hier.accessBatch(refs);
        stats.memRefs += refs.size();
    }

    /** Running counters (monotonic over the whole run). */
    Cycles cycles() const { return stats.cycles; }
    InstrCount instructions() const { return stats.instructions; }
    const CoreStats& totals() const { return stats; }

    /** The memory system this core is attached to. */
    cache::Hierarchy& hierarchy() { return hier; }

  private:
    cache::Hierarchy& hier;
    CoreStats stats;
};

} // namespace xbsp::cpu

#endif // XBSP_CPU_CORE_HH
