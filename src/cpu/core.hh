/**
 * @file
 * The pluggable CPU-backend layer: an abstract timing core behind
 * which any microarchitecture model can sit.
 *
 * A core is an execution observer (exec::Observer) in front of the
 * shared cache::Hierarchy.  The contract every backend must obey:
 *
 *  - **Counters are monotonic.**  cycles() and instructions() only
 *    ever grow during a run; snapshot collectors read them at
 *    interval boundaries (block/marker events) and difference them,
 *    so a backend may never retro-charge cycles to an earlier
 *    interval.
 *  - **Timing is a pure function of the event stream.**  The engine
 *    delivers the identical stream under either run loop and at any
 *    --jobs count, so a conforming core is bit-identical across
 *    engines and worker counts by construction.  No wall-clock, no
 *    unseeded randomness, no iteration over unordered containers.
 *  - **The configuration is part of the result's identity.**  Every
 *    CoreConfig field is hashed into detailedRunKey and the study
 *    config digest (see sim/serial) — unlike --engine/--simd, a core
 *    is a *model* knob, not a speed knob.
 *
 * Backends:
 *  - InOrderCore (cpu/inorder.hh): one cycle per instruction plus
 *    full blocking memory latency — the CMP$im-style seed model.
 *  - DecoupledCore (cpu/decoupled.hh): a staged pipeline with a
 *    decoupled branch-predictor front end (BTB + history predictor,
 *    fetch-target queue, mispredict flush penalty) in front of the
 *    same hierarchy.
 */

#ifndef XBSP_CPU_CORE_HH
#define XBSP_CPU_CORE_HH

#include <memory>
#include <optional>
#include <string_view>

#include "cache/hierarchy.hh"
#include "exec/engine.hh"
#include "util/types.hh"

namespace xbsp::cpu
{

/** Aggregate performance counters of one (partial) execution. */
struct CoreStats
{
    InstrCount instructions = 0;
    Cycles cycles = 0;
    u64 memRefs = 0;

    /** Frontend counters; the in-order model leaves them zero. */
    u64 branches = 0;      ///< block transitions seen by the predictor
    u64 mispredicts = 0;   ///< wrong next-block predictions
    u64 flushes = 0;       ///< mispredicts that discarded FTQ contents
    u64 fetchBubbles = 0;  ///< cycles the backend starved for fetch

    bool operator==(const CoreStats&) const = default;

    /** Cycles per instruction; 0 when nothing executed. */
    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/** Which timing backend models the machine. */
enum class CoreKind : u32
{
    InOrder = 0,
    Decoupled = 1
};

/**
 * Full parameterization of a core.  Every field is hashed into store
 * keys and travels bit-exactly over the dist wire; the default value
 * (an in-order core) keeps all pre-existing reports byte-identical.
 * The frontend knobs only apply to CoreKind::Decoupled.
 */
struct CoreConfig
{
    CoreKind kind = CoreKind::InOrder;

    /** Instructions the frontend can fetch per cycle. */
    u32 fetchWidth = 4;

    /** Fetch-target-queue depth, in fetch groups (of fetchWidth). */
    u32 ftqDepth = 16;

    /** log2 of the BTB/direction-predictor table size. */
    u32 predictorBits = 12;

    /** Cycles lost redirecting the frontend on a mispredict. */
    u32 mispredictPenalty = 12;

    bool operator==(const CoreConfig&) const = default;
};

/**
 * Abstract timing core: an execution observer owning the performance
 * counters, attached to a shared (not owned) memory hierarchy.
 * Derived classes implement the event handlers; the counter accessors
 * are non-virtual so snapshot collectors pay no dispatch to read
 * them at interval boundaries.
 */
class Core : public exec::Observer
{
  public:
    explicit Core(cache::Hierarchy& hierarchy) : hier(hierarchy) {}

    /** Running counters (monotonic over the whole run). */
    Cycles cycles() const { return stats.cycles; }
    InstrCount instructions() const { return stats.instructions; }
    const CoreStats& totals() const { return stats; }

    /** The memory system this core is attached to. */
    cache::Hierarchy& hierarchy() { return hier; }

    /**
     * Zero the performance counters.  Microarchitectural state
     * (predictor tables, queues) is deliberately kept: resetting
     * counters mid-run must not change subsequent timing.
     */
    virtual void resetCounters() { stats = CoreStats{}; }

    /**
     * Fold this run's counters into the cpu.* registry series (one
     * atomic add per stat, the Engine::flushStats pattern), so live
     * exposition and `xbsp top` see fetch bubbles, mispredicts and
     * flushes.  Call once, after the run.
     */
    void flushStats() const;

  protected:
    cache::Hierarchy& hier;
    CoreStats stats;
};

/** Display name: "inorder" / "decoupled". */
std::string_view coreKindName(CoreKind kind);

/** Parse a kind name; nullopt (not fatal) on unknown input. */
std::optional<CoreKind> parseCoreKind(std::string_view name);

/**
 * The process-default core kind.  First call resolves the
 * `XBSP_CORE` environment variable ("inorder"/"decoupled"); unset or
 * unknown values select the in-order core.  Thread-safe.
 */
CoreKind activeCoreKind();

/**
 * Force the default kind (the `--core` option).  Returns false
 * (state unchanged, with a warning) on an unknown name.  Unlike
 * --engine this is a *model* knob: it changes results and store keys.
 */
bool selectCore(std::string_view name);

/** A CoreConfig with default knobs and the given kind. */
CoreConfig coreConfigFor(CoreKind kind);

/** A CoreConfig with default knobs and the process-default kind. */
CoreConfig defaultCoreConfig();

/**
 * Construct the backend `config` describes over `hierarchy` (not
 * owned; must outlive the core).  Fatal on out-of-range knobs.
 */
std::unique_ptr<Core> makeCore(const CoreConfig& config,
                               cache::Hierarchy& hierarchy);

} // namespace xbsp::cpu

#endif // XBSP_CPU_CORE_HH
