#include "cpu/decoupled.hh"

#include "util/logging.hh"

namespace xbsp::cpu
{

DecoupledCore::DecoupledCore(cache::Hierarchy& hierarchy,
                             const CoreConfig& config)
    : Core(hierarchy), cfg(config)
{
    if (cfg.fetchWidth < 1 || cfg.fetchWidth > 64)
        fatal("decoupled core: fetchWidth {} out of range (1-64)",
              cfg.fetchWidth);
    if (cfg.ftqDepth < 1 || cfg.ftqDepth > 4096)
        fatal("decoupled core: ftqDepth {} out of range (1-4096)",
              cfg.ftqDepth);
    if (cfg.predictorBits < 1 || cfg.predictorBits > 24)
        fatal("decoupled core: predictorBits {} out of range (1-24)",
              cfg.predictorBits);
    btb.assign(std::size_t(1) << cfg.predictorBits, kNoTarget);
    indexMask = (u32(1) << cfg.predictorBits) - 1;
    ftqCap = static_cast<u64>(cfg.ftqDepth) * cfg.fetchWidth;
}

} // namespace xbsp::cpu
