#include "cpu/core.hh"

namespace xbsp::cpu
{

InOrderCore::InOrderCore(cache::Hierarchy& hierarchy) : hier(hierarchy)
{
}

} // namespace xbsp::cpu
