#include "cpu/core.hh"

#include <atomic>
#include <cstdlib>

#include "cpu/decoupled.hh"
#include "cpu/inorder.hh"
#include "obs/stats.hh"
#include "util/logging.hh"

namespace xbsp::cpu
{

void
Core::flushStats() const
{
    auto& reg = obs::StatRegistry::global();
    reg.counter("cpu.runs").add();
    reg.counter("cpu.instrs").add(stats.instructions);
    reg.counter("cpu.cycles").add(stats.cycles);
    reg.counter("cpu.memRefs").add(stats.memRefs);
    reg.counter("cpu.branches").add(stats.branches);
    reg.counter("cpu.mispredicts").add(stats.mispredicts);
    reg.counter("cpu.flushes").add(stats.flushes);
    reg.counter("cpu.fetchBubbles").add(stats.fetchBubbles);
}

std::string_view
coreKindName(CoreKind kind)
{
    return kind == CoreKind::Decoupled ? "decoupled" : "inorder";
}

std::optional<CoreKind>
parseCoreKind(std::string_view name)
{
    if (name == "inorder" || name == "in-order")
        return CoreKind::InOrder;
    if (name == "decoupled")
        return CoreKind::Decoupled;
    return std::nullopt;
}

namespace
{

CoreKind
resolveFromEnv()
{
    if (const char* env = std::getenv("XBSP_CORE")) {
        const std::string_view name(env);
        if (!name.empty()) {
            if (const auto kind = parseCoreKind(name))
                return *kind;
            warn("XBSP_CORE='{}' unknown (want inorder|decoupled); "
                 "using inorder",
                 name);
        }
    }
    return CoreKind::InOrder;
}

std::atomic<CoreKind>&
kindSlot()
{
    static std::atomic<CoreKind> kind{resolveFromEnv()};
    return kind;
}

} // namespace

CoreKind
activeCoreKind()
{
    return kindSlot().load(std::memory_order_relaxed);
}

bool
selectCore(std::string_view name)
{
    if (const auto kind = parseCoreKind(name)) {
        kindSlot().store(*kind, std::memory_order_relaxed);
        return true;
    }
    warn("core '{}' unknown (want inorder|decoupled); keeping {}",
         name, coreKindName(activeCoreKind()));
    return false;
}

CoreConfig
coreConfigFor(CoreKind kind)
{
    CoreConfig config;
    config.kind = kind;
    return config;
}

CoreConfig
defaultCoreConfig()
{
    return coreConfigFor(activeCoreKind());
}

std::unique_ptr<Core>
makeCore(const CoreConfig& config, cache::Hierarchy& hierarchy)
{
    switch (config.kind) {
      case CoreKind::InOrder:
        return std::make_unique<InOrderCore>(hierarchy);
      case CoreKind::Decoupled:
        return std::make_unique<DecoupledCore>(hierarchy, config);
    }
    fatal("unknown core kind {}", static_cast<u32>(config.kind));
}

} // namespace xbsp::cpu
