#include "cpu/core.hh"

namespace xbsp::cpu
{

InOrderCore::InOrderCore(cache::Hierarchy& hierarchy) : hier(hierarchy)
{
}

void
InOrderCore::onBlock(u32 blockId, u32 instrs)
{
    (void)blockId;
    stats.instructions += instrs;
    stats.cycles += instrs;
}

void
InOrderCore::onMemRef(Addr addr, bool isWrite)
{
    const cache::HitLevel level = hier.access(addr, isWrite);
    stats.cycles += hier.latency(level);
    ++stats.memRefs;
}

void
InOrderCore::onMemRefs(std::span<const mem::MemRef> refs)
{
    stats.cycles += hier.accessBatch(refs);
    stats.memRefs += refs.size();
}

} // namespace xbsp::cpu
