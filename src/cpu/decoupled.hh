/**
 * @file
 * Decoupled-frontend pipeline core (scarab-style): a branch-predictor
 * driven fetch unit runs ahead of the backend through a fetch-target
 * queue (FTQ), with the existing blocking cache::Hierarchy behind the
 * backend.
 *
 * Mapping onto the engine's event stream (there is no architectural
 * PC here, so blocks and markers *are* the control flow):
 *
 *  - **Next-block predictor (BTB + history).**  Each block event is a
 *    control transfer from the previous block.  The predictor is a
 *    direct-mapped table indexed by hash(previous block, global
 *    history) whose entry is the predicted successor block.  The
 *    global history register is updated by marker events (procedure
 *    entries, loop entries, loop back-branches) — the engine's
 *    control-flow edges — so a loop's steady-state iterations alias
 *    to one entry (predicted correctly after the first trip) while
 *    the exit path naturally mispredicts once, exactly the classic
 *    loop-exit mispredict.
 *  - **Mispredict.**  A wrong (or cold) prediction redirects the
 *    frontend: the FTQ is discarded (a flush, when it held anything),
 *    `mispredictPenalty` cycles are charged, and the entry is
 *    retrained to the observed successor.
 *  - **FTQ occupancy.**  The frontend delivers `fetchWidth`
 *    instructions per cycle into a queue of `ftqDepth` fetch groups;
 *    the backend consumes its block's instructions from the queue and
 *    stalls (fetch bubbles, at the fetch-width refill rate) when it
 *    runs dry — which is exactly the post-flush state.  Backend
 *    cycles (retire + memory stalls) credit the frontend with
 *    run-ahead fetch time.
 *
 * Timing is a pure function of the event stream — deterministic at
 * any --jobs count and identical under both run loops — and all
 * counters are monotonic, so the snapshot collectors gate it exactly
 * like the in-order model.
 */

#ifndef XBSP_CPU_DECOUPLED_HH
#define XBSP_CPU_DECOUPLED_HH

#include <vector>

#include "cpu/core.hh"

namespace xbsp::cpu
{

/** Staged pipeline with a decoupled branch-predictor front end. */
class DecoupledCore final : public Core
{
  public:
    /** Marker events train the global history register. */
    static constexpr bool usesMarkers = true;

    /** The hierarchy is shared and not owned; config is validated. */
    DecoupledCore(cache::Hierarchy& hierarchy,
                  const CoreConfig& config);

    exec::ObserverHooks
    hooks() const override
    {
        return {true, true, true};
    }

    void
    onBlock(u32 blockId, u32 instrs) override
    {
        stats.instructions += instrs;
        predict(blockId);

        // Backend consumption: the block's instructions must be in
        // the FTQ; a dry queue stalls retire at the fetch-width
        // refill rate (the flush/startup bubble).
        if (ftqInstrs < instrs) {
            const u64 missing = instrs - ftqInstrs;
            const u64 bubbles =
                (missing + cfg.fetchWidth - 1) / cfg.fetchWidth;
            stats.cycles += bubbles;
            stats.fetchBubbles += bubbles;
            ftqInstrs = 0;
        } else {
            ftqInstrs -= instrs;
        }

        // Retire at one instruction per cycle; the frontend fetches
        // ahead during those cycles.
        stats.cycles += instrs;
        credit(static_cast<u64>(instrs) * cfg.fetchWidth);
    }

    void
    onMemRef(Addr addr, bool isWrite) override
    {
        const cache::HitLevel level = hier.access(addr, isWrite);
        const Cycles stall = hier.latency(level);
        stats.cycles += stall;
        ++stats.memRefs;
        credit(stall * cfg.fetchWidth);
    }

    void
    onMemRefs(std::span<const mem::MemRef> refs) override
    {
        // Blocking memory, identical to the in-order model; the
        // stall cycles are frontend run-ahead time.
        const Cycles stall = hier.accessBatch(refs);
        stats.cycles += stall;
        stats.memRefs += refs.size();
        credit(stall * cfg.fetchWidth);
    }

    void
    onMarker(u32 markerId) override
    {
        history = (history << 3) ^
                  (static_cast<u64>(markerId) * 0x9E3779B97F4A7C15ull);
    }

  private:
    CoreConfig cfg;
    std::vector<u32> btb;  ///< predicted successor per indexed entry
    u32 indexMask = 0;     ///< (1 << predictorBits) - 1
    u64 ftqCap = 0;        ///< ftqDepth fetch groups, in instructions
    u64 ftqInstrs = 0;     ///< instructions buffered in the FTQ
    u64 history = 0;       ///< global marker history register
    u32 prevBlock = 0;
    bool havePrev = false;

    /** No successor recorded yet (cold entries always mispredict). */
    static constexpr u32 kNoTarget = 0xFFFFFFFFu;

    /** Check the prediction for the edge prevBlock -> blockId. */
    void
    predict(u32 blockId)
    {
        if (havePrev) {
            ++stats.branches;
            const u32 idx =
                (static_cast<u32>(prevBlock * 0x9E3779B9u) ^
                 static_cast<u32>(history)) &
                indexMask;
            if (btb[idx] != blockId) {
                ++stats.mispredicts;
                btb[idx] = blockId;
                if (ftqInstrs > 0)
                    ++stats.flushes;
                ftqInstrs = 0;
                stats.cycles += cfg.mispredictPenalty;
            }
        }
        prevBlock = blockId;
        havePrev = true;
    }

    /** Frontend run-ahead: `instrs` fetched into the bounded FTQ. */
    void
    credit(u64 instrs)
    {
        ftqInstrs = ftqInstrs + instrs < ftqCap ? ftqInstrs + instrs
                                                : ftqCap;
    }
};

} // namespace xbsp::cpu

#endif // XBSP_CPU_DECOUPLED_HH
