#include "cpu/serial.hh"

namespace xbsp::cpu
{

void
encodeCoreConfig(serial::Encoder& e, const CoreConfig& c)
{
    e.varint(static_cast<u64>(c.kind));
    e.varint(c.fetchWidth);
    e.varint(c.ftqDepth);
    e.varint(c.predictorBits);
    e.varint(c.mispredictPenalty);
}

CoreConfig
decodeCoreConfig(serial::Decoder& d)
{
    CoreConfig c;
    c.kind = static_cast<CoreKind>(d.varint());
    c.fetchWidth = static_cast<u32>(d.varint());
    c.ftqDepth = static_cast<u32>(d.varint());
    c.predictorBits = static_cast<u32>(d.varint());
    c.mispredictPenalty = static_cast<u32>(d.varint());
    return c;
}

void
hashCoreConfig(serial::Hasher& h, const CoreConfig& c)
{
    h.u64v(static_cast<u64>(c.kind));
    h.u32v(c.fetchWidth);
    h.u32v(c.ftqDepth);
    h.u32v(c.predictorBits);
    h.u32v(c.mispredictPenalty);
}

void
encodeCoreStats(serial::Encoder& e, const CoreStats& s)
{
    e.varint(s.instructions);
    e.varint(s.cycles);
    e.varint(s.memRefs);
    e.varint(s.branches);
    e.varint(s.mispredicts);
    e.varint(s.flushes);
    e.varint(s.fetchBubbles);
}

CoreStats
decodeCoreStats(serial::Decoder& d)
{
    CoreStats s;
    s.instructions = d.varint();
    s.cycles = d.varint();
    s.memRefs = d.varint();
    s.branches = d.varint();
    s.mispredicts = d.varint();
    s.flushes = d.varint();
    s.fetchBubbles = d.varint();
    return s;
}

} // namespace xbsp::cpu
