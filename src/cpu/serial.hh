/**
 * @file
 * Serialization and content hashing of the CPU-backend
 * parameterization.  CoreConfig is a *model* knob: it must reach
 * every artifact-store key that depends on timing (detailedRunKey,
 * the study config digest) and travel bit-exactly inside StudyConfig
 * over the dist wire, so two processes agree on stage keys.
 */

#ifndef XBSP_CPU_SERIAL_HH
#define XBSP_CPU_SERIAL_HH

#include "cpu/core.hh"
#include "util/serial.hh"

namespace xbsp::cpu
{

/** Round-trip every CoreConfig field bit-exactly. */
void encodeCoreConfig(serial::Encoder& e, const CoreConfig& c);
CoreConfig decodeCoreConfig(serial::Decoder& d);

/** Fold every CoreConfig field into `h` (store-key identity). */
void hashCoreConfig(serial::Hasher& h, const CoreConfig& c);

/** Round-trip the full counter set (DetailedRunCodec payload). */
void encodeCoreStats(serial::Encoder& e, const CoreStats& s);
CoreStats decodeCoreStats(serial::Decoder& d);

} // namespace xbsp::cpu

#endif // XBSP_CPU_SERIAL_HH
