/**
 * @file
 * In-order core timing model in the CMP$im style: one cycle per
 * instruction plus the full memory-hierarchy latency of every data
 * reference (a blocking, non-overlapping memory model).  The seed
 * backend of the pluggable core layer, and the default everywhere —
 * its timing math is frozen so existing reports stay byte-identical.
 */

#ifndef XBSP_CPU_INORDER_HH
#define XBSP_CPU_INORDER_HH

#include "cpu/core.hh"

namespace xbsp::cpu
{

/** The blocking-memory timing model; blocks + memRefs hooks only. */
class InOrderCore final : public Core
{
  public:
    /** Marker events carry no information for this model. */
    static constexpr bool usesMarkers = false;

    /** The hierarchy is shared and not owned. */
    explicit InOrderCore(cache::Hierarchy& hierarchy);

    exec::ObserverHooks
    hooks() const override
    {
        return {true, true, false};
    }

    void
    onBlock(u32 blockId, u32 instrs) override
    {
        (void)blockId;
        stats.instructions += instrs;
        stats.cycles += instrs;
    }

    void
    onMemRef(Addr addr, bool isWrite) override
    {
        const cache::HitLevel level = hier.access(addr, isWrite);
        stats.cycles += hier.latency(level);
        ++stats.memRefs;
    }

    void
    onMemRefs(std::span<const mem::MemRef> refs) override
    {
        stats.cycles += hier.accessBatch(refs);
        stats.memRefs += refs.size();
    }
};

} // namespace xbsp::cpu

#endif // XBSP_CPU_INORDER_HH
