#include "cpu/inorder.hh"

namespace xbsp::cpu
{

InOrderCore::InOrderCore(cache::Hierarchy& hierarchy) : Core(hierarchy)
{
}

} // namespace xbsp::cpu
