/**
 * @file
 * Trace compilation: a one-time pass per bin::Binary that flattens
 * the structural program (procedure bodies, counted loops, calls)
 * into a linear op program the engine can run without walking the
 * statement tree.  Replaying the op program produces the *same event
 * stream, in the same order*, as the structural interpreter; the
 * compiled engine is a pure speed knob (like `simd`) and never
 * appears in artifact-store keys.
 *
 * Op format (CompiledOp{kind, a, b}):
 *  - BlockRun   a = start index into CompiledTrace::blockIds,
 *               b = count: execute those blocks in order.  Emission
 *               run-length-merges consecutive block executions into
 *               one op; Marker/Call ops fence the merge, so a
 *               backedge target (always preceded by the loop-entry
 *               marker) can never land mid-run.
 *  - Marker     a = markerId: fire the marker event.
 *  - Call       a = pc of the callee's first op (its entry marker);
 *               push pc+1 on the call stack and jump.
 *  - Ret        pop the call stack and jump to the saved pc; with an
 *               empty stack the program halts (the entry procedure's
 *               Ret).
 *  - Backedge   a = pc of the loop body's first op, b = trip slot:
 *               increment the per-run trip counter; while it is below
 *               CompiledTrace::loopTrips[b], jump back; on exit reset
 *               the counter to 0 so the loop can be re-entered.
 *
 * Loops with tripCount 0 compile to just their entry marker;
 * tripCount 1 omits the Backedge op.  The call graph is acyclic
 * (checkBinary guarantees it), so one trip counter per static loop
 * is safe: a loop can never be active twice concurrently.
 *
 * Compiled traces are cached per binary *content hash* under a
 * global mutex, so the N engines of a study compile each binary
 * once; compilation happens under the lock, which keeps the
 * engine.compile.{hits,misses} counters deterministic at any worker
 * count.
 */

#ifndef XBSP_EXEC_COMPILED_HH
#define XBSP_EXEC_COMPILED_HH

#include <memory>
#include <string_view>
#include <vector>

#include "binary/binary.hh"
#include "util/types.hh"

namespace xbsp::exec
{

/** Which run loop Engine::run uses.  Pure speed knob; never hashed. */
enum class EngineMode { Interp, Compiled };

/** Display name, e.g. "compiled". */
std::string_view engineModeName(EngineMode mode);

/**
 * The active mode.  First call resolves the `XBSP_ENGINE` environment
 * variable ("interp"/"interpreter"/"off" selects the structural
 * interpreter; "compiled"/"auto"/"on" — and unset — the compiled
 * engine).  Thread-safe.
 */
EngineMode activeEngineMode();

/**
 * Force the mode (the `--engine` option).  Returns false (state
 * unchanged, with a warning) on an unknown mode string.
 */
bool selectEngineMode(std::string_view mode);

/** One linear-program op; see the file comment for the format. */
struct CompiledOp
{
    enum class Kind : u32 { BlockRun, Marker, Call, Ret, Backedge };

    Kind kind = Kind::Ret;
    u32 a = 0;
    u32 b = 0;
};

/** The linear op program of one binary (immutable once built). */
struct CompiledTrace
{
    std::vector<CompiledOp> ops;
    std::vector<u32> blockIds;   ///< BlockRun pool (run slices)
    std::vector<u64> loopTrips;  ///< per Backedge slot: trip count
    std::vector<u32> procStart;  ///< per procId: pc of its first op
};

/** Compile `binary` into a fresh linear op program (no caching). */
CompiledTrace compileTrace(const bin::Binary& binary);

/**
 * The shared compiled trace for `binary`, keyed by content hash:
 * compiles on first request, returns the cached program afterwards
 * (also across distinct Binary instances with identical content).
 */
std::shared_ptr<const CompiledTrace>
compiledTraceFor(const bin::Binary& binary);

} // namespace xbsp::exec

#endif // XBSP_EXEC_COMPILED_HH
