/**
 * @file
 * Deterministic execution engine with a Pin-like observer interface.
 *
 * The engine executes a bin::Binary: procedure entries, loop entries
 * and loop back-branches fire marker events; basic blocks fire block
 * events and generate their memory reference streams.  Observers
 * subscribe to the event kinds they need; profilers, the timing model
 * and the sampling gates are all observers.
 *
 * Two run loops produce the identical event stream (see DESIGN.md,
 * "Engine fast path"):
 *  - **Interp** walks the statement tree with an explicit frame
 *    stack (the original engine);
 *  - **Compiled** replays the binary's linear op program (see
 *    exec/compiled.hh), built once per binary content and cached.
 * The mode is a pure speed knob (`--engine` / `XBSP_ENGINE`): event
 * order, statistics and every downstream artifact are bit-identical,
 * so it is never part of an artifact-store key.
 *
 * Both loops are templates over a *Sink* — the compile-time analogue
 * of the observer vectors:
 *
 *     struct MySink {
 *         bool wantsBlocks() const;
 *         bool wantsMems() const;
 *         bool wantsMarkers() const;
 *         void onBlock(u32 blockId, u32 instrs);
 *         void onMemRefs(std::span<const mem::MemRef> refs);
 *         void onMarker(u32 markerId);
 *         void onRunEnd();
 *     };
 *
 * Engine::run() drives a sink that fans out to the registered
 * observers (the legacy path, byte-for-byte unchanged behaviour);
 * Engine::runWith(sink) lets the dominant configurations (the BBV
 * profile pass, the detailed core) supply a concrete sink so the
 * whole hot path devirtualizes into one translation unit.
 *
 * Event ordering contract (relied upon by the snapshot collectors):
 *  - the engine's instruction counter is updated *before* the block
 *    event is dispatched, so observers see the post-block count;
 *  - a block's memory-reference events are dispatched before its
 *    block event, so timing observers are fully up to date when
 *    boundary collectors cut an interval at a block event;
 *  - memory references are delivered as one onMemRefs() batch per
 *    block execution and observer, in issue order; each observer
 *    sees its whole batch before the next observer (references never
 *    interleave with block or marker events);
 *  - observers are notified in registration order;
 *  - a procedure's entry marker fires before its body, a loop's entry
 *    marker before its first iteration, and the back-branch marker
 *    after each iteration's body and control block.
 */

#ifndef XBSP_EXEC_ENGINE_HH
#define XBSP_EXEC_ENGINE_HH

#include <memory>
#include <span>
#include <vector>

#include "binary/binary.hh"
#include "exec/compiled.hh"
#include "mem/pattern.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace xbsp::exec
{

/** Which event streams an observer wants to receive. */
struct ObserverHooks
{
    bool blocks = false;
    bool memRefs = false;
    bool markers = false;
};

/** Base class for execution observers; override what you need. */
class Observer
{
  public:
    virtual ~Observer() = default;

    /**
     * The event kinds this observer needs.  The default subscribes
     * to everything — correct but wasteful; observers that only
     * consume a subset override this so convenience drivers
     * (runOnce) don't force the engine to materialize streams
     * nobody reads.
     */
    virtual ObserverHooks hooks() const { return {true, true, true}; }

    /** A basic block finished executing `instrs` instructions. */
    virtual void onBlock(u32 blockId, u32 instrs)
    {
        (void)blockId;
        (void)instrs;
    }

    /** One memory reference was issued. */
    virtual void onMemRef(Addr addr, bool isWrite)
    {
        (void)addr;
        (void)isWrite;
    }

    /**
     * All memory references of one basic-block execution, in issue
     * order.  The engine dispatches this instead of per-reference
     * onMemRef() calls; the default implementation fans back out to
     * onMemRef(), so existing observers keep working unchanged.
     * Batch-aware observers (the timing core) override this to
     * amortize the virtual dispatch over the whole block.
     */
    virtual void
    onMemRefs(std::span<const mem::MemRef> refs)
    {
        for (const mem::MemRef& ref : refs)
            onMemRef(ref.addr, ref.isWrite);
    }

    /** A marker (proc entry / loop entry / loop branch) fired. */
    virtual void onMarker(u32 markerId) { (void)markerId; }

    /** The program finished. */
    virtual void onRunEnd() {}
};

/** Executes one binary once; construct a fresh engine per run. */
class Engine
{
  public:
    /**
     * `seed` feeds the per-block address generators; the run loop is
     * chosen by activeEngineMode().
     */
    explicit Engine(const bin::Binary& binary, u64 seed = 0x5EEDull)
        : Engine(binary, seed, activeEngineMode())
    {
    }

    /** Same, with the run loop pinned (tests, equivalence drivers). */
    Engine(const bin::Binary& binary, u64 seed, EngineMode mode);

    /** Subscribe an observer (not owned) to selected event kinds. */
    void addObserver(Observer* observer, const ObserverHooks& hooks);

    /** Execute the program to completion.  May be called once. */
    void run();

    /**
     * Execute the program to completion into `sink` (see the Sink
     * concept in the file comment) instead of the observer vectors.
     * May be called once, and not combined with addObserver().
     */
    template <typename Sink>
    void
    runWith(Sink& sink)
    {
        if (ran)
            panic("Engine::run called twice; construct a fresh Engine");
        ran = true;
        {
            obs::TraceSpan span("engine.run", "exec");
            if (engineMode == EngineMode::Compiled)
                runCompiledT(sink);
            else
                runInterpT(sink);
        }
        sink.onRunEnd();
        flushStats();
    }

    /** Instructions executed so far (valid during and after run()). */
    InstrCount instructionsExecuted() const { return instrCount; }

    /** The binary being executed. */
    const bin::Binary& binary() const { return bin; }

    /** The run loop this engine uses. */
    EngineMode mode() const { return engineMode; }

  private:
    struct BlockState
    {
        std::unique_ptr<mem::AddressGenerator> gen;
        u32 stackCursor = 0;
    };

    /** One level of the iterative statement walk (proc or loop body). */
    struct Frame
    {
        const std::vector<bin::MachineStmt>* stmts = nullptr;
        std::size_t next = 0;                     ///< next stmt index
        const bin::MachineLoop* loop = nullptr;   ///< loop-body frame
        u64 iter = 0;                             ///< completed trips
    };

    /** Sink fanning out to the registered observer vectors. */
    struct VirtualSink;

    const bin::Binary& bin;
    EngineMode engineMode;
    std::shared_ptr<const CompiledTrace> trace;  ///< Compiled mode
    std::vector<BlockState> states;
    std::vector<Observer*> blockObservers;
    std::vector<Observer*> memObservers;
    std::vector<Observer*> markerObservers;
    std::vector<Observer*> allObservers;
    std::unique_ptr<mem::MemRef[]> refBuf;  ///< per-block scratch
    std::vector<Frame> frames;              ///< interp walk stack
    InstrCount instrCount = 0;
    // Event tallies kept as plain integers in the hot path and
    // flushed to the stats registry once per run() (one atomic add
    // per stat, so merged totals are exact at any worker count).
    u64 blocksExecuted = 0;
    u64 refsIssued = 0;
    u64 markersFired = 0;
    bool ran = false;

    /**
     * Execute one basic block into `sink`: bump the instruction
     * counter, materialize the reference batch (pattern refs via
     * AddressGenerator::nextBatch, then spill traffic cycling through
     * a 64-slot per-procedure stack window, alternating load/store),
     * dispatch it, then the block event.
     */
    template <typename Sink>
    void
    execBlockT(Sink& sink, u32 blockId)
    {
        const bin::MachineBlock& blk = bin.blocks[blockId];
        instrCount += blk.instrs;
        ++blocksExecuted;

        if (sink.wantsMems()) {
            BlockState& st = states[blockId];
            if (blk.memOps > 0) {
                st.gen->beginBlock();
                st.gen->nextBatch(blk.memOps, refBuf.get());
            }
            u32 cursor = st.stackCursor;
            const u32 total = blk.memOps + blk.stackOps;
            if (blk.stackOps > 0) {
                const Addr base = mem::stackBase(blk.procId);
                for (u32 i = blk.memOps; i < total; ++i) {
                    refBuf[i] = {base + ((cursor & 63u) << 3),
                                 (cursor & 1u) != 0};
                    ++cursor;
                }
                st.stackCursor = cursor;
            }
            refsIssued += total;
            if (total > 0) {
                sink.onMemRefs(
                    std::span<const mem::MemRef>(refBuf.get(), total));
            }
        }

        if (sink.wantsBlocks())
            sink.onBlock(blockId, blk.instrs);
    }

    template <typename Sink>
    void
    fireMarkerT(Sink& sink, u32 markerId)
    {
        if (!sink.wantsMarkers())
            return;
        ++markersFired;
        sink.onMarker(markerId);
    }

    /**
     * The structural interpreter: iterative statement walk with an
     * explicit frame stack.  Event order: a procedure's entry marker
     * fires before its body, a loop's entry marker before its first
     * iteration, and each iteration runs body, branch block, branch
     * marker.
     */
    template <typename Sink>
    void
    runInterpT(Sink& sink)
    {
        const bin::MachineProc& entry = bin.procs[bin.entryProcId];
        fireMarkerT(sink, entry.entryMarkerId);
        frames.clear();
        frames.push_back({&entry.body, 0, nullptr, 0});

        while (!frames.empty()) {
            Frame& frame = frames.back();
            if (frame.next == frame.stmts->size()) {
                if (frame.loop != nullptr) {
                    // One trip of the loop body finished: branch
                    // block, branch marker, then loop or fall through.
                    execBlockT(sink, frame.loop->branchBlockId);
                    fireMarkerT(sink, frame.loop->branchMarkerId);
                    if (++frame.iter < frame.loop->tripCount) {
                        frame.next = 0;
                        continue;
                    }
                }
                frames.pop_back();
                continue;
            }

            const bin::MachineStmt& stmt = (*frame.stmts)[frame.next];
            ++frame.next;
            if (const auto* ref = std::get_if<bin::BlockRef>(&stmt)) {
                execBlockT(sink, ref->blockId);
            } else if (const auto* loop =
                           std::get_if<bin::MachineLoop>(&stmt)) {
                fireMarkerT(sink, loop->entryMarkerId);
                if (loop->tripCount > 0)
                    frames.push_back({&loop->body, 0, loop, 0});
            } else if (const auto* call =
                           std::get_if<bin::MachineCall>(&stmt)) {
                const bin::MachineProc& proc = bin.procs[call->procId];
                fireMarkerT(sink, proc.entryMarkerId);
                frames.push_back({&proc.body, 0, nullptr, 0});
            }
        }
    }

    /**
     * The compiled run loop: replay the binary's linear op program
     * (exec/compiled.hh documents the op semantics).  Produces the
     * identical event stream to runInterpT by construction.
     */
    template <typename Sink>
    void
    runCompiledT(Sink& sink)
    {
        const CompiledTrace& t = *trace;
        loopCounts.assign(t.loopTrips.size(), 0);
        callStack.clear();
        const CompiledOp* const ops = t.ops.data();
        const u32* const blockIds = t.blockIds.data();
        u32 pc = t.procStart[bin.entryProcId];
        for (;;) {
            const CompiledOp op = ops[pc];
            switch (op.kind) {
              case CompiledOp::Kind::BlockRun: {
                const u32* ids = blockIds + op.a;
                for (u32 i = 0; i < op.b; ++i)
                    execBlockT(sink, ids[i]);
                ++pc;
                break;
              }
              case CompiledOp::Kind::Marker:
                fireMarkerT(sink, op.a);
                ++pc;
                break;
              case CompiledOp::Kind::Call:
                callStack.push_back(pc + 1);
                pc = op.a;
                break;
              case CompiledOp::Kind::Ret:
                if (callStack.empty())
                    return;
                pc = callStack.back();
                callStack.pop_back();
                break;
              case CompiledOp::Kind::Backedge:
                if (++loopCounts[op.b] < t.loopTrips[op.b]) {
                    pc = op.a;
                } else {
                    loopCounts[op.b] = 0;
                    ++pc;
                }
                break;
            }
        }
    }

    std::vector<u64> loopCounts;  ///< compiled: per-slot trips done
    std::vector<u32> callStack;   ///< compiled: return pcs

    void flushStats();
};

/**
 * Convenience: run `binary` once with the given observers, each
 * subscribed per its own hooks(), and return instructions executed.
 */
InstrCount runOnce(const bin::Binary& binary,
                   const std::vector<Observer*>& observers,
                   u64 seed = 0x5EEDull);

} // namespace xbsp::exec

#endif // XBSP_EXEC_ENGINE_HH
