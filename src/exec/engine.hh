/**
 * @file
 * Deterministic execution engine with a Pin-like observer interface.
 *
 * The engine interprets a bin::Binary structurally (no materialized
 * trace): procedure entries, loop entries and loop back-branches fire
 * marker events; basic blocks fire block events and generate their
 * memory reference streams.  Observers subscribe to the event kinds
 * they need; profilers, the timing model and the sampling gates are
 * all observers.
 *
 * Event ordering contract (relied upon by the snapshot collectors):
 *  - the engine's instruction counter is updated *before* the block
 *    event is dispatched, so observers see the post-block count;
 *  - a block's memory-reference events are dispatched before its
 *    block event, so timing observers are fully up to date when
 *    boundary collectors cut an interval at a block event;
 *  - memory references are delivered as one onMemRefs() batch per
 *    block execution and observer, in issue order; each observer
 *    sees its whole batch before the next observer (references never
 *    interleave with block or marker events);
 *  - observers are notified in registration order;
 *  - a procedure's entry marker fires before its body, a loop's entry
 *    marker before its first iteration, and the back-branch marker
 *    after each iteration's body and control block.
 */

#ifndef XBSP_EXEC_ENGINE_HH
#define XBSP_EXEC_ENGINE_HH

#include <memory>
#include <span>
#include <vector>

#include "binary/binary.hh"
#include "mem/pattern.hh"
#include "util/types.hh"

namespace xbsp::exec
{

/** Base class for execution observers; override what you need. */
class Observer
{
  public:
    virtual ~Observer() = default;

    /** A basic block finished executing `instrs` instructions. */
    virtual void onBlock(u32 blockId, u32 instrs)
    {
        (void)blockId;
        (void)instrs;
    }

    /** One memory reference was issued. */
    virtual void onMemRef(Addr addr, bool isWrite)
    {
        (void)addr;
        (void)isWrite;
    }

    /**
     * All memory references of one basic-block execution, in issue
     * order.  The engine dispatches this instead of per-reference
     * onMemRef() calls; the default implementation fans back out to
     * onMemRef(), so existing observers keep working unchanged.
     * Batch-aware observers (the timing core) override this to
     * amortize the virtual dispatch over the whole block.
     */
    virtual void
    onMemRefs(std::span<const mem::MemRef> refs)
    {
        for (const mem::MemRef& ref : refs)
            onMemRef(ref.addr, ref.isWrite);
    }

    /** A marker (proc entry / loop entry / loop branch) fired. */
    virtual void onMarker(u32 markerId) { (void)markerId; }

    /** The program finished. */
    virtual void onRunEnd() {}
};

/** Which event streams an observer wants to receive. */
struct ObserverHooks
{
    bool blocks = false;
    bool memRefs = false;
    bool markers = false;
};

/** Interprets one binary once; construct a fresh engine per run. */
class Engine
{
  public:
    /** `seed` feeds the per-block address generators. */
    explicit Engine(const bin::Binary& binary, u64 seed = 0x5EEDull);

    /** Subscribe an observer (not owned) to selected event kinds. */
    void addObserver(Observer* observer, const ObserverHooks& hooks);

    /** Execute the program to completion.  May be called once. */
    void run();

    /** Instructions executed so far (valid during and after run()). */
    InstrCount instructionsExecuted() const { return instrCount; }

    /** The binary being executed. */
    const bin::Binary& binary() const { return bin; }

  private:
    struct BlockState
    {
        std::unique_ptr<mem::AddressGenerator> gen;
        u32 stackCursor = 0;
    };

    /** One level of the iterative statement walk (proc or loop body). */
    struct Frame
    {
        const std::vector<bin::MachineStmt>* stmts = nullptr;
        std::size_t next = 0;                     ///< next stmt index
        const bin::MachineLoop* loop = nullptr;   ///< loop-body frame
        u64 iter = 0;                             ///< completed trips
    };

    const bin::Binary& bin;
    std::vector<BlockState> states;
    std::vector<Observer*> blockObservers;
    std::vector<Observer*> memObservers;
    std::vector<Observer*> markerObservers;
    std::vector<Observer*> allObservers;
    std::vector<mem::MemRef> refBuf;  ///< per-block batch scratch
    std::vector<Frame> frames;        ///< explicit walk stack
    InstrCount instrCount = 0;
    // Event tallies kept as plain integers in the hot path and
    // flushed to the stats registry once per run() (one atomic add
    // per stat, so merged totals are exact at any worker count).
    u64 blocksExecuted = 0;
    u64 refsIssued = 0;
    u64 markersFired = 0;
    // Dispatch flags hoisted out of the per-block hot path; kept in
    // sync by addObserver().
    bool dispatchBlocks = false;
    bool dispatchMems = false;
    bool dispatchMarkers = false;
    bool ran = false;

    void execBlock(u32 blockId);
    void execProc(u32 procId);
    void fireMarker(u32 markerId);
};

/**
 * Convenience: run `binary` once with the given observers (all
 * subscribed to every event kind) and return instructions executed.
 */
InstrCount runOnce(const bin::Binary& binary,
                   const std::vector<Observer*>& observers,
                   u64 seed = 0x5EEDull);

} // namespace xbsp::exec

#endif // XBSP_EXEC_ENGINE_HH
