/**
 * @file
 * Execution-trace capture and replay.
 *
 * TraceWriter is an observer that serializes the engine's event
 * stream (blocks, markers, optionally memory references) into a
 * compact varint-encoded binary format; replayTrace() feeds a stored
 * trace back into ordinary observers.  This is the offline analogue
 * of attaching Pin tools live: profilers, BBV collectors and
 * boundary trackers work identically on a replay, which both enables
 * trace-based workflows and gives the test suite a strong
 * equivalence check (live run vs capture+replay must agree exactly).
 *
 * Format: magic "XBTR" + version byte, then a stream of records:
 *   0x01 <blockId varint> <instrs varint>            block event
 *   0x02 <markerId varint>                           marker event
 *   0x03 <addr varint> <isWrite byte>                memory reference
 *   0x00                                             end of trace
 */

#ifndef XBSP_EXEC_TRACE_HH
#define XBSP_EXEC_TRACE_HH

#include <istream>
#include <ostream>

#include "exec/engine.hh"

namespace xbsp::exec
{

/** What to record. */
struct TraceOptions
{
    bool blocks = true;
    bool markers = true;
    bool memRefs = false;  ///< large; off by default
};

/** Observer that serializes events (subscribe per the options). */
class TraceWriter : public Observer
{
  public:
    TraceWriter(std::ostream& os, const TraceOptions& options);

    void onBlock(u32 blockId, u32 instrs) override;
    void onMarker(u32 markerId) override;
    void onMemRef(Addr addr, bool isWrite) override;
    void onRunEnd() override;

    /** Hooks matching the configured record kinds. */
    ObserverHooks hooks() const override;

    /** Events written so far. */
    u64 eventCount() const { return events; }

  private:
    std::ostream& out;
    TraceOptions opts;
    u64 events = 0;
    bool sealed = false;
};

/**
 * Capture a full run of `binary` into `os` and return the dynamic
 * instruction count.
 */
InstrCount captureTrace(const bin::Binary& binary, std::ostream& os,
                        const TraceOptions& options = TraceOptions{},
                        u64 seed = 0x5EEDull);

/**
 * Replay a trace into observers (all observers receive all recorded
 * event kinds; onRunEnd fires at the end-of-trace record).
 * Calls fatal() on a malformed stream.
 * @return number of events replayed.
 */
u64 replayTrace(std::istream& is,
                const std::vector<Observer*>& observers);

} // namespace xbsp::exec

#endif // XBSP_EXEC_TRACE_HH
