#include "exec/engine.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "util/rng.hh"

namespace xbsp::exec
{

Engine::Engine(const bin::Binary& binary, u64 seed, EngineMode mode)
    : bin(binary), engineMode(mode)
{
    states.resize(bin.blocks.size());
    u32 maxRefs = 0;
    for (u32 i = 0; i < bin.blocks.size(); ++i) {
        const bin::MachineBlock& blk = bin.blocks[i];
        if (blk.memOps > 0) {
            states[i].gen = std::make_unique<mem::AddressGenerator>(
                blk.pattern, hashMix(seed ^ (static_cast<u64>(i) << 32)));
        }
        maxRefs = std::max(maxRefs, blk.memOps + blk.stackOps);
    }
    if (maxRefs > 0)
        refBuf = std::make_unique<mem::MemRef[]>(maxRefs);
    if (engineMode == EngineMode::Compiled)
        trace = compiledTraceFor(bin);
}

void
Engine::addObserver(Observer* observer, const ObserverHooks& hooks)
{
    if (ran)
        panic("Engine::addObserver after run()");
    if (hooks.blocks)
        blockObservers.push_back(observer);
    if (hooks.memRefs)
        memObservers.push_back(observer);
    if (hooks.markers)
        markerObservers.push_back(observer);
    allObservers.push_back(observer);
}

/**
 * The legacy dispatch path as a sink: fan every event out to the
 * registered observer vectors, in registration order.
 */
struct Engine::VirtualSink
{
    Engine& engine;

    bool wantsBlocks() const { return !engine.blockObservers.empty(); }
    bool wantsMems() const { return !engine.memObservers.empty(); }
    bool
    wantsMarkers() const
    {
        return !engine.markerObservers.empty();
    }

    void
    onBlock(u32 blockId, u32 instrs)
    {
        for (Observer* obs : engine.blockObservers)
            obs->onBlock(blockId, instrs);
    }

    void
    onMemRefs(std::span<const mem::MemRef> refs)
    {
        for (Observer* obs : engine.memObservers)
            obs->onMemRefs(refs);
    }

    void
    onMarker(u32 markerId)
    {
        for (Observer* obs : engine.markerObservers)
            obs->onMarker(markerId);
    }

    void
    onRunEnd()
    {
        for (Observer* obs : engine.allObservers)
            obs->onRunEnd();
    }
};

void
Engine::run()
{
    VirtualSink sink{*this};
    runWith(sink);
}

void
Engine::flushStats()
{
    auto& reg = obs::StatRegistry::global();
    reg.counter("engine.runs").add();
    reg.counter("engine.blocks").add(blocksExecuted);
    reg.counter("engine.instrs").add(instrCount);
    reg.counter("engine.memRefs").add(refsIssued);
    reg.counter("engine.markers").add(markersFired);
    reg.distribution("engine.instrsPerRun").sample(instrCount);
}

InstrCount
runOnce(const bin::Binary& binary,
        const std::vector<Observer*>& observers, u64 seed)
{
    Engine engine(binary, seed);
    for (Observer* obs : observers)
        engine.addObserver(obs, obs->hooks());
    engine.run();
    return engine.instructionsExecuted();
}

} // namespace xbsp::exec
