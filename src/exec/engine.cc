#include "exec/engine.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace xbsp::exec
{

Engine::Engine(const bin::Binary& binary, u64 seed) : bin(binary)
{
    states.resize(bin.blocks.size());
    u32 maxRefs = 0;
    for (u32 i = 0; i < bin.blocks.size(); ++i) {
        const bin::MachineBlock& blk = bin.blocks[i];
        if (blk.memOps > 0) {
            states[i].gen = std::make_unique<mem::AddressGenerator>(
                blk.pattern, hashMix(seed ^ (static_cast<u64>(i) << 32)));
        }
        maxRefs = std::max(maxRefs, blk.memOps + blk.stackOps);
    }
    refBuf.reserve(maxRefs);
}

void
Engine::addObserver(Observer* observer, const ObserverHooks& hooks)
{
    if (ran)
        panic("Engine::addObserver after run()");
    if (hooks.blocks)
        blockObservers.push_back(observer);
    if (hooks.memRefs)
        memObservers.push_back(observer);
    if (hooks.markers)
        markerObservers.push_back(observer);
    allObservers.push_back(observer);
    dispatchBlocks = !blockObservers.empty();
    dispatchMems = !memObservers.empty();
    dispatchMarkers = !markerObservers.empty();
}

void
Engine::fireMarker(u32 markerId)
{
    if (!dispatchMarkers)
        return;
    ++markersFired;
    for (Observer* obs : markerObservers)
        obs->onMarker(markerId);
}

void
Engine::execBlock(u32 blockId)
{
    const bin::MachineBlock& blk = bin.blocks[blockId];
    instrCount += blk.instrs;
    ++blocksExecuted;

    // Memory references are dispatched before the block-completion
    // event so that when onBlock fires, timing observers have already
    // charged the whole block — snapshot collectors that cut at block
    // boundaries then see consistent (instruction, cycle) pairs.  The
    // block's whole reference stream is materialized once and handed
    // to each observer as a single batch.
    if (dispatchMems) {
        refBuf.clear();
        BlockState& st = states[blockId];
        if (blk.memOps > 0) {
            st.gen->beginBlock();
            for (u32 i = 0; i < blk.memOps; ++i)
                refBuf.push_back(st.gen->next());
        }
        // Spill traffic cycles through a small per-procedure stack
        // window: 64 slots of 8 bytes, alternating load/store.  It is
        // L1-resident after warm-up, as real spill code is.
        for (u32 i = 0; i < blk.stackOps; ++i) {
            const Addr addr = mem::stackBase(blk.procId) +
                              ((st.stackCursor & 63u) << 3);
            const bool isWrite = (st.stackCursor & 1u) != 0;
            ++st.stackCursor;
            refBuf.push_back({addr, isWrite});
        }
        refsIssued += refBuf.size();
        if (!refBuf.empty()) {
            const std::span<const mem::MemRef> refs(refBuf);
            for (Observer* obs : memObservers)
                obs->onMemRefs(refs);
        }
    }

    if (dispatchBlocks) {
        for (Observer* obs : blockObservers)
            obs->onBlock(blockId, blk.instrs);
    }
}

void
Engine::execProc(u32 procId)
{
    // Iterative statement walk with an explicit frame stack; the
    // recursive formulation recursed once per call site and loop
    // nesting level, which dominated the interpreter's own time on
    // deeply nested workloads.  Event order is identical: a
    // procedure's entry marker fires before its body, a loop's entry
    // marker before its first iteration, and each iteration runs
    // body, branch block, branch marker.
    const bin::MachineProc& entry = bin.procs[procId];
    fireMarker(entry.entryMarkerId);
    frames.clear();
    frames.push_back({&entry.body, 0, nullptr, 0});

    while (!frames.empty()) {
        Frame& frame = frames.back();
        if (frame.next == frame.stmts->size()) {
            if (frame.loop != nullptr) {
                // One trip of the loop body finished: branch block,
                // branch marker, then loop or fall through.
                execBlock(frame.loop->branchBlockId);
                fireMarker(frame.loop->branchMarkerId);
                if (++frame.iter < frame.loop->tripCount) {
                    frame.next = 0;
                    continue;
                }
            }
            frames.pop_back();
            continue;
        }

        const bin::MachineStmt& stmt = (*frame.stmts)[frame.next];
        ++frame.next;
        if (const auto* ref = std::get_if<bin::BlockRef>(&stmt)) {
            execBlock(ref->blockId);
        } else if (const auto* loop =
                       std::get_if<bin::MachineLoop>(&stmt)) {
            fireMarker(loop->entryMarkerId);
            if (loop->tripCount > 0)
                frames.push_back({&loop->body, 0, loop, 0});
        } else if (const auto* call =
                       std::get_if<bin::MachineCall>(&stmt)) {
            const bin::MachineProc& proc = bin.procs[call->procId];
            fireMarker(proc.entryMarkerId);
            frames.push_back({&proc.body, 0, nullptr, 0});
        }
    }
}

void
Engine::run()
{
    if (ran)
        panic("Engine::run called twice; construct a fresh Engine");
    ran = true;
    {
        obs::TraceSpan span("engine.run", "exec");
        execProc(bin.entryProcId);
    }
    for (Observer* obs : allObservers)
        obs->onRunEnd();

    auto& reg = obs::StatRegistry::global();
    reg.counter("engine.runs").add();
    reg.counter("engine.blocks").add(blocksExecuted);
    reg.counter("engine.instrs").add(instrCount);
    reg.counter("engine.memRefs").add(refsIssued);
    reg.counter("engine.markers").add(markersFired);
    reg.distribution("engine.instrsPerRun").sample(instrCount);
}

InstrCount
runOnce(const bin::Binary& binary,
        const std::vector<Observer*>& observers, u64 seed)
{
    Engine engine(binary, seed);
    ObserverHooks all{true, true, true};
    for (Observer* obs : observers)
        engine.addObserver(obs, all);
    engine.run();
    return engine.instructionsExecuted();
}

} // namespace xbsp::exec
