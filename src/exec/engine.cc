#include "exec/engine.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace xbsp::exec
{

Engine::Engine(const bin::Binary& binary, u64 seed) : bin(binary)
{
    states.resize(bin.blocks.size());
    for (u32 i = 0; i < bin.blocks.size(); ++i) {
        const bin::MachineBlock& blk = bin.blocks[i];
        if (blk.memOps > 0) {
            states[i].gen = std::make_unique<mem::AddressGenerator>(
                blk.pattern, hashMix(seed ^ (static_cast<u64>(i) << 32)));
        }
    }
}

void
Engine::addObserver(Observer* observer, const ObserverHooks& hooks)
{
    if (ran)
        panic("Engine::addObserver after run()");
    if (hooks.blocks)
        blockObservers.push_back(observer);
    if (hooks.memRefs)
        memObservers.push_back(observer);
    if (hooks.markers)
        markerObservers.push_back(observer);
    allObservers.push_back(observer);
}

void
Engine::fireMarker(u32 markerId)
{
    for (Observer* obs : markerObservers)
        obs->onMarker(markerId);
}

void
Engine::execBlock(u32 blockId)
{
    const bin::MachineBlock& blk = bin.blocks[blockId];
    instrCount += blk.instrs;

    // Memory references are dispatched before the block-completion
    // event so that when onBlock fires, timing observers have already
    // charged the whole block — snapshot collectors that cut at block
    // boundaries then see consistent (instruction, cycle) pairs.
    if (!memObservers.empty()) {
        BlockState& st = states[blockId];
        if (blk.memOps > 0)
            st.gen->beginBlock();
        for (u32 i = 0; i < blk.memOps; ++i) {
            const mem::MemRef ref = st.gen->next();
            for (Observer* obs : memObservers)
                obs->onMemRef(ref.addr, ref.isWrite);
        }
        // Spill traffic cycles through a small per-procedure stack
        // window: 64 slots of 8 bytes, alternating load/store.  It is
        // L1-resident after warm-up, as real spill code is.
        for (u32 i = 0; i < blk.stackOps; ++i) {
            const Addr addr = mem::stackBase(blk.procId) +
                              ((st.stackCursor & 63u) << 3);
            const bool isWrite = (st.stackCursor & 1u) != 0;
            ++st.stackCursor;
            for (Observer* obs : memObservers)
                obs->onMemRef(addr, isWrite);
        }
    }

    for (Observer* obs : blockObservers)
        obs->onBlock(blockId, blk.instrs);
}

void
Engine::execStmts(const std::vector<bin::MachineStmt>& stmts)
{
    for (const auto& stmt : stmts) {
        if (const auto* ref = std::get_if<bin::BlockRef>(&stmt)) {
            execBlock(ref->blockId);
        } else if (const auto* loop =
                       std::get_if<bin::MachineLoop>(&stmt)) {
            fireMarker(loop->entryMarkerId);
            for (u64 it = 0; it < loop->tripCount; ++it) {
                execStmts(loop->body);
                execBlock(loop->branchBlockId);
                fireMarker(loop->branchMarkerId);
            }
        } else if (const auto* call =
                       std::get_if<bin::MachineCall>(&stmt)) {
            execProc(call->procId);
        }
    }
}

void
Engine::execProc(u32 procId)
{
    const bin::MachineProc& proc = bin.procs[procId];
    fireMarker(proc.entryMarkerId);
    execStmts(proc.body);
}

void
Engine::run()
{
    if (ran)
        panic("Engine::run called twice; construct a fresh Engine");
    ran = true;
    execProc(bin.entryProcId);
    for (Observer* obs : allObservers)
        obs->onRunEnd();
}

InstrCount
runOnce(const bin::Binary& binary,
        const std::vector<Observer*>& observers, u64 seed)
{
    Engine engine(binary, seed);
    ObserverHooks all{true, true, true};
    for (Observer* obs : observers)
        engine.addObserver(obs, all);
    engine.run();
    return engine.instructionsExecuted();
}

} // namespace xbsp::exec
