#include "exec/compiled.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "binary/serial.hh"
#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/serial.hh"

namespace xbsp::exec
{

std::string_view
engineModeName(EngineMode mode)
{
    return mode == EngineMode::Interp ? "interp" : "compiled";
}

namespace
{

EngineMode
resolveFromEnv()
{
    if (const char* env = std::getenv("XBSP_ENGINE")) {
        const std::string_view mode(env);
        if (!mode.empty()) {
            if (mode == "interp" || mode == "interpreter" ||
                mode == "off") {
                return EngineMode::Interp;
            }
            if (mode != "compiled" && mode != "auto" && mode != "on") {
                warn("XBSP_ENGINE='{}' unknown (want interp|compiled); "
                     "using compiled",
                     mode);
            }
        }
    }
    return EngineMode::Compiled;
}

std::atomic<EngineMode>&
modeSlot()
{
    static std::atomic<EngineMode> mode{resolveFromEnv()};
    return mode;
}

} // namespace

EngineMode
activeEngineMode()
{
    return modeSlot().load(std::memory_order_relaxed);
}

bool
selectEngineMode(std::string_view mode)
{
    if (mode == "interp" || mode == "interpreter" || mode == "off") {
        modeSlot().store(EngineMode::Interp, std::memory_order_relaxed);
        return true;
    }
    if (mode == "compiled" || mode == "auto" || mode == "on") {
        modeSlot().store(EngineMode::Compiled,
                         std::memory_order_relaxed);
        return true;
    }
    warn("engine mode '{}' unknown (want interp|compiled); keeping {}",
         mode, engineModeName(activeEngineMode()));
    return false;
}

namespace
{

/** Builder holding the trace under construction. */
class TraceCompiler
{
  public:
    explicit TraceCompiler(const bin::Binary& binary) : bin(binary) {}

    CompiledTrace
    compile()
    {
        trace.procStart.resize(bin.procs.size(), 0);
        for (u32 p = 0; p < bin.procs.size(); ++p) {
            trace.procStart[p] = pc();
            emitMarker(bin.procs[p].entryMarkerId);
            emitStmts(bin.procs[p].body);
            trace.ops.push_back({CompiledOp::Kind::Ret, 0, 0});
        }
        // Call targets could not be resolved while forward-called
        // procedures were still unemitted; patch them now.
        for (const auto& [opIndex, procId] : callFixups)
            trace.ops[opIndex].a = trace.procStart[procId];
        return std::move(trace);
    }

  private:
    const bin::Binary& bin;
    CompiledTrace trace;
    std::vector<std::pair<u32, u32>> callFixups;  ///< (op, procId)

    u32 pc() const { return static_cast<u32>(trace.ops.size()); }

    void
    emitMarker(u32 markerId)
    {
        trace.ops.push_back({CompiledOp::Kind::Marker, markerId, 0});
    }

    void
    emitBlock(u32 blockId)
    {
        // Run-length merge: extend the previous BlockRun when its
        // pool slice is still the tail of blockIds.  Marker/Call/
        // Backedge ops in between fence the merge automatically.
        if (!trace.ops.empty()) {
            CompiledOp& prev = trace.ops.back();
            if (prev.kind == CompiledOp::Kind::BlockRun &&
                prev.a + prev.b == trace.blockIds.size()) {
                trace.blockIds.push_back(blockId);
                ++prev.b;
                return;
            }
        }
        trace.ops.push_back(
            {CompiledOp::Kind::BlockRun,
             static_cast<u32>(trace.blockIds.size()), 1});
        trace.blockIds.push_back(blockId);
    }

    void
    emitStmts(const std::vector<bin::MachineStmt>& stmts)
    {
        for (const bin::MachineStmt& stmt : stmts) {
            if (const auto* ref = std::get_if<bin::BlockRef>(&stmt)) {
                emitBlock(ref->blockId);
            } else if (const auto* loop =
                           std::get_if<bin::MachineLoop>(&stmt)) {
                emitLoop(*loop);
            } else if (const auto* call =
                           std::get_if<bin::MachineCall>(&stmt)) {
                callFixups.emplace_back(pc(), call->procId);
                trace.ops.push_back({CompiledOp::Kind::Call, 0, 0});
            }
        }
    }

    void
    emitLoop(const bin::MachineLoop& loop)
    {
        emitMarker(loop.entryMarkerId);
        if (loop.tripCount == 0)
            return;
        const u32 top = pc();
        emitStmts(loop.body);
        emitBlock(loop.branchBlockId);
        emitMarker(loop.branchMarkerId);
        if (loop.tripCount > 1) {
            const u32 slot =
                static_cast<u32>(trace.loopTrips.size());
            trace.loopTrips.push_back(loop.tripCount);
            trace.ops.push_back(
                {CompiledOp::Kind::Backedge, top, slot});
        }
    }
};

struct KeyHash
{
    std::size_t
    operator()(const serial::Hash128& h) const
    {
        return static_cast<std::size_t>(h.lo);
    }
};

} // namespace

CompiledTrace
compileTrace(const bin::Binary& binary)
{
    return TraceCompiler(binary).compile();
}

std::shared_ptr<const CompiledTrace>
compiledTraceFor(const bin::Binary& binary)
{
    // Per-object memo first: re-running the same Binary (every
    // engine construction after the first) must not even hash it.
    if (auto memo = std::static_pointer_cast<const CompiledTrace>(
            binary.derived.load())) {
        obs::StatRegistry::global()
            .counter("engine.compile.hits")
            .add();
        return memo;
    }

    serial::Hasher h;
    bin::hashBinary(h, binary);
    const serial::Hash128 key = h.finish();

    static std::mutex cacheMutex;
    static std::unordered_map<serial::Hash128,
                              std::shared_ptr<const CompiledTrace>,
                              KeyHash>
        cache;

    // Compiling under the lock keeps the hit/miss counters exact at
    // any worker count; compilation is a cheap linear pass, so the
    // serialization is immaterial.
    std::lock_guard<std::mutex> guard(cacheMutex);
    auto& reg = obs::StatRegistry::global();
    if (auto it = cache.find(key); it != cache.end()) {
        reg.counter("engine.compile.hits").add();
        binary.derived.store(it->second);
        return it->second;
    }
    reg.counter("engine.compile.misses").add();
    auto trace =
        std::make_shared<const CompiledTrace>(compileTrace(binary));
    cache.emplace(key, trace);
    binary.derived.store(trace);
    return trace;
}

} // namespace xbsp::exec
