#include "exec/trace.hh"

#include <cstring>

#include "util/logging.hh"

namespace xbsp::exec
{

namespace
{

constexpr char magic[4] = {'X', 'B', 'T', 'R'};
constexpr u8 version = 1;

constexpr u8 recEnd = 0x00;
constexpr u8 recBlock = 0x01;
constexpr u8 recMarker = 0x02;
constexpr u8 recMemRef = 0x03;

void
writeVarint(std::ostream& os, u64 value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>((value & 0x7F) | 0x80));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

u64
readVarint(std::istream& is)
{
    u64 value = 0;
    int shift = 0;
    for (;;) {
        const int ch = is.get();
        if (ch == EOF)
            fatal("trace truncated inside a varint");
        value |= static_cast<u64>(ch & 0x7F) << shift;
        if (!(ch & 0x80))
            return value;
        shift += 7;
        if (shift > 63)
            fatal("trace varint too long");
    }
}

} // namespace

TraceWriter::TraceWriter(std::ostream& os, const TraceOptions& options)
    : out(os), opts(options)
{
    out.write(magic, sizeof(magic));
    out.put(static_cast<char>(version));
}

ObserverHooks
TraceWriter::hooks() const
{
    return ObserverHooks{opts.blocks, opts.memRefs, opts.markers};
}

void
TraceWriter::onBlock(u32 blockId, u32 instrs)
{
    out.put(static_cast<char>(recBlock));
    writeVarint(out, blockId);
    writeVarint(out, instrs);
    ++events;
}

void
TraceWriter::onMarker(u32 markerId)
{
    out.put(static_cast<char>(recMarker));
    writeVarint(out, markerId);
    ++events;
}

void
TraceWriter::onMemRef(Addr addr, bool isWrite)
{
    out.put(static_cast<char>(recMemRef));
    writeVarint(out, addr);
    out.put(isWrite ? 1 : 0);
    ++events;
}

void
TraceWriter::onRunEnd()
{
    if (sealed)
        panic("TraceWriter::onRunEnd called twice");
    sealed = true;
    out.put(static_cast<char>(recEnd));
    out.flush();
}

InstrCount
captureTrace(const bin::Binary& binary, std::ostream& os,
             const TraceOptions& options, u64 seed)
{
    Engine engine(binary, seed);
    TraceWriter writer(os, options);
    engine.addObserver(&writer, writer.hooks());
    engine.run();
    return engine.instructionsExecuted();
}

u64
replayTrace(std::istream& is, const std::vector<Observer*>& observers)
{
    char header[4];
    is.read(header, sizeof(header));
    if (is.gcount() != sizeof(header) ||
        std::memcmp(header, magic, sizeof(magic)) != 0) {
        fatal("not an xbsp trace (bad magic)");
    }
    const int ver = is.get();
    if (ver != version)
        fatal("unsupported trace version {}", ver);

    u64 events = 0;
    for (;;) {
        const int tag = is.get();
        if (tag == EOF)
            fatal("trace truncated before end record");
        if (tag == recEnd)
            break;
        switch (static_cast<u8>(tag)) {
          case recBlock: {
            const u64 blockId = readVarint(is);
            const u64 instrs = readVarint(is);
            for (Observer* obs : observers)
                obs->onBlock(static_cast<u32>(blockId),
                             static_cast<u32>(instrs));
            break;
          }
          case recMarker: {
            const u64 markerId = readVarint(is);
            for (Observer* obs : observers)
                obs->onMarker(static_cast<u32>(markerId));
            break;
          }
          case recMemRef: {
            const u64 addr = readVarint(is);
            const int isWrite = is.get();
            if (isWrite == EOF)
                fatal("trace truncated inside a memref record");
            for (Observer* obs : observers)
                obs->onMemRef(addr, isWrite != 0);
            break;
          }
          default:
            fatal("unknown trace record tag {}", tag);
        }
        ++events;
    }
    for (Observer* obs : observers)
        obs->onRunEnd();
    return events;
}

} // namespace xbsp::exec
