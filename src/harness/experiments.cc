#include "harness/experiments.hh"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/stats.hh"
#include "sim/stages.hh"
#include "store/store.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/serial.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

namespace xbsp::harness
{

sim::StudyConfig
defaultStudyConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 250'000;  // the paper's 100M, scaled
    config.simpoint.maxK = 10;        // the paper's cluster cap
    config.simpoint.projectedDims = 15;
    config.simpoint.seedsPerK = 5;
    config.simpoint.bicThreshold = 0.9;
    // Accelerated clustering (dedup + Hamerly bounds + parallel
    // sweep) is exact — see DESIGN.md "Clustering acceleration" —
    // so experiments keep it on; --no-accel restores the naive
    // engine for cross-checking.
    config.simpoint.accelerate = true;
    config.primaryIdx = 0;            // 32-bit unoptimized
    // The timing backend honours --core / XBSP_CORE; the default
    // (in-order) keeps every pre-existing report byte-identical.
    config.core = cpu::defaultCoreConfig();
    return config;
}

ExperimentSuite::ExperimentSuite(ExperimentConfig config)
    : cfg(std::move(config))
{
    names = cfg.workloads.empty() ? workloads::workloadNames()
                                  : cfg.workloads;
    for (const std::string& name : names) {
        if (!workloads::findWorkload(name))
            fatal("unknown workload '{}'", name);
    }
}

const sim::CrossBinaryStudy&
ExperimentSuite::study(const std::string& workload)
{
    // The cache holds the committed finish node of every graph run so
    // far: a workload precompute() already scheduled is returned
    // as-is, never re-wired into a new graph.
    auto it = cache.find(workload);
    if (it != cache.end())
        return it->second;
    runStudies({workload});
    return cache.at(workload);
}

void
ExperimentSuite::precompute()
{
    runStudies(names);
}

SuiteGraph::SuiteGraph() = default;
SuiteGraph::~SuiteGraph() = default;

void
buildSuiteGraph(SuiteGraph& out, const ExperimentConfig& config,
                const std::vector<std::string>& workloads)
{
    const bool remote = config.remote && config.remoteSpec;
    if (remote)
        out.graph.setRemoteBackend(config.remote);
    serial::Hasher digest;
    for (const std::string& name : workloads) {
        if (!workloads::findWorkload(name))
            fatal("unknown workload '{}'", name);
        out.workloads.push_back(name);
        out.builds.push_back(std::make_unique<sim::StudyBuild>(
            workloads::makeWorkload(name, config.workScale),
            config.study));
        const sim::StudyNodes nodes =
            sim::appendStudyGraphNodes(out.graph, *out.builds.back());
        out.finishNodes.push_back(nodes.finish);
        if (remote) {
            // Every memoized stage is remote-eligible; match and
            // finish stay local (cheap, and match has no store key).
            // The non-detailed binary stage always runs an engine
            // pass locally (see StudyBuild::binaryCached), so only
            // detailed timing ships.
            auto setSpec = [&](pipeline::NodeId id,
                               const std::string& stage,
                               std::size_t index) {
                pipeline::RemoteSpec spec =
                    config.remoteSpec(name, stage, index);
                out.graph.setRemote(
                    id, [spec = std::move(spec)] { return spec; });
            };
            setSpec(nodes.compile, "compile", 0);
            for (std::size_t b = 0; b < nodes.profiles.size(); ++b)
                setSpec(nodes.profiles[b], "profile", b);
            setSpec(nodes.vli, "vli", 0);
            if (config.study.detailed) {
                for (std::size_t b = 0; b < nodes.binaries.size();
                     ++b)
                    setSpec(nodes.binaries[b], "binary", b);
            }
        }
        digest.str(sim::studyConfigDigest(name, config.study));
    }
    out.graph.setManifestInfo(format("suite[{}]", workloads.size()),
                              digest.finish().hex());
}

void
ExperimentSuite::runStudies(const std::vector<std::string>& workloads)
{
    std::vector<std::string> pending;
    std::unordered_set<std::string> queued;
    for (const std::string& name : workloads) {
        if (!cache.contains(name) && queued.insert(name).second)
            pending.push_back(name);
    }
    if (pending.empty())
        return;

    // One task graph across every pending workload: studies are fully
    // independent of each other (each builds its own binaries,
    // engines and seeds from the shared config), so their stages
    // interleave freely on the fixed-size pool — the serial
    // match/cluster stage of one workload no longer idles workers
    // that could profile another.  Results are committed to the cache
    // — and their progress lines printed — in list order by the
    // graph's commit phase, so output and cache state never depend on
    // thread scheduling.
    obs::StatRegistry::global().counter("harness.studies")
        .add(pending.size());
    SuiteGraph suite;
    buildSuiteGraph(suite, cfg, pending);
    for (std::size_t i = 0; i < pending.size(); ++i) {
        sim::StudyBuild& build = *suite.builds[i];
        const std::string name = pending[i];
        suite.graph.setCommit(
            suite.finishNodes[i], [this, &build, name] {
                if (cfg.verbose)
                    inform("study {} done in {} ms", name,
                           build.elapsedMs());
                cache.emplace(name, build.takeStudy());
            });
    }
    suite.graph.run(globalPool());
    if (cfg.verbose && store::ArtifactStore::global().enabled()) {
        auto& reg = obs::StatRegistry::global();
        inform("artifact store: {} hits, {} misses ({})",
               reg.counterValue("store.hits"),
               reg.counterValue("store.misses"),
               store::ArtifactStore::global().directory());
    }
}

Table
ExperimentSuite::table1(const cache::HierarchyConfig& config)
{
    Table table("Table 1: Memory System Configuration",
                {"Cache Level", "Capacity", "Associativity",
                 "Line Size", "Hit Latency", "Type"});
    auto addLevel = [&table](const cache::LevelConfig& level) {
        table.startRow();
        table.addCell(level.name);
        table.addCell(format("{}KB", level.capacityBytes / 1024));
        table.addCell(format("{}-way", level.associativity));
        table.addCell(format("{} bytes", level.lineSize));
        table.addCell(format("{} cycles", level.hitLatency));
        table.addCell("WriteBack");
    };
    addLevel(config.l1);
    addLevel(config.l2);
    addLevel(config.l3);
    table.startRow();
    table.addCell("DRAM");
    table.addCell("-");
    table.addCell("-");
    table.addCell("-");
    table.addCell(format("{} cycles", config.dramLatency));
    table.addCell("-");
    return table;
}

Table
ExperimentSuite::figure1()
{
    precompute();
    Table table("Figure 1: Number of SimPoints (avg across the four "
                "binaries)",
                {"benchmark", "FLI", "VLI"});
    std::vector<double> fli, vli;
    for (const std::string& name : names) {
        const sim::CrossBinaryStudy& s = study(name);
        const double f = s.avgSimPointCount(sim::Method::PerBinaryFli);
        const double v = s.avgSimPointCount(sim::Method::MappableVli);
        fli.push_back(f);
        vli.push_back(v);
        table.startRow();
        table.addCell(name);
        table.addNumber(f, 2);
        table.addNumber(v, 2);
    }
    table.startRow();
    table.addCell("Avg");
    table.addNumber(mean(fli), 2);
    table.addNumber(mean(vli), 2);
    return table;
}

Table
ExperimentSuite::figure2()
{
    precompute();
    Table table("Figure 2: Average Interval Size for mappable "
                "SimPoint (VLI), millions of instructions (avg "
                "across the four binaries)",
                {"benchmark", "VLI interval (M)", "target (M)"});
    const double target =
        static_cast<double>(cfg.study.intervalTarget) / 1e6;
    std::vector<double> sizes;
    for (const std::string& name : names) {
        const sim::CrossBinaryStudy& s = study(name);
        const double size =
            s.avgIntervalSize(sim::Method::MappableVli) / 1e6;
        sizes.push_back(size);
        table.startRow();
        table.addCell(name);
        table.addNumber(size, 3);
        table.addNumber(target, 3);
    }
    table.startRow();
    table.addCell("Avg");
    table.addNumber(mean(sizes), 3);
    table.addNumber(target, 3);
    return table;
}

Table
ExperimentSuite::figure3()
{
    precompute();
    Table table("Figure 3: CPI Error vs full simulation (avg across "
                "the four binaries)",
                {"benchmark", "FLI", "VLI"});
    std::vector<double> fli, vli;
    for (const std::string& name : names) {
        const sim::CrossBinaryStudy& s = study(name);
        const double f = s.avgCpiError(sim::Method::PerBinaryFli);
        const double v = s.avgCpiError(sim::Method::MappableVli);
        fli.push_back(f);
        vli.push_back(v);
        table.startRow();
        table.addCell(name);
        table.addPercent(f, 2);
        table.addPercent(v, 2);
    }
    table.startRow();
    table.addCell("Avg");
    table.addPercent(mean(fli), 2);
    table.addPercent(mean(vli), 2);
    return table;
}

namespace
{

Table
speedupTable(const std::string& caption,
             const std::vector<sim::SpeedupPair>& pairs,
             const std::vector<std::string>& names,
             ExperimentSuite& suite)
{
    std::vector<std::string> columns{"benchmark"};
    for (const auto& pair : pairs) {
        columns.push_back("fli_" + pair.label);
        columns.push_back("vli_" + pair.label);
    }
    Table table(caption, columns);
    std::vector<std::vector<double>> sums(pairs.size() * 2);
    for (const std::string& name : names) {
        const sim::CrossBinaryStudy& s = suite.study(name);
        table.startRow();
        table.addCell(name);
        for (std::size_t p = 0; p < pairs.size(); ++p) {
            const double f = s.speedupError(sim::Method::PerBinaryFli,
                                            pairs[p].a, pairs[p].b);
            const double v = s.speedupError(sim::Method::MappableVli,
                                            pairs[p].a, pairs[p].b);
            sums[2 * p].push_back(f);
            sums[2 * p + 1].push_back(v);
            table.addPercent(f, 2);
            table.addPercent(v, 2);
        }
    }
    table.startRow();
    table.addCell("Avg");
    for (std::size_t c = 0; c < sums.size(); ++c)
        table.addPercent(mean(sums[c]), 2);
    return table;
}

} // namespace

Table
ExperimentSuite::figure4()
{
    precompute();
    return speedupTable(
        "Figure 4: Speedup error, same platform (FLI = per-binary "
        "SimPoint, VLI = mappable SimPoint)",
        sim::samePlatformPairs(), names, *this);
}

Table
ExperimentSuite::figure5()
{
    precompute();
    return speedupTable(
        "Figure 5: Speedup error, cross platform (FLI = per-binary "
        "SimPoint, VLI = mappable SimPoint)",
        sim::crossPlatformPairs(), names, *this);
}

CrossCoreReport
crossCoreComparison(const ExperimentConfig& config)
{
    static constexpr cpu::CoreKind kinds[] = {
        cpu::CoreKind::InOrder, cpu::CoreKind::Decoupled};

    // One suite per backend over the same workloads and binaries;
    // only study.core.kind differs, so the studies share every
    // timing-independent artifact (compiles, profiles, clusterings)
    // through the store.
    std::vector<std::unique_ptr<ExperimentSuite>> suites;
    for (const cpu::CoreKind kind : kinds) {
        ExperimentConfig c = config;
        c.study.core.kind = kind;
        suites.push_back(std::make_unique<ExperimentSuite>(c));
        suites.back()->precompute();
    }

    Table cpi("Cross-microarchitecture CPI error (same binaries, "
              "both timing cores)",
              {"benchmark", "binary", "core", "true CPI", "FLI",
               "VLI"});
    Table speedup("Cross-microarchitecture speedup error (FLI = "
                  "per-binary SimPoint, VLI = mappable SimPoint)",
                  {"benchmark", "pair", "core", "true spd", "FLI",
                   "VLI"});

    std::vector<sim::SpeedupPair> pairs = sim::samePlatformPairs();
    for (sim::SpeedupPair& pair : sim::crossPlatformPairs())
        pairs.push_back(std::move(pair));

    for (const std::string& name : suites[0]->workloads()) {
        for (std::size_t k = 0; k < suites.size(); ++k) {
            const sim::CrossBinaryStudy& s = suites[k]->study(name);
            const std::string core{cpu::coreKindName(kinds[k])};
            for (const sim::BinaryStudy& bs : s.perBinary()) {
                cpi.startRow();
                cpi.addCell(name);
                cpi.addCell(bin::targetName(bs.target));
                cpi.addCell(core);
                cpi.addNumber(bs.vliEstimate.trueCpi, 3);
                cpi.addPercent(bs.fliEstimate.cpiError, 2);
                cpi.addPercent(bs.vliEstimate.cpiError, 2);
            }
            for (const sim::SpeedupPair& pair : pairs) {
                speedup.startRow();
                speedup.addCell(name);
                speedup.addCell(pair.label);
                speedup.addCell(core);
                speedup.addNumber(s.trueSpeedup(pair.a, pair.b), 3);
                speedup.addPercent(
                    s.speedupError(sim::Method::PerBinaryFli, pair.a,
                                   pair.b), 2);
                speedup.addPercent(
                    s.speedupError(sim::Method::MappableVli, pair.a,
                                   pair.b), 2);
            }
        }
    }
    return CrossCoreReport{std::move(cpi), std::move(speedup)};
}

Table
ExperimentSuite::phaseBiasTable(const std::string& caption,
                                const std::string& workload,
                                std::size_t a, std::size_t b)
{
    const sim::CrossBinaryStudy& s = study(workload);
    if (a >= s.perBinary().size() || b >= s.perBinary().size())
        fatal("phase-bias table: binary indices {}/{} out of range "
              "(study '{}' has {} binaries)", a, b, workload,
              s.perBinary().size());
    const auto& binA = s.perBinary()[a];
    const auto& binB = s.perBinary()[b];
    const std::string nameA = bin::targetName(binA.target);
    const std::string nameB = bin::targetName(binB.target);

    Table table(caption,
                {"Method", "Phase",
                 nameA + " Weight", nameA + " True CPI",
                 nameA + " SP CPI", nameA + " CPI Err",
                 nameB + " Weight", nameB + " True CPI",
                 nameB + " SP CPI", nameB + " CPI Err"});

    auto addRows = [&table](const std::string& method,
                            const sim::BinaryEstimate& estA,
                            const sim::BinaryEstimate& estB) {
        const auto phasesA = estA.phasesByWeight();
        const auto phasesB = estB.phasesByWeight();
        const std::size_t rows =
            std::min<std::size_t>(3, std::min(phasesA.size(),
                                              phasesB.size()));
        for (std::size_t i = 0; i < rows; ++i) {
            table.startRow();
            table.addCell(method);
            table.addInteger(static_cast<long long>(i + 1));
            table.addNumber(phasesA[i].weight, 2);
            table.addNumber(phasesA[i].trueCpi, 2);
            table.addNumber(phasesA[i].spCpi, 2);
            table.addPercent(phasesA[i].bias, 1);
            table.addNumber(phasesB[i].weight, 2);
            table.addNumber(phasesB[i].trueCpi, 2);
            table.addNumber(phasesB[i].spCpi, 2);
            table.addPercent(phasesB[i].bias, 1);
        }
    };
    addRows("VLI", binA.vliEstimate, binB.vliEstimate);
    addRows("FLI", binA.fliEstimate, binB.fliEstimate);
    return table;
}

Table
ExperimentSuite::table2()
{
    return phaseBiasTable(
        "Table 2: Phase comparison across 32-bit unoptimized and "
        "64-bit unoptimized gcc binaries",
        "gcc", 0, 2);
}

Table
ExperimentSuite::table3()
{
    return phaseBiasTable(
        "Table 3: Phase comparison across 32-bit optimized and "
        "64-bit optimized apsi binaries",
        "apsi", 1, 3);
}

Table
ExperimentSuite::mappabilityReport()
{
    precompute();
    Table table("Mappable-point statistics (diagnostic)",
                {"benchmark", "mappable", "rejected:missing",
                 "rejected:count", "rejected:unused"});
    for (const std::string& name : names) {
        const sim::CrossBinaryStudy& s = study(name);
        u64 missing = 0, countMismatch = 0, unused = 0;
        for (const auto& rej : s.mappable().rejected) {
            switch (rej.reason) {
              case core::RejectReason::MissingInSomeBinary:
                ++missing;
                break;
              case core::RejectReason::CountMismatch:
                ++countMismatch;
                break;
              case core::RejectReason::NeverExecuted:
                ++unused;
                break;
            }
        }
        table.startRow();
        table.addCell(name);
        table.addInteger(
            static_cast<long long>(s.mappable().points.size()));
        table.addInteger(static_cast<long long>(missing));
        table.addInteger(static_cast<long long>(countMismatch));
        table.addInteger(static_cast<long long>(unused));
    }
    return table;
}

} // namespace xbsp::harness
