/**
 * @file
 * Experiment harness: regenerates every table and figure of the
 * paper's evaluation from CrossBinaryStudy runs, with per-workload
 * result caching so one process can emit several tables without
 * re-simulating.
 *
 * Figure/table inventory (see DESIGN.md):
 *   Table 1  — memory-system configuration
 *   Figure 1 — number of simulation points, FLI vs VLI
 *   Figure 2 — average VLI interval size
 *   Figure 3 — CPI error vs full simulation, FLI vs VLI
 *   Figure 4 — speedup error, same platform (32u32o, 64u64o)
 *   Figure 5 — speedup error, cross platform (32u64u, 32o64o)
 *   Table 2  — gcc per-phase bias, 32u vs 64u
 *   Table 3  — apsi per-phase bias, 32o vs 64o
 */

#ifndef XBSP_HARNESS_EXPERIMENTS_HH
#define XBSP_HARNESS_EXPERIMENTS_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/taskgraph.hh"
#include "sim/study.hh"
#include "util/table.hh"

namespace xbsp::sim
{
class StudyBuild;
}

namespace xbsp::harness
{

/** Suite-wide configuration. */
struct ExperimentConfig
{
    /** Workloads to run; empty means the full 21-program suite. */
    std::vector<std::string> workloads;

    /** Work scale passed to workload factories. */
    double workScale = 1.0;

    /** Study configuration shared by all workloads. */
    sim::StudyConfig study;

    /** Print progress as studies run. */
    bool verbose = true;

    /**
     * Remote dispatch backend for probe-missed stage nodes (null =
     * run everything on the local pool).  Purely an accelerator:
     * results are bit-identical either way, and a failed remote stage
     * falls back to the pool (see pipeline::TaskGraph).
     */
    pipeline::RemoteBackend* remote = nullptr;

    /**
     * Spec factory for remote-eligible stages, set alongside
     * `remote` (see dist::enableRemote — the harness itself never
     * depends on the dist subsystem).  Called while the suite graph
     * is wired, once per eligible (workload, stage, index) node.
     */
    std::function<pipeline::RemoteSpec(const std::string& workload,
                                       const std::string& stage,
                                       std::size_t index)>
        remoteSpec;
};

/** Runs and caches studies; renders paper tables/figures. */
class ExperimentSuite
{
  public:
    explicit ExperimentSuite(ExperimentConfig config);

    /** The configured workload list (resolved). */
    const std::vector<std::string>& workloads() const { return names; }

    /** Run (or fetch) the study for one workload. */
    const sim::CrossBinaryStudy& study(const std::string& workload);

    /**
     * Run every not-yet-cached workload study as one task graph on
     * the process-wide pool: all stages of all workloads are nodes of
     * a single DAG, so studies' serial stages overlap (see
     * SuiteGraph).  The cache contents and all table row orders are
     * identical to running the studies one by one: each study is
     * fully independent, and results are committed to the cache in
     * workload-list order after the whole graph settles.  Called
     * automatically by the whole-suite table builders.
     */
    void precompute();

    /** Paper Table 1: the memory-system configuration. */
    static Table table1(const cache::HierarchyConfig& config);

    /** Paper Figure 1: number of simulation points per benchmark. */
    Table figure1();

    /** Paper Figure 2: average VLI interval size per benchmark. */
    Table figure2();

    /** Paper Figure 3: CPI error per benchmark, FLI vs VLI. */
    Table figure3();

    /** Paper Figure 4: same-platform speedup error. */
    Table figure4();

    /** Paper Figure 5: cross-platform speedup error. */
    Table figure5();

    /** Paper Table 2: gcc phase comparison (32u vs 64u). */
    Table table2();

    /** Paper Table 3: apsi phase comparison (32o vs 64o). */
    Table table3();

    /**
     * Extra diagnostic (not in the paper): mappable-point statistics
     * per workload — accepted/rejected keys and rejection reasons.
     */
    Table mappabilityReport();

  private:
    ExperimentConfig cfg;
    std::vector<std::string> names;
    std::map<std::string, sim::CrossBinaryStudy> cache;

    void runStudies(const std::vector<std::string>& workloads);

    Table phaseBiasTable(const std::string& caption,
                         const std::string& workload, std::size_t a,
                         std::size_t b);
};

/**
 * One task graph spanning several workload studies: every stage of
 * every workload is a node of a single graph, so the serial
 * match/cluster stages of one workload overlap with the profile and
 * per-binary stages of others instead of hitting per-study barriers.
 * The builds own all intermediate state and must stay put while the
 * graph runs (hence unique_ptr slots and no copies).
 */
struct SuiteGraph
{
    SuiteGraph();
    ~SuiteGraph();

    SuiteGraph(const SuiteGraph&) = delete;
    SuiteGraph& operator=(const SuiteGraph&) = delete;

    std::vector<std::string> workloads;
    std::vector<std::unique_ptr<sim::StudyBuild>> builds;
    std::vector<pipeline::NodeId> finishNodes;  ///< one per workload
    pipeline::TaskGraph graph;
};

/**
 * Wire one study graph per workload (fatal on unknown names) into
 * `out`, without running it.  Used by ExperimentSuite::runStudies and
 * the `xbsp graph` command.
 */
void buildSuiteGraph(SuiteGraph& out, const ExperimentConfig& config,
                     const std::vector<std::string>& workloads);

/** Default study configuration used by all benches. */
sim::StudyConfig defaultStudyConfig();

/**
 * The cross-*microarchitecture* experiment: the same binaries studied
 * under every timing backend (in-order and decoupled), extending the
 * paper's cross-ISA/opt-level axis with the machine-model axis its
 * method claims to survive.
 */
struct CrossCoreReport
{
    /** Per (workload, binary, core): true CPI + FLI/VLI CPI error. */
    Table cpi;

    /** Per (workload, pair, core): FLI/VLI speedup error over the
        same-platform and cross-platform pairs of Figures 4–5. */
    Table speedup;
};

/**
 * Run (or fetch from the artifact store) one study per workload per
 * core kind — config.study.core supplies the non-kind knobs — and
 * render both tables.  Row order is deterministic: workloads in
 * config order, cores in CoreKind order.
 */
CrossCoreReport crossCoreComparison(const ExperimentConfig& config);

} // namespace xbsp::harness

#endif // XBSP_HARNESS_EXPERIMENTS_HH
