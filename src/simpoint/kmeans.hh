/**
 * @file
 * Weighted k-means (SimPoint step 3).  Points carry weights (interval
 * instruction counts), so variable-length intervals influence
 * centroids proportionally to the execution they represent, per
 * SimPoint 3.0's VLI support.
 */

#ifndef XBSP_SIMPOINT_KMEANS_HH
#define XBSP_SIMPOINT_KMEANS_HH

#include <vector>

#include "simpoint/projection.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace xbsp::sp
{

/** Centroid seeding strategy. */
enum class InitMethod
{
    KMeansPlusPlus,  ///< D^2 seeding (default; well-behaved on the
                     ///< small interval sets used here)
    RandomPartition  ///< random labels then M-step (SimPoint classic)
};

/** Iteration limits, seeding choice and E-step acceleration. */
struct KMeansOptions
{
    u32 maxIterations = 100;
    InitMethod init = InitMethod::KMeansPlusPlus;

    /**
     * Accelerate the E-step with Hamerly distance bounds (and, when
     * the data carries duplicate-class structure, one distance
     * computation per class instead of per point).  Bounds only ever
     * *skip* scans whose outcome they prove; every distance that is
     * computed uses the same sqDist on the same operands in the same
     * order as the naive scan, so labels, centroids, SSE and
     * iteration counts are bit-identical either way (asserted by
     * tests/test_clustering_equiv.cc).
     */
    bool accelerate = true;
};

/** One clustering of the projected data. */
struct KMeansResult
{
    u32 k = 0;
    std::vector<u32> labels;           ///< per point
    std::size_t stride = 0;            ///< doubles between centroid rows
    simd::AlignedVec centroids;        ///< k x stride, row-major, padded
    std::vector<double> clusterWeight; ///< sum of member weights
    double weightedSse = 0.0;          ///< sum w * dist^2
    u32 iterations = 0;
    bool converged = false;

    /** Doubles between centroid row starts (tolerates unset stride). */
    std::size_t
    rowStride(u32 dims) const
    {
        return stride ? stride : dims;
    }

    /** Raw padded centroid row (kernel operand). */
    const double*
    centroidRow(u32 c, u32 dims) const
    {
        return centroids.data() +
               static_cast<std::size_t>(c) * rowStride(dims);
    }

    /** Centroid row accessor over the true (unpadded) dimensions. */
    std::span<const double>
    centroid(u32 c, u32 dims) const
    {
        return {centroidRow(c, dims), dims};
    }
};

/**
 * Run Lloyd's algorithm with weights until labels stabilize or
 * maxIterations.  Empty clusters are re-seeded with the point
 * farthest from its centroid.  k is clamped to the point count.
 */
KMeansResult runKMeans(const ProjectedData& data, u32 k, Rng& rng,
                       const KMeansOptions& options = KMeansOptions{});

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_KMEANS_HH
