#include "simpoint/bic.hh"

#include <cmath>
#include <numbers>

#include "util/simd/simd.hh"

namespace xbsp::sp
{

double
bicScore(const ProjectedData& data, const KMeansResult& result)
{
    const double dims = data.dims;
    // Effective totals; weights were rescaled to sum to the point
    // count, so R is (approximately) the number of intervals while
    // still crediting long intervals more.  Summed under the pinned
    // simd reduction order so the score is arch-independent.
    const double bigR = simd::active().sum(data.weights.data(),
                                           data.weights.size());
    if (bigR <= 0.0)
        return 0.0;

    // Weighted SSE under the final assignment -> MLE variance.
    const double k = result.k;
    double denom = dims * std::max(1.0, bigR - k);
    double variance = result.weightedSse / denom;
    const double varianceFloor = 1e-12;
    variance = std::max(variance, varianceFloor);

    double loglik = 0.0;
    for (u32 c = 0; c < result.k; ++c) {
        const double rn = result.clusterWeight[c];
        if (rn <= 0.0)
            continue;
        loglik += rn * std::log(rn / bigR);
    }
    loglik -= bigR * dims / 2.0 *
              std::log(2.0 * std::numbers::pi * variance);
    loglik -= (bigR - k) * dims / 2.0;

    const double params = k * (dims + 1.0);
    return loglik - params / 2.0 * std::log(bigR);
}

std::vector<double>
normalizeBic(const std::vector<double>& scores)
{
    std::vector<double> out(scores.size(), 1.0);
    if (scores.empty())
        return out;
    double lo = scores[0], hi = scores[0];
    for (double s : scores) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    if (hi - lo <= 0.0)
        return out;
    for (std::size_t i = 0; i < scores.size(); ++i)
        out[i] = (scores[i] - lo) / (hi - lo);
    return out;
}

} // namespace xbsp::sp
