/**
 * @file
 * Bayesian Information Criterion scoring of a clustering (SimPoint
 * step 4), following the X-means formulation of Pelleg & Moore with
 * an identical spherical-Gaussian model per cluster.  Weighted points
 * enter through effective counts, so VLI clusterings are scored by
 * the execution they explain, not by raw interval counts.
 */

#ifndef XBSP_SIMPOINT_BIC_HH
#define XBSP_SIMPOINT_BIC_HH

#include "simpoint/kmeans.hh"

namespace xbsp::sp
{

/**
 * BIC = log-likelihood - (p/2) log R with p = k (dims + 1) free
 * parameters.  Higher is better.
 */
double bicScore(const ProjectedData& data, const KMeansResult& result);

/**
 * Normalize a list of per-k BIC scores to [0, 1]
 * ((score - min) / (max - min)); all-equal input maps to all-1.
 */
std::vector<double> normalizeBic(const std::vector<double>& scores);

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_BIC_HH
