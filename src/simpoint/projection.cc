#include "simpoint/projection.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace xbsp::sp
{

double
sqDist(std::span<const double> a, std::span<const double> b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

ProjectedData
project(const FrequencyVectorSet& fvs, u32 dims, u64 seed,
        const DedupMap* dedup)
{
    if (dims == 0)
        fatal("projection dimension must be > 0");
    ProjectedData out;
    out.dims = dims;
    out.count = fvs.size();
    out.points.assign(out.count * dims, 0.0);
    out.weights.assign(out.count, 1.0);

    // Dense projection matrix, one row per original dimension.
    Rng rng(hashMix(seed ^ 0x9e3779b97f4a7c15ull));
    std::vector<double> matrix(
        static_cast<std::size_t>(fvs.dimension) * dims);
    for (double& entry : matrix)
        entry = rng.nextDouble(-1.0, 1.0);

    auto projectRow = [&](std::size_t i) {
        double* row = out.points.data() + i * dims;
        for (const auto& [idx, val] : fvs.vectors[i]) {
            const double* prow = matrix.data() +
                                 static_cast<std::size_t>(idx) * dims;
            for (u32 d = 0; d < dims; ++d)
                row[d] += val * prow[d];
        }
    };
    auto& reg = obs::StatRegistry::global();
    if (dedup == nullptr) {
        for (std::size_t i = 0; i < fvs.size(); ++i)
            projectRow(i);
        reg.counter("projection.rows.projected").add(fvs.size());
    } else {
        for (u32 first : dedup->firstOf)
            projectRow(first);
        for (std::size_t i = 0; i < fvs.size(); ++i) {
            const u32 first = dedup->firstOf[dedup->classOf[i]];
            if (static_cast<std::size_t>(first) == i)
                continue;
            std::copy_n(out.points.data() +
                            static_cast<std::size_t>(first) * dims,
                        dims, out.points.data() + i * dims);
        }
        out.classOf = dedup->classOf;
        out.classFirst = dedup->firstOf;
        reg.counter("projection.rows.projected")
            .add(dedup->firstOf.size());
        reg.counter("projection.rows.copied")
            .add(fvs.size() - dedup->firstOf.size());
    }

    // Instruction-length weights rescaled to sum to the point count.
    const InstrCount total = fvs.totalInstructions();
    if (total > 0 && out.count > 0) {
        const double scale = static_cast<double>(out.count) /
                             static_cast<double>(total);
        for (std::size_t i = 0; i < out.count; ++i) {
            out.weights[i] =
                static_cast<double>(fvs.lengths[i]) * scale;
        }
    }
    return out;
}

} // namespace xbsp::sp
