#include "simpoint/projection.hh"

#include <algorithm>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd/simd.hh"
#include "util/threadpool.hh"

namespace xbsp::sp
{

double
sqDist(std::span<const double> a, std::span<const double> b)
{
    return simd::active().sqDist(a.data(), b.data(), a.size());
}

ProjectedData
project(const FrequencyVectorSet& fvs, u32 dims, u64 seed,
        const DedupMap* dedup)
{
    if (dims == 0)
        fatal("projection dimension must be > 0");
    ProjectedData out;
    out.allocate(fvs.size(), dims);

    // Dense projection matrix, one row per original dimension, with
    // rows padded to the same stride as the output so the axpy kernel
    // runs tail-free (padded entries are +0.0 and contribute exact
    // +0.0 to padded output lanes).  Entries are drawn in the same
    // flat row-major order as ever, so the matrix values — and hence
    // the projection — are independent of the padded layout.
    Rng rng(hashMix(seed ^ 0x9e3779b97f4a7c15ull));
    const std::size_t stride = out.rowStride();
    simd::AlignedVec matrix(
        static_cast<std::size_t>(fvs.dimension) * stride, 0.0);
    for (std::size_t r = 0; r < fvs.dimension; ++r) {
        double* mrow = matrix.data() + r * stride;
        for (u32 d = 0; d < dims; ++d)
            mrow[d] = rng.nextDouble(-1.0, 1.0);
    }

    // One multiply-add per (sparse entry x output dim): the dot-op
    // count of a row is nnz * dims regardless of layout, padding or
    // kernel arch, so the counter merges exactly at any --jobs.
    auto& reg = obs::StatRegistry::global();
    obs::Counter dotOps = reg.counter("projection.dotOps");

    const simd::Kernels& kern = simd::active();
    auto projectRow = [&](std::size_t i, obs::ShardCounter& ops) {
        double* row = out.row(i);
        for (const auto& [idx, val] : fvs.vectors[i]) {
            const double* mrow =
                matrix.data() + static_cast<std::size_t>(idx) * stride;
            kern.axpy(row, mrow, val, stride);
        }
        ops.add(static_cast<u64>(fvs.vectors[i].size()) * dims);
    };

    ThreadPool& pool = globalPool();
    if (dedup == nullptr) {
        parallelChunks(pool, fvs.size(),
                       [&](std::size_t begin, std::size_t end,
                           std::size_t) {
                           obs::ShardCounter ops(dotOps);
                           for (std::size_t i = begin; i < end; ++i)
                               projectRow(i, ops);
                       });
        reg.counter("projection.rows.projected").add(fvs.size());
    } else {
        parallelChunks(pool, dedup->firstOf.size(),
                       [&](std::size_t begin, std::size_t end,
                           std::size_t) {
                           obs::ShardCounter ops(dotOps);
                           for (std::size_t c = begin; c < end; ++c)
                               projectRow(dedup->firstOf[c], ops);
                       });
        parallelFor(pool, fvs.size(), [&](std::size_t i) {
            const u32 first = dedup->firstOf[dedup->classOf[i]];
            if (static_cast<std::size_t>(first) != i)
                std::copy_n(out.row(first), stride, out.row(i));
        });
        out.classOf = dedup->classOf;
        out.classFirst = dedup->firstOf;
        reg.counter("projection.rows.projected")
            .add(dedup->firstOf.size());
        reg.counter("projection.rows.copied")
            .add(fvs.size() - dedup->firstOf.size());
    }

    // Instruction-length weights rescaled to sum to the point count.
    const InstrCount total = fvs.totalInstructions();
    if (total > 0 && out.count > 0) {
        const double scale = static_cast<double>(out.count) /
                             static_cast<double>(total);
        for (std::size_t i = 0; i < out.count; ++i) {
            out.weights[i] =
                static_cast<double>(fvs.lengths[i]) * scale;
        }
    }
    return out;
}

} // namespace xbsp::sp
