/**
 * @file
 * The SimPoint 3.0 driver: given per-interval frequency vectors,
 * normalize, project, cluster for k = 1..maxK (multiple seeds per k),
 * score with BIC, pick the smallest k whose normalized BIC clears the
 * threshold, and select one simulation point (interval closest to the
 * centroid) plus an instruction weight per phase.
 */

#ifndef XBSP_SIMPOINT_SIMPOINT_HH
#define XBSP_SIMPOINT_SIMPOINT_HH

#include <vector>

#include "simpoint/bic.hh"
#include "simpoint/fvec.hh"
#include "simpoint/kmeans.hh"
#include "util/serial.hh"

namespace xbsp::sp
{

/** Configuration mirroring SimPoint 3.0's main knobs. */
struct SimPointOptions
{
    u32 maxK = 10;           ///< the paper's cluster cap
    u32 projectedDims = 15;  ///< SimPoint default
    u32 seedsPerK = 5;       ///< k-means restarts per k
    double bicThreshold = 0.9;
    u64 seed = 42;
    InitMethod init = InitMethod::KMeansPlusPlus;
    u32 maxIterations = 100;

    /**
     * Early simulation points (Perelman et al., PACT 2003 — the
     * paper's reference [13]): prefer the *earliest* acceptable
     * interval of each phase instead of the most central one, so
     * fast-forwarding to the simulation points is cheap.  An interval
     * is acceptable when its distance to the centroid is within
     * earlyTolerance x the cluster's mean distance of the best.
     */
    bool earlyPoints = false;
    double earlyTolerance = 0.3;

    /**
     * Exact acceleration of the whole BIC sweep (see DESIGN.md,
     * "Clustering acceleration"): duplicate-interval coalescing
     * feeding projection and the E-step, Hamerly-bounded k-means,
     * and the (k, seed) restart sweep fanned out on the global
     * thread pool.  The result is bit-identical to the naive path
     * at any thread count; disable only to measure the naive
     * baseline (bench_micro_clustering) or to cross-check it
     * (tests/test_clustering_equiv.cc).
     */
    bool accelerate = true;

    /**
     * Duplicate-merge tolerance: 0 (default) merges only intervals
     * whose normalized vectors are bitwise equal, which keeps the
     * acceleration exact.  A positive value also merges vectors
     * equal after rounding values to multiples of the quantum —
     * faster on noisy data, but approximate (each merged interval
     * is clustered as its class representative).
     */
    double dedupQuantum = 0.0;
};

/** One phase: its members, representative and execution weight. */
struct Phase
{
    u32 id = 0;
    u32 representative = 0;      ///< interval index (simulation point)
    double weight = 0.0;         ///< fraction of executed instructions
    std::vector<u32> members;    ///< interval indices, ascending
};

/** Full output of a SimPoint analysis over one interval set. */
struct SimPointResult
{
    u32 k = 0;                   ///< chosen number of phases
    std::vector<u32> labels;     ///< phase id per interval
    std::vector<Phase> phases;   ///< non-empty phases, by id
    double chosenBic = 0.0;
    std::vector<double> bicByK;  ///< raw BIC for k = 1..maxK
};

/**
 * Run the full pipeline.  The input vectors are copied and
 * normalized internally; `fvs.lengths` provides the VLI weights (use
 * equal lengths for FLI).
 */
SimPointResult pickSimulationPoints(const FrequencyVectorSet& fvs,
                                    const SimPointOptions& options);

/**
 * Consuming overload: normalizes `fvs` in place instead of deep-
 * copying it.  Use when the caller is done with the vector set.
 */
SimPointResult pickSimulationPoints(FrequencyVectorSet&& fvs,
                                    const SimPointOptions& options);

/**
 * Artifact-store key of one clustering run — the exact key
 * pickSimulationPoints memoizes under (artifact type SimPointCodec).
 * Hashed over the *raw* (pre-normalization) vectors, which is what
 * both overloads receive.  Exposed so the pipeline scheduler can
 * probe whether a clustering stage is already cached.
 */
serial::Hash128 simPointKey(const FrequencyVectorSet& fvs,
                            const SimPointOptions& options);

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_SIMPOINT_HH
