/**
 * @file
 * Random linear projection (SimPoint step 2): reduce the
 * high-dimensional basic-block vectors to a small number of
 * dimensions (default 15) with a dense random matrix whose entries
 * are uniform in [-1, 1).  Distances are approximately preserved
 * (Johnson-Lindenstrauss), which is all k-means needs.
 */

#ifndef XBSP_SIMPOINT_PROJECTION_HH
#define XBSP_SIMPOINT_PROJECTION_HH

#include <span>
#include <vector>

#include "simpoint/fvec.hh"
#include "util/simd/simd.hh"
#include "util/types.hh"

namespace xbsp::sp
{

/**
 * Dense, row-major projected data plus per-point weights.  Rows are
 * padded with +0.0 to `stride = simd::padded(dims)` doubles and the
 * storage is 32-byte aligned, so the vector kernels run tail-free
 * over whole rows (padding is bit-transparent — see util/simd).
 */
struct ProjectedData
{
    u32 dims = 0;
    std::size_t count = 0;
    std::size_t stride = 0;       ///< doubles between row starts
    simd::AlignedVec points;      ///< count x stride, row-major
    std::vector<double> weights;  ///< per point; sums to count

    /**
     * Optional duplicate-class structure (filled when project() is
     * given a DedupMap): classOf[i] is the duplicate class of point
     * i, classFirst[c] the lowest point index in class c.  Rows of
     * one class are bit-identical, so per-class computations stand in
     * exactly for per-point ones (see kmeans.cc).
     */
    std::vector<u32> classOf;
    std::vector<u32> classFirst;

    /** True when duplicate-class information is attached. */
    bool hasClasses() const { return !classFirst.empty(); }

    /** Size `count` x `dims` zero-filled padded storage. */
    void
    allocate(std::size_t n, u32 d)
    {
        dims = d;
        count = n;
        stride = simd::padded(d);
        points.assign(n * stride, 0.0);
        weights.assign(n, 1.0);
    }

    /** Doubles between row starts (tolerates unset stride). */
    std::size_t rowStride() const { return stride ? stride : dims; }

    /** Raw padded row (kernel operand). */
    const double*
    row(std::size_t i) const
    {
        return points.data() + i * rowStride();
    }

    double* row(std::size_t i) { return points.data() + i * rowStride(); }

    /** Row accessor over the true (unpadded) dimensions. */
    std::span<const double>
    point(std::size_t i) const
    {
        return {row(i), dims};
    }
};

/**
 * Project normalized frequency vectors to `dims` dimensions.  The
 * projection matrix is generated deterministically from `seed`.
 * Point weights are the interval instruction lengths rescaled to sum
 * to the number of points (so BIC formulas keep their usual scale).
 *
 * When `dedup` is given, only one vector per duplicate class is
 * pushed through the projection matrix and the resulting row is
 * copied to the class members — bit-identical to projecting each
 * member (equal sparse vectors feed identical arithmetic) at a
 * fraction of the multiplies — and the class structure is attached
 * to the result for the clustering layer.
 */
ProjectedData project(const FrequencyVectorSet& fvs, u32 dims,
                      u64 seed, const DedupMap* dedup = nullptr);

/**
 * Squared Euclidean distance between a row and a centroid, under the
 * pinned simd reduction order (dispatched kernel; bit-identical
 * across scalar/AVX2/NEON and any --jobs).
 */
double sqDist(std::span<const double> a, std::span<const double> b);

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_PROJECTION_HH
