/**
 * @file
 * Random linear projection (SimPoint step 2): reduce the
 * high-dimensional basic-block vectors to a small number of
 * dimensions (default 15) with a dense random matrix whose entries
 * are uniform in [-1, 1).  Distances are approximately preserved
 * (Johnson-Lindenstrauss), which is all k-means needs.
 */

#ifndef XBSP_SIMPOINT_PROJECTION_HH
#define XBSP_SIMPOINT_PROJECTION_HH

#include <span>
#include <vector>

#include "simpoint/fvec.hh"
#include "util/types.hh"

namespace xbsp::sp
{

/** Dense, row-major projected data plus per-point weights. */
struct ProjectedData
{
    u32 dims = 0;
    std::size_t count = 0;
    std::vector<double> points;   ///< count x dims, row-major
    std::vector<double> weights;  ///< per point; sums to count

    /** Row accessor. */
    std::span<const double>
    point(std::size_t i) const
    {
        return {points.data() + i * dims, dims};
    }
};

/**
 * Project normalized frequency vectors to `dims` dimensions.  The
 * projection matrix is generated deterministically from `seed`.
 * Point weights are the interval instruction lengths rescaled to sum
 * to the number of points (so BIC formulas keep their usual scale).
 */
ProjectedData project(const FrequencyVectorSet& fvs, u32 dims,
                      u64 seed);

/** Squared Euclidean distance between a row and a centroid. */
double sqDist(std::span<const double> a, std::span<const double> b);

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_PROJECTION_HH
