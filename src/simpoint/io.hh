/**
 * @file
 * SimPoint 3.0 file-format interoperability.
 *
 * The reference SimPoint distribution consumes frequency-vector files
 * (one interval per line, "T:dim:count" fields) and produces
 * `.simpoints` / `.weights` files (one "value phaseId" pair per
 * line) plus a `.labels` file.  This module reads and writes those
 * formats so studies can exchange data with the original tools: BBVs
 * collected here can be clustered by stock SimPoint, and clusterings
 * computed here can drive stock PinPoints-style flows.
 */

#ifndef XBSP_SIMPOINT_IO_HH
#define XBSP_SIMPOINT_IO_HH

#include <istream>
#include <ostream>
#include <string>

#include "simpoint/simpoint.hh"

namespace xbsp::sp
{

/**
 * Write frequency vectors in SimPoint's .bb format:
 *
 *   T:12:345 :17:1 ...
 *
 * Dimension indices are emitted 1-based, as the original tools
 * expect.  Interval lengths are not part of the format; VLI users
 * should also persist lengths via writeLengthsFile().
 */
void writeBbvFile(std::ostream& os, const FrequencyVectorSet& fvs);

/**
 * Parse a .bb file.  Indices are converted back to 0-based; the
 * dimension is the maximum index seen (or `dimensionHint` if
 * larger).  Lengths are initialised to 1 for every interval (fixed
 * length) unless later overwritten.
 * Calls fatal() on malformed input.
 */
FrequencyVectorSet readBbvFile(std::istream& is,
                               u32 dimensionHint = 0);

/** Write one interval length per line (VLI companion file). */
void writeLengthsFile(std::ostream& os,
                      const FrequencyVectorSet& fvs);

/** Read a lengths file into an existing vector set (sizes must match). */
void readLengthsFile(std::istream& is, FrequencyVectorSet& fvs);

/**
 * Write the `.simpoints` file: "intervalIndex phaseId" per phase,
 * ordered by phase id — the file PinPoints-style tooling consumes to
 * know which intervals to simulate.
 */
void writeSimpointsFile(std::ostream& os, const SimPointResult& result);

/** Write the `.weights` file: "weight phaseId" per phase. */
void writeWeightsFile(std::ostream& os, const SimPointResult& result);

/** Write the `.labels` file: one phase id per interval line. */
void writeLabelsFile(std::ostream& os, const SimPointResult& result);

/**
 * Reconstruct a (partial) SimPointResult from `.simpoints`,
 * `.weights` and `.labels` streams.  Members are rebuilt from the
 * labels; BIC metadata is not representable in the files and is left
 * zero.  Calls fatal() on inconsistent inputs.
 */
SimPointResult readSimPointFiles(std::istream& simpoints,
                                 std::istream& weights,
                                 std::istream& labels);

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_IO_HH
