/**
 * @file
 * Codecs and content hashing for the clustering layer: frequency-
 * vector sets (the profiling <-> clustering interface) and SimPoint
 * results round-trip bit-exactly through the artifact store; option
 * structs hash field-by-field so any knob change misses the cache.
 */

#ifndef XBSP_SIMPOINT_SERIAL_HH
#define XBSP_SIMPOINT_SERIAL_HH

#include "simpoint/simpoint.hh"
#include "util/serial.hh"

namespace xbsp::sp
{

void encodeFvs(serial::Encoder& e, const FrequencyVectorSet& fvs);
FrequencyVectorSet decodeFvs(serial::Decoder& d);

void encodeSimPointResult(serial::Encoder& e, const SimPointResult& r);
SimPointResult decodeSimPointResult(serial::Decoder& d);

/** Fold a frequency-vector set's full content into `h`. */
void hashFvs(serial::Hasher& h, const FrequencyVectorSet& fvs);

/** Fold every clustering knob into `h`. */
void hashSimPointOptions(serial::Hasher& h,
                         const SimPointOptions& options);

/** Artifact-store codec for frequency-vector sets. */
struct FvsCodec
{
    using Value = FrequencyVectorSet;
    static constexpr u32 tag = serial::fourcc("FVEC");
    static constexpr u32 version = 1;

    static void
    encode(serial::Encoder& e, const FrequencyVectorSet& fvs)
    {
        encodeFvs(e, fvs);
    }

    static FrequencyVectorSet
    decode(serial::Decoder& d)
    {
        return decodeFvs(d);
    }
};

/** Artifact-store codec for clustering results. */
struct SimPointCodec
{
    using Value = SimPointResult;
    static constexpr u32 tag = serial::fourcc("SPRS");
    static constexpr u32 version = 1;

    static void
    encode(serial::Encoder& e, const SimPointResult& r)
    {
        encodeSimPointResult(e, r);
    }

    static SimPointResult
    decode(serial::Decoder& d)
    {
        return decodeSimPointResult(d);
    }
};

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_SERIAL_HH
