#include "simpoint/io.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace xbsp::sp
{

void
writeBbvFile(std::ostream& os, const FrequencyVectorSet& fvs)
{
    // %.17g guarantees strtod() recovers the exact double on read —
    // the text BBV path round-trips bit-for-bit like the binary store.
    char buf[64];
    for (const SparseVec& vec : fvs.vectors) {
        os << "T";
        for (const auto& [idx, val] : vec) {
            std::snprintf(buf, sizeof(buf), "%.17g", val);
            os << ":" << (idx + 1) << ":" << buf << " ";
        }
        os << "\n";
    }
}

FrequencyVectorSet
readBbvFile(std::istream& is, u32 dimensionHint)
{
    struct RawInterval
    {
        SparseVec vec;
    };
    std::vector<RawInterval> raw;
    u32 maxIdx = 0;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] != 'T')
            fatal("bb file line {}: expected 'T' prefix", lineNo);
        RawInterval interval;
        std::size_t pos = 1;
        while (pos < line.size()) {
            if (line[pos] == ' ') {
                ++pos;
                continue;
            }
            if (line[pos] != ':')
                fatal("bb file line {}: expected ':' at column {}",
                      lineNo, pos);
            ++pos;
            char* end = nullptr;
            const unsigned long idx =
                std::strtoul(line.c_str() + pos, &end, 10);
            if (!end || *end != ':' || idx == 0)
                fatal("bb file line {}: bad dimension index", lineNo);
            pos = static_cast<std::size_t>(end - line.c_str()) + 1;
            const double val = std::strtod(line.c_str() + pos, &end);
            if (!end || end == line.c_str() + pos)
                fatal("bb file line {}: bad value", lineNo);
            pos = static_cast<std::size_t>(end - line.c_str());
            interval.vec.emplace_back(static_cast<u32>(idx - 1), val);
            maxIdx = std::max(maxIdx, static_cast<u32>(idx - 1));
        }
        std::sort(interval.vec.begin(), interval.vec.end());
        // Merge duplicate dimension entries (SimPoint frequency
        // semantics: repeated ids on one line accumulate).
        SparseVec merged;
        for (const auto& [idx, val] : interval.vec) {
            if (!merged.empty() && merged.back().first == idx)
                merged.back().second += val;
            else
                merged.emplace_back(idx, val);
        }
        interval.vec = std::move(merged);
        raw.push_back(std::move(interval));
    }

    FrequencyVectorSet fvs;
    fvs.dimension = std::max(dimensionHint, maxIdx + 1);
    for (RawInterval& interval : raw)
        fvs.addInterval(std::move(interval.vec), 1);
    return fvs;
}

void
writeLengthsFile(std::ostream& os, const FrequencyVectorSet& fvs)
{
    for (InstrCount len : fvs.lengths)
        os << len << "\n";
}

void
readLengthsFile(std::istream& is, FrequencyVectorSet& fvs)
{
    std::vector<InstrCount> lengths;
    u64 value = 0;
    while (is >> value)
        lengths.push_back(value);
    if (lengths.size() != fvs.size())
        fatal("lengths file has {} entries for {} intervals",
              lengths.size(), fvs.size());
    fvs.lengths = std::move(lengths);
}

void
writeSimpointsFile(std::ostream& os, const SimPointResult& result)
{
    for (const Phase& phase : result.phases)
        os << phase.representative << " " << phase.id << "\n";
}

void
writeWeightsFile(std::ostream& os, const SimPointResult& result)
{
    for (const Phase& phase : result.phases)
        os << phase.weight << " " << phase.id << "\n";
}

void
writeLabelsFile(std::ostream& os, const SimPointResult& result)
{
    for (u32 label : result.labels)
        os << label << "\n";
}

SimPointResult
readSimPointFiles(std::istream& simpoints, std::istream& weights,
                  std::istream& labels)
{
    SimPointResult result;

    std::map<u32, u32> reps;
    u64 rep = 0, id = 0;
    while (simpoints >> rep >> id)
        reps[static_cast<u32>(id)] = static_cast<u32>(rep);

    std::map<u32, double> weightOf;
    double w = 0.0;
    while (weights >> w >> id)
        weightOf[static_cast<u32>(id)] = w;

    if (reps.size() != weightOf.size())
        fatal("simpoints file has {} phases but weights file has {}",
              reps.size(), weightOf.size());

    u32 label = 0;
    while (labels >> label)
        result.labels.push_back(label);
    if (result.labels.empty())
        fatal("labels file is empty");

    u32 maxLabel = 0;
    for (u32 l : result.labels)
        maxLabel = std::max(maxLabel, l);
    result.k = maxLabel + 1;

    for (const auto& [phaseId, repIdx] : reps) {
        Phase phase;
        phase.id = phaseId;
        phase.representative = repIdx;
        auto wit = weightOf.find(phaseId);
        if (wit == weightOf.end())
            fatal("phase {} missing from weights file", phaseId);
        phase.weight = wit->second;
        for (u32 i = 0; i < result.labels.size(); ++i) {
            if (result.labels[i] == phaseId)
                phase.members.push_back(i);
        }
        if (phase.members.empty())
            fatal("phase {} has a simulation point but no intervals",
                  phaseId);
        if (repIdx >= result.labels.size() ||
            result.labels[repIdx] != phaseId) {
            fatal("phase {}: representative {} does not carry the "
                  "phase's label", phaseId, repIdx);
        }
        result.phases.push_back(std::move(phase));
    }
    return result;
}

} // namespace xbsp::sp
