#include "simpoint/fvec.hh"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/serial.hh"
#include "util/threadpool.hh"

namespace xbsp::sp
{

namespace
{

/** Bit pattern of a double (for hashing/comparing without epsilons). */
u64
bits(double value)
{
    u64 out;
    std::memcpy(&out, &value, sizeof(out));
    return out;
}

/** Value a vector entry is compared under: raw bits or quantized. */
u64
entryKey(double value, double quantum)
{
    if (quantum <= 0.0)
        return bits(value);
    return static_cast<u64>(std::llround(value / quantum));
}

/**
 * Pinned 128-bit digest of a sparse vector's quantized form (the
 * frozen util/serial hash, aligned-word fast path).  Probes compare
 * digests first, and only a full-digest match falls through to the
 * verifying element comparison.
 */
serial::Hash128
vectorDigest(const SparseVec& vec, double quantum)
{
    serial::Hasher h;
    h.u64w(vec.size());
    for (const auto& [idx, val] : vec) {
        h.u64w(idx);
        h.u64w(entryKey(val, quantum));
    }
    return h.finish();
}

/** Exact equality of two sparse vectors under `quantum`. */
bool
vectorsEqual(const SparseVec& a, const SparseVec& b, double quantum)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first)
            return false;
        if (entryKey(a[i].second, quantum) !=
            entryKey(b[i].second, quantum))
            return false;
    }
    return true;
}

} // namespace

double
sparseSum(const SparseVec& vec)
{
    double sum = 0.0;
    for (const auto& [idx, val] : vec)
        sum += val;
    return sum;
}

void
sparseNormalize(SparseVec& vec)
{
    const double sum = sparseSum(vec);
    if (sum == 0.0)
        return;
    for (auto& [idx, val] : vec)
        val /= sum;
}

void
FrequencyVectorSet::addInterval(SparseVec vec, InstrCount length)
{
    for (std::size_t i = 0; i < vec.size(); ++i) {
        if (vec[i].first >= dimension)
            panic("frequency vector index {} exceeds dimension {}",
                  vec[i].first, dimension);
        if (i > 0 && vec[i].first <= vec[i - 1].first)
            panic("frequency vector indices must be strictly rising");
    }
    vectors.push_back(std::move(vec));
    lengths.push_back(length);
}

void
FrequencyVectorSet::normalize()
{
    for (auto& vec : vectors)
        sparseNormalize(vec);
}

DedupMap
FrequencyVectorSet::dedup(double quantum) const
{
    auto& reg = obs::StatRegistry::global();
    obs::ScopedTimer buildTimer(reg.timer("dedup.build"));

    DedupMap map;
    map.classOf.resize(vectors.size());

    // Phase 1, parallel: compare each row to its predecessor and
    // digest the rows that start a run.  Phase-structured profiles
    // emit long runs of identical vectors (a loop-dominated phase
    // produces the same interval thousands of times), so most rows
    // resolve on the predecessor comparison — which fails fast on
    // the first differing entry — and never pay the digest.  Rows
    // are independent (row i reads only rows i and i-1, both
    // read-only) and land in preallocated slots, so the result is
    // identical at any --jobs.
    std::vector<serial::Hash128> digests(vectors.size());
    std::vector<unsigned char> sameAsPrev(vectors.size(), 0);
    parallelFor(globalPool(), vectors.size(), [&](std::size_t i) {
        if (i > 0 &&
            vectorsEqual(vectors[i], vectors[i - 1], quantum)) {
            sameAsPrev[i] = 1;
            return;
        }
        digests[i] = vectorDigest(vectors[i], quantum);
    });

    // Phase 2, serial in row order (class ids must be assigned in
    // first-appearance order): run members copy the predecessor's
    // class; run heads probe a flat pre-reserved map keyed on the
    // low digest word.  A candidate matches only on the full 128-bit
    // digest AND the verifying element comparison, so two intervals
    // share a class only when their vectors really are equal under
    // the quantum — even across digest collisions.  (A run member
    // can never be a class representative, so every firstOf row has
    // a computed digest.)
    std::unordered_map<u64, std::vector<u32>> buckets;
    buckets.reserve(vectors.size());
    for (std::size_t i = 0; i < vectors.size(); ++i) {
        u32 cls;
        if (sameAsPrev[i]) {
            cls = map.classOf[i - 1];
        } else {
            std::vector<u32>& bucket = buckets[digests[i].lo];
            const u32 fresh = static_cast<u32>(map.classes());
            cls = fresh;
            for (u32 candidate : bucket) {
                const u32 rep = map.firstOf[candidate];
                if (digests[rep] == digests[i] &&
                    vectorsEqual(vectors[i], vectors[rep], quantum)) {
                    cls = candidate;
                    break;
                }
            }
            if (cls == fresh) {
                bucket.push_back(cls);
                map.firstOf.push_back(static_cast<u32>(i));
                map.classLength.push_back(0);
            }
        }
        map.classOf[i] = cls;
        map.classLength[cls] += lengths[i];
    }

    reg.counter("dedup.calls").add();
    reg.counter("dedup.intervals").add(vectors.size());
    reg.counter("dedup.classes").add(map.classes());
    // One sample per class so the histogram shows how much arithmetic
    // the per-class clustering path can share.
    std::vector<u64> classSize(map.classes(), 0);
    for (u32 cls : map.classOf)
        ++classSize[cls];
    obs::Distribution sizes = reg.distribution("dedup.classSize");
    for (u64 size : classSize)
        sizes.sample(size);
    return map;
}

InstrCount
FrequencyVectorSet::totalInstructions() const
{
    InstrCount total = 0;
    for (InstrCount len : lengths)
        total += len;
    return total;
}

} // namespace xbsp::sp
