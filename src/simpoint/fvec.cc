#include "simpoint/fvec.hh"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace xbsp::sp
{

namespace
{

/** Bit pattern of a double (for hashing/comparing without epsilons). */
u64
bits(double value)
{
    u64 out;
    std::memcpy(&out, &value, sizeof(out));
    return out;
}

/** Value a vector entry is compared under: raw bits or quantized. */
u64
entryKey(double value, double quantum)
{
    if (quantum <= 0.0)
        return bits(value);
    return static_cast<u64>(std::llround(value / quantum));
}

/** Order-sensitive hash of a sparse vector under `quantum`. */
u64
vectorHash(const SparseVec& vec, double quantum)
{
    u64 h = hashMix(vec.size());
    for (const auto& [idx, val] : vec) {
        h = hashMix(h ^ idx);
        h = hashMix(h ^ entryKey(val, quantum));
    }
    return h;
}

/** Exact equality of two sparse vectors under `quantum`. */
bool
vectorsEqual(const SparseVec& a, const SparseVec& b, double quantum)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first)
            return false;
        if (entryKey(a[i].second, quantum) !=
            entryKey(b[i].second, quantum))
            return false;
    }
    return true;
}

} // namespace

double
sparseSum(const SparseVec& vec)
{
    double sum = 0.0;
    for (const auto& [idx, val] : vec)
        sum += val;
    return sum;
}

void
sparseNormalize(SparseVec& vec)
{
    const double sum = sparseSum(vec);
    if (sum == 0.0)
        return;
    for (auto& [idx, val] : vec)
        val /= sum;
}

void
FrequencyVectorSet::addInterval(SparseVec vec, InstrCount length)
{
    for (std::size_t i = 0; i < vec.size(); ++i) {
        if (vec[i].first >= dimension)
            panic("frequency vector index {} exceeds dimension {}",
                  vec[i].first, dimension);
        if (i > 0 && vec[i].first <= vec[i - 1].first)
            panic("frequency vector indices must be strictly rising");
    }
    vectors.push_back(std::move(vec));
    lengths.push_back(length);
}

void
FrequencyVectorSet::normalize()
{
    for (auto& vec : vectors)
        sparseNormalize(vec);
}

DedupMap
FrequencyVectorSet::dedup(double quantum) const
{
    DedupMap map;
    map.classOf.resize(vectors.size());
    // Buckets of class ids per hash; collisions resolved by full
    // comparison, so two intervals share a class only when their
    // vectors really are equal under the quantum.
    std::unordered_map<u64, std::vector<u32>> buckets;
    buckets.reserve(vectors.size());
    for (std::size_t i = 0; i < vectors.size(); ++i) {
        const u64 h = vectorHash(vectors[i], quantum);
        std::vector<u32>& bucket = buckets[h];
        const u32 fresh = static_cast<u32>(map.classes());
        u32 cls = fresh;
        for (u32 candidate : bucket) {
            if (vectorsEqual(vectors[i],
                             vectors[map.firstOf[candidate]],
                             quantum)) {
                cls = candidate;
                break;
            }
        }
        if (cls == fresh) {
            bucket.push_back(cls);
            map.firstOf.push_back(static_cast<u32>(i));
            map.classLength.push_back(0);
        }
        map.classOf[i] = cls;
        map.classLength[cls] += lengths[i];
    }

    auto& reg = obs::StatRegistry::global();
    reg.counter("dedup.calls").add();
    reg.counter("dedup.intervals").add(vectors.size());
    reg.counter("dedup.classes").add(map.classes());
    // One sample per class so the histogram shows how much arithmetic
    // the per-class clustering path can share.
    std::vector<u64> classSize(map.classes(), 0);
    for (u32 cls : map.classOf)
        ++classSize[cls];
    obs::Distribution sizes = reg.distribution("dedup.classSize");
    for (u64 size : classSize)
        sizes.sample(size);
    return map;
}

InstrCount
FrequencyVectorSet::totalInstructions() const
{
    InstrCount total = 0;
    for (InstrCount len : lengths)
        total += len;
    return total;
}

} // namespace xbsp::sp
