#include "simpoint/fvec.hh"

#include "util/logging.hh"

namespace xbsp::sp
{

double
sparseSum(const SparseVec& vec)
{
    double sum = 0.0;
    for (const auto& [idx, val] : vec)
        sum += val;
    return sum;
}

void
sparseNormalize(SparseVec& vec)
{
    const double sum = sparseSum(vec);
    if (sum == 0.0)
        return;
    for (auto& [idx, val] : vec)
        val /= sum;
}

void
FrequencyVectorSet::addInterval(SparseVec vec, InstrCount length)
{
    for (std::size_t i = 0; i < vec.size(); ++i) {
        if (vec[i].first >= dimension)
            panic("frequency vector index {} exceeds dimension {}",
                  vec[i].first, dimension);
        if (i > 0 && vec[i].first <= vec[i - 1].first)
            panic("frequency vector indices must be strictly rising");
    }
    vectors.push_back(std::move(vec));
    lengths.push_back(length);
}

void
FrequencyVectorSet::normalize()
{
    for (auto& vec : vectors)
        sparseNormalize(vec);
}

InstrCount
FrequencyVectorSet::totalInstructions() const
{
    InstrCount total = 0;
    for (InstrCount len : lengths)
        total += len;
    return total;
}

} // namespace xbsp::sp
