#include "simpoint/serial.hh"

namespace xbsp::sp
{

void
encodeFvs(serial::Encoder& e, const FrequencyVectorSet& fvs)
{
    e.varint(fvs.dimension);
    e.varint(fvs.vectors.size());
    for (const SparseVec& vec : fvs.vectors) {
        e.varint(vec.size());
        for (const auto& [dim, value] : vec) {
            e.varint(dim);
            e.f64(value);
        }
    }
    e.varint(fvs.lengths.size());
    for (InstrCount length : fvs.lengths)
        e.varint(length);
}

FrequencyVectorSet
decodeFvs(serial::Decoder& d)
{
    FrequencyVectorSet fvs;
    fvs.dimension = static_cast<u32>(d.varint());
    const u64 vectors = d.arrayCount();
    fvs.vectors.reserve(static_cast<std::size_t>(vectors));
    for (u64 i = 0; i < vectors; ++i) {
        const u64 entries = d.arrayCount(9);
        SparseVec vec;
        vec.reserve(static_cast<std::size_t>(entries));
        for (u64 j = 0; j < entries; ++j) {
            const u32 dim = static_cast<u32>(d.varint());
            const double value = d.f64();
            vec.emplace_back(dim, value);
        }
        fvs.vectors.push_back(std::move(vec));
    }
    const u64 lengths = d.arrayCount();
    fvs.lengths.reserve(static_cast<std::size_t>(lengths));
    for (u64 i = 0; i < lengths; ++i)
        fvs.lengths.push_back(d.varint());
    return fvs;
}

void
encodeSimPointResult(serial::Encoder& e, const SimPointResult& r)
{
    e.varint(r.k);
    e.varint(r.labels.size());
    for (u32 label : r.labels)
        e.varint(label);
    e.varint(r.phases.size());
    for (const Phase& phase : r.phases) {
        e.varint(phase.id);
        e.varint(phase.representative);
        e.f64(phase.weight);
        e.varint(phase.members.size());
        for (u32 member : phase.members)
            e.varint(member);
    }
    e.f64(r.chosenBic);
    e.varint(r.bicByK.size());
    for (double bic : r.bicByK)
        e.f64(bic);
}

SimPointResult
decodeSimPointResult(serial::Decoder& d)
{
    SimPointResult r;
    r.k = static_cast<u32>(d.varint());
    const u64 labels = d.arrayCount();
    r.labels.reserve(static_cast<std::size_t>(labels));
    for (u64 i = 0; i < labels; ++i)
        r.labels.push_back(static_cast<u32>(d.varint()));
    const u64 phases = d.arrayCount(11);
    r.phases.reserve(static_cast<std::size_t>(phases));
    for (u64 i = 0; i < phases; ++i) {
        Phase phase;
        phase.id = static_cast<u32>(d.varint());
        phase.representative = static_cast<u32>(d.varint());
        phase.weight = d.f64();
        const u64 members = d.arrayCount();
        phase.members.reserve(static_cast<std::size_t>(members));
        for (u64 j = 0; j < members; ++j)
            phase.members.push_back(static_cast<u32>(d.varint()));
        r.phases.push_back(std::move(phase));
    }
    r.chosenBic = d.f64();
    const u64 bics = d.arrayCount(8);
    r.bicByK.reserve(static_cast<std::size_t>(bics));
    for (u64 i = 0; i < bics; ++i)
        r.bicByK.push_back(d.f64());
    return r;
}

void
hashFvs(serial::Hasher& h, const FrequencyVectorSet& fvs)
{
    h.u32v(fvs.dimension);
    h.u64v(fvs.vectors.size());
    for (const SparseVec& vec : fvs.vectors) {
        h.u64v(vec.size());
        for (const auto& [dim, value] : vec) {
            h.u32v(dim);
            h.f64(value);
        }
    }
    h.u64v(fvs.lengths.size());
    for (InstrCount length : fvs.lengths)
        h.u64v(length);
}

void
hashSimPointOptions(serial::Hasher& h, const SimPointOptions& options)
{
    h.u32v(options.maxK);
    h.u32v(options.projectedDims);
    h.u32v(options.seedsPerK);
    h.f64(options.bicThreshold);
    h.u64v(options.seed);
    h.u64v(static_cast<u64>(options.init));
    h.u32v(options.maxIterations);
    h.boolean(options.earlyPoints);
    h.f64(options.earlyTolerance);
    // `accelerate` is deliberately *not* folded: the accelerated and
    // naive paths are bit-identical by contract, so both may share
    // one cached artifact.  dedupQuantum changes results, so it is.
    h.f64(options.dedupQuantum);
}

} // namespace xbsp::sp
