#include "simpoint/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/simd/simd.hh"
#include "util/threadpool.hh"

namespace xbsp::sp
{

namespace
{

/**
 * Registry handles for the k-means hot path, resolved once.  All are
 * exact u64 event counts (never wall-clock), so totals are identical
 * at any worker count; test_clustering_equiv relies on that to check
 * the accelerated E-step against the naive one.
 */
struct KMeansStats
{
    obs::Counter fits;
    obs::Counter distances;  ///< sqDist evaluations in E-steps
    obs::Counter skips;      ///< Hamerly bound proved the owner
    obs::Counter fallbacks;  ///< bound failed: full scan
    obs::Distribution iterations;
    obs::Distribution batchSize;  ///< centroid rows per batched call
};

KMeansStats&
kmeansStats()
{
    auto& reg = obs::StatRegistry::global();
    static KMeansStats stats{
        reg.counter("kmeans.fits"),
        reg.counter("kmeans.estep.distances"),
        reg.counter("kmeans.hamerly.skips"),
        reg.counter("kmeans.hamerly.fallbacks"),
        reg.distribution("kmeans.iterations"),
        reg.distribution("kmeans.estep.batchSize"),
    };
    return stats;
}

/**
 * Assign every point to its nearest centroid; returns weighted SSE.
 *
 * The E-step is the k-means hot loop (O(n * k * dims) per iteration)
 * and every point is independent, so it runs in parallel over fixed
 * chunks of the interval range.  The SSE is reduced per chunk and the
 * partials are summed in chunk order; since the chunking depends only
 * on the point count, the float summation order — and therefore the
 * whole clustering — is bit-identical at any worker count.
 */
double
assignLabels(const ProjectedData& data, const KMeansResult& res,
             std::vector<u32>& labels)
{
    const simd::Kernels& kern = simd::active();
    const std::size_t stride = data.rowStride();
    // One sample per E-step (not per point): deterministic at any
    // --jobs, and enough to see the batch shape in the stats dump.
    kmeansStats().batchSize.sample(res.k);
    std::vector<double> partialSse(parallelChunkCount(data.count), 0.0);
    parallelChunks(
        globalPool(), data.count,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            obs::ShardCounter distances(kmeansStats().distances);
            double sse = 0.0;
            std::vector<double> dist(res.k);
            for (std::size_t i = begin; i < end; ++i) {
                // All k distances in one batched call: the point row
                // stays hot while the centroid matrix streams.  Each
                // dist[c] is bit-for-bit sqDist(point, centroid c).
                kern.sqDistBatch(data.row(i), res.centroids.data(),
                                 res.k, stride,
                                 res.rowStride(data.dims),
                                 dist.data());
                double best = std::numeric_limits<double>::max();
                u32 bestC = 0;
                for (u32 c = 0; c < res.k; ++c) {
                    if (dist[c] < best) {
                        best = dist[c];
                        bestC = c;
                    }
                }
                labels[i] = bestC;
                sse += data.weights[i] * best;
            }
            distances.add((end - begin) *
                          static_cast<u64>(res.k));
            partialSse[chunk] = sse;
        });
    double sse = 0.0;
    for (double partial : partialSse)
        sse += partial;
    return sse;
}

/**
 * State for the accelerated E-step: Hamerly distance bounds kept per
 * duplicate class (per point when the data carries no class
 * structure — classOf/classFirst are then identity maps).
 *
 * Exactness argument, in full (DESIGN.md, "Clustering acceleration"):
 *
 *  - Rows of one duplicate class are bit-identical, so the naive
 *    per-point scan computes identical distances — and therefore an
 *    identical argmin — for every member of a class.  Computing the
 *    scan once per class and broadcasting the label is a pure
 *    de-duplication of arithmetic, not an approximation.
 *  - A class is *skipped* only when its exact distance to the owner
 *    hypothesis `u = sqrt(dOwn)` satisfies `u < max(guard[a],
 *    lower)`.  `guard[a]` is half the distance from centroid `a` to
 *    its nearest other centroid: `u < guard[a]` forces every other
 *    centroid strictly farther than `a` (triangle inequality).
 *    `lower` is a running lower bound on the distance to the nearest
 *    *non-owner* centroid (second-best at the last full scan, shrunk
 *    by the maximum centroid movement after every M-step): `u <
 *    lower` again proves strict nearest.  Both inequalities are
 *    strict, so a tie can never be skipped and the naive scan's
 *    lowest-index tie-break is preserved verbatim by the fallback
 *    full scan.
 *  - The skipped class's contribution to the SSE is `dOwn`, computed
 *    by the same sqDist on the same operands the naive scan would
 *    reduce with, and the SSE is accumulated over *original* points
 *    in the same chunk order — bit-identical floats.
 */
struct AccelState
{
    std::vector<u32> classOf;    ///< point -> class
    std::vector<u32> classFirst; ///< class -> lowest point index
    std::vector<u32> ownerOf;    ///< class -> owner hypothesis
    std::vector<double> lower;   ///< class -> non-owner lower bound
    std::vector<double> dOwn;    ///< class -> exact sqDist to owner
    bool boundsValid = false;    ///< lower[] usable this iteration

    /** Adopt the data's duplicate classes (identity when absent). */
    void
    attach(const ProjectedData& data)
    {
        if (data.hasClasses()) {
            classOf = data.classOf;
            classFirst = data.classFirst;
        } else {
            classOf.resize(data.count);
            classFirst.resize(data.count);
            for (std::size_t i = 0; i < data.count; ++i) {
                classOf[i] = static_cast<u32>(i);
                classFirst[i] = static_cast<u32>(i);
            }
        }
        ownerOf.assign(classFirst.size(), 0);
        lower.assign(classFirst.size(), 0.0);
        dOwn.assign(classFirst.size(), 0.0);
    }

    /** Seed owner hypotheses from the current labels. */
    void
    adoptLabels(const std::vector<u32>& labels)
    {
        for (std::size_t u = 0; u < classFirst.size(); ++u)
            ownerOf[u] = labels[classFirst[u]];
    }

    /** Centroids teleported (re-seeding): bounds mean nothing now. */
    void invalidate() { boundsValid = false; }

    /** Centroids moved smoothly: shrink bounds by the worst move. */
    void
    relax(const simd::AlignedVec& oldCentroids,
          const KMeansResult& res, u32 dims)
    {
        if (!boundsValid)
            return;
        const simd::Kernels& kern = simd::active();
        const std::size_t cstride = res.rowStride(dims);
        double maxMove = 0.0;
        for (u32 c = 0; c < res.k; ++c) {
            const double* before =
                oldCentroids.data() +
                static_cast<std::size_t>(c) * cstride;
            maxMove = std::max(
                maxMove, kern.sqDist(before,
                                     res.centroidRow(c, dims),
                                     cstride));
        }
        if (maxMove <= 0.0)
            return;
        const double move = std::sqrt(maxMove);
        for (double& bound : lower)
            bound = std::max(0.0, bound - move);
    }
};

/**
 * Accelerated drop-in for assignLabels(): per-class Hamerly-bounded
 * nearest-centroid search, then a broadcast pass over the original
 * points that assigns labels and reduces the weighted SSE in exactly
 * the naive chunk order.  See AccelState for why the result is
 * bit-identical.
 */
double
assignLabelsAccel(const ProjectedData& data, const KMeansResult& res,
                  std::vector<u32>& labels, AccelState& state)
{
    const u32 k = res.k;
    const simd::Kernels& kern = simd::active();
    const std::size_t stride = data.rowStride();
    const std::size_t cstride = res.rowStride(data.dims);
    // Half-distance from each centroid to its nearest neighbour.
    // With k == 1 this stays huge and every class skips (the single
    // centroid is trivially nearest).
    std::vector<double> guard(k, std::numeric_limits<double>::max());
    for (u32 c = 0; c < k; ++c) {
        for (u32 c2 = c + 1; c2 < k; ++c2) {
            const double d = kern.sqDist(res.centroidRow(c, data.dims),
                                         res.centroidRow(c2, data.dims),
                                         cstride);
            guard[c] = std::min(guard[c], d);
            guard[c2] = std::min(guard[c2], d);
        }
    }
    for (double& g : guard)
        g = 0.5 * std::sqrt(g);

    if (!state.boundsValid) {
        std::fill(state.lower.begin(), state.lower.end(), 0.0);
        state.boundsValid = true;
    }

    parallelChunks(
        globalPool(), state.classFirst.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
            obs::ShardCounter distances(kmeansStats().distances);
            obs::ShardCounter skips(kmeansStats().skips);
            obs::ShardCounter fallbacks(kmeansStats().fallbacks);
            std::vector<double> dist(k);
            for (std::size_t u = begin; u < end; ++u) {
                const double* x = data.row(state.classFirst[u]);
                const u32 a = state.ownerOf[u];
                const double down =
                    kern.sqDist(x, res.centroidRow(a, data.dims),
                                stride);
                distances.add();
                if (std::sqrt(down) <
                    std::max(guard[a], state.lower[u])) {
                    state.dOwn[u] = down;
                    skips.add();
                    continue;
                }
                fallbacks.add();
                distances.add(k);
                // Fallback: the naive scan, verbatim (same batched
                // kernel over the same operands), plus second-best
                // tracking to refresh the lower bound.
                kern.sqDistBatch(x, res.centroids.data(), k, stride,
                                 cstride, dist.data());
                double best = std::numeric_limits<double>::max();
                double second = best;
                u32 bestC = 0;
                for (u32 c = 0; c < k; ++c) {
                    if (dist[c] < best) {
                        second = best;
                        best = dist[c];
                        bestC = c;
                    } else if (dist[c] < second) {
                        second = dist[c];
                    }
                }
                state.ownerOf[u] = bestC;
                state.dOwn[u] = best;
                state.lower[u] = std::sqrt(second);
            }
        });

    // Broadcast labels and reduce the SSE over original points, in
    // the same chunking the naive E-step uses.
    std::vector<double> partialSse(parallelChunkCount(data.count),
                                   0.0);
    parallelChunks(
        globalPool(), data.count,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            double sse = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                const u32 u = state.classOf[i];
                labels[i] = state.ownerOf[u];
                sse += data.weights[i] * state.dOwn[u];
            }
            partialSse[chunk] = sse;
        });
    double sse = 0.0;
    for (double partial : partialSse)
        sse += partial;
    return sse;
}

/** Recompute weighted centroids; returns ids of empty clusters. */
std::vector<u32>
updateCentroids(const ProjectedData& data, KMeansResult& res)
{
    const simd::Kernels& kern = simd::active();
    const std::size_t cstride = res.rowStride(data.dims);
    std::fill(res.centroids.begin(), res.centroids.end(), 0.0);
    std::fill(res.clusterWeight.begin(), res.clusterWeight.end(), 0.0);
    // Accumulation stays serial in point order: the reduction order
    // into each centroid is part of the pinned semantics (elementwise
    // axpy per point, points in increasing index order).
    for (std::size_t i = 0; i < data.count; ++i) {
        const u32 c = res.labels[i];
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * cstride;
        const double w = data.weights[i];
        kern.axpy(crow, data.row(i), w, data.rowStride());
        res.clusterWeight[c] += w;
    }
    std::vector<u32> empty;
    for (u32 c = 0; c < res.k; ++c) {
        if (res.clusterWeight[c] <= 0.0) {
            empty.push_back(c);
            continue;
        }
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * cstride;
        for (u32 d = 0; d < data.dims; ++d)
            crow[d] /= res.clusterWeight[c];
    }
    return empty;
}

/** Re-seed an empty cluster with the worst-fitting point. */
void
reseedEmpty(const ProjectedData& data, KMeansResult& res,
            const std::vector<u32>& empty)
{
    const simd::Kernels& kern = simd::active();
    const std::size_t cstride = res.rowStride(data.dims);
    for (u32 c : empty) {
        double worst = -1.0;
        std::size_t worstIdx = 0;
        for (std::size_t i = 0; i < data.count; ++i) {
            const u32 owner = res.labels[i];
            if (res.clusterWeight[owner] <= 0.0)
                continue;
            const double d =
                kern.sqDist(data.row(i),
                            res.centroidRow(owner, data.dims),
                            data.rowStride());
            if (d > worst) {
                worst = d;
                worstIdx = i;
            }
        }
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * cstride;
        const auto p = data.point(worstIdx);
        std::copy(p.begin(), p.end(), crow);
        res.labels[worstIdx] = c;
    }
}

/**
 * D^2 seeding.  With an AccelState the distance-to-nearest-centroid
 * table is maintained per duplicate class and expanded to per-point
 * sampling probabilities; the probabilities — and hence the RNG
 * consumption and every pick — are bit-identical to the naive loop,
 * because a class member's distance IS its representative's distance
 * (identical rows).
 */
void
initPlusPlus(const ProjectedData& data, KMeansResult& res, Rng& rng,
             const AccelState* accel)
{
    // First centroid: weighted-uniform draw.
    auto pickWeighted = [&](const std::vector<double>& probs) {
        double total = 0.0;
        for (double p : probs)
            total += p;
        double r = rng.nextDouble() * total;
        for (std::size_t i = 0; i < probs.size(); ++i) {
            r -= probs[i];
            if (r <= 0.0)
                return i;
        }
        return probs.size() - 1;
    };

    const simd::Kernels& kern = simd::active();
    const std::size_t cstride = res.rowStride(data.dims);
    std::size_t first = pickWeighted(data.weights);
    auto setCentroid = [&](u32 c, std::size_t i) {
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * cstride;
        const auto p = data.point(i);
        std::copy(p.begin(), p.end(), crow);
    };
    setCentroid(0, first);

    const std::size_t slots =
        accel ? accel->classFirst.size() : data.count;
    std::vector<double> minDist(slots,
                                std::numeric_limits<double>::max());
    std::vector<double> probs(data.count);
    for (u32 c = 1; c < res.k; ++c) {
        for (std::size_t u = 0; u < slots; ++u) {
            const std::size_t rep =
                accel ? accel->classFirst[u] : u;
            const double d =
                kern.sqDist(data.row(rep),
                            res.centroidRow(c - 1, data.dims),
                            data.rowStride());
            minDist[u] = std::min(minDist[u], d);
        }
        for (std::size_t i = 0; i < data.count; ++i) {
            probs[i] =
                data.weights[i] *
                minDist[accel ? accel->classOf[i] : i];
        }
        setCentroid(c, pickWeighted(probs));
    }
}

void
initRandomPartition(const ProjectedData& data, KMeansResult& res,
                    Rng& rng)
{
    for (std::size_t i = 0; i < data.count; ++i)
        res.labels[i] = static_cast<u32>(rng.nextBelow(res.k));
    // Guarantee every cluster owns at least one point.
    for (u32 c = 0; c < res.k && c < data.count; ++c)
        res.labels[c] = c;
    const auto empty = updateCentroids(data, res);
    reseedEmpty(data, res, empty);
    // Re-seeding relabels the stolen points, leaving the donor
    // clusters' centroids and weights stale; recompute once so the
    // first E-step sees centroids consistent with the labels.
    if (!empty.empty())
        updateCentroids(data, res);
}

} // namespace

KMeansResult
runKMeans(const ProjectedData& data, u32 k, Rng& rng,
          const KMeansOptions& options)
{
    if (data.count == 0)
        fatal("k-means called with no data points");
    KMeansResult res;
    res.k = std::max<u32>(1, std::min<u32>(
                                 k, static_cast<u32>(data.count)));
    res.labels.assign(data.count, 0);
    // Centroid rows share the data's padded stride so the batched
    // kernels can stream both matrices tail-free.
    res.stride = data.rowStride();
    res.centroids.assign(
        static_cast<std::size_t>(res.k) * res.stride, 0.0);
    res.clusterWeight.assign(res.k, 0.0);

    AccelState state;
    if (options.accelerate)
        state.attach(data);

    if (options.init == InitMethod::KMeansPlusPlus)
        initPlusPlus(data, res, rng,
                     options.accelerate ? &state : nullptr);
    else
        initRandomPartition(data, res, rng);

    if (options.accelerate)
        state.adoptLabels(res.labels);
    auto assign = [&](std::vector<u32>& labels) {
        return options.accelerate
                   ? assignLabelsAccel(data, res, labels, state)
                   : assignLabels(data, res, labels);
    };

    std::vector<u32> newLabels(data.count, 0);
    simd::AlignedVec oldCentroids;
    for (u32 iter = 0; iter < options.maxIterations; ++iter) {
        res.iterations = iter + 1;
        res.weightedSse = assign(newLabels);
        const bool stable = newLabels == res.labels && iter > 0;
        res.labels = newLabels;
        if (options.accelerate)
            oldCentroids = res.centroids;
        const auto empty = updateCentroids(data, res);
        if (!empty.empty()) {
            reseedEmpty(data, res, empty);
            updateCentroids(data, res);
            state.invalidate();
            continue;
        }
        if (options.accelerate)
            state.relax(oldCentroids, res, data.dims);
        if (stable) {
            res.converged = true;
            break;
        }
    }
    // Final consistent assignment and SSE against the final
    // centroids; recompute member weights to match the final labels
    // without moving the centroids again.
    res.weightedSse = assign(res.labels);
    std::fill(res.clusterWeight.begin(), res.clusterWeight.end(), 0.0);
    for (std::size_t i = 0; i < data.count; ++i)
        res.clusterWeight[res.labels[i]] += data.weights[i];
    kmeansStats().fits.add();
    kmeansStats().iterations.sample(res.iterations);
    return res;
}

} // namespace xbsp::sp
