#include "simpoint/kmeans.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"
#include "util/threadpool.hh"

namespace xbsp::sp
{

namespace
{

/**
 * Assign every point to its nearest centroid; returns weighted SSE.
 *
 * The E-step is the k-means hot loop (O(n * k * dims) per iteration)
 * and every point is independent, so it runs in parallel over fixed
 * chunks of the interval range.  The SSE is reduced per chunk and the
 * partials are summed in chunk order; since the chunking depends only
 * on the point count, the float summation order — and therefore the
 * whole clustering — is bit-identical at any worker count.
 */
double
assignLabels(const ProjectedData& data, const KMeansResult& res,
             std::vector<u32>& labels)
{
    std::vector<double> partialSse(parallelChunkCount(data.count), 0.0);
    parallelChunks(
        globalPool(), data.count,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            double sse = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                double best = std::numeric_limits<double>::max();
                u32 bestC = 0;
                for (u32 c = 0; c < res.k; ++c) {
                    const double d = sqDist(data.point(i),
                                            res.centroid(c, data.dims));
                    if (d < best) {
                        best = d;
                        bestC = c;
                    }
                }
                labels[i] = bestC;
                sse += data.weights[i] * best;
            }
            partialSse[chunk] = sse;
        });
    double sse = 0.0;
    for (double partial : partialSse)
        sse += partial;
    return sse;
}

/** Recompute weighted centroids; returns ids of empty clusters. */
std::vector<u32>
updateCentroids(const ProjectedData& data, KMeansResult& res)
{
    std::fill(res.centroids.begin(), res.centroids.end(), 0.0);
    std::fill(res.clusterWeight.begin(), res.clusterWeight.end(), 0.0);
    for (std::size_t i = 0; i < data.count; ++i) {
        const u32 c = res.labels[i];
        double* crow =
            res.centroids.data() + static_cast<std::size_t>(c) *
                                       data.dims;
        const auto p = data.point(i);
        const double w = data.weights[i];
        for (u32 d = 0; d < data.dims; ++d)
            crow[d] += w * p[d];
        res.clusterWeight[c] += w;
    }
    std::vector<u32> empty;
    for (u32 c = 0; c < res.k; ++c) {
        if (res.clusterWeight[c] <= 0.0) {
            empty.push_back(c);
            continue;
        }
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * data.dims;
        for (u32 d = 0; d < data.dims; ++d)
            crow[d] /= res.clusterWeight[c];
    }
    return empty;
}

/** Re-seed an empty cluster with the worst-fitting point. */
void
reseedEmpty(const ProjectedData& data, KMeansResult& res,
            const std::vector<u32>& empty)
{
    for (u32 c : empty) {
        double worst = -1.0;
        std::size_t worstIdx = 0;
        for (std::size_t i = 0; i < data.count; ++i) {
            const u32 owner = res.labels[i];
            if (res.clusterWeight[owner] <= 0.0)
                continue;
            const double d = sqDist(data.point(i),
                                    res.centroid(owner, data.dims));
            if (d > worst) {
                worst = d;
                worstIdx = i;
            }
        }
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * data.dims;
        const auto p = data.point(worstIdx);
        std::copy(p.begin(), p.end(), crow);
        res.labels[worstIdx] = c;
    }
}

void
initPlusPlus(const ProjectedData& data, KMeansResult& res, Rng& rng)
{
    // First centroid: weighted-uniform draw.
    std::vector<double> minDist(data.count,
                                std::numeric_limits<double>::max());
    auto pickWeighted = [&](const std::vector<double>& probs) {
        double total = 0.0;
        for (double p : probs)
            total += p;
        double r = rng.nextDouble() * total;
        for (std::size_t i = 0; i < probs.size(); ++i) {
            r -= probs[i];
            if (r <= 0.0)
                return i;
        }
        return probs.size() - 1;
    };

    std::size_t first = pickWeighted(data.weights);
    auto setCentroid = [&](u32 c, std::size_t i) {
        double* crow = res.centroids.data() +
                       static_cast<std::size_t>(c) * data.dims;
        const auto p = data.point(i);
        std::copy(p.begin(), p.end(), crow);
    };
    setCentroid(0, first);

    std::vector<double> probs(data.count);
    for (u32 c = 1; c < res.k; ++c) {
        for (std::size_t i = 0; i < data.count; ++i) {
            const double d =
                sqDist(data.point(i), res.centroid(c - 1, data.dims));
            minDist[i] = std::min(minDist[i], d);
            probs[i] = data.weights[i] * minDist[i];
        }
        setCentroid(c, pickWeighted(probs));
    }
}

void
initRandomPartition(const ProjectedData& data, KMeansResult& res,
                    Rng& rng)
{
    for (std::size_t i = 0; i < data.count; ++i)
        res.labels[i] = static_cast<u32>(rng.nextBelow(res.k));
    // Guarantee every cluster owns at least one point.
    for (u32 c = 0; c < res.k && c < data.count; ++c)
        res.labels[c] = c;
    const auto empty = updateCentroids(data, res);
    reseedEmpty(data, res, empty);
}

} // namespace

KMeansResult
runKMeans(const ProjectedData& data, u32 k, Rng& rng,
          const KMeansOptions& options)
{
    if (data.count == 0)
        fatal("k-means called with no data points");
    KMeansResult res;
    res.k = std::max<u32>(1, std::min<u32>(
                                 k, static_cast<u32>(data.count)));
    res.labels.assign(data.count, 0);
    res.centroids.assign(
        static_cast<std::size_t>(res.k) * data.dims, 0.0);
    res.clusterWeight.assign(res.k, 0.0);

    if (options.init == InitMethod::KMeansPlusPlus)
        initPlusPlus(data, res, rng);
    else
        initRandomPartition(data, res, rng);

    std::vector<u32> newLabels(data.count, 0);
    for (u32 iter = 0; iter < options.maxIterations; ++iter) {
        res.iterations = iter + 1;
        res.weightedSse = assignLabels(data, res, newLabels);
        const bool stable = newLabels == res.labels && iter > 0;
        res.labels = newLabels;
        const auto empty = updateCentroids(data, res);
        if (!empty.empty()) {
            reseedEmpty(data, res, empty);
            updateCentroids(data, res);
            continue;
        }
        if (stable) {
            res.converged = true;
            break;
        }
    }
    // Final consistent assignment and SSE against the final
    // centroids; recompute member weights to match the final labels
    // without moving the centroids again.
    res.weightedSse = assignLabels(data, res, res.labels);
    std::fill(res.clusterWeight.begin(), res.clusterWeight.end(), 0.0);
    for (std::size_t i = 0; i < data.count; ++i)
        res.clusterWeight[res.labels[i]] += data.weights[i];
    return res;
}

} // namespace xbsp::sp
