/**
 * @file
 * Frequency-vector containers: the interface between profiling and
 * clustering.  Each interval of execution is represented by a sparse
 * basic-block vector (entry = block id, value = executions weighted
 * by block size) plus the interval's dynamic instruction length —
 * SimPoint 3.0's variable-length-interval input format.
 */

#ifndef XBSP_SIMPOINT_FVEC_HH
#define XBSP_SIMPOINT_FVEC_HH

#include <utility>
#include <vector>

#include "util/types.hh"

namespace xbsp::sp
{

/** Sparse vector: (dimension index, value), indices strictly rising. */
using SparseVec = std::vector<std::pair<u32, double>>;

/** Sum of all values in a sparse vector. */
double sparseSum(const SparseVec& vec);

/** Scale a sparse vector so its values sum to 1 (no-op when empty). */
void sparseNormalize(SparseVec& vec);

/**
 * Duplicate-interval classes over a frequency-vector set.
 *
 * Intervals whose sparse vectors are equal (bitwise by default, or
 * after quantization when a quantum is given) form one class.  The
 * class representative is the *lowest* original interval index, so a
 * representative's projected row is bit-identical to every member's
 * and any computation that depends only on the vector (distances,
 * nearest-centroid labels) can be done once per class and broadcast
 * to the members without changing a single bit of the result.
 */
struct DedupMap
{
    /** Class id per original interval. */
    std::vector<u32> classOf;

    /** Lowest original interval index per class. */
    std::vector<u32> firstOf;

    /** Summed instruction length per class. */
    std::vector<InstrCount> classLength;

    /** Number of duplicate classes (= unique vectors). */
    std::size_t classes() const { return firstOf.size(); }
};

/** A set of per-interval frequency vectors for one binary. */
struct FrequencyVectorSet
{
    /** Number of static dimensions (basic blocks in the binary). */
    u32 dimension = 0;

    /** One sparse BBV per interval, in execution order. */
    std::vector<SparseVec> vectors;

    /** Dynamic instructions per interval (VLI weights). */
    std::vector<InstrCount> lengths;

    /** Number of intervals. */
    std::size_t size() const { return vectors.size(); }

    /** Append one interval. */
    void addInterval(SparseVec vec, InstrCount length);

    /** Normalize every vector to sum 1 (SimPoint step 1). */
    void normalize();

    /** Total instructions across all intervals. */
    InstrCount totalInstructions() const;

    /**
     * Group intervals with equal vectors into duplicate classes.
     * `quantum` 0 (the default) requires bitwise-equal values, which
     * preserves exactness end to end; a positive quantum also merges
     * vectors whose values agree after rounding to multiples of it
     * (an approximation — see DESIGN.md, "Clustering acceleration").
     * Class ids are assigned in order of first appearance, so
     * `firstOf` is strictly ascending.
     */
    DedupMap dedup(double quantum = 0.0) const;
};

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_FVEC_HH
