/**
 * @file
 * Frequency-vector containers: the interface between profiling and
 * clustering.  Each interval of execution is represented by a sparse
 * basic-block vector (entry = block id, value = executions weighted
 * by block size) plus the interval's dynamic instruction length —
 * SimPoint 3.0's variable-length-interval input format.
 */

#ifndef XBSP_SIMPOINT_FVEC_HH
#define XBSP_SIMPOINT_FVEC_HH

#include <utility>
#include <vector>

#include "util/types.hh"

namespace xbsp::sp
{

/** Sparse vector: (dimension index, value), indices strictly rising. */
using SparseVec = std::vector<std::pair<u32, double>>;

/** Sum of all values in a sparse vector. */
double sparseSum(const SparseVec& vec);

/** Scale a sparse vector so its values sum to 1 (no-op when empty). */
void sparseNormalize(SparseVec& vec);

/** A set of per-interval frequency vectors for one binary. */
struct FrequencyVectorSet
{
    /** Number of static dimensions (basic blocks in the binary). */
    u32 dimension = 0;

    /** One sparse BBV per interval, in execution order. */
    std::vector<SparseVec> vectors;

    /** Dynamic instructions per interval (VLI weights). */
    std::vector<InstrCount> lengths;

    /** Number of intervals. */
    std::size_t size() const { return vectors.size(); }

    /** Append one interval. */
    void addInterval(SparseVec vec, InstrCount length);

    /** Normalize every vector to sum 1 (SimPoint step 1). */
    void normalize();

    /** Total instructions across all intervals. */
    InstrCount totalInstructions() const;
};

} // namespace xbsp::sp

#endif // XBSP_SIMPOINT_FVEC_HH
