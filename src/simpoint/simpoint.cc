#include "simpoint/simpoint.hh"

#include <limits>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "simpoint/serial.hh"
#include "store/store.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace xbsp::sp
{

namespace
{

/** The pipeline proper, over an already-normalized vector set. */
SimPointResult
pickFromNormalized(const FrequencyVectorSet& fvs,
                   const SimPointOptions& options)
{
    // Coalesce duplicate intervals up front: projection runs once per
    // class and the clustering layer scans classes instead of points.
    // The class structure rides along inside ProjectedData; every
    // label, member list and representative below stays expressed in
    // original interval ids.
    DedupMap dedup;
    if (options.accelerate)
        dedup = fvs.dedup(options.dedupQuantum);
    const ProjectedData data =
        project(fvs, options.projectedDims, options.seed,
                options.accelerate ? &dedup : nullptr);

    const u32 maxK = std::max<u32>(
        1, std::min<u32>(options.maxK,
                         static_cast<u32>(fvs.size())));

    const Rng rng(hashMix(options.seed ^ 0xB1Cull));
    KMeansOptions kmOpts;
    kmOpts.init = options.init;
    kmOpts.maxIterations = options.maxIterations;
    kmOpts.accelerate = options.accelerate;

    // The (k, seed) sweep.  Every fit forks its own RNG stream from
    // the (const) sweep generator, so fits are order-independent and
    // can fan out across the pool; the best-by-SSE reduction below
    // runs serially in (k, seed-index) order with a strict less-than,
    // which reproduces the sequential loop's pick — including its
    // lowest-seed-index tie-break — exactly.
    const std::size_t fitCount =
        static_cast<std::size_t>(maxK) * options.seedsPerK;
    std::vector<KMeansResult> fits(fitCount);
    auto fitOne = [&](std::size_t f) {
        const u32 k = 1 + static_cast<u32>(f / options.seedsPerK);
        const u32 s = static_cast<u32>(f % options.seedsPerK);
        obs::TraceSpan span(format("kmeans k={} seed={}", k, s),
                            "cluster");
        Rng seedRng = rng.fork((static_cast<u64>(k) << 16) | s);
        fits[f] = runKMeans(data, k, seedRng, kmOpts);
    };
    if (options.accelerate) {
        parallelFor(globalPool(), fitCount, fitOne);
    } else {
        for (std::size_t f = 0; f < fitCount; ++f)
            fitOne(f);
    }

    std::vector<KMeansResult> bestByK;
    std::vector<double> bicByK;
    bestByK.reserve(maxK);
    for (u32 k = 1; k <= maxK; ++k) {
        KMeansResult best;
        double bestSse = std::numeric_limits<double>::max();
        for (u32 s = 0; s < options.seedsPerK; ++s) {
            KMeansResult& res =
                fits[static_cast<std::size_t>(k - 1) *
                         options.seedsPerK +
                     s];
            if (res.weightedSse < bestSse) {
                bestSse = res.weightedSse;
                best = std::move(res);
            }
        }
        bicByK.push_back(bicScore(data, best));
        bestByK.push_back(std::move(best));
    }

    // Smallest k whose normalized BIC clears the threshold.
    const std::vector<double> norm = normalizeBic(bicByK);
    std::size_t chosenIdx = norm.size() - 1;
    for (std::size_t i = 0; i < norm.size(); ++i) {
        if (norm[i] >= options.bicThreshold) {
            chosenIdx = i;
            break;
        }
    }

    const KMeansResult& chosen = bestByK[chosenIdx];
    {
        auto& reg = obs::StatRegistry::global();
        reg.counter("simpoint.sweeps").add();
        reg.distribution("simpoint.chosenK").sample(chosen.k);
    }
    SimPointResult out;
    out.k = chosen.k;
    out.labels = chosen.labels;
    out.bicByK = bicByK;
    out.chosenBic = bicByK[chosenIdx];

    // Build phases: members, instruction weights, representative =
    // member interval closest to the cluster centroid.
    //
    // Tie-breaking deviation from SimPoint 3.0: when several members
    // are equally close to the centroid (common here, because the
    // synthetic workloads produce near-identical vectors within a
    // phase), pick the temporally *median* candidate rather than the
    // earliest.  At real SimPoint scale (100M-instruction intervals)
    // the earliest-member tie-break is harmless; at our scaled-down
    // interval sizes the earliest member of a phase often carries
    // cache warm-up state, which would systematically bias the
    // simulation points of both methods.
    const InstrCount total = fvs.totalInstructions();
    for (u32 c = 0; c < chosen.k; ++c) {
        Phase phase;
        phase.id = c;
        InstrCount phaseInstrs = 0;
        std::vector<double> dists;
        double bestDist = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < fvs.size(); ++i) {
            if (chosen.labels[i] != c)
                continue;
            phase.members.push_back(static_cast<u32>(i));
            phaseInstrs += fvs.lengths[i];
            const double d = sqDist(data.point(i),
                                    chosen.centroid(c, data.dims));
            dists.push_back(d);
            bestDist = std::min(bestDist, d);
        }
        if (phase.members.empty())
            continue; // degenerate cluster; drop it

        // Near-tie window: a small fraction of the cluster's mean
        // distance-to-centroid.  Members inside it are considered
        // equally representative; intervals whose vectors differ only
        // by loop-boundary rounding all land in this window.
        double meanDist = 0.0;
        for (double d : dists)
            meanDist += d;
        meanDist /= static_cast<double>(dists.size());
        const double tolerance =
            options.earlyPoints ? options.earlyTolerance : 1e-3;
        const double epsilon = tolerance * meanDist + 1e-12;
        std::vector<u32> candidates;
        for (std::size_t m = 0; m < phase.members.size(); ++m) {
            if (dists[m] <= bestDist + epsilon)
                candidates.push_back(phase.members[m]);
        }
        // Early points take the first acceptable interval (cheap to
        // reach); the default takes the temporally median candidate.
        phase.representative = options.earlyPoints
                                   ? candidates.front()
                                   : candidates[candidates.size() / 2];

        // Degenerate zero-length input (all interval lengths 0):
        // fall back to interval-count weights so the phase weights
        // still describe a distribution summing to 1.
        phase.weight =
            total ? static_cast<double>(phaseInstrs) /
                        static_cast<double>(total)
                  : static_cast<double>(phase.members.size()) /
                        static_cast<double>(fvs.size());
        out.phases.push_back(std::move(phase));
    }
    if (out.phases.empty())
        panic("SimPoint produced no phases for {} intervals",
              fvs.size());
    return out;
}

} // namespace

serial::Hash128
simPointKey(const FrequencyVectorSet& fvs,
            const SimPointOptions& options)
{
    serial::Hasher h;
    h.str("simpoint");
    hashFvs(h, fvs);
    hashSimPointOptions(h, options);
    return h.finish();
}

SimPointResult
pickSimulationPoints(const FrequencyVectorSet& fvs,
                     const SimPointOptions& options)
{
    if (fvs.size() == 0)
        fatal("SimPoint called with no intervals");
    return store::ArtifactStore::global().getOrCompute<SimPointCodec>(
        simPointKey(fvs, options), "simpoint", [&] {
            FrequencyVectorSet normalized = fvs;
            normalized.normalize();
            return pickFromNormalized(normalized, options);
        });
}

SimPointResult
pickSimulationPoints(FrequencyVectorSet&& fvs,
                     const SimPointOptions& options)
{
    if (fvs.size() == 0)
        fatal("SimPoint called with no intervals");
    const serial::Hash128 key = simPointKey(fvs, options);
    return store::ArtifactStore::global().getOrCompute<SimPointCodec>(
        key, "simpoint", [&] {
            fvs.normalize();
            return pickFromNormalized(fvs, options);
        });
}

} // namespace xbsp::sp
