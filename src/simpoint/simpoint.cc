#include "simpoint/simpoint.hh"

#include <limits>

#include "util/logging.hh"

namespace xbsp::sp
{

namespace
{

/** The pipeline proper, over an already-normalized vector set. */
SimPointResult
pickFromNormalized(const FrequencyVectorSet& fvs,
                   const SimPointOptions& options)
{
    const ProjectedData data =
        project(fvs, options.projectedDims, options.seed);

    const u32 maxK = std::max<u32>(
        1, std::min<u32>(options.maxK,
                         static_cast<u32>(fvs.size())));

    Rng rng(hashMix(options.seed ^ 0xB1Cull));
    KMeansOptions kmOpts;
    kmOpts.init = options.init;
    kmOpts.maxIterations = options.maxIterations;

    std::vector<KMeansResult> bestByK;
    std::vector<double> bicByK;
    bestByK.reserve(maxK);
    for (u32 k = 1; k <= maxK; ++k) {
        KMeansResult best;
        double bestSse = std::numeric_limits<double>::max();
        for (u32 s = 0; s < options.seedsPerK; ++s) {
            Rng seedRng = rng.fork((static_cast<u64>(k) << 16) | s);
            KMeansResult res = runKMeans(data, k, seedRng, kmOpts);
            if (res.weightedSse < bestSse) {
                bestSse = res.weightedSse;
                best = std::move(res);
            }
        }
        bicByK.push_back(bicScore(data, best));
        bestByK.push_back(std::move(best));
    }

    // Smallest k whose normalized BIC clears the threshold.
    const std::vector<double> norm = normalizeBic(bicByK);
    u32 chosenIdx = static_cast<u32>(norm.size()) - 1;
    for (u32 i = 0; i < norm.size(); ++i) {
        if (norm[i] >= options.bicThreshold) {
            chosenIdx = i;
            break;
        }
    }

    const KMeansResult& chosen = bestByK[chosenIdx];
    SimPointResult out;
    out.k = chosen.k;
    out.labels = chosen.labels;
    out.bicByK = bicByK;
    out.chosenBic = bicByK[chosenIdx];

    // Build phases: members, instruction weights, representative =
    // member interval closest to the cluster centroid.
    //
    // Tie-breaking deviation from SimPoint 3.0: when several members
    // are equally close to the centroid (common here, because the
    // synthetic workloads produce near-identical vectors within a
    // phase), pick the temporally *median* candidate rather than the
    // earliest.  At real SimPoint scale (100M-instruction intervals)
    // the earliest-member tie-break is harmless; at our scaled-down
    // interval sizes the earliest member of a phase often carries
    // cache warm-up state, which would systematically bias the
    // simulation points of both methods.
    const InstrCount total = fvs.totalInstructions();
    for (u32 c = 0; c < chosen.k; ++c) {
        Phase phase;
        phase.id = c;
        InstrCount phaseInstrs = 0;
        std::vector<double> dists;
        double bestDist = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < fvs.size(); ++i) {
            if (chosen.labels[i] != c)
                continue;
            phase.members.push_back(static_cast<u32>(i));
            phaseInstrs += fvs.lengths[i];
            const double d = sqDist(data.point(i),
                                    chosen.centroid(c, data.dims));
            dists.push_back(d);
            bestDist = std::min(bestDist, d);
        }
        if (phase.members.empty())
            continue; // degenerate cluster; drop it

        // Near-tie window: a small fraction of the cluster's mean
        // distance-to-centroid.  Members inside it are considered
        // equally representative; intervals whose vectors differ only
        // by loop-boundary rounding all land in this window.
        double meanDist = 0.0;
        for (double d : dists)
            meanDist += d;
        meanDist /= static_cast<double>(dists.size());
        const double tolerance =
            options.earlyPoints ? options.earlyTolerance : 1e-3;
        const double epsilon = tolerance * meanDist + 1e-12;
        std::vector<u32> candidates;
        for (std::size_t m = 0; m < phase.members.size(); ++m) {
            if (dists[m] <= bestDist + epsilon)
                candidates.push_back(phase.members[m]);
        }
        // Early points take the first acceptable interval (cheap to
        // reach); the default takes the temporally median candidate.
        phase.representative = options.earlyPoints
                                   ? candidates.front()
                                   : candidates[candidates.size() / 2];

        phase.weight = total ? static_cast<double>(phaseInstrs) /
                                   static_cast<double>(total)
                             : 0.0;
        out.phases.push_back(std::move(phase));
    }
    if (out.phases.empty())
        panic("SimPoint produced no phases for {} intervals",
              fvs.size());
    return out;
}

} // namespace

SimPointResult
pickSimulationPoints(const FrequencyVectorSet& fvs,
                     const SimPointOptions& options)
{
    if (fvs.size() == 0)
        fatal("SimPoint called with no intervals");
    FrequencyVectorSet normalized = fvs;
    normalized.normalize();
    return pickFromNormalized(normalized, options);
}

SimPointResult
pickSimulationPoints(FrequencyVectorSet&& fvs,
                     const SimPointOptions& options)
{
    if (fvs.size() == 0)
        fatal("SimPoint called with no intervals");
    fvs.normalize();
    return pickFromNormalized(fvs, options);
}

} // namespace xbsp::sp
