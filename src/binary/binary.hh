/**
 * @file
 * Machine-level program model: the output of the model compiler and
 * the input to the execution engine.
 *
 * A Binary is a set of machine procedures whose bodies reference
 * machine basic blocks (instruction/memory-op counts plus a memory
 * access pattern with the footprint already scaled for the target).
 * Markers model the instrumentation anchors the paper cares about:
 * procedure entry points, loop entry points and loop back-branches,
 * each carrying debug info (symbol name or source line).  Compiler
 * transformations clone or drop markers exactly the way real
 * optimizations do, which is what the cross-binary matcher has to
 * cope with.
 */

#ifndef XBSP_BINARY_BINARY_HH
#define XBSP_BINARY_BINARY_HH

#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "ir/program.hh"
#include "util/types.hh"

namespace xbsp::bin
{

/** Instruction-set width of a compilation target. */
enum class Arch { X32, X64 };

/** Optimization level of a compilation target. */
enum class OptLevel { Unoptimized, Optimized };

/** A compilation target: ISA width x optimization level. */
struct Target
{
    Arch arch = Arch::X32;
    OptLevel opt = OptLevel::Unoptimized;

    bool operator==(const Target&) const = default;
};

/** The four binaries per program used throughout the paper. */
inline constexpr Target target32u{Arch::X32, OptLevel::Unoptimized};
inline constexpr Target target32o{Arch::X32, OptLevel::Optimized};
inline constexpr Target target64u{Arch::X64, OptLevel::Unoptimized};
inline constexpr Target target64o{Arch::X64, OptLevel::Optimized};

/** Short name, e.g. "32u", "64o"; used in every table. */
std::string targetName(const Target& target);

/** Kind of instrumentation anchor. */
enum class MarkerKind { ProcEntry, LoopEntry, LoopBranch };

/** Human-readable kind name. */
std::string markerKindName(MarkerKind kind);

/**
 * A static instrumentation anchor in the binary.  ProcEntry markers
 * carry the symbol name (from the symbol table); loop markers carry
 * the source line (from `-g` debug info).  line == 0 means the code
 * is compiler-generated and has no usable debug info — such markers
 * can never be mapped across binaries.
 */
struct Marker
{
    MarkerKind kind = MarkerKind::ProcEntry;
    std::string symbol;  ///< procedure name (ProcEntry only)
    u32 line = 0;        ///< source line (loops; 0 = synthetic)
    u32 procId = invalidId;  ///< owning machine procedure
};

/**
 * A machine basic block: straight-line code with `instrs`
 * instructions of which `memOps` reference memory according to
 * `pattern` (footprint already scaled for the target) and
 * `stackOps` reference the owning procedure's stack frame (spill
 * traffic, mostly L1 hits).
 */
struct MachineBlock
{
    u32 instrs = 0;
    u32 memOps = 0;
    u32 stackOps = 0;
    ir::MemPattern pattern;
    u32 sourceLine = 0;      ///< 0 when compiler-generated
    u32 procId = invalidId;  ///< owning machine procedure
};

struct MachineLoop;
struct MachineCall;

/** Reference to a machine basic block by id. */
struct BlockRef
{
    u32 blockId = invalidId;
};

/** Call to another machine procedure by id. */
struct MachineCall
{
    u32 procId = invalidId;
};

/** A statement in a machine procedure body. */
using MachineStmt = std::variant<BlockRef, MachineLoop, MachineCall>;

/**
 * A counted machine loop.  Per entry the loop fires its entry marker
 * once, then per iteration executes the body, the control block
 * (`branchBlockId`, the compare/increment/branch overhead) and the
 * back-branch marker.
 */
struct MachineLoop
{
    u32 entryMarkerId = invalidId;
    u32 branchMarkerId = invalidId;
    u32 branchBlockId = invalidId;
    u64 tripCount = 1;
    std::vector<MachineStmt> body;
};

/** A machine procedure (only emitted when it still has a symbol). */
struct MachineProc
{
    std::string name;
    u32 entryMarkerId = invalidId;
    std::vector<MachineStmt> body;
};

/** A compiled program for one target. */
/**
 * Copy-cold memo slot for expensive per-object derivations (the
 * execution engine caches its compiled trace here).  Copies and
 * moves start empty: the memo follows one object's identity, never
 * its content — content-level sharing lives in the consumer's own
 * keyed cache, which this slot merely short-circuits.  Thread-safe;
 * concurrent load/store on one Binary is allowed.
 */
class DerivedSlot
{
  public:
    DerivedSlot() = default;
    DerivedSlot(const DerivedSlot&) noexcept {}
    DerivedSlot(DerivedSlot&&) noexcept {}
    DerivedSlot& operator=(const DerivedSlot&) noexcept
    {
        return *this;
    }
    DerivedSlot& operator=(DerivedSlot&&) noexcept { return *this; }

    std::shared_ptr<const void>
    load() const
    {
        std::lock_guard<std::mutex> guard(mutex);
        return value;
    }

    void
    store(std::shared_ptr<const void> derived) const
    {
        std::lock_guard<std::mutex> guard(mutex);
        value = std::move(derived);
    }

  private:
    mutable std::mutex mutex;
    mutable std::shared_ptr<const void> value;
};

struct Binary
{
    std::string programName;
    Target target;
    std::vector<MachineProc> procs;
    std::vector<MachineBlock> blocks;
    std::vector<Marker> markers;
    u32 entryProcId = invalidId;

    /**
     * Per-object derivation memo (not part of the binary's content:
     * never hashed, serialized or compared; copies start cold).
     */
    DerivedSlot derived;

    /** Number of static basic blocks (the BBV dimension). */
    u32 blockCount() const { return static_cast<u32>(blocks.size()); }

    /** Number of static markers. */
    u32 markerCount() const { return static_cast<u32>(markers.size()); }

    /** Find a procedure id by symbol name; invalidId when absent. */
    u32 findProc(const std::string& name) const;

    /** Full display name, e.g. "gcc/64o". */
    std::string displayName() const;
};

/**
 * Structural sanity checks on a compiled binary: ids in range, entry
 * exists, loop control blocks present, marker back-references
 * consistent.  panic()s on violation (compiler bugs, not user error).
 */
void checkBinary(const Binary& binary);

/** Statically computed dynamic instruction count of one execution. */
InstrCount staticDynamicInstrCount(const Binary& binary);

/** Human-readable listing (for debugging and the docs). */
std::string describe(const Binary& binary);

} // namespace xbsp::bin

#endif // XBSP_BINARY_BINARY_HH
