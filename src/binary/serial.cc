#include "binary/serial.hh"

#include "ir/serial.hh"

namespace xbsp::bin
{

namespace
{

constexpr u64 kindBlockRef = 1;
constexpr u64 kindLoop = 2;
constexpr u64 kindCall = 3;

void
encodePattern(serial::Encoder& e, const ir::MemPattern& p)
{
    e.varint(static_cast<u64>(p.kind));
    e.varint(p.regionId);
    e.varint(p.workingSet);
    e.varint(p.stride);
    e.f64(p.writeFraction);
    e.f64(p.pointerScale);
    e.f64(p.hotFraction);
    e.varint(p.driftPeriod);
    e.f64(p.driftAmp);
}

ir::MemPattern
decodePattern(serial::Decoder& d)
{
    ir::MemPattern p;
    const u64 kind = d.varint();
    if (kind > static_cast<u64>(ir::MemPatternKind::Gather))
        throw serial::DecodeError("bad MemPatternKind");
    p.kind = static_cast<ir::MemPatternKind>(kind);
    p.regionId = static_cast<u32>(d.varint());
    p.workingSet = d.varint();
    p.stride = d.varint();
    p.writeFraction = d.f64();
    p.pointerScale = d.f64();
    p.hotFraction = d.f64();
    p.driftPeriod = static_cast<u32>(d.varint());
    p.driftAmp = d.f64();
    return p;
}

void
encodeStmts(serial::Encoder& e, const std::vector<MachineStmt>& body)
{
    e.varint(body.size());
    for (const MachineStmt& stmt : body) {
        if (const auto* ref = std::get_if<BlockRef>(&stmt)) {
            e.varint(kindBlockRef);
            e.varint(ref->blockId);
        } else if (const auto* loop = std::get_if<MachineLoop>(&stmt)) {
            e.varint(kindLoop);
            e.varint(loop->entryMarkerId);
            e.varint(loop->branchMarkerId);
            e.varint(loop->branchBlockId);
            e.varint(loop->tripCount);
            encodeStmts(e, loop->body);
        } else {
            e.varint(kindCall);
            e.varint(std::get<MachineCall>(stmt).procId);
        }
    }
}

std::vector<MachineStmt>
decodeStmts(serial::Decoder& d)
{
    const u64 n = d.arrayCount(2);
    std::vector<MachineStmt> body;
    body.reserve(static_cast<std::size_t>(n));
    for (u64 i = 0; i < n; ++i) {
        switch (d.varint()) {
        case kindBlockRef: {
            BlockRef ref;
            ref.blockId = static_cast<u32>(d.varint());
            body.push_back(ref);
            break;
        }
        case kindLoop: {
            MachineLoop loop;
            loop.entryMarkerId = static_cast<u32>(d.varint());
            loop.branchMarkerId = static_cast<u32>(d.varint());
            loop.branchBlockId = static_cast<u32>(d.varint());
            loop.tripCount = d.varint();
            loop.body = decodeStmts(d);
            body.push_back(std::move(loop));
            break;
        }
        case kindCall: {
            MachineCall call;
            call.procId = static_cast<u32>(d.varint());
            body.push_back(call);
            break;
        }
        default:
            throw serial::DecodeError("bad MachineStmt kind");
        }
    }
    return body;
}

} // namespace

void
encodeBinary(serial::Encoder& e, const Binary& binary)
{
    e.str(binary.programName);
    e.varint(static_cast<u64>(binary.target.arch));
    e.varint(static_cast<u64>(binary.target.opt));
    e.varint(binary.entryProcId);

    e.varint(binary.procs.size());
    for (const MachineProc& proc : binary.procs) {
        e.str(proc.name);
        e.varint(proc.entryMarkerId);
        encodeStmts(e, proc.body);
    }

    e.varint(binary.blocks.size());
    for (const MachineBlock& block : binary.blocks) {
        e.varint(block.instrs);
        e.varint(block.memOps);
        e.varint(block.stackOps);
        encodePattern(e, block.pattern);
        e.varint(block.sourceLine);
        e.varint(block.procId);
    }

    e.varint(binary.markers.size());
    for (const Marker& marker : binary.markers) {
        e.varint(static_cast<u64>(marker.kind));
        e.str(marker.symbol);
        e.varint(marker.line);
        e.varint(marker.procId);
    }
}

Binary
decodeBinary(serial::Decoder& d)
{
    Binary binary;
    binary.programName = d.str();
    const u64 arch = d.varint();
    if (arch > static_cast<u64>(Arch::X64))
        throw serial::DecodeError("bad Arch");
    binary.target.arch = static_cast<Arch>(arch);
    const u64 opt = d.varint();
    if (opt > static_cast<u64>(OptLevel::Optimized))
        throw serial::DecodeError("bad OptLevel");
    binary.target.opt = static_cast<OptLevel>(opt);
    binary.entryProcId = static_cast<u32>(d.varint());

    const u64 procs = d.arrayCount(3);
    binary.procs.reserve(static_cast<std::size_t>(procs));
    for (u64 i = 0; i < procs; ++i) {
        MachineProc proc;
        proc.name = d.str();
        proc.entryMarkerId = static_cast<u32>(d.varint());
        proc.body = decodeStmts(d);
        binary.procs.push_back(std::move(proc));
    }

    const u64 blocks = d.arrayCount(6);
    binary.blocks.reserve(static_cast<std::size_t>(blocks));
    for (u64 i = 0; i < blocks; ++i) {
        MachineBlock block;
        block.instrs = static_cast<u32>(d.varint());
        block.memOps = static_cast<u32>(d.varint());
        block.stackOps = static_cast<u32>(d.varint());
        block.pattern = decodePattern(d);
        block.sourceLine = static_cast<u32>(d.varint());
        block.procId = static_cast<u32>(d.varint());
        binary.blocks.push_back(block);
    }

    const u64 markers = d.arrayCount(4);
    binary.markers.reserve(static_cast<std::size_t>(markers));
    for (u64 i = 0; i < markers; ++i) {
        Marker marker;
        const u64 kind = d.varint();
        if (kind > static_cast<u64>(MarkerKind::LoopBranch))
            throw serial::DecodeError("bad MarkerKind");
        marker.kind = static_cast<MarkerKind>(kind);
        marker.symbol = d.str();
        marker.line = static_cast<u32>(d.varint());
        marker.procId = static_cast<u32>(d.varint());
        binary.markers.push_back(std::move(marker));
    }
    return binary;
}

void
hashTarget(serial::Hasher& h, const Target& target)
{
    h.u64v(static_cast<u64>(target.arch));
    h.u64v(static_cast<u64>(target.opt));
}

void
hashBinary(serial::Hasher& h, const Binary& binary)
{
    serial::Encoder e;
    encodeBinary(e, binary);
    h.str(e.view());
}

} // namespace xbsp::bin
