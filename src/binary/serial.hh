/**
 * @file
 * Binary codec for the artifact store: encode/decode a compiled
 * bin::Binary bit-exactly, plus content hashing of binaries and
 * targets for downstream stage keys (profiling, VLI construction,
 * detailed simulation are all keyed by the binary they run).
 */

#ifndef XBSP_BINARY_SERIAL_HH
#define XBSP_BINARY_SERIAL_HH

#include "binary/binary.hh"
#include "util/serial.hh"

namespace xbsp::bin
{

/** Append a full binary to `e` (see BinaryCodec for the inverse). */
void encodeBinary(serial::Encoder& e, const Binary& binary);

/** Decode one binary; throws serial::DecodeError on malformed input. */
Binary decodeBinary(serial::Decoder& d);

/** Fold a target's identity (arch x opt level) into `h`. */
void hashTarget(serial::Hasher& h, const Target& target);

/**
 * Fold a binary's full content into `h` by folding its canonical
 * encoding, so the hash and the codec can never disagree about what
 * constitutes the binary's identity.
 */
void hashBinary(serial::Hasher& h, const Binary& binary);

/** Artifact-store codec for compile outputs. */
struct BinaryCodec
{
    using Value = Binary;
    static constexpr u32 tag = serial::fourcc("BINV");
    static constexpr u32 version = 1;

    static void
    encode(serial::Encoder& e, const Binary& binary)
    {
        encodeBinary(e, binary);
    }

    static Binary
    decode(serial::Decoder& d)
    {
        return decodeBinary(d);
    }
};

} // namespace xbsp::bin

#endif // XBSP_BINARY_SERIAL_HH
