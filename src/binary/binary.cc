#include "binary/binary.hh"

#include "util/format.hh"
#include <sstream>

#include "util/logging.hh"

namespace xbsp::bin
{

std::string
targetName(const Target& target)
{
    std::string name = target.arch == Arch::X32 ? "32" : "64";
    name += target.opt == OptLevel::Unoptimized ? "u" : "o";
    return name;
}

std::string
markerKindName(MarkerKind kind)
{
    switch (kind) {
      case MarkerKind::ProcEntry:
        return "proc-entry";
      case MarkerKind::LoopEntry:
        return "loop-entry";
      case MarkerKind::LoopBranch:
        return "loop-branch";
    }
    panic("unknown MarkerKind {}", static_cast<int>(kind));
}

u32
Binary::findProc(const std::string& name) const
{
    for (u32 i = 0; i < procs.size(); ++i) {
        if (procs[i].name == name)
            return i;
    }
    return invalidId;
}

std::string
Binary::displayName() const
{
    return programName + "/" + targetName(target);
}

namespace
{

struct Checker
{
    const Binary& binary;

    void
    checkBlockId(u32 id) const
    {
        if (id >= binary.blocks.size())
            panic("binary {}: block id {} out of range",
                  binary.displayName(), id);
    }

    void
    checkMarkerId(u32 id, MarkerKind kind, u32 procId) const
    {
        if (id >= binary.markers.size())
            panic("binary {}: marker id {} out of range",
                  binary.displayName(), id);
        const Marker& m = binary.markers[id];
        if (m.kind != kind)
            panic("binary {}: marker {} has kind {}, expected {}",
                  binary.displayName(), id, markerKindName(m.kind),
                  markerKindName(kind));
        if (m.procId != procId)
            panic("binary {}: marker {} owned by proc {}, referenced "
                  "from proc {}", binary.displayName(), id, m.procId,
                  procId);
    }

    void
    checkStmts(const std::vector<MachineStmt>& stmts, u32 procId) const
    {
        for (const auto& stmt : stmts) {
            if (const auto* ref = std::get_if<BlockRef>(&stmt)) {
                checkBlockId(ref->blockId);
                if (binary.blocks[ref->blockId].procId != procId)
                    panic("binary {}: block {} referenced outside its "
                          "procedure", binary.displayName(),
                          ref->blockId);
            } else if (const auto* loop =
                           std::get_if<MachineLoop>(&stmt)) {
                checkMarkerId(loop->entryMarkerId, MarkerKind::LoopEntry,
                              procId);
                checkMarkerId(loop->branchMarkerId,
                              MarkerKind::LoopBranch, procId);
                checkBlockId(loop->branchBlockId);
                if (loop->tripCount == 0)
                    panic("binary {}: loop with trip count 0",
                          binary.displayName());
                checkStmts(loop->body, procId);
            } else if (const auto* call =
                           std::get_if<MachineCall>(&stmt)) {
                if (call->procId >= binary.procs.size())
                    panic("binary {}: call to proc id {} out of range",
                          binary.displayName(), call->procId);
            }
        }
    }
};

InstrCount
stmtInstrs(const Binary& binary, const std::vector<MachineStmt>& stmts);

InstrCount
procInstrs(const Binary& binary, u32 procId)
{
    return stmtInstrs(binary, binary.procs[procId].body);
}

InstrCount
stmtInstrs(const Binary& binary, const std::vector<MachineStmt>& stmts)
{
    InstrCount total = 0;
    for (const auto& stmt : stmts) {
        if (const auto* ref = std::get_if<BlockRef>(&stmt)) {
            total += binary.blocks[ref->blockId].instrs;
        } else if (const auto* loop = std::get_if<MachineLoop>(&stmt)) {
            InstrCount body = stmtInstrs(binary, loop->body) +
                              binary.blocks[loop->branchBlockId].instrs;
            total += loop->tripCount * body;
        } else if (const auto* call = std::get_if<MachineCall>(&stmt)) {
            total += procInstrs(binary, call->procId);
        }
    }
    return total;
}

void
describeStmts(const Binary& binary,
              const std::vector<MachineStmt>& stmts, int depth,
              std::ostringstream& os)
{
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    for (const auto& stmt : stmts) {
        if (const auto* ref = std::get_if<BlockRef>(&stmt)) {
            const MachineBlock& blk = binary.blocks[ref->blockId];
            os << indent
               << xbsp::format("block b{} instrs={} mem={} stack={} "
                              "line={}\n", ref->blockId, blk.instrs,
                              blk.memOps, blk.stackOps, blk.sourceLine);
        } else if (const auto* loop = std::get_if<MachineLoop>(&stmt)) {
            const Marker& entry = binary.markers[loop->entryMarkerId];
            os << indent
               << xbsp::format("loop trips={} line={} entryMk=m{} "
                              "branchMk=m{}\n", loop->tripCount,
                              entry.line, loop->entryMarkerId,
                              loop->branchMarkerId);
            describeStmts(binary, loop->body, depth + 1, os);
        } else if (const auto* call = std::get_if<MachineCall>(&stmt)) {
            os << indent
               << xbsp::format("call {}\n",
                              binary.procs[call->procId].name);
        }
    }
}

} // namespace

void
checkBinary(const Binary& binary)
{
    if (binary.entryProcId >= binary.procs.size())
        panic("binary {}: entry proc id {} out of range",
              binary.displayName(), binary.entryProcId);
    Checker checker{binary};
    for (u32 p = 0; p < binary.procs.size(); ++p) {
        const MachineProc& proc = binary.procs[p];
        checker.checkMarkerId(proc.entryMarkerId, MarkerKind::ProcEntry,
                              p);
        checker.checkStmts(proc.body, p);
    }
    for (u32 m = 0; m < binary.markers.size(); ++m) {
        const Marker& marker = binary.markers[m];
        if (marker.procId >= binary.procs.size())
            panic("binary {}: marker {} owner out of range",
                  binary.displayName(), m);
        if (marker.kind == MarkerKind::ProcEntry &&
            marker.symbol.empty()) {
            panic("binary {}: proc-entry marker {} has no symbol",
                  binary.displayName(), m);
        }
    }
}

InstrCount
staticDynamicInstrCount(const Binary& binary)
{
    return procInstrs(binary, binary.entryProcId);
}

std::string
describe(const Binary& binary)
{
    std::ostringstream os;
    os << "binary " << binary.displayName() << ": "
       << binary.procs.size() << " procs, " << binary.blocks.size()
       << " blocks, " << binary.markers.size() << " markers\n";
    for (u32 p = 0; p < binary.procs.size(); ++p) {
        const MachineProc& proc = binary.procs[p];
        os << xbsp::format("proc {} (id {}, entryMk=m{})\n", proc.name,
                          p, proc.entryMarkerId);
        describeStmts(binary, proc.body, 1, os);
    }
    return os.str();
}

} // namespace xbsp::bin
