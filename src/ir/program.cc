#include "ir/program.hh"

#include <map>
#include <set>

#include "util/logging.hh"

namespace xbsp::ir
{

MemPattern
withDrift(MemPattern pattern, u32 period, double amp)
{
    pattern.driftPeriod = period;
    pattern.driftAmp = amp;
    return pattern;
}

const Procedure*
Program::findProcedure(const std::string& n) const
{
    for (const auto& proc : procedures) {
        if (proc.name == n)
            return &proc;
    }
    return nullptr;
}

namespace
{

/** DFS colour for cycle detection. */
enum class Colour { White, Grey, Black };

struct Validator
{
    const Program& program;
    std::set<u32> lines;
    std::map<std::string, Colour> colour;

    explicit Validator(const Program& p) : program(p) {}

    void
    checkLine(u32 line, const std::string& what)
    {
        if (line == 0)
            fatal("program '{}': {} has line 0 (reserved for "
                  "compiler-generated code)", program.name, what);
        if (!lines.insert(line).second)
            fatal("program '{}': duplicate source line {}",
                  program.name, line);
    }

    void
    visitStmts(const std::vector<Stmt>& stmts)
    {
        for (const auto& stmt : stmts) {
            if (const auto* blk = std::get_if<Block>(&stmt)) {
                checkLine(blk->line, "block");
                if (blk->instrs == 0)
                    fatal("program '{}': block at line {} has 0 "
                          "instructions", program.name, blk->line);
                if (blk->memOps > blk->instrs)
                    fatal("program '{}': block at line {} has more "
                          "memOps ({}) than instrs ({})", program.name,
                          blk->line, blk->memOps, blk->instrs);
                if (blk->memOps > 0 &&
                    blk->pattern.kind == MemPatternKind::None) {
                    fatal("program '{}': block at line {} has memOps "
                          "but no memory pattern", program.name,
                          blk->line);
                }
                if (blk->pattern.kind != MemPatternKind::None &&
                    blk->pattern.workingSet == 0) {
                    fatal("program '{}': block at line {} has an "
                          "empty working set", program.name, blk->line);
                }
            } else if (const auto* loop = std::get_if<Loop>(&stmt)) {
                checkLine(loop->line, "loop");
                if (loop->tripCount == 0)
                    fatal("program '{}': loop at line {} has trip "
                          "count 0", program.name, loop->line);
                visitStmts(loop->body);
            } else if (const auto* call = std::get_if<Call>(&stmt)) {
                checkLine(call->line, "call");
                visitProc(call->callee);
            }
        }
    }

    void
    visitProc(const std::string& name)
    {
        const Procedure* proc = program.findProcedure(name);
        if (!proc)
            fatal("program '{}': call to undefined procedure '{}'",
                  program.name, name);
        auto it = colour.find(name);
        if (it != colour.end()) {
            if (it->second == Colour::Grey)
                fatal("program '{}': recursive call cycle through "
                      "'{}'", program.name, name);
            return; // already validated
        }
        colour[name] = Colour::Grey;
        visitStmts(proc->body);
        colour[name] = Colour::Black;
    }
};

InstrCount
countStmts(const Program& program, const std::vector<Stmt>& stmts);

InstrCount
countProc(const Program& program, const std::string& name)
{
    const Procedure* proc = program.findProcedure(name);
    if (!proc)
        fatal("program '{}': call to undefined procedure '{}'",
              program.name, name);
    return countStmts(program, proc->body);
}

InstrCount
countStmts(const Program& program, const std::vector<Stmt>& stmts)
{
    InstrCount total = 0;
    for (const auto& stmt : stmts) {
        if (const auto* blk = std::get_if<Block>(&stmt)) {
            total += blk->instrs;
        } else if (const auto* loop = std::get_if<Loop>(&stmt)) {
            total += loop->tripCount * countStmts(program, loop->body);
        } else if (const auto* call = std::get_if<Call>(&stmt)) {
            total += countProc(program, call->callee);
        }
    }
    return total;
}

} // namespace

void
validate(const Program& program)
{
    if (program.procedures.empty())
        fatal("program '{}' has no procedures", program.name);
    if (!program.findProcedure(program.entry))
        fatal("program '{}' has no entry procedure '{}'",
              program.name, program.entry);
    std::set<std::string> names;
    for (const auto& proc : program.procedures) {
        if (!names.insert(proc.name).second)
            fatal("program '{}': duplicate procedure '{}'",
                  program.name, proc.name);
    }
    Validator v(program);
    v.visitProc(program.entry);
}

InstrCount
sourceInstructionCount(const Program& program)
{
    return countProc(program, program.entry);
}

} // namespace xbsp::ir
