/**
 * @file
 * Content hashing of the source-level IR.  The fold visits every
 * semantic field (names, trip counts, memory patterns, statement
 * structure) so two programs hash alike only when the compiler would
 * treat them identically — this is the "workload" half of the
 * compile-stage cache key.
 */

#ifndef XBSP_IR_SERIAL_HH
#define XBSP_IR_SERIAL_HH

#include "ir/program.hh"
#include "util/serial.hh"

namespace xbsp::ir
{

/** Fold one memory pattern into `h`. */
void hashMemPattern(serial::Hasher& h, const MemPattern& pattern);

/** Fold a whole program (structure + all semantic fields) into `h`. */
void hashProgram(serial::Hasher& h, const Program& program);

} // namespace xbsp::ir

#endif // XBSP_IR_SERIAL_HH
