#include "ir/serial.hh"

namespace xbsp::ir
{

namespace
{

// Statement-kind discriminants folded ahead of each variant so that
// e.g. a Block followed by a Loop can never alias a different
// statement sequence with the same field values.
constexpr u64 kindBlock = 1;
constexpr u64 kindLoop = 2;
constexpr u64 kindCall = 3;

void
hashStmts(serial::Hasher& h, const std::vector<Stmt>& body)
{
    h.u64v(body.size());
    for (const Stmt& stmt : body) {
        if (const auto* block = std::get_if<Block>(&stmt)) {
            h.u64v(kindBlock);
            h.u32v(block->line);
            h.u32v(block->instrs);
            h.u32v(block->memOps);
            hashMemPattern(h, block->pattern);
        } else if (const auto* loop = std::get_if<Loop>(&stmt)) {
            h.u64v(kindLoop);
            h.u32v(loop->line);
            h.u64v(loop->tripCount);
            h.boolean(loop->unrollable);
            h.boolean(loop->splittable);
            hashStmts(h, loop->body);
        } else {
            const auto& call = std::get<Call>(stmt);
            h.u64v(kindCall);
            h.u32v(call.line);
            h.str(call.callee);
        }
    }
}

} // namespace

void
hashMemPattern(serial::Hasher& h, const MemPattern& pattern)
{
    h.u64v(static_cast<u64>(pattern.kind));
    h.u32v(pattern.regionId);
    h.u64v(pattern.workingSet);
    h.u64v(pattern.stride);
    h.f64(pattern.writeFraction);
    h.f64(pattern.pointerScale);
    h.f64(pattern.hotFraction);
    h.u32v(pattern.driftPeriod);
    h.f64(pattern.driftAmp);
}

void
hashProgram(serial::Hasher& h, const Program& program)
{
    h.str(program.name);
    h.str(program.entry);
    h.u64v(program.procedures.size());
    for (const Procedure& proc : program.procedures) {
        h.str(proc.name);
        h.u64v(static_cast<u64>(proc.inlineHint));
        hashStmts(h, proc.body);
    }
}

} // namespace xbsp::ir
