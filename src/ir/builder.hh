/**
 * @file
 * Fluent builder for ir::Program.
 *
 * Workload definitions use this DSL so that source line numbers are
 * assigned automatically (unique, increasing) and nesting mirrors the
 * lexical structure of the modelled program:
 *
 *     ProgramBuilder b("swim");
 *     b.procedure("calc1").loop(500, [&](StmtSeq& s) {
 *         s.block(40, 12, stridePattern(1, 2_MiB, 64));
 *     });
 *     ir::Program p = b.build();
 */

#ifndef XBSP_IR_BUILDER_HH
#define XBSP_IR_BUILDER_HH

#include <functional>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace xbsp::ir
{

/** Byte-size literal helpers for working-set sizes. */
constexpr u64 operator""_KiB(unsigned long long v) { return v << 10; }
constexpr u64 operator""_MiB(unsigned long long v) { return v << 20; }

/** Convenience constructors for the common memory patterns. */
MemPattern stridePattern(u32 region, u64 workingSet, u64 stride = 64,
                         double writeFraction = 0.2,
                         double pointerScale = 0.0);
MemPattern randomPattern(u32 region, u64 workingSet,
                         double writeFraction = 0.1,
                         double pointerScale = 0.0);
MemPattern chasePattern(u32 region, u64 workingSet,
                        double pointerScale = 1.0);
MemPattern gatherPattern(u32 region, u64 workingSet,
                         double hotFraction = 0.9,
                         double writeFraction = 0.1,
                         double pointerScale = 0.3);

/** Per-loop optimizer hints, see ir::Loop. */
struct LoopOpts
{
    bool unrollable = false;
    bool splittable = false;
};

/**
 * Appends statements to one body (a procedure body or a loop body).
 * All mutators return *this for chaining; loop() takes a callback
 * that receives a StmtSeq for the loop body.
 */
class StmtSeq
{
  public:
    StmtSeq(std::vector<Stmt>& target, u32& lineCounter);

    /** Straight-line block with `memOps` references per execution. */
    StmtSeq& block(u32 instrs, u32 memOps,
                   const MemPattern& pattern = MemPattern{});

    /** Pure-compute block (no memory references). */
    StmtSeq& compute(u32 instrs);

    /** Counted loop; `body` populates the loop body. */
    StmtSeq& loop(u64 tripCount,
                  const std::function<void(StmtSeq&)>& body,
                  const LoopOpts& opts = LoopOpts{});

    /** Call another procedure by name. */
    StmtSeq& call(const std::string& callee);

  private:
    std::vector<Stmt>& stmts;
    u32& nextLine;
};

/** Builds one ir::Program with automatically assigned line numbers. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /**
     * Declare a procedure and return a StmtSeq for its body.  The
     * returned StmtSeq stays valid until build(); procedures may be
     * declared in any order relative to the calls that target them.
     */
    StmtSeq procedure(const std::string& name,
                      InlineHint hint = InlineHint::Never);

    /** Finish: validates and returns the program. */
    Program build();

  private:
    Program prog;
    u32 nextLine = 1;
};

} // namespace xbsp::ir

#endif // XBSP_IR_BUILDER_HH
