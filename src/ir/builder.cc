#include "ir/builder.hh"

#include "util/logging.hh"

namespace xbsp::ir
{

MemPattern
stridePattern(u32 region, u64 workingSet, u64 stride,
              double writeFraction, double pointerScale)
{
    MemPattern p;
    p.kind = MemPatternKind::Stride;
    p.regionId = region;
    p.workingSet = workingSet;
    p.stride = stride;
    p.writeFraction = writeFraction;
    p.pointerScale = pointerScale;
    return p;
}

MemPattern
randomPattern(u32 region, u64 workingSet, double writeFraction,
              double pointerScale)
{
    MemPattern p;
    p.kind = MemPatternKind::RandomInSet;
    p.regionId = region;
    p.workingSet = workingSet;
    p.writeFraction = writeFraction;
    p.pointerScale = pointerScale;
    return p;
}

MemPattern
chasePattern(u32 region, u64 workingSet, double pointerScale)
{
    MemPattern p;
    p.kind = MemPatternKind::PointerChase;
    p.regionId = region;
    p.workingSet = workingSet;
    p.writeFraction = 0.0;
    p.pointerScale = pointerScale;
    return p;
}

MemPattern
gatherPattern(u32 region, u64 workingSet, double hotFraction,
              double writeFraction, double pointerScale)
{
    MemPattern p;
    p.kind = MemPatternKind::Gather;
    p.regionId = region;
    p.workingSet = workingSet;
    p.writeFraction = writeFraction;
    p.pointerScale = pointerScale;
    p.hotFraction = hotFraction;
    return p;
}

StmtSeq::StmtSeq(std::vector<Stmt>& target, u32& lineCounter)
    : stmts(target), nextLine(lineCounter)
{
}

StmtSeq&
StmtSeq::block(u32 instrs, u32 memOps, const MemPattern& pattern)
{
    Block blk;
    blk.line = nextLine++;
    blk.instrs = instrs;
    blk.memOps = memOps;
    blk.pattern = pattern;
    stmts.emplace_back(std::move(blk));
    return *this;
}

StmtSeq&
StmtSeq::compute(u32 instrs)
{
    return block(instrs, 0);
}

StmtSeq&
StmtSeq::loop(u64 tripCount, const std::function<void(StmtSeq&)>& body,
              const LoopOpts& opts)
{
    Loop lp;
    lp.line = nextLine++;
    lp.tripCount = tripCount;
    lp.unrollable = opts.unrollable;
    lp.splittable = opts.splittable;
    StmtSeq inner(lp.body, nextLine);
    body(inner);
    stmts.emplace_back(std::move(lp));
    return *this;
}

StmtSeq&
StmtSeq::call(const std::string& callee)
{
    Call c;
    c.line = nextLine++;
    c.callee = callee;
    stmts.emplace_back(std::move(c));
    return *this;
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog.name = std::move(name);
}

StmtSeq
ProgramBuilder::procedure(const std::string& name, InlineHint hint)
{
    for (const auto& proc : prog.procedures) {
        if (proc.name == name)
            fatal("program '{}': procedure '{}' declared twice",
                  prog.name, name);
    }
    // Reserve generously so the backing vector never reallocates under
    // outstanding StmtSeq references; workloads are far below this.
    if (prog.procedures.capacity() == 0)
        prog.procedures.reserve(256);
    if (prog.procedures.size() == prog.procedures.capacity())
        fatal("program '{}': too many procedures for the builder",
              prog.name);
    prog.procedures.emplace_back();
    Procedure& proc = prog.procedures.back();
    proc.name = name;
    proc.inlineHint = hint;
    return StmtSeq(proc.body, nextLine);
}

Program
ProgramBuilder::build()
{
    validate(prog);
    return std::move(prog);
}

} // namespace xbsp::ir
