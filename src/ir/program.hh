/**
 * @file
 * Source-level program IR.
 *
 * Workloads are written against this IR: a program is a set of
 * procedures; a procedure body is a sequence of statements; statements
 * are straight-line blocks (with an instruction mix and a memory
 * access pattern), counted loops, or calls.  Loop trip counts and call
 * structure are *semantic*: every binary compiled from the same
 * program executes loops and procedures the same number of times,
 * which is the ground truth the cross-binary marker matcher relies on.
 *
 * Line numbers model source debug info.  The builder assigns each
 * statement a unique line; the compiler propagates lines into machine
 * markers exactly the way `-g` debug info survives real compilation.
 */

#ifndef XBSP_IR_PROGRAM_HH
#define XBSP_IR_PROGRAM_HH

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/types.hh"

namespace xbsp::ir
{

/** How a block's memory references walk their data region. */
enum class MemPatternKind
{
    None,         ///< no memory references
    Stride,       ///< sequential walk with a fixed byte stride
    RandomInSet,  ///< uniform random references within the working set
    PointerChase, ///< dependent chain through a pseudo-random cycle
    Gather        ///< hot/cold mix: mostly-hot references with a
                  ///< random cold tail (models indexed gathers)
};

/**
 * Memory behaviour of one block.  `workingSet` is the footprint in
 * bytes at 32-bit compilation; `pointerScale` in [0,1] says how much
 * of the footprint is pointer-sized data, so 64-bit compilation grows
 * the footprint by up to 2x (matching larger pointers on Intel64).
 */
struct MemPattern
{
    MemPatternKind kind = MemPatternKind::None;
    u32 regionId = 0;        ///< logical data region identifier
    u64 workingSet = 0;      ///< bytes touched (32-bit footprint)
    u64 stride = 8;          ///< byte stride for Stride patterns
    double writeFraction = 0.0;  ///< fraction of refs that store
    double pointerScale = 0.0;   ///< footprint growth on 64-bit
    double hotFraction = 0.9;    ///< Gather: fraction of refs to the
                                 ///< hot subset (1/8 of workingSet)

    /**
     * Within-phase behaviour drift: every `driftPeriod` executions of
     * the owning block, the effective working set (and, for gathers,
     * the hot fraction) shifts through a fixed cycle of levels with
     * amplitude `driftAmp`.  Drift is keyed to the block's *semantic*
     * execution count, so all binaries see (approximately) the same
     * data behaviour at the same point of execution — the "same code,
     * different behaviour over time" effect that makes a single
     * simulation point per phase an imperfect (biased) estimator,
     * which the paper's consistency argument is all about.
     */
    u32 driftPeriod = 0;     ///< block executions per level step
    double driftAmp = 0.0;   ///< relative working-set swing (0..1)
};

/** Attach drift to a pattern (builder convenience). */
MemPattern withDrift(MemPattern pattern, u32 period, double amp);

/** Straight-line code: `instrs` work units, `memOps` of them memory. */
struct Block
{
    u32 line = 0;        ///< source line (assigned by the builder)
    u32 instrs = 0;      ///< source-level instruction count
    u32 memOps = 0;      ///< memory references among those
    MemPattern pattern;  ///< where the references go
};

struct Loop;
struct Call;

/** A statement is a block, a loop, or a call. */
using Stmt = std::variant<Block, Loop, Call>;

/**
 * Counted loop.  The trip count is the number of body executions per
 * loop entry and is identical across all compilations.  The hint
 * flags let the model optimizer transform this loop the way a real
 * optimizer would, which is what makes markers unmappable.
 */
struct Loop
{
    u32 line = 0;         ///< line of the loop branch / entry
    u64 tripCount = 1;    ///< body executions per entry
    bool unrollable = false;  ///< optimizer may unroll (factor 4)
    bool splittable = false;  ///< optimizer may split into two loops
    std::vector<Stmt> body;
};

/** Call to another procedure in the same program. */
struct Call
{
    u32 line = 0;
    std::string callee;
};

/** How eagerly the optimizer may inline a procedure. */
enum class InlineHint
{
    Never,   ///< never inlined
    Always,  ///< inlined at every call site under -O2
    Partial  ///< inlined at alternating call sites under -O2
             ///< (entry counts then differ across binaries)
};

/** A named procedure. */
struct Procedure
{
    std::string name;
    InlineHint inlineHint = InlineHint::Never;
    std::vector<Stmt> body;
};

/** A whole program: procedures plus the entry procedure's name. */
struct Program
{
    std::string name;
    std::string entry = "main";
    std::vector<Procedure> procedures;

    /** Find a procedure by name; nullptr when absent. */
    const Procedure* findProcedure(const std::string& n) const;
};

/**
 * Validate structural invariants: entry exists, all calls resolve,
 * the call graph is acyclic, line numbers are unique and non-zero,
 * trip counts are non-zero, and block instruction counts are sane.
 * Calls fatal() with a diagnostic on violation.
 */
void validate(const Program& program);

/** Total source-level instructions for one full execution. */
InstrCount sourceInstructionCount(const Program& program);

} // namespace xbsp::ir

#endif // XBSP_IR_PROGRAM_HH
