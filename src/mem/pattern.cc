#include "mem/pattern.hh"

#include "util/logging.hh"

namespace xbsp::mem
{

Addr
regionBase(u32 regionId)
{
    // Regions are 4 GiB apart; region ids are user-chosen small ints.
    return (static_cast<Addr>(regionId) + 1) << 32;
}

Addr
stackBase(u32 procId)
{
    // High half of the address space, one 4 GiB window per procedure.
    return (1ull << 63) | (static_cast<Addr>(procId) << 32);
}

u64
ceilPow2(u64 v)
{
    u64 p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

AddressGenerator::AddressGenerator(const ir::MemPattern& pattern,
                                   u64 seed)
    : kind(pattern.kind), base(regionBase(pattern.regionId)),
      writeFraction(pattern.writeFraction),
      hotFraction(pattern.hotFraction), rng(hashMix(seed)),
      driftPeriod(pattern.driftPeriod), driftAmp(pattern.driftAmp)
{
    switch (kind) {
      case ir::MemPatternKind::None:
        break;
      case ir::MemPatternKind::Stride:
        stride = std::max<u64>(1, pattern.stride);
        slots = std::max<u64>(1, pattern.workingSet / stride);
        break;
      case ir::MemPatternKind::RandomInSet:
      case ir::MemPatternKind::Gather:
        slots = std::max<u64>(1, pattern.workingSet / lineBytes);
        hotSlots = std::max<u64>(1, slots / 8);
        break;
      case ir::MemPatternKind::PointerChase:
        slots = ceilPow2(
            std::max<u64>(2, pattern.workingSet / lineBytes));
        chaseMask = slots - 1;
        cursor = rng.next() & chaseMask;
        break;
    }
    effSlots = slots;
    effHotSlots = hotSlots;
    effChaseMask = chaseMask;
    effHotFraction = hotFraction;
    rebuildDraws();
}

void
AddressGenerator::rebuildDraws()
{
    slotDraw = BoundedBelow(effSlots);
    hotDraw = BoundedBelow(effHotSlots);
}

void
AddressGenerator::applyDriftLevel()
{
    // A fixed four-level cycle: nominal, grown, shrunk, mildly grown.
    // Keyed to the semantic execution index so every binary sees the
    // same data behaviour at the same point of execution.
    static constexpr double levelScale[4] = {0.0, 1.0, -0.6, 0.4};
    const u64 level = (execIndex / driftPeriod) % 4;
    const double factor = 1.0 + driftAmp * levelScale[level];

    effSlots = std::max<u64>(
        1, static_cast<u64>(static_cast<double>(slots) * factor));
    effHotSlots = std::max<u64>(
        1, static_cast<u64>(static_cast<double>(hotSlots) * factor));
    // Gathers also spill more references to the cold set when the
    // footprint grows.
    effHotFraction = hotFraction - 0.12 * driftAmp * levelScale[level];
    effHotFraction = std::min(1.0, std::max(0.4, effHotFraction));
    // Pointer chases halve their cycle in the shrunk level.
    effChaseMask = factor < 1.0 ? (chaseMask >> 1) : chaseMask;
    if (effChaseMask == 0)
        effChaseMask = chaseMask;
    rebuildDraws();
}

void
AddressGenerator::beginBlock()
{
    if (driftPeriod == 0)
        return;
    if (execIndex % driftPeriod == 0)
        applyDriftLevel();
    ++execIndex;
    if (kind == ir::MemPatternKind::Stride && cursor >= effSlots)
        cursor = 0;
}

bool
AddressGenerator::drawWrite()
{
    // Deterministic fraction without per-ref RNG: accumulate and emit
    // a write each time the accumulator crosses 1.
    writeAccum += writeFraction;
    if (writeAccum >= 1.0) {
        writeAccum -= 1.0;
        return true;
    }
    return false;
}

MemRef
AddressGenerator::next()
{
    MemRef ref;
    ref.isWrite = drawWrite();
    switch (kind) {
      case ir::MemPatternKind::None:
        panic("AddressGenerator::next on a block without memory ops");
      case ir::MemPatternKind::Stride:
        ref.addr = base + cursor * stride;
        cursor = cursor + 1 >= effSlots ? 0 : cursor + 1;
        break;
      case ir::MemPatternKind::RandomInSet:
        ref.addr = base + slotDraw.draw(rng) * lineBytes;
        break;
      case ir::MemPatternKind::PointerChase:
        // Full-period LCG walk over a power-of-two line set: the
        // dependent-chain analogue (a != 1 mod 4 would shorten the
        // period; these constants give the full 2^k cycle).
        cursor = (cursor * 1664525 + 1013904223) & effChaseMask;
        ref.addr = base + cursor * lineBytes;
        break;
      case ir::MemPatternKind::Gather:
        if (rng.nextDouble() < effHotFraction)
            ref.addr = base + hotDraw.draw(rng) * lineBytes;
        else
            ref.addr = base + slotDraw.draw(rng) * lineBytes;
        break;
    }
    return ref;
}

void
AddressGenerator::nextBatch(u32 n, MemRef* out)
{
    // Each case replicates next()'s per-reference body exactly (the
    // write-fraction accumulator update, then the pattern draws, in
    // the same order), so the emitted stream is bit-identical to n
    // successive next() calls; only the kind dispatch is hoisted.
    switch (kind) {
      case ir::MemPatternKind::None:
        if (n > 0)
            panic("AddressGenerator::nextBatch on a block without "
                  "memory ops");
        return;
      case ir::MemPatternKind::Stride: {
        u64 c = cursor;
        const u64 wrap = effSlots;
        for (u32 i = 0; i < n; ++i) {
            out[i].isWrite = drawWrite();
            out[i].addr = base + c * stride;
            c = c + 1 >= wrap ? 0 : c + 1;
        }
        cursor = c;
        break;
      }
      case ir::MemPatternKind::RandomInSet:
        for (u32 i = 0; i < n; ++i) {
            out[i].isWrite = drawWrite();
            out[i].addr = base + slotDraw.draw(rng) * lineBytes;
        }
        break;
      case ir::MemPatternKind::PointerChase: {
        u64 c = cursor;
        const u64 mask = effChaseMask;
        for (u32 i = 0; i < n; ++i) {
            out[i].isWrite = drawWrite();
            c = (c * 1664525 + 1013904223) & mask;
            out[i].addr = base + c * lineBytes;
        }
        cursor = c;
        break;
      }
      case ir::MemPatternKind::Gather:
        for (u32 i = 0; i < n; ++i) {
            out[i].isWrite = drawWrite();
            if (rng.nextDouble() < effHotFraction) {
                out[i].addr = base + hotDraw.draw(rng) * lineBytes;
            } else {
                out[i].addr = base + slotDraw.draw(rng) * lineBytes;
            }
        }
        break;
    }
}

u64
AddressGenerator::footprintLines() const
{
    switch (kind) {
      case ir::MemPatternKind::None:
        return 0;
      case ir::MemPatternKind::Stride:
        return std::max<u64>(1, slots * stride / lineBytes);
      default:
        return slots;
    }
}

} // namespace xbsp::mem
