/**
 * @file
 * Deterministic per-block memory address stream generators.
 *
 * Each machine basic block owns one AddressGenerator seeded from the
 * block id and the engine seed, so every run of the same binary
 * produces bit-identical address streams — a prerequisite for
 * comparing sampled statistics against full-run statistics.
 */

#ifndef XBSP_MEM_PATTERN_HH
#define XBSP_MEM_PATTERN_HH

#include "ir/program.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace xbsp::mem
{

/** Cache-line granularity used by all non-strided patterns. */
inline constexpr u64 lineBytes = 64;

/** Base address of a logical data region (4 GiB apart). */
Addr regionBase(u32 regionId);

/** Base address of a procedure's stack frame window. */
Addr stackBase(u32 procId);

/** One memory reference: address plus load/store direction. */
struct MemRef
{
    Addr addr = 0;
    bool isWrite = false;
};

/**
 * Stateful generator producing the reference stream of one block
 * according to its ir::MemPattern (with the footprint already scaled
 * by the compiler).
 */
class AddressGenerator
{
  public:
    /** Construct for a pattern; `seed` decorrelates block streams. */
    AddressGenerator(const ir::MemPattern& pattern, u64 seed);

    /**
     * Mark the start of one execution of the owning block.  Advances
     * the semantic execution counter that drives behaviour drift
     * (see ir::MemPattern::driftPeriod).
     */
    void beginBlock();

    /** Produce the next reference. */
    MemRef next();

    /**
     * Produce the next `n` references into `out`, bit-identical to
     * `n` successive next() calls (same RNG draws, same write-
     * fraction accumulation, in the same order) but with the pattern
     * switch hoisted out of the loop — the engine fills a block's
     * whole reference stream in one call.
     */
    void nextBatch(u32 n, MemRef* out);

    /** Number of distinct cache lines this generator can touch. */
    u64 footprintLines() const;

  private:
    ir::MemPatternKind kind;
    Addr base = 0;
    u64 stride = lineBytes;
    u64 slots = 1;       ///< stride positions or lines in the set
    u64 hotSlots = 1;    ///< Gather: size of the hot subset
    u64 chaseMask = 0;   ///< PointerChase: slots - 1 (power of two)
    u64 cursor = 0;
    double writeFraction = 0.0;
    double hotFraction = 1.0;
    double writeAccum = 0.0;
    Rng rng;

    // Drift state (see ir::MemPattern): effective sizes recomputed
    // once per driftPeriod block executions.
    u32 driftPeriod = 0;
    double driftAmp = 0.0;
    u64 execIndex = 0;
    u64 effSlots = 1;
    u64 effHotSlots = 1;
    u64 effChaseMask = 0;
    double effHotFraction = 1.0;
    // Prepared draws against the effective bounds (bit-identical to
    // rng.nextBelow but divider-free); rebuilt only when drift
    // changes the bounds, so the per-reference loops never divide.
    BoundedBelow slotDraw{1};
    BoundedBelow hotDraw{1};

    bool drawWrite();
    void applyDriftLevel();
    void rebuildDraws();
};

/** Round up to the next power of two (minimum 1). */
u64 ceilPow2(u64 v);

} // namespace xbsp::mem

#endif // XBSP_MEM_PATTERN_HH
