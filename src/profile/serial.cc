#include "profile/serial.hh"

namespace xbsp::prof
{

void
encodeProfilePass(serial::Encoder& e, const ProfilePass& pass)
{
    e.varint(pass.markers.counts.size());
    for (u64 count : pass.markers.counts)
        e.varint(count);
    e.varint(pass.markers.totalInstructions);
    sp::encodeFvs(e, pass.fliIntervals);
    e.varint(pass.fliBoundaries.size());
    for (InstrCount boundary : pass.fliBoundaries)
        e.varint(boundary);
    e.varint(pass.totalInstructions);
}

ProfilePass
decodeProfilePass(serial::Decoder& d)
{
    ProfilePass pass;
    const u64 counts = d.arrayCount();
    pass.markers.counts.reserve(static_cast<std::size_t>(counts));
    for (u64 i = 0; i < counts; ++i)
        pass.markers.counts.push_back(d.varint());
    pass.markers.totalInstructions = d.varint();
    pass.fliIntervals = sp::decodeFvs(d);
    const u64 boundaries = d.arrayCount();
    pass.fliBoundaries.reserve(static_cast<std::size_t>(boundaries));
    for (u64 i = 0; i < boundaries; ++i)
        pass.fliBoundaries.push_back(d.varint());
    pass.totalInstructions = d.varint();
    return pass;
}

} // namespace xbsp::prof
