/**
 * @file
 * Pin-tool-style profilers: execution counts for every marker
 * (procedure entries, loop entries, loop branches — the paper's call
 * and branch profile, §3.2.1) and fixed-length-interval basic-block
 * vectors (the classic per-binary SimPoint input, §2).
 */

#ifndef XBSP_PROFILE_PROFILE_HH
#define XBSP_PROFILE_PROFILE_HH

#include <vector>

#include "binary/binary.hh"
#include "exec/engine.hh"
#include "simpoint/fvec.hh"
#include "util/serial.hh"

namespace xbsp::prof
{

/** Per-marker dynamic execution counts for one binary/input. */
struct MarkerProfile
{
    std::vector<u64> counts;  ///< indexed by marker id
    InstrCount totalInstructions = 0;
};

/** Observer that fills a MarkerProfile (subscribe: markers). */
class MarkerProfiler final : public exec::Observer
{
  public:
    explicit MarkerProfiler(const bin::Binary& binary);

    exec::ObserverHooks
    hooks() const override
    {
        return {false, false, true};
    }

    void onMarker(u32 markerId) override { ++profile.counts[markerId]; }

    /** Record the final instruction count at run end. */
    void finish(InstrCount totalInstrs);

    const MarkerProfile& result() const { return profile; }

  private:
    MarkerProfile profile;
};

/**
 * Incremental sparse BBV accumulator: dense scratch plus a touched
 * list so flushing an interval is O(distinct blocks).
 */
class BbvAccumulator
{
  public:
    explicit BbvAccumulator(u32 dimension);

    /** Credit `value` (instructions executed) to dimension `block`. */
    void add(u32 block, double value);

    /** Extract the accumulated sparse vector and reset. */
    sp::SparseVec flush();

    /** True when nothing has been accumulated since the last flush. */
    bool empty() const { return touched.empty(); }

  private:
    std::vector<double> dense;
    std::vector<u32> touched;
};

/**
 * Fixed-length-interval BBV collector (subscribe: blocks).  Intervals
 * close at the first block boundary at or after each multiple of the
 * target size, using the engine's canonical instruction counter, so
 * every collector and snapshot gate in any run of the same binary
 * agrees on the boundaries.  The trailing partial interval is kept
 * (with its true, shorter length).
 */
class FliBbvCollector final : public exec::Observer
{
  public:
    FliBbvCollector(const exec::Engine& engine, InstrCount targetSize);

    exec::ObserverHooks
    hooks() const override
    {
        return {true, false, false};
    }

    void onBlock(u32 blockId, u32 instrs) override;
    void onRunEnd() override;

    /** Per-interval BBVs with instruction lengths. */
    const sp::FrequencyVectorSet& intervals() const { return fvs; }

    /**
     * Cumulative instruction count at the end of each interval
     * (the FLI boundary positions used by the snapshot gates).
     */
    const std::vector<InstrCount>& boundaries() const { return ends; }

  private:
    const exec::Engine& engine;
    const InstrCount target;
    BbvAccumulator accum;
    sp::FrequencyVectorSet fvs;
    std::vector<InstrCount> ends;
    InstrCount intervalStart = 0;
};

/**
 * Run one profiling pass (no timing model) over a binary, collecting
 * the marker profile and FLI BBVs together.
 */
struct ProfilePass
{
    MarkerProfile markers;
    sp::FrequencyVectorSet fliIntervals;
    std::vector<InstrCount> fliBoundaries;
    InstrCount totalInstructions = 0;
};

ProfilePass runProfilePass(const bin::Binary& binary,
                           InstrCount fliTarget,
                           u64 seed = 0x5EEDull);

/**
 * Artifact-store key of one profile pass — the exact key
 * runProfilePass memoizes under (artifact type ProfilePassCodec).
 * Exposed so the pipeline scheduler can probe whether a profile
 * stage is already cached.
 */
serial::Hash128 profilePassKey(const bin::Binary& binary,
                               InstrCount fliTarget,
                               u64 seed = 0x5EEDull);

} // namespace xbsp::prof

#endif // XBSP_PROFILE_PROFILE_HH
