#include "profile/profile.hh"

#include <algorithm>

#include "binary/serial.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "profile/serial.hh"
#include "store/store.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace xbsp::prof
{

MarkerProfiler::MarkerProfiler(const bin::Binary& binary)
{
    profile.counts.assign(binary.markerCount(), 0);
}

void
MarkerProfiler::finish(InstrCount totalInstrs)
{
    profile.totalInstructions = totalInstrs;
}

BbvAccumulator::BbvAccumulator(u32 dimension)
{
    dense.assign(dimension, 0.0);
}

void
BbvAccumulator::add(u32 block, double value)
{
    if (dense[block] == 0.0)
        touched.push_back(block);
    dense[block] += value;
}

sp::SparseVec
BbvAccumulator::flush()
{
    std::sort(touched.begin(), touched.end());
    sp::SparseVec vec;
    vec.reserve(touched.size());
    for (u32 block : touched) {
        vec.emplace_back(block, dense[block]);
        dense[block] = 0.0;
    }
    touched.clear();
    return vec;
}

FliBbvCollector::FliBbvCollector(const exec::Engine& eng,
                                 InstrCount targetSize)
    : engine(eng), target(targetSize),
      accum(eng.binary().blockCount())
{
    if (target == 0)
        fatal("FLI interval target must be > 0");
    fvs.dimension = eng.binary().blockCount();
}

void
FliBbvCollector::onBlock(u32 blockId, u32 instrs)
{
    accum.add(blockId, static_cast<double>(instrs));
    const InstrCount now = engine.instructionsExecuted();
    if (now - intervalStart >= target) {
        fvs.addInterval(accum.flush(), now - intervalStart);
        ends.push_back(now);
        intervalStart = now;
    }
}

void
FliBbvCollector::onRunEnd()
{
    const InstrCount now = engine.instructionsExecuted();
    if (now > intervalStart) {
        fvs.addInterval(accum.flush(), now - intervalStart);
        ends.push_back(now);
        intervalStart = now;
    }
}

namespace
{

ProfilePass runProfilePassUncached(const bin::Binary& binary,
                                   InstrCount fliTarget, u64 seed);

} // namespace

serial::Hash128
profilePassKey(const bin::Binary& binary, InstrCount fliTarget,
               u64 seed)
{
    serial::Hasher h;
    h.str("profile");
    bin::hashBinary(h, binary);
    h.u64v(fliTarget);
    h.u64v(seed);
    return h.finish();
}

ProfilePass
runProfilePass(const bin::Binary& binary, InstrCount fliTarget,
               u64 seed)
{
    return store::ArtifactStore::global()
        .getOrCompute<ProfilePassCodec>(
            profilePassKey(binary, fliTarget, seed), "profile", [&] {
                return runProfilePassUncached(binary, fliTarget, seed);
            });
}

namespace
{

/**
 * Concrete sink for the profile pass — blocks into the BBV
 * collector, markers into the marker profiler, no memory stream.
 * Both observer classes are final, so every call devirtualizes and
 * the whole pass compiles into one tight loop.  Event routing and
 * run-end order match the legacy registration (markers, then bbv)
 * exactly.
 */
struct ProfileSink
{
    MarkerProfiler& markers;
    FliBbvCollector& bbv;

    bool wantsBlocks() const { return true; }
    bool wantsMems() const { return false; }
    bool wantsMarkers() const { return true; }

    void onBlock(u32 blockId, u32 instrs)
    {
        bbv.onBlock(blockId, instrs);
    }
    void onMemRefs(std::span<const mem::MemRef>) {}
    void onMarker(u32 markerId) { markers.onMarker(markerId); }
    void onRunEnd() { bbv.onRunEnd(); }
};

ProfilePass
runProfilePassUncached(const bin::Binary& binary, InstrCount fliTarget,
                       u64 seed)
{
    obs::TraceSpan span(
        format("profile {}", binary.displayName()), "profile");
    exec::Engine engine(binary, seed);
    MarkerProfiler markers(binary);
    FliBbvCollector bbv(engine, fliTarget);
    ProfileSink sink{markers, bbv};
    engine.runWith(sink);
    markers.finish(engine.instructionsExecuted());

    ProfilePass pass;
    pass.markers = markers.result();
    pass.fliIntervals = bbv.intervals();
    pass.fliBoundaries = bbv.boundaries();
    pass.totalInstructions = engine.instructionsExecuted();

    auto& reg = obs::StatRegistry::global();
    reg.counter("profile.passes").add();
    reg.counter("profile.fliIntervals")
        .add(pass.fliIntervals.size());
    return pass;
}

} // namespace

} // namespace xbsp::prof
