/**
 * @file
 * Artifact-store codec for profiling passes: marker counts, FLI BBVs
 * and boundaries round-trip bit-exactly, so a cached pass is
 * indistinguishable from re-running the functional engine.
 */

#ifndef XBSP_PROFILE_SERIAL_HH
#define XBSP_PROFILE_SERIAL_HH

#include "profile/profile.hh"
#include "simpoint/serial.hh"
#include "util/serial.hh"

namespace xbsp::prof
{

void encodeProfilePass(serial::Encoder& e, const ProfilePass& pass);
ProfilePass decodeProfilePass(serial::Decoder& d);

/** Artifact-store codec for runProfilePass results. */
struct ProfilePassCodec
{
    using Value = ProfilePass;
    static constexpr u32 tag = serial::fourcc("PROF");
    static constexpr u32 version = 1;

    static void
    encode(serial::Encoder& e, const ProfilePass& pass)
    {
        encodeProfilePass(e, pass);
    }

    static ProfilePass
    decode(serial::Decoder& d)
    {
        return decodeProfilePass(d);
    }
};

} // namespace xbsp::prof

#endif // XBSP_PROFILE_SERIAL_HH
