/**
 * @file
 * Persistent content-addressed artifact store with stage memoization.
 *
 * Every expensive pipeline stage (compile, profile, clustering, VLI
 * build, detailed simulation) is a pure function of its inputs.  The
 * store exploits that: the caller hashes the exact inputs into a
 * 128-bit key (serial::Hasher) and wraps the stage in
 * getOrCompute<Codec>(key, stage, fn).  On a hit the artifact is
 * decoded from disk; on a miss (or any corruption) the stage runs and
 * its result is written back.  Because the codecs round-trip every
 * field bit-exactly (doubles travel as IEEE-754 patterns), a warm run
 * produces byte-identical reports to a cold run — the repo's
 * determinism guarantee extends across process boundaries.
 *
 * On-disk layout (see DESIGN.md, "Artifact store"):
 *
 *   <dir>/<2-hex-shard>/<32-hex-key>.art
 *
 * Each entry is a self-describing file: magic + store format version
 * + artifact type tag/version + payload size + payload + payload
 * checksum.  Writes go to a unique temp file and are renamed into
 * place, so concurrent --jobs workers and concurrent *processes*
 * sharing one cache directory only ever observe complete entries.
 * Reads verify everything; any mismatch (truncation, bit flips,
 * version skew) logs, evicts the entry and recomputes — corruption
 * can degrade hit rate, never correctness.
 *
 * Garbage collection is LRU by file mtime under a byte budget (reads
 * bump the mtime).  Failure to write — read-only directory, full
 * disk — is warned about once and otherwise ignored: the store is an
 * accelerator, never a dependency.
 */

#ifndef XBSP_STORE_STORE_HH
#define XBSP_STORE_STORE_HH

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/trace.hh"
#include "util/serial.hh"

namespace xbsp::store
{

/** Store configuration; an empty dir means the store is off. */
struct StoreConfig
{
    /** Cache directory (created on demand). */
    std::string dir;

    /** Serve/populate the cache in getOrCompute (--no-cache = false). */
    bool enabled = false;
};

/** Result of scanning the cache directory. */
struct CacheScan
{
    u64 entries = 0;
    u64 bytes = 0;
    u64 tempFiles = 0;  ///< leftover .tmp files (crashed writers)
};

/** Result of one LRU garbage collection. */
struct GcResult
{
    u64 keptEntries = 0;
    u64 keptBytes = 0;
    u64 removedEntries = 0;
    u64 removedBytes = 0;
};

/**
 * The artifact store.  All methods are safe to call concurrently from
 * any number of pool workers; distinct processes may share one
 * directory.  See the file comment for the on-disk contract.
 */
class ArtifactStore
{
  public:
    ArtifactStore() = default;
    explicit ArtifactStore(StoreConfig config);

    /**
     * The process-wide store the pipeline stages consult.  First use
     * without prior configureGlobal() reads XBSP_CACHE_DIR from the
     * environment (empty/unset = disabled), so benches and wrapped
     * invocations opt in without touching argv.
     */
    static ArtifactStore& global();

    /** Reconfigure the global store (CLI --cache-dir / --no-cache). */
    static void configureGlobal(StoreConfig config);

    /** Reconfigure this store; not while getOrCompute is in flight. */
    void configure(StoreConfig config);

    /** True when getOrCompute consults the disk cache. */
    bool enabled() const { return on.load(std::memory_order_acquire); }

    /** The configured directory ("" when unset). */
    std::string directory() const;

    /**
     * Memoize `compute` under `key`.  Codec supplies the artifact
     * type: `Value`, a u32 `tag` (fourcc) and `version`, and
     * encode(Encoder&, const Value&) / decode(Decoder&) -> Value.
     * `stage` labels the per-stage hit/miss counters
     * (store.stage.<stage>.hits/.misses).
     */
    template <typename Codec, typename Fn>
    typename Codec::Value
    getOrCompute(const serial::Hash128& key, const char* stage,
                 Fn&& compute)
    {
        if (!enabled())
            return compute();
        obs::TraceSpan span(std::string("store ") + stage, "store");
        if (std::optional<std::string> payload =
                readEntry(key, Codec::tag, Codec::version)) {
            try {
                serial::Decoder decoder(*payload);
                typename Codec::Value value = Codec::decode(decoder);
                decoder.expectEnd();
                countHit(stage);
                return value;
            } catch (const serial::DecodeError& e) {
                evictEntry(key, e.what());
            }
        }
        countMiss(stage);
        typename Codec::Value value = compute();
        serial::Encoder encoder;
        Codec::encode(encoder, value);
        writeEntry(key, Codec::tag, Codec::version, encoder.view());
        return value;
    }

    /**
     * Cheap existence probe: true when an entry for `key` is on disk
     * with a valid header of the given type tag/version.  Reads only
     * the fixed header — no payload decode, no checksum, no hit/miss
     * counters, no mtime bump — so the pipeline scheduler can ask
     * "would this stage be served from the cache?" without perturbing
     * the store's statistics or LRU state.  Always false when the
     * store is disabled.  Counts store.probes (enabled calls only).
     */
    bool contains(const serial::Hash128& key, u32 typeTag,
                  u32 typeVersion) const;

    /**
     * Read and verify one entry's payload; nullopt on miss.  Corrupt,
     * truncated or version-skewed entries are evicted on the way.
     * (Public for tests; getOrCompute is the normal interface.)
     */
    std::optional<std::string> readEntry(const serial::Hash128& key,
                                         u32 typeTag, u32 typeVersion);

    /** Atomically write one entry (temp file + rename); best effort. */
    void writeEntry(const serial::Hash128& key, u32 typeTag,
                    u32 typeVersion, std::string_view payload);

    /** Remove one entry, counting it as an eviction (logged). */
    void evictEntry(const serial::Hash128& key,
                    const std::string& why);

    /** Absolute path an entry lives at (whether or not it exists). */
    std::string entryPath(const serial::Hash128& key) const;

    /** Walk the directory: entry count, total bytes, stray temps. */
    CacheScan scan() const;

    /**
     * LRU garbage collection: delete stray temp files, then delete
     * the least-recently-used entries until the total is within
     * `byteBudget` bytes.
     *
     * Entries probed via contains() within the last
     * `probeGraceSeconds` are exempt: a probe promises the scheduler
     * "this stage will be served from the cache", and an eviction
     * between that probe and the stage's readEntry would turn the
     * promise into a recompute mid-run (probes deliberately don't
     * bump mtimes, so plain LRU sees probed entries as cold).  Pass 0
     * to force unconditional collection (tests, `cache clear`-like
     * maintenance).
     */
    GcResult gc(u64 byteBudget, u64 probeGraceSeconds = 300);

    /** Delete every entry and temp file; returns files removed. */
    u64 clear();

  private:
    mutable std::mutex mutex;          ///< guards cfg
    StoreConfig cfg;
    std::atomic<bool> on{false};
    std::atomic<bool> writeWarned{false};
    std::atomic<u64> tempSeq{0};

    /** Paths positively probed, by probe time (guards gc eviction). */
    mutable std::mutex probeMutex;
    mutable std::unordered_map<std::string,
                               std::chrono::steady_clock::time_point>
        recentProbes;

    void countHit(const char* stage) const;
    void countMiss(const char* stage) const;
    void warnWriteOnce(const std::string& what);
};

} // namespace xbsp::store

#endif // XBSP_STORE_STORE_HH
