#include "store/store.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <vector>

#include "obs/stats.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace xbsp::store
{

namespace
{

/** Entry file magic ("XBSA" = xbsp artifact). */
constexpr u32 entryMagic = serial::fourcc("XBSA");

/** On-disk container format version (bump on layout changes). */
constexpr u32 storeFormatVersion = 1;

/** Fixed header: magic, format, type tag, type version, payload size. */
constexpr std::size_t headerBytes = 4 * 4 + 8;

/** Trailing payload checksum. */
constexpr std::size_t checksumBytes = 8;

constexpr const char* entrySuffix = ".art";

obs::Counter
counter(const std::string& path)
{
    return obs::StatRegistry::global().counter(path);
}

/** Read a whole file; nullopt when it cannot be opened. */
std::optional<std::string>
slurp(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string data;
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size < 0)
        return std::nullopt;
    data.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    if (!in)
        return std::nullopt;
    return data;
}

/** True when `name` looks like an in-flight/leftover temp file. */
bool
isTempName(const std::string& name)
{
    return name.find(".tmp.") != std::string::npos;
}

bool
isEntryName(const std::string& name)
{
    return name.size() > 4 &&
           name.compare(name.size() - 4, 4, entrySuffix) == 0;
}

struct EntryInfo
{
    fs::path path;
    u64 bytes = 0;
    fs::file_time_type mtime;
};

/** All .art entries under `dir` (silently empty on errors). */
std::vector<EntryInfo>
listEntries(const fs::path& dir, u64* tempFiles,
            std::vector<fs::path>* temps)
{
    std::vector<EntryInfo> entries;
    std::error_code ec;
    fs::recursive_directory_iterator it(dir, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string name = it->path().filename().string();
        if (isTempName(name)) {
            if (tempFiles)
                ++*tempFiles;
            if (temps)
                temps->push_back(it->path());
            continue;
        }
        if (!isEntryName(name))
            continue;
        EntryInfo info;
        info.path = it->path();
        info.bytes = it->file_size(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        info.mtime = it->last_write_time(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        entries.push_back(std::move(info));
    }
    return entries;
}

} // namespace

ArtifactStore::ArtifactStore(StoreConfig config)
{
    configure(std::move(config));
}

ArtifactStore&
ArtifactStore::global()
{
    static ArtifactStore* store = [] {
        auto* s = new ArtifactStore;
        StoreConfig config;
        if (const char* env = std::getenv("XBSP_CACHE_DIR");
            env && *env) {
            config.dir = env;
            config.enabled = true;
        }
        s->configure(std::move(config));
        return s;
    }();
    return *store;
}

void
ArtifactStore::configureGlobal(StoreConfig config)
{
    global().configure(std::move(config));
}

void
ArtifactStore::configure(StoreConfig config)
{
    std::lock_guard<std::mutex> lock(mutex);
    cfg = std::move(config);
    if (cfg.dir.empty())
        cfg.enabled = false;
    on.store(cfg.enabled, std::memory_order_release);
    writeWarned.store(false, std::memory_order_relaxed);
}

std::string
ArtifactStore::directory() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return cfg.dir;
}

std::string
ArtifactStore::entryPath(const serial::Hash128& key) const
{
    const std::string hex = key.hex();
    const fs::path dir(directory());
    return (dir / hex.substr(0, 2) / (hex + entrySuffix)).string();
}

void
ArtifactStore::countHit(const char* stage) const
{
    counter("store.hits").add();
    counter(std::string("store.stage.") + stage + ".hits").add();
}

void
ArtifactStore::countMiss(const char* stage) const
{
    counter("store.misses").add();
    counter(std::string("store.stage.") + stage + ".misses").add();
}

void
ArtifactStore::warnWriteOnce(const std::string& what)
{
    if (!writeWarned.exchange(true, std::memory_order_relaxed))
        warn("store: cannot write to cache '{}' ({}); continuing "
             "without persisting artifacts", directory(), what);
}

bool
ArtifactStore::contains(const serial::Hash128& key, u32 typeTag,
                        u32 typeVersion) const
{
    if (!enabled())
        return false;
    const std::string dir = directory();
    if (dir.empty())
        return false;
    counter("store.probes").add();
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char header[headerBytes];
    in.read(header, headerBytes);
    if (!in)
        return false;  // truncated; readEntry will evict it
    bool valid = false;
    try {
        serial::Decoder d(std::string_view(header, headerBytes));
        valid = d.fixed32() == entryMagic &&
                d.fixed32() == storeFormatVersion &&
                d.fixed32() == typeTag && d.fixed32() == typeVersion;
    } catch (const serial::DecodeError&) {
        return false;
    }
    if (valid) {
        // Remember the positive answer: gc() grants probed entries a
        // grace window so a concurrent collection cannot evict what a
        // scheduler was just promised (probes never bump mtimes, so
        // LRU alone would see them as cold).
        std::lock_guard guard(probeMutex);
        recentProbes[path] = std::chrono::steady_clock::now();
    }
    return valid;
}

std::optional<std::string>
ArtifactStore::readEntry(const serial::Hash128& key, u32 typeTag,
                         u32 typeVersion)
{
    const std::string dir = directory();
    if (dir.empty())
        return std::nullopt;
    const fs::path path(entryPath(key));
    std::optional<std::string> raw = slurp(path);
    if (!raw)
        return std::nullopt;  // plain miss

    // Validate container framing; any violation evicts the entry.
    std::optional<std::string> payload;
    try {
        serial::Decoder d(*raw);
        if (d.fixed32() != entryMagic)
            throw serial::DecodeError("bad magic");
        if (const u32 v = d.fixed32(); v != storeFormatVersion)
            throw serial::DecodeError(
                "store format version " + std::to_string(v));
        if (const u32 tag = d.fixed32(); tag != typeTag)
            throw serial::DecodeError("type tag mismatch");
        if (const u32 v = d.fixed32(); v != typeVersion)
            throw serial::DecodeError(
                "type version " + std::to_string(v) + " != " +
                std::to_string(typeVersion));
        const u64 size = d.fixed64();
        if (size != raw->size() - headerBytes - checksumBytes)
            throw serial::DecodeError("payload size mismatch");
        payload = raw->substr(headerBytes,
                              static_cast<std::size_t>(size));
        serial::Decoder tail(std::string_view(*raw).substr(
            headerBytes + static_cast<std::size_t>(size)));
        if (tail.fixed64() != serial::hash64(*payload))
            throw serial::DecodeError("payload checksum mismatch");
    } catch (const serial::DecodeError& e) {
        evictEntry(key, e.what());
        return std::nullopt;
    }

    counter("store.bytes_read").add(raw->size());
    // Bump the mtime so LRU garbage collection sees the use; best
    // effort (read-only caches stay readable, just FIFO-collected).
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return payload;
}

void
ArtifactStore::writeEntry(const serial::Hash128& key, u32 typeTag,
                          u32 typeVersion, std::string_view payload)
{
    const std::string dir = directory();
    if (dir.empty())
        return;
    const fs::path finalPath(entryPath(key));
    std::error_code ec;
    fs::create_directories(finalPath.parent_path(), ec);
    if (ec) {
        warnWriteOnce(ec.message());
        return;
    }

    // Unique temp name per (process, write): rename is atomic within
    // the shard directory, so readers only ever see complete entries.
    const fs::path tempPath =
        finalPath.string() + ".tmp." +
        std::to_string(static_cast<u64>(::getpid())) + "." +
        std::to_string(tempSeq.fetch_add(1));
    {
        serial::Encoder header;
        header.fixed32(entryMagic);
        header.fixed32(storeFormatVersion);
        header.fixed32(typeTag);
        header.fixed32(typeVersion);
        header.fixed64(payload.size());
        std::ofstream out(tempPath,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            warnWriteOnce("cannot open temp file");
            return;
        }
        const std::string_view head = header.view();
        out.write(head.data(),
                  static_cast<std::streamsize>(head.size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        serial::Encoder tail;
        tail.fixed64(serial::hash64(payload));
        out.write(tail.view().data(), checksumBytes);
        out.flush();
        if (!out) {
            warnWriteOnce("short write");
            out.close();
            fs::remove(tempPath, ec);
            return;
        }
    }
    fs::rename(tempPath, finalPath, ec);
    if (ec) {
        warnWriteOnce(ec.message());
        fs::remove(tempPath, ec);
        return;
    }
    counter("store.bytes_written")
        .add(headerBytes + payload.size() + checksumBytes);
}

void
ArtifactStore::evictEntry(const serial::Hash128& key,
                          const std::string& why)
{
    const fs::path path(entryPath(key));
    warn("store: evicting entry {} ({}); recomputing",
         path.filename().string(), why);
    std::error_code ec;
    fs::remove(path, ec);
    counter("store.evictions").add();
}

CacheScan
ArtifactStore::scan() const
{
    CacheScan result;
    const std::string dir = directory();
    if (dir.empty())
        return result;
    for (const EntryInfo& e :
         listEntries(dir, &result.tempFiles, nullptr)) {
        ++result.entries;
        result.bytes += e.bytes;
    }
    return result;
}

GcResult
ArtifactStore::gc(u64 byteBudget, u64 probeGraceSeconds)
{
    GcResult result;
    const std::string dir = directory();
    if (dir.empty())
        return result;

    // Snapshot the paths inside their probe grace window (and drop
    // expired records while at it — the map stays bounded by the set
    // of entries touched per window).
    std::unordered_set<std::string> graced;
    {
        const auto now = std::chrono::steady_clock::now();
        const auto grace = std::chrono::seconds(probeGraceSeconds);
        std::lock_guard guard(probeMutex);
        for (auto it = recentProbes.begin();
             it != recentProbes.end();) {
            if (now - it->second <= grace) {
                graced.insert(it->first);
                ++it;
            } else {
                it = recentProbes.erase(it);
            }
        }
    }

    // Stray temp files are always garbage (crashed writers).
    std::vector<fs::path> temps;
    u64 tempCount = 0;
    std::vector<EntryInfo> entries =
        listEntries(dir, &tempCount, &temps);
    std::error_code ec;
    for (const fs::path& t : temps)
        fs::remove(t, ec);

    u64 total = 0;
    for (const EntryInfo& e : entries)
        total += e.bytes;
    // Oldest first: mtime is bumped on every hit, so this is LRU.
    std::sort(entries.begin(), entries.end(),
              [](const EntryInfo& a, const EntryInfo& b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const EntryInfo& e : entries) {
        if (total <= byteBudget ||
            graced.contains(e.path.string())) {
            ++result.keptEntries;
            result.keptBytes += e.bytes;
            continue;
        }
        fs::remove(e.path, ec);
        if (ec) {
            ec.clear();
            ++result.keptEntries;
            result.keptBytes += e.bytes;
            continue;
        }
        total -= e.bytes;
        ++result.removedEntries;
        result.removedBytes += e.bytes;
        counter("store.evictions").add();
    }
    return result;
}

u64
ArtifactStore::clear()
{
    const std::string dir = directory();
    if (dir.empty())
        return 0;
    std::vector<fs::path> temps;
    u64 tempCount = 0;
    std::vector<EntryInfo> entries =
        listEntries(dir, &tempCount, &temps);
    u64 removed = 0;
    std::error_code ec;
    for (const EntryInfo& e : entries) {
        fs::remove(e.path, ec);
        if (!ec)
            ++removed;
        ec.clear();
    }
    for (const fs::path& t : temps) {
        fs::remove(t, ec);
        if (!ec)
            ++removed;
        ec.clear();
    }
    return removed;
}

} // namespace xbsp::store
