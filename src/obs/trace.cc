#include "obs/trace.hh"

#include "util/json.hh"
#include "util/threadpool.hh"

namespace xbsp::obs
{

TraceSession&
TraceSession::global()
{
    static TraceSession instance;
    return instance;
}

void
TraceSession::enable()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (!epochSet) {
        epoch = std::chrono::steady_clock::now();
        epochSet = true;
    }
    active.store(true, std::memory_order_relaxed);
}

void
TraceSession::disable()
{
    active.store(false, std::memory_order_relaxed);
}

void
TraceSession::record(std::string name, std::string_view category,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end)
{
    if (!enabled())
        return;
    const unsigned tid = currentWorkerId();
    std::lock_guard<std::mutex> lock(mutex);
    if (!epochSet)
        return;
    // Spans that started before enable() clamp to the epoch rather
    // than going negative.
    const auto t0 = start < epoch ? epoch : start;
    const auto us = [this](std::chrono::steady_clock::time_point t) {
        return static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - epoch)
                .count());
    };
    TraceEvent ev;
    ev.name = std::move(name);
    ev.category = category;
    ev.startMicros = us(t0);
    ev.durMicros = end > t0 ? us(end) - us(t0) : 0;
    ev.tid = tid;
    spans.push_back(std::move(ev));
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    spans.clear();
}

std::vector<TraceEvent>
TraceSession::events() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return spans;
}

void
TraceSession::writeJson(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(mutex);
    JsonWriter w(os);
    w.beginObject();
    w.member("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();
    for (const TraceEvent& ev : spans) {
        w.beginObject();
        w.member("name", ev.name);
        w.member("cat", ev.category);
        w.member("ph", "X");
        w.member("ts", ev.startMicros);
        w.member("dur", ev.durMicros);
        w.member("pid", 1);
        w.member("tid", ev.tid);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace xbsp::obs
