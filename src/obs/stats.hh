/**
 * @file
 * Hierarchical, thread-aware metrics registry in the gem5 stats
 * tradition.  Stats are named by dotted path
 * ("study.gcc.cluster.kmeans.iters") and come in three kinds:
 *
 *  - **Counter** — a u64 scalar.  Increments are relaxed atomic adds,
 *    so the merged total is exact and independent of how work was
 *    spread over pool workers: a 1-worker run and an N-worker run of
 *    the same pipeline report bit-identical counts.
 *  - **Distribution** — a gem5-style histogram of u64 samples:
 *    count/sum/min/max plus power-of-two buckets (bucket 0 holds the
 *    value 0, bucket i >= 1 holds values in [2^(i-1), 2^i)).  All
 *    fields are integers, so merges are exact and order-independent.
 *  - **Timer** — accumulated wall-clock nanoseconds plus an
 *    activation count, fed by ScopedTimer.  Timer *values* are
 *    wall-clock and therefore never deterministic across runs; the
 *    JSON dump keeps them in a separate "timers" section so the
 *    "counters"/"distributions" sections can be diffed bit-for-bit
 *    between runs at different --jobs counts.
 *
 * Hot loops should not pay an atomic per event: accumulate locally
 * (a plain u64, or a ShardCounter for RAII flushing) and fold the
 * shard into the registry once at scope exit — one commutative
 * atomic add per worker-scope, which keeps the merged totals exact
 * at any worker count.
 *
 * Handles (Counter/Distribution/Timer) are cheap copyable references
 * into the owning registry and must not outlive it; handles onto the
 * process-wide global() registry are safe everywhere.
 */

#ifndef XBSP_OBS_STATS_HH
#define XBSP_OBS_STATS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace xbsp
{
class JsonWriter;
}

namespace xbsp::obs
{

namespace detail
{

struct CounterData
{
    std::atomic<u64> value{0};
};

/** Number of histogram buckets: {0} plus one per power of two. */
inline constexpr std::size_t distBuckets = 65;

struct DistData
{
    std::atomic<u64> count{0};
    std::atomic<u64> sum{0};
    std::atomic<u64> min{~0ull};
    std::atomic<u64> max{0};
    std::array<std::atomic<u64>, distBuckets> buckets{};
};

struct TimerData
{
    std::atomic<u64> nanos{0};
    std::atomic<u64> count{0};
};

} // namespace detail

/** Bucket index a sample lands in (0 for 0, else bit width). */
std::size_t distBucketOf(u64 value);

/** Handle to a registered scalar counter. */
class Counter
{
  public:
    Counter() = default;

    /** Fold `n` into the counter (relaxed atomic; exact merge). */
    void
    add(u64 n = 1) const
    {
        if (cell && n)
            cell->value.fetch_add(n, std::memory_order_relaxed);
    }

    u64
    value() const
    {
        return cell ? cell->value.load(std::memory_order_relaxed) : 0;
    }

    /**
     * Overwrite the value.  For one-shot configuration facts (e.g.
     * which kernel arch dispatch picked) — not for event counts,
     * where concurrent set() would lose increments.
     */
    void
    set(u64 n) const
    {
        if (cell)
            cell->value.store(n, std::memory_order_relaxed);
    }

  private:
    friend class StatRegistry;
    explicit Counter(detail::CounterData* data) : cell(data) {}
    detail::CounterData* cell = nullptr;
};

/** Handle to a registered histogram. */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void sample(u64 value) const;

  private:
    friend class StatRegistry;
    explicit Distribution(detail::DistData* d) : data(d) {}
    detail::DistData* data = nullptr;
};

/** Handle to a registered wall-clock accumulator. */
class Timer
{
  public:
    Timer() = default;

    /** Fold one timed activation of `ns` nanoseconds. */
    void
    addNanos(u64 ns) const
    {
        if (!data)
            return;
        data->nanos.fetch_add(ns, std::memory_order_relaxed);
        data->count.fetch_add(1, std::memory_order_relaxed);
    }

    u64
    totalNanos() const
    {
        return data ? data->nanos.load(std::memory_order_relaxed) : 0;
    }

    u64
    count() const
    {
        return data ? data->count.load(std::memory_order_relaxed) : 0;
    }

  private:
    friend class StatRegistry;
    explicit Timer(detail::TimerData* d) : data(d) {}
    detail::TimerData* data = nullptr;
};

/** RAII wall-clock measurement folded into a Timer at scope exit. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer t)
        : timer(t), start(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        timer.addNanos(static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    Timer timer;
    std::chrono::steady_clock::time_point start;
};

/**
 * Per-worker counter shard: plain-integer accumulation in a hot loop,
 * one atomic merge into the target counter at scope exit.  The merge
 * is a commutative add, so totals stay exact at any worker count.
 */
class ShardCounter
{
  public:
    explicit ShardCounter(Counter c) : target(c) {}

    ~ShardCounter() { flush(); }

    ShardCounter(const ShardCounter&) = delete;
    ShardCounter& operator=(const ShardCounter&) = delete;

    void add(u64 n = 1) { local += n; }

    /** Merge the pending delta now (also called by the destructor). */
    void
    flush()
    {
        if (local) {
            target.add(local);
            local = 0;
        }
    }

  private:
    Counter target;
    u64 local = 0;
};

/** Kind discriminator for sampled stats (see liveStats()). */
enum class StatKind { Counter, Distribution, Timer };

/**
 * One stat's merged state at a sampling instant, as read by the
 * MetricsSampler (obs/live): `value` holds the counter value, the
 * distribution sum or the timer nanoseconds; `count` holds the
 * sample/activation count (0 for counters).
 */
struct LiveStat
{
    std::string path;
    StatKind kind = StatKind::Counter;
    u64 value = 0;
    u64 count = 0;
};

/** Read-only copy of a distribution's merged state (for tests). */
struct DistributionSnapshot
{
    u64 count = 0;
    u64 sum = 0;
    u64 min = 0;
    u64 max = 0;
    std::array<u64, detail::distBuckets> buckets{};

    bool operator==(const DistributionSnapshot&) const = default;
};

/**
 * The registry: create-or-get stats by dotted path.  Registration
 * takes a mutex (cold path); handle operations are lock-free.  Paths
 * are kind-stable: asking for a counter at a path previously
 * registered as a distribution panics.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry&) = delete;
    StatRegistry& operator=(const StatRegistry&) = delete;

    /** The process-wide registry the pipeline reports into. */
    static StatRegistry& global();

    Counter counter(const std::string& path);
    Distribution distribution(const std::string& path);
    Timer timer(const std::string& path);

    /** Merged counter value at `path`; 0 when never registered. */
    u64 counterValue(const std::string& path) const;

    /** Merged timer nanoseconds at `path`; 0 when never registered. */
    u64 timerNanos(const std::string& path) const;

    /** Snapshot at `path`; zeros when never registered. */
    DistributionSnapshot distributionSnapshot(
        const std::string& path) const;

    /**
     * One relaxed-atomic read of every registered stat, in sorted
     * path order.  This is the sampler's view: a pure read that
     * registers nothing, takes only the registration mutex (to walk
     * the entry map) and never blocks handle operations — stats
     * written concurrently are simply picked up by the next sample.
     */
    std::vector<LiveStat> liveStats() const;

    /**
     * Zero every stat (paths stay registered, handles stay valid).
     * Must not be called while instrumented work is in flight.
     */
    void reset();

    /**
     * Emit {"counters": {...}, "distributions": {...}} — plus
     * "timers" when `includeTimers` — as one JSON object value,
     * paths sorted so the deterministic sections diff bit-for-bit
     * across runs at any worker count.
     */
    void writeJson(JsonWriter& w, bool includeTimers) const;

    /** Whole-document convenience wrappers around writeJson(). */
    void writeJsonFile(std::ostream& os, bool includeTimers) const;
    std::string jsonString(bool includeTimers) const;

  private:
    enum class Kind { Counter, Distribution, Timer };

    struct Entry
    {
        Kind kind;
        std::size_t index;
    };

    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;  ///< sorted by path
    // Deques: growth never moves existing elements, so handles stay
    // valid across registration of new stats.
    std::deque<detail::CounterData> counters;
    std::deque<detail::DistData> dists;
    std::deque<detail::TimerData> timers;

    const Entry* find(const std::string& path, Kind kind) const;
    Entry& getOrCreate(const std::string& path, Kind kind);
};

} // namespace xbsp::obs

#endif // XBSP_OBS_STATS_HH
