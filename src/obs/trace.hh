/**
 * @file
 * Chrome trace_event span recorder.  A TraceSession collects complete
 * ("ph":"X") events and writes them in the Trace Event JSON format
 * that chrome://tracing and Perfetto load directly.  TraceSpan is the
 * RAII recorder: construction stamps the start, destruction appends
 * one event tagged with the ThreadPool worker id that executed it
 * (tid 0 = main thread), so the timeline shows exactly how study
 * steps, k-means fits and engine slices were spread over workers.
 *
 * Tracing defaults to off: TraceSpan checks one atomic flag and does
 * nothing when the session is disabled, so instrumentation can stay
 * in hot-ish paths (study steps, per-fit, per-run — not per-block).
 */

#ifndef XBSP_OBS_TRACE_HH
#define XBSP_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace xbsp::obs
{

/** One recorded complete event (microsecond timestamps). */
struct TraceEvent
{
    std::string name;
    std::string category;
    u64 startMicros = 0;  ///< relative to session start
    u64 durMicros = 0;
    unsigned tid = 0;     ///< pool worker id (0 = main thread)
};

/** Collects spans; writes Chrome trace_event JSON. */
class TraceSession
{
  public:
    TraceSession() = default;

    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    /** The process-wide session TraceSpan records into by default. */
    static TraceSession& global();

    /** Start/stop recording; disabled sessions drop spans cheaply. */
    void enable();
    void disable();

    bool
    enabled() const
    {
        return active.load(std::memory_order_relaxed);
    }

    /** Append one finished span (no-op while disabled). */
    void record(std::string name, std::string_view category,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end);

    /** Drop all recorded events (recording state unchanged). */
    void clear();

    /** Copy of the recorded events, for tests. */
    std::vector<TraceEvent> events() const;

    /**
     * Write the whole document:
     * {"displayTimeUnit":"ms","traceEvents":[...]}.
     */
    void writeJson(std::ostream& os) const;

  private:
    std::atomic<bool> active{false};
    mutable std::mutex mutex;
    std::vector<TraceEvent> spans;
    std::chrono::steady_clock::time_point epoch;
    bool epochSet = false;
};

/**
 * RAII span: records [ctor, dtor) into a session under the calling
 * thread's worker id.  Name and category must name the *work*, not
 * the worker — the tid carries the worker.
 */
class TraceSpan
{
  public:
    /** Span on the global session. */
    TraceSpan(std::string name, std::string_view category)
        : TraceSpan(TraceSession::global(), std::move(name), category)
    {
    }

    /** Span on an explicit session (tests, tools). */
    TraceSpan(TraceSession& s, std::string name,
              std::string_view category)
        : session(s.enabled() ? &s : nullptr)
    {
        if (session) {
            label = std::move(name);
            cat = category;
            start = std::chrono::steady_clock::now();
        }
    }

    ~TraceSpan()
    {
        if (session)
            session->record(std::move(label), cat, start,
                            std::chrono::steady_clock::now());
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    TraceSession* session;  ///< null when disabled at construction
    std::string label;
    std::string cat;
    std::chrono::steady_clock::time_point start;
};

} // namespace xbsp::obs

#endif // XBSP_OBS_TRACE_HH
