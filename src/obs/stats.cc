#include "obs/stats.hh"

#include <bit>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace xbsp::obs
{

std::size_t
distBucketOf(u64 value)
{
    return value == 0 ? 0 : std::bit_width(value);
}

void
Distribution::sample(u64 value) const
{
    if (!data)
        return;
    data->count.fetch_add(1, std::memory_order_relaxed);
    data->sum.fetch_add(value, std::memory_order_relaxed);
    data->buckets[distBucketOf(value)].fetch_add(
        1, std::memory_order_relaxed);
    // min/max via CAS loops: exact and commutative, so merged
    // extrema match the single-threaded run.
    u64 seen = data->min.load(std::memory_order_relaxed);
    while (value < seen &&
           !data->min.compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
    }
    seen = data->max.load(std::memory_order_relaxed);
    while (value > seen &&
           !data->max.compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
    }
}

StatRegistry&
StatRegistry::global()
{
    static StatRegistry instance;
    return instance;
}

const StatRegistry::Entry*
StatRegistry::find(const std::string& path, Kind kind) const
{
    auto it = entries.find(path);
    if (it == entries.end())
        return nullptr;
    if (it->second.kind != kind)
        panic("stat '{}' registered with a different kind", path);
    return &it->second;
}

StatRegistry::Entry&
StatRegistry::getOrCreate(const std::string& path, Kind kind)
{
    auto [it, inserted] = entries.try_emplace(path);
    if (!inserted) {
        if (it->second.kind != kind)
            panic("stat '{}' registered with a different kind", path);
        return it->second;
    }
    it->second.kind = kind;
    switch (kind) {
      case Kind::Counter:
        it->second.index = counters.size();
        counters.emplace_back();
        break;
      case Kind::Distribution:
        it->second.index = dists.size();
        dists.emplace_back();
        break;
      case Kind::Timer:
        it->second.index = timers.size();
        timers.emplace_back();
        break;
    }
    return it->second;
}

Counter
StatRegistry::counter(const std::string& path)
{
    std::lock_guard<std::mutex> lock(mutex);
    return Counter(&counters[getOrCreate(path, Kind::Counter).index]);
}

Distribution
StatRegistry::distribution(const std::string& path)
{
    std::lock_guard<std::mutex> lock(mutex);
    return Distribution(
        &dists[getOrCreate(path, Kind::Distribution).index]);
}

Timer
StatRegistry::timer(const std::string& path)
{
    std::lock_guard<std::mutex> lock(mutex);
    return Timer(&timers[getOrCreate(path, Kind::Timer).index]);
}

u64
StatRegistry::counterValue(const std::string& path) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const Entry* entry = find(path, Kind::Counter);
    return entry
               ? counters[entry->index].value.load(
                     std::memory_order_relaxed)
               : 0;
}

u64
StatRegistry::timerNanos(const std::string& path) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const Entry* entry = find(path, Kind::Timer);
    return entry ? timers[entry->index].nanos.load(
                       std::memory_order_relaxed)
                 : 0;
}

DistributionSnapshot
StatRegistry::distributionSnapshot(const std::string& path) const
{
    std::lock_guard<std::mutex> lock(mutex);
    DistributionSnapshot snap;
    const Entry* entry = find(path, Kind::Distribution);
    if (!entry)
        return snap;
    const detail::DistData& d = dists[entry->index];
    snap.count = d.count.load(std::memory_order_relaxed);
    snap.sum = d.sum.load(std::memory_order_relaxed);
    snap.max = d.max.load(std::memory_order_relaxed);
    const u64 rawMin = d.min.load(std::memory_order_relaxed);
    snap.min = snap.count ? rawMin : 0;
    for (std::size_t i = 0; i < detail::distBuckets; ++i)
        snap.buckets[i] = d.buckets[i].load(std::memory_order_relaxed);
    return snap;
}

std::vector<LiveStat>
StatRegistry::liveStats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<LiveStat> out;
    out.reserve(entries.size());
    for (const auto& [path, entry] : entries) {
        LiveStat stat;
        stat.path = path;
        switch (entry.kind) {
          case Kind::Counter:
            stat.kind = StatKind::Counter;
            stat.value = counters[entry.index].value.load(
                std::memory_order_relaxed);
            break;
          case Kind::Distribution: {
            const detail::DistData& d = dists[entry.index];
            stat.kind = StatKind::Distribution;
            stat.value = d.sum.load(std::memory_order_relaxed);
            stat.count = d.count.load(std::memory_order_relaxed);
            break;
          }
          case Kind::Timer: {
            const detail::TimerData& t = timers[entry.index];
            stat.kind = StatKind::Timer;
            stat.value = t.nanos.load(std::memory_order_relaxed);
            stat.count = t.count.load(std::memory_order_relaxed);
            break;
          }
        }
        out.push_back(std::move(stat));
    }
    return out;
}

void
StatRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (detail::CounterData& c : counters)
        c.value.store(0, std::memory_order_relaxed);
    for (detail::DistData& d : dists) {
        d.count.store(0, std::memory_order_relaxed);
        d.sum.store(0, std::memory_order_relaxed);
        d.min.store(~0ull, std::memory_order_relaxed);
        d.max.store(0, std::memory_order_relaxed);
        for (std::atomic<u64>& b : d.buckets)
            b.store(0, std::memory_order_relaxed);
    }
    for (detail::TimerData& t : timers) {
        t.nanos.store(0, std::memory_order_relaxed);
        t.count.store(0, std::memory_order_relaxed);
    }
}

void
StatRegistry::writeJson(JsonWriter& w, bool includeTimers) const
{
    std::lock_guard<std::mutex> lock(mutex);

    w.beginObject();

    w.key("counters").beginObject();
    for (const auto& [path, entry] : entries) {
        if (entry.kind != Kind::Counter)
            continue;
        w.member(path, counters[entry.index].value.load(
                           std::memory_order_relaxed));
    }
    w.endObject();

    w.key("distributions").beginObject();
    for (const auto& [path, entry] : entries) {
        if (entry.kind != Kind::Distribution)
            continue;
        const detail::DistData& d = dists[entry.index];
        const u64 count = d.count.load(std::memory_order_relaxed);
        w.key(path).beginObject();
        w.member("count", count);
        w.member("sum", d.sum.load(std::memory_order_relaxed));
        w.member("min",
                 count ? d.min.load(std::memory_order_relaxed) : 0);
        w.member("max", d.max.load(std::memory_order_relaxed));
        // Trailing empty buckets carry no information; trimming keeps
        // the dump readable without losing exactness.
        std::size_t top = detail::distBuckets;
        while (top > 0 &&
               d.buckets[top - 1].load(std::memory_order_relaxed) == 0)
            --top;
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < top; ++i)
            w.value(d.buckets[i].load(std::memory_order_relaxed));
        w.endArray();
        w.endObject();
    }
    w.endObject();

    if (includeTimers) {
        w.key("timers").beginObject();
        for (const auto& [path, entry] : entries) {
            if (entry.kind != Kind::Timer)
                continue;
            const detail::TimerData& t = timers[entry.index];
            w.key(path).beginObject();
            w.member("count", t.count.load(std::memory_order_relaxed));
            w.member("nanos", t.nanos.load(std::memory_order_relaxed));
            w.endObject();
        }
        w.endObject();
    }

    w.endObject();
}

void
StatRegistry::writeJsonFile(std::ostream& os, bool includeTimers) const
{
    JsonWriter w(os);
    writeJson(w, includeTimers);
    os << '\n';
}

std::string
StatRegistry::jsonString(bool includeTimers) const
{
    std::ostringstream os;
    writeJsonFile(os, includeTimers);
    return os.str();
}

} // namespace xbsp::obs
