/**
 * @file
 * Command-line and environment plumbing for the observability
 * subsystem.  Tools declare the shared flags with addCliOptions(),
 * then construct one ObsSession after parsing; the session enables
 * tracing/progress/log level for the run and writes the stats and
 * trace files when it is destroyed (i.e. after the workload ran).
 *
 * Flags (each with an environment fallback so wrapped invocations —
 * CI, benches — can opt in without touching argv):
 *
 *   --stats-out=FILE    / XBSP_STATS=FILE    stats registry JSON
 *   --trace-out=FILE    / XBSP_TRACE=FILE    Chrome trace JSON
 *   --log-level=LEVEL   / XBSP_LOG_LEVEL=    quiet|warn|inform|debug
 *   --progress                               per-step ETA lines
 *   --stats-timers                           include wall-clock
 *                                            timers in --stats-out
 *                                            (breaks cross-jobs
 *                                            byte-identity, off by
 *                                            default)
 */

#ifndef XBSP_OBS_SETUP_HH
#define XBSP_OBS_SETUP_HH

#include <string>

namespace xbsp
{
class Options;
}

namespace xbsp::obs
{

/** Declare the shared observability options on `opts`. */
void addCliOptions(Options& opts);

/**
 * Applies parsed observability options for the lifetime of a tool
 * run; the destructor writes any requested output files.
 */
class ObsSession
{
  public:
    /** Read the flags declared by addCliOptions() (+ env). */
    explicit ObsSession(const Options& opts);

    /** Env-only configuration (benches without the shared flags). */
    ObsSession();

    /** Writes stats/trace files when requested; warns on failure. */
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /** Flush output files now instead of at destruction. */
    void finish();

  private:
    std::string statsPath;
    std::string tracePath;
    bool includeTimers = false;
    bool finished = false;

    void applyCommon();
};

} // namespace xbsp::obs

#endif // XBSP_OBS_SETUP_HH
