/**
 * @file
 * Command-line and environment plumbing for the observability
 * subsystem.  Tools declare the shared flags with addCliOptions(),
 * then construct one ObsSession after parsing; the session enables
 * tracing/progress/log level for the run, owns the live-telemetry
 * machinery (metrics sampler + exposition endpoint), and writes the
 * stats, trace and manifest files when flushed (or destroyed).
 *
 * Flags (each with an environment fallback so wrapped invocations —
 * CI, benches — can opt in without touching argv):
 *
 *   --stats-out=FILE    / XBSP_STATS=FILE    stats registry JSON
 *   --trace-out=FILE    / XBSP_TRACE=FILE    Chrome trace JSON
 *   --manifest-out=FILE / XBSP_MANIFEST=FILE provenance manifest JSON
 *                                            (defaults to
 *                                            manifest.json next to
 *                                            --stats-out)
 *   --metrics-socket=PATH / XBSP_METRICS=PATH  serve Prometheus text
 *                                            exposition on this
 *                                            unix-domain socket
 *   --metrics-tcp=PORT  / XBSP_METRICS_TCP=  also serve on
 *                                            127.0.0.1:PORT (0 picks
 *                                            an ephemeral port)
 *   --metrics-period-ms=N / XBSP_METRICS_PERIOD_MS=N
 *                                            sampling period (>=1)
 *   --log-level=LEVEL   / XBSP_LOG_LEVEL=    quiet|warn|inform|debug
 *   --progress                               per-step ETA lines
 *   --stats-timers                           include wall-clock
 *                                            timers in --stats-out
 *                                            (breaks cross-jobs
 *                                            byte-identity, off by
 *                                            default)
 *
 * The sampler/endpoint pair is a pure observer (see obs/live): with
 * or without it, at any period and any --jobs, every study result,
 * report, stats dump and trace is byte-identical.
 */

#ifndef XBSP_OBS_SETUP_HH
#define XBSP_OBS_SETUP_HH

#include <memory>
#include <string>

#include "util/types.hh"

namespace xbsp
{
class Options;
}

namespace xbsp::obs
{

class MetricsEndpoint;
class MetricsSampler;

/** Declare the shared observability options on `opts`. */
void addCliOptions(Options& opts);

/**
 * Applies parsed observability options for the lifetime of a tool
 * run; the destructor flushes any requested output files.
 */
class ObsSession
{
  public:
    /** Read the flags declared by addCliOptions() (+ env). */
    explicit ObsSession(const Options& opts);

    /** Env-only configuration (benches without the shared flags). */
    ObsSession();

    /** Flushes output files when requested; warns on failure. */
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /**
     * Stop live telemetry and write the requested output files now
     * instead of at destruction.  Unwritable paths warn and continue
     * — a finished run's results must never be lost to a bad output
     * flag — and every file is error-checked after the write, not
     * just at open.  Idempotent.
     */
    void flush();

    /** The sampler, when --metrics-socket/--metrics-tcp enabled it. */
    MetricsSampler* sampler() { return liveSampler.get(); }

    /** The endpoint, when live telemetry is enabled. */
    MetricsEndpoint* endpoint() { return liveEndpoint.get(); }

    /** Resolved manifest output path ("" when none will be written). */
    const std::string& manifestOutputPath() const { return manifestPath; }

  private:
    std::string statsPath;
    std::string tracePath;
    std::string manifestPath;
    std::string metricsSocketPath;
    int metricsTcpPort = -1;  ///< -1 disabled, 0 ephemeral
    u64 metricsPeriodMs = 100;
    bool includeTimers = false;
    bool flushed = false;

    std::unique_ptr<MetricsSampler> liveSampler;
    std::unique_ptr<MetricsEndpoint> liveEndpoint;

    void applyCommon();
    void startTelemetry();
};

} // namespace xbsp::obs

#endif // XBSP_OBS_SETUP_HH
