#include "obs/progress.hh"

#include "util/logging.hh"

namespace xbsp::obs
{

Progress&
Progress::global()
{
    static Progress instance;
    return instance;
}

void
Progress::enable()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!started) {
            start = std::chrono::steady_clock::now();
            started = true;
        }
    }
    active.store(true, std::memory_order_relaxed);
}

void
Progress::disable()
{
    active.store(false, std::memory_order_relaxed);
}

void
Progress::addSteps(u64 n)
{
    total.fetch_add(n, std::memory_order_relaxed);
}

void
Progress::completeStep(std::string_view label)
{
    const u64 finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!enabled())
        return;

    double elapsed = 0.0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (started) {
            elapsed = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        }
    }
    const u64 announced = total.load(std::memory_order_relaxed);
    if (announced > finished && finished > 0) {
        const double eta = elapsed / static_cast<double>(finished) *
                           static_cast<double>(announced - finished);
        inform("[{}/{}] {} (elapsed {:.1f}s, eta {:.1f}s)", finished,
               announced, label, elapsed, eta);
    } else {
        inform("[{}/{}] {} (elapsed {:.1f}s)", finished,
               announced > finished ? announced : finished, label,
               elapsed);
    }
}

void
Progress::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    total.store(0, std::memory_order_relaxed);
    done.store(0, std::memory_order_relaxed);
    start = std::chrono::steady_clock::now();
    started = true;
}

} // namespace xbsp::obs
