#include "obs/progress.hh"

#include "util/logging.hh"

namespace xbsp::obs
{

namespace
{

/** Nesting depth of ZeroCostScopes open on the calling thread. */
thread_local unsigned zeroCostDepth = 0;

} // namespace

Progress::ZeroCostScope::ZeroCostScope()
{
    ++zeroCostDepth;
}

Progress::ZeroCostScope::~ZeroCostScope()
{
    --zeroCostDepth;
}

Progress&
Progress::global()
{
    static Progress instance;
    return instance;
}

void
Progress::enable()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!started) {
            start = std::chrono::steady_clock::now();
            started = true;
        }
    }
    active.store(true, std::memory_order_relaxed);
}

void
Progress::disable()
{
    active.store(false, std::memory_order_relaxed);
}

void
Progress::addSteps(u64 n)
{
    total.fetch_add(n, std::memory_order_relaxed);
}

double
Progress::elapsedSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex);
    if (!started)
        return 0.0;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
Progress::etaSeconds() const
{
    const u64 finished = done.load(std::memory_order_relaxed);
    const u64 announced = total.load(std::memory_order_relaxed);
    const u64 zeroCost = cheap.load(std::memory_order_relaxed);
    // Cache-resolved steps are free: extrapolating from them would
    // project the near-zero warm-step cost (or dilute the real cost)
    // onto the remaining — possibly cold — steps.
    const u64 costly = finished > zeroCost ? finished - zeroCost : 0;
    if (announced <= finished || costly == 0)
        return -1.0;
    return elapsedSeconds() / static_cast<double>(costly) *
           static_cast<double>(announced - finished);
}

void
Progress::completeStep(std::string_view label)
{
    const u64 finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (zeroCostDepth > 0)
        cheap.fetch_add(1, std::memory_order_relaxed);
    if (!enabled())
        return;

    const double elapsed = elapsedSeconds();
    const u64 announced = total.load(std::memory_order_relaxed);
    const double eta = etaSeconds();
    if (announced > finished && eta >= 0.0) {
        inform("[{}/{}] {} (elapsed {:.1f}s, eta {:.1f}s)", finished,
               announced, label, elapsed, eta);
    } else {
        inform("[{}/{}] {} (elapsed {:.1f}s)", finished,
               announced > finished ? announced : finished, label,
               elapsed);
    }
}

void
Progress::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    total.store(0, std::memory_order_relaxed);
    done.store(0, std::memory_order_relaxed);
    cheap.store(0, std::memory_order_relaxed);
    start = std::chrono::steady_clock::now();
    started = true;
}

} // namespace xbsp::obs
