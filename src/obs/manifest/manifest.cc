#include "obs/manifest/manifest.hh"

#include <fstream>

#include "util/json.hh"

namespace xbsp::obs
{

RunManifest&
RunManifest::global()
{
    static RunManifest instance;
    return instance;
}

void
RunManifest::addRun(ManifestRun run)
{
    std::lock_guard<std::mutex> lock(mutex);
    collected.push_back(std::move(run));
}

std::vector<ManifestRun>
RunManifest::runs() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return collected;
}

bool
RunManifest::empty() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return collected.empty();
}

std::size_t
RunManifest::runCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return collected.size();
}

void
RunManifest::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    collected.clear();
}

void
RunManifest::writeJson(JsonWriter& w) const
{
    const std::vector<ManifestRun> snapshot = runs();
    w.beginObject();
    w.key("runs");
    w.beginArray();
    for (const ManifestRun& run : snapshot) {
        w.beginObject();
        w.member("label", run.label);
        w.member("configDigest", run.configDigest);
        w.member("startWallMillis", run.startWallMillis);
        w.member("wallNanos", run.wallNanos);
        w.member("workers", run.workers);
        w.key("nodes");
        w.beginArray();
        for (const ManifestEntry& entry : run.entries) {
            w.beginObject();
            w.member("node", entry.node);
            w.member("label", entry.label);
            w.member("stage", entry.stage);
            w.member("status", entry.status);
            w.member("probe", entry.probe);
            w.member("wallNanos", entry.wallNanos);
            w.member("busyNanos", entry.busyNanos);
            w.member("worker", entry.worker);
            w.member("storeKey", entry.storeKey);
            if (!entry.remoteWorker.empty())
                w.member("remoteWorker", entry.remoteWorker);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

bool
RunManifest::writeJsonFile(const std::string& path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    {
        JsonWriter w(os);
        writeJson(w);
    }
    os << '\n';
    os.flush();
    return os.good();
}

} // namespace xbsp::obs
