/**
 * @file
 * Per-run provenance manifests.  Every TaskGraph::run() appends one
 * ManifestRun to the process-global RunManifest: one entry per node,
 * in node-id order (the graph's topological/commit order), recording
 * what the run actually did — which stage, whether the artifact
 * store served it (probe "hit") or it computed ("miss"; "none" for
 * unprobed nodes), how long it ran on the wall and on a worker,
 * which worker executed it, and the content-address (stage key) of
 * what it produced.  ObsSession::flush() writes the collected runs
 * as `manifest.json` next to --stats-out, and the bench harness
 * embeds them into BENCH_pipeline.json, so a benchmark number can
 * always be traced back to exactly which artifacts were rebuilt
 * versus replayed.
 *
 * Store keys are captured through lazy provenance callbacks
 * (TaskGraph::setProvenance) evaluated only for nodes that actually
 * completed — some stage keys (a binary's detailed-run key) only
 * exist after upstream matching has resolved.
 *
 * Entry order is load-bearing: tests assert it equals node-id order,
 * and that per-run probe tallies agree with the scheduler's
 * store-probe counters.  Timing/worker fields are genuinely
 * nondeterministic; everything else is bit-stable across --jobs.
 */

#ifndef XBSP_OBS_MANIFEST_MANIFEST_HH
#define XBSP_OBS_MANIFEST_MANIFEST_HH

#include <mutex>
#include <string>
#include <vector>

#include "util/types.hh"

namespace xbsp
{
class JsonWriter;
}

namespace xbsp::obs
{

/** Provenance of one pipeline node. */
struct ManifestEntry
{
    u64 node = 0;             ///< NodeId == position in the run
    std::string label;        ///< display name ("profile gzip/a")
    std::string stage;        ///< stage kind ("compile", "profile")
    std::string status;       ///< nodeStatusName: "done", "cache", ...
    std::string probe;        ///< "hit", "miss", or "none"
    u64 wallNanos = 0;        ///< ready -> settled, wall clock
    u64 busyNanos = 0;        ///< work-function execution time
    u64 worker = 0;           ///< pool worker id (0 = scheduler)
    std::string storeKey;     ///< stage key hex ("" when none)

    /**
     * Name of the remote worker process that computed this node's
     * artifacts ("" for locally executed nodes).  Emitted into the
     * JSON only when set, so manifests of purely local runs are
     * byte-identical to pre-distribution ones.
     */
    std::string remoteWorker;
};

/** One TaskGraph execution's worth of entries. */
struct ManifestRun
{
    std::string label;         ///< graph label ("study gzip")
    std::string configDigest;  ///< study config hash ("" when unset)
    u64 startWallMillis = 0;   ///< system clock at run() entry
    u64 wallNanos = 0;         ///< run() entry -> exit
    u64 workers = 0;           ///< configured pool size
    std::vector<ManifestEntry> entries;  ///< node-id order
};

/** Process-global accumulator; see the file comment. */
class RunManifest
{
  public:
    RunManifest() = default;

    RunManifest(const RunManifest&) = delete;
    RunManifest& operator=(const RunManifest&) = delete;

    /** The manifest every TaskGraph::run() reports into. */
    static RunManifest& global();

    void addRun(ManifestRun run);

    /** Snapshot of the collected runs. */
    std::vector<ManifestRun> runs() const;

    bool empty() const;
    std::size_t runCount() const;

    /** Drop everything (tests, repeated in-process runs). */
    void clear();

    /**
     * Emit the manifest as one JSON object value: {"runs": [...]}
     * with entries in recorded (node-id) order.
     */
    void writeJson(JsonWriter& w) const;

    /**
     * Write a standalone manifest.json.  Returns false (no throw) on
     * I/O failure — provenance must never kill a finished run.
     */
    bool writeJsonFile(const std::string& path) const;

  private:
    mutable std::mutex mutex;
    std::vector<ManifestRun> collected;
};

} // namespace xbsp::obs

#endif // XBSP_OBS_MANIFEST_MANIFEST_HH
