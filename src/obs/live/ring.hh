/**
 * @file
 * Lock-free ring of timestamped metric samples, the hand-off point
 * between the MetricsSampler thread (single producer) and however
 * many endpoint / `xbsp top` readers are attached.  Samples are
 * immutable once published: the producer builds a MetricSample,
 * wraps it in a shared_ptr<const> and stores it into the next slot
 * with an atomic shared_ptr exchange, so readers either see the old
 * complete sample or the new complete sample — never a torn one —
 * and a reader holding a sample keeps it alive even after the ring
 * slot has been recycled.  No mutex anywhere on the read or write
 * path (the shared_ptr control block does the reclamation).
 *
 * Each sample carries both cumulative values and the delta since the
 * previous sample, so consumers get rates without having to diff two
 * fetches themselves.
 */

#ifndef XBSP_OBS_LIVE_RING_HH
#define XBSP_OBS_LIVE_RING_HH

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "obs/stats.hh"
#include "util/types.hh"

namespace xbsp::obs
{

/** One stat series inside a sample: cumulative state plus delta. */
struct SamplePoint
{
    std::string path;
    StatKind kind = StatKind::Counter;
    u64 value = 0;       ///< counter value / dist sum / timer nanos
    u64 count = 0;       ///< dist/timer sample count (0 for counters)
    u64 deltaValue = 0;  ///< value change since the previous sample
    u64 deltaCount = 0;  ///< count change since the previous sample
};

/** One timestamped snapshot of every registered stat. */
struct MetricSample
{
    u64 seq = 0;             ///< monotone sample index (1-based)
    u64 monotonicNanos = 0;  ///< steady clock since sampler start
    u64 wallMillis = 0;      ///< system clock, ms since the epoch
    u64 deltaNanos = 0;      ///< monotonic gap to the previous sample

    std::vector<SamplePoint> stats;  ///< sorted by path

    // Synthetic gauges sampled outside the registry (the sampler is
    // a pure observer: it must not register stats of its own, or a
    // sampling run's stats dump would differ from a plain run's).
    u64 progressDone = 0;
    u64 progressTotal = 0;
    u64 progressZeroCost = 0;
    double progressElapsedSeconds = 0.0;
    double progressEtaSeconds = -1.0;  ///< negative: no estimate
    u64 poolWorkers = 0;
};

/** Fixed-capacity ring of published samples; see the file comment. */
class SampleRing
{
  public:
    explicit SampleRing(std::size_t capacity)
        : slots(capacity ? capacity : 1)
    {
    }

    SampleRing(const SampleRing&) = delete;
    SampleRing& operator=(const SampleRing&) = delete;

    std::size_t capacity() const { return slots.size(); }

    /** Samples published so far (monotone; may exceed capacity). */
    u64
    published() const
    {
        return head.load(std::memory_order_acquire);
    }

    /** Publish the next sample (single producer). */
    void
    push(std::shared_ptr<const MetricSample> sample)
    {
        const u64 n = head.load(std::memory_order_relaxed);
        slots[n % slots.size()].store(std::move(sample),
                                      std::memory_order_release);
        head.store(n + 1, std::memory_order_release);
    }

    /** Most recent sample; nullptr before the first push. */
    std::shared_ptr<const MetricSample>
    latest() const
    {
        const u64 n = head.load(std::memory_order_acquire);
        if (n == 0)
            return nullptr;
        return slots[(n - 1) % slots.size()].load(
            std::memory_order_acquire);
    }

    /**
     * Up to `n` most recent samples, oldest first.  Samples replaced
     * while reading are detected by their seq and dropped, so the
     * returned window is always consistent and strictly increasing.
     */
    std::vector<std::shared_ptr<const MetricSample>>
    window(std::size_t n) const
    {
        std::vector<std::shared_ptr<const MetricSample>> out;
        const u64 end = head.load(std::memory_order_acquire);
        const u64 want = std::min<u64>({n, end, slots.size()});
        u64 lastSeq = ~0ull;
        for (u64 i = 0; i < want; ++i) {
            const u64 idx = end - 1 - i;
            auto sample = slots[idx % slots.size()].load(
                std::memory_order_acquire);
            // A slot the producer lapped mid-read holds a *newer*
            // sample than the one before it in our walk; skip it.
            if (!sample || sample->seq >= lastSeq)
                continue;
            lastSeq = sample->seq;
            out.push_back(std::move(sample));
        }
        std::reverse(out.begin(), out.end());
        return out;
    }

  private:
    std::vector<std::atomic<std::shared_ptr<const MetricSample>>> slots;
    std::atomic<u64> head{0};
};

} // namespace xbsp::obs

#endif // XBSP_OBS_LIVE_RING_HH
