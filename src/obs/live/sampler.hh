/**
 * @file
 * Background metrics sampler: a thread that periodically snapshots a
 * StatRegistry (plus the Progress meter and the pool size) into the
 * lock-free SampleRing, computing per-series deltas against the
 * previous sample on the way.  The metrics endpoint and `xbsp top`
 * read the ring; nothing in the pipeline ever waits on the sampler.
 *
 * The sampler is a **pure observer**: it reads stats through
 * StatRegistry::liveStats() and never registers or mutates a stat,
 * so a run with sampling enabled produces byte-identical stats
 * dumps, traces and reports to a run without it — at any --jobs
 * count and any sampling period.  Its own bookkeeping (tick count)
 * lives in plain members and is exported only through the exposition
 * endpoint, never through the registry.
 */

#ifndef XBSP_OBS_LIVE_SAMPLER_HH
#define XBSP_OBS_LIVE_SAMPLER_HH

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/live/ring.hh"

namespace xbsp::obs
{

class StatRegistry;

/** Periodic StatRegistry -> SampleRing pump; see the file comment. */
class MetricsSampler
{
  public:
    struct Config
    {
        /** Snapshot period; clamped to >= 1 ms. */
        u64 periodMillis = 100;

        /** Ring capacity, in samples. */
        std::size_t ringCapacity = 128;
    };

    /** Sample `registry` (tests pass a private one). */
    explicit MetricsSampler(StatRegistry& registry, Config config);

    /** Stops the thread if still running. */
    ~MetricsSampler();

    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    /** Launch the sampling thread (idempotent). */
    void start();

    /** Stop and join the sampling thread (idempotent). */
    void stop();

    bool running() const;

    /**
     * Take one snapshot on the calling thread right now.  start() is
     * not required: tests and one-shot dumps can drive the sampler
     * manually; the endpoint uses it so the very first scrape never
     * has to wait out a period.
     */
    void sampleOnce();

    /** Most recent sample; nullptr before the first snapshot. */
    std::shared_ptr<const MetricSample> latest() const;

    /** The ring itself, for windowed consumers. */
    const SampleRing& ring() const { return samples; }

    /** Snapshots taken so far. */
    u64 ticks() const { return samples.published(); }

    u64 periodMillis() const { return cfg.periodMillis; }

  private:
    StatRegistry& registry;
    Config cfg;
    SampleRing samples;

    std::thread thread;
    mutable std::mutex mutex;       ///< guards the thread lifecycle
    std::mutex snapshotMutex;       ///< serializes sampleOnce()
    std::condition_variable wake;
    bool stopping = false;
    bool threadRunning = false;

    std::shared_ptr<const MetricSample> prev;  ///< snapshotMutex
    std::chrono::steady_clock::time_point epoch;

    void loop();
    std::shared_ptr<MetricSample> buildSample();
};

} // namespace xbsp::obs

#endif // XBSP_OBS_LIVE_SAMPLER_HH
