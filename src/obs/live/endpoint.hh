/**
 * @file
 * Minimal metrics endpoint: a listener thread serving the Prometheus
 * text exposition over a unix-domain socket (and, optionally, a
 * loopback TCP socket) with single-shot HTTP/1.0 responses.  Every
 * request — whatever the path — gets the current exposition document
 * from the body callback, `Content-Type: text/plain; version=0.0.4`,
 * then the connection closes.  That is all a Prometheus scraper,
 * `curl --unix-socket`, or `xbsp top` needs; there is deliberately no
 * routing, keep-alive, or TLS.
 *
 * The endpoint is part of the pure-observer telemetry layer: it only
 * ever *reads* (through the callback, which renders a ring sample),
 * so serving scrapes can never perturb study results.
 *
 * httpGetUnix()/httpGetTcp() are the matching one-shot clients used
 * by `xbsp top` and the tests; they return the response body.
 */

#ifndef XBSP_OBS_LIVE_ENDPOINT_HH
#define XBSP_OBS_LIVE_ENDPOINT_HH

#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace xbsp::obs
{

/** Unix-socket (+ optional loopback TCP) exposition server. */
class MetricsEndpoint
{
  public:
    struct Config
    {
        /** Unix-domain socket path; empty disables the unix socket. */
        std::string unixPath;

        /**
         * Loopback TCP port; -1 disables TCP, 0 binds an ephemeral
         * port (read it back with boundTcpPort()).
         */
        int tcpPort = -1;
    };

    /** `body` is called per request from the listener thread. */
    MetricsEndpoint(Config config, std::function<std::string()> body);

    /** Stops and closes sockets if still running. */
    ~MetricsEndpoint();

    MetricsEndpoint(const MetricsEndpoint&) = delete;
    MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

    /**
     * Bind, listen and launch the accept thread.  Throws
     * std::runtime_error if no configured socket could be bound.
     * Idempotent while running.
     */
    void start();

    /** Stop the thread and close/unlink sockets (idempotent). */
    void stop();

    bool running() const;

    /** Actual TCP port after start() (0 when TCP is disabled). */
    int boundTcpPort() const;

    const std::string& unixPath() const { return cfg.unixPath; }

  private:
    Config cfg;
    std::function<std::string()> body;

    std::thread thread;
    mutable std::mutex mutex;
    bool threadRunning = false;

    std::vector<int> listenFds;
    int unixFd = -1;
    int tcpFd = -1;
    int tcpPortBound = 0;
    int wakePipe[2] = {-1, -1};  ///< self-pipe to interrupt poll()

    void loop();
    void serveOne(int fd);
    void closeSockets();
};

/** GET the exposition from a unix-socket endpoint; returns the body.
 *  Throws std::runtime_error on connect/read failure. */
std::string httpGetUnix(const std::string& socketPath);

/** GET the exposition from a loopback TCP endpoint. */
std::string httpGetTcp(int port);

} // namespace xbsp::obs

#endif // XBSP_OBS_LIVE_ENDPOINT_HH
