/**
 * @file
 * Prometheus text-exposition encoding of one MetricSample (format
 * version 0.0.4 — the `text/plain; version=0.0.4` format every
 * Prometheus scraper and `promtool check metrics` accepts).
 *
 * Series naming: the registry's dotted path is sanitized (every
 * character outside [a-zA-Z0-9_] becomes '_') and prefixed "xbsp_".
 * Per stat kind:
 *
 *   counter p       -> xbsp_<p>_total              (TYPE counter)
 *   distribution p  -> xbsp_<p>_sum, xbsp_<p>_count  (TYPE counter)
 *   timer p         -> xbsp_<p>_nanos_total,
 *                      xbsp_<p>_count              (TYPE counter)
 *
 * plus, for every cumulative series, a companion `..._rate` gauge:
 * the per-second rate over the sample's delta window (the ring
 * stores deltas exactly so consumers get rates without diffing two
 * scrapes).  Synthetic gauges (progress, pool size, sampler ticks)
 * carry the state that lives outside the StatRegistry.
 *
 * parseExposition() is the matching reader used by `xbsp top` and
 * the tests: it understands exactly the subset this encoder emits
 * (comments, `name value` lines, no labels).
 */

#ifndef XBSP_OBS_LIVE_EXPOSITION_HH
#define XBSP_OBS_LIVE_EXPOSITION_HH

#include <map>
#include <string>
#include <string_view>

#include "obs/live/ring.hh"

namespace xbsp::obs
{

/** "kmeans.estep.distances" -> "xbsp_kmeans_estep_distances". */
std::string promSeriesName(std::string_view path);

/** Render `sample` as one exposition document. */
std::string renderExposition(const MetricSample& sample);

/**
 * Parse an exposition document into name -> value.  Throws
 * std::runtime_error on lines that are neither comments, blank, nor
 * `name value` pairs.
 */
std::map<std::string, double> parseExposition(std::string_view text);

} // namespace xbsp::obs

#endif // XBSP_OBS_LIVE_EXPOSITION_HH
