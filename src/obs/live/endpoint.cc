#include "obs/live/endpoint.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/format.hh"
#include "util/types.hh"

namespace xbsp::obs
{

namespace
{

/** Write all of `data`, tolerating short writes; false on error.
 *  MSG_NOSIGNAL: a scraper that hung up mid-response must surface as
 *  EPIPE, not a SIGPIPE that kills the instrumented process. */
bool
writeAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read until the blank line ending the request head (best effort:
 *  we answer every request identically, so the head's content never
 *  matters — we just drain it so the client's write can finish). */
void
drainRequestHead(int fd)
{
    std::string head;
    char buf[512];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos &&
           head.size() < 16384) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        head.append(buf, static_cast<std::size_t>(n));
    }
}

int
makeUnixListener(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            format("metrics socket path too long: {}", path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_UNIX): {}",
                                        std::strerror(errno)));
    // A previous run's socket file would make bind fail; it is dead
    // weight by definition (a live listener would still hold it, and
    // two concurrent runs must use distinct paths anyway).
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("bind({}): {}", path,
                                        std::strerror(err)));
    }
    if (::listen(fd, 16) < 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throw std::runtime_error(format("listen({}): {}", path,
                                        std::strerror(err)));
    }
    return fd;
}

int
makeTcpListener(int port, int& boundPort)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_INET): {}",
                                        std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<u16>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(
            format("bind/listen(127.0.0.1:{}): {}", port,
                   std::strerror(err)));
    }
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) <
        0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("getsockname: {}",
                                        std::strerror(err)));
    }
    boundPort = ntohs(got.sin_port);
    return fd;
}

/** Connect, send a GET, return the body after the header break. */
std::string
httpGetFd(int fd)
{
    if (!writeAll(fd,
                  "GET /metrics HTTP/1.0\r\n"
                  "Host: xbsp\r\n"
                  "\r\n")) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("metrics request write: {}",
                                        std::strerror(err)));
    }
    ::shutdown(fd, SHUT_WR);

    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            throw std::runtime_error(
                format("metrics response read: {}",
                       std::strerror(err)));
        }
        if (n == 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const std::size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos)
        throw std::runtime_error("metrics response has no header end");
    if (response.compare(0, 12, "HTTP/1.0 200") != 0)
        throw std::runtime_error(
            format("metrics endpoint answered: {}",
                   response.substr(0, response.find('\r'))));
    return response.substr(split + 4);
}

} // namespace

MetricsEndpoint::MetricsEndpoint(Config config,
                                 std::function<std::string()> bodyFn)
    : cfg(std::move(config)), body(std::move(bodyFn))
{
}

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

void
MetricsEndpoint::start()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (threadRunning)
        return;
    if (cfg.unixPath.empty() && cfg.tcpPort < 0)
        throw std::runtime_error("metrics endpoint has no socket "
                                 "configured");

    try {
        if (!cfg.unixPath.empty()) {
            unixFd = makeUnixListener(cfg.unixPath);
            listenFds.push_back(unixFd);
        }
        if (cfg.tcpPort >= 0) {
            tcpFd = makeTcpListener(cfg.tcpPort, tcpPortBound);
            listenFds.push_back(tcpFd);
        }
        if (::pipe(wakePipe) < 0)
            throw std::runtime_error(format("pipe: {}",
                                            std::strerror(errno)));
    } catch (...) {
        closeSockets();
        throw;
    }

    threadRunning = true;
    thread = std::thread([this] { loop(); });
}

void
MetricsEndpoint::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!threadRunning)
            return;
    }
    // Wake poll(); the thread exits when it sees the pipe readable.
    const char byte = 0;
    [[maybe_unused]] const ssize_t n =
        ::write(wakePipe[1], &byte, 1);
    thread.join();
    std::lock_guard<std::mutex> lock(mutex);
    threadRunning = false;
    closeSockets();
}

bool
MetricsEndpoint::running() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return threadRunning;
}

int
MetricsEndpoint::boundTcpPort() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return tcpPortBound;
}

void
MetricsEndpoint::loop()
{
    std::vector<pollfd> fds;
    for (const int fd : listenFds)
        fds.push_back({fd, POLLIN, 0});
    fds.push_back({wakePipe[0], POLLIN, 0});

    for (;;) {
        for (pollfd& p : fds)
            p.revents = 0;
        const int ready =
            ::poll(fds.data(), fds.size(), /*timeout ms=*/100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds.back().revents & POLLIN)
            return;  // stop() poked the wake pipe
        for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            const int client = ::accept(fds[i].fd, nullptr, nullptr);
            if (client >= 0)
                serveOne(client);
        }
    }
}

void
MetricsEndpoint::serveOne(int fd)
{
    drainRequestHead(fd);

    std::string payload;
    try {
        payload = body();
    } catch (const std::exception& e) {
        const std::string error =
            format("HTTP/1.0 500 Internal Server Error\r\n"
                   "Content-Type: text/plain\r\n"
                   "Connection: close\r\n\r\n{}\n",
                   e.what());
        writeAll(fd, error);
        ::close(fd);
        return;
    }

    const std::string head = format(
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: {}\r\n"
        "Connection: close\r\n\r\n",
        payload.size());
    writeAll(fd, head) && writeAll(fd, payload);
    ::close(fd);
}

void
MetricsEndpoint::closeSockets()
{
    for (const int fd : listenFds)
        ::close(fd);
    listenFds.clear();
    if (unixFd >= 0 && !cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());
    unixFd = -1;
    tcpFd = -1;
    for (int& fd : wakePipe) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
}

std::string
httpGetUnix(const std::string& socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error(
            format("metrics socket path too long: {}", socketPath));
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_UNIX): {}",
                                        std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(format("connect({}): {}", socketPath,
                                        std::strerror(err)));
    }
    return httpGetFd(fd);
}

std::string
httpGetTcp(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(format("socket(AF_INET): {}",
                                        std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<u16>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(
            format("connect(127.0.0.1:{}): {}", port,
                   std::strerror(err)));
    }
    return httpGetFd(fd);
}

} // namespace xbsp::obs
