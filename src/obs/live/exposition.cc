#include "obs/live/exposition.hh"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "util/format.hh"

namespace xbsp::obs
{

std::string
promSeriesName(std::string_view path)
{
    std::string out = "xbsp_";
    for (const char c : path) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    // A digit straight after the prefix would still be legal, but a
    // path can't start a series with one anyway (xbsp_ leads).
    return out;
}

namespace
{

/** Render a double the way Prometheus likes it (no exponent caps). */
std::string
promNumber(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

class ExpositionBuilder
{
  public:
    void
    counter(const std::string& name, u64 value)
    {
        type(name, "counter");
        out += name;
        out += ' ';
        out += std::to_string(value);
        out += '\n';
    }

    void
    gauge(const std::string& name, double value)
    {
        type(name, "gauge");
        out += name;
        out += ' ';
        out += promNumber(value);
        out += '\n';
    }

    std::string take() { return std::move(out); }

  private:
    std::string out;

    void
    type(const std::string& name, const char* kind)
    {
        out += "# TYPE ";
        out += name;
        out += ' ';
        out += kind;
        out += '\n';
    }
};

/** Per-second rate over the sample's delta window (0 if no window). */
double
rateOf(u64 delta, u64 deltaNanos)
{
    if (deltaNanos == 0)
        return 0.0;
    return static_cast<double>(delta) * 1e9 /
           static_cast<double>(deltaNanos);
}

} // namespace

std::string
renderExposition(const MetricSample& sample)
{
    ExpositionBuilder b;

    for (const SamplePoint& point : sample.stats) {
        const std::string base = promSeriesName(point.path);
        switch (point.kind) {
          case StatKind::Counter:
            b.counter(base + "_total", point.value);
            if (sample.deltaNanos) {
                b.gauge(base + "_rate",
                        rateOf(point.deltaValue, sample.deltaNanos));
            }
            break;
          case StatKind::Distribution:
            b.counter(base + "_sum", point.value);
            b.counter(base + "_count", point.count);
            break;
          case StatKind::Timer:
            b.counter(base + "_nanos_total", point.value);
            b.counter(base + "_count", point.count);
            if (sample.deltaNanos) {
                // Busy fraction: timer-nanos accumulated per elapsed
                // nanosecond (can exceed 1 with several workers).
                b.gauge(base + "_busy_ratio",
                        static_cast<double>(point.deltaValue) /
                            static_cast<double>(sample.deltaNanos));
            }
            break;
        }
    }

    // Synthetic state living outside the registry (see sampler.hh:
    // the sampler must not register stats of its own).
    b.counter("xbsp_sampler_samples_total", sample.seq);
    b.gauge("xbsp_sample_wall_milliseconds",
            static_cast<double>(sample.wallMillis));
    b.gauge("xbsp_sample_monotonic_seconds",
            static_cast<double>(sample.monotonicNanos) / 1e9);
    b.gauge("xbsp_sample_delta_seconds",
            static_cast<double>(sample.deltaNanos) / 1e9);
    b.gauge("xbsp_pool_workers",
            static_cast<double>(sample.poolWorkers));
    b.gauge("xbsp_progress_done",
            static_cast<double>(sample.progressDone));
    // "steps", not "total": the _total suffix is reserved for
    // counters by the exposition format, and this is a gauge.
    b.gauge("xbsp_progress_steps",
            static_cast<double>(sample.progressTotal));
    b.gauge("xbsp_progress_zero_cost",
            static_cast<double>(sample.progressZeroCost));
    b.gauge("xbsp_progress_elapsed_seconds",
            sample.progressElapsedSeconds);
    b.gauge("xbsp_progress_eta_seconds", sample.progressEtaSeconds);
    return b.take();
}

std::map<std::string, double>
parseExposition(std::string_view text)
{
    std::map<std::string, double> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        const std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string_view::npos)
            throw std::runtime_error(
                format("bad exposition line '{}'",
                       std::string(line)));
        const std::string name(line.substr(0, space));
        const std::string value(line.substr(space + 1));
        char* end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size())
            throw std::runtime_error(
                format("bad exposition value '{}' for '{}'", value,
                       name));
        out[name] = parsed;
    }
    return out;
}

} // namespace xbsp::obs
