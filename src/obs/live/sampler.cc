#include "obs/live/sampler.hh"

#include <chrono>

#include "obs/progress.hh"
#include "obs/stats.hh"
#include "util/threadpool.hh"

namespace xbsp::obs
{

MetricsSampler::MetricsSampler(StatRegistry& reg, Config config)
    : registry(reg), cfg(config),
      samples(config.ringCapacity ? config.ringCapacity : 1),
      epoch(std::chrono::steady_clock::now())
{
    if (cfg.periodMillis == 0)
        cfg.periodMillis = 1;
}

MetricsSampler::~MetricsSampler()
{
    stop();
}

void
MetricsSampler::start()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (threadRunning)
        return;
    stopping = false;
    threadRunning = true;
    thread = std::thread([this] { loop(); });
}

void
MetricsSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!threadRunning)
            return;
        stopping = true;
    }
    wake.notify_all();
    thread.join();
    std::lock_guard<std::mutex> lock(mutex);
    threadRunning = false;
}

bool
MetricsSampler::running() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return threadRunning;
}

void
MetricsSampler::loop()
{
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
        lock.unlock();
        sampleOnce();
        lock.lock();
        wake.wait_for(lock,
                      std::chrono::milliseconds(cfg.periodMillis),
                      [this] { return stopping; });
    }
}

std::shared_ptr<MetricSample>
MetricsSampler::buildSample()
{
    auto sample = std::make_shared<MetricSample>();
    const auto now = std::chrono::steady_clock::now();
    sample->monotonicNanos = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             epoch)
            .count());
    sample->wallMillis = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());

    const std::vector<LiveStat> stats = registry.liveStats();
    sample->stats.reserve(stats.size());
    for (const LiveStat& stat : stats) {
        SamplePoint point;
        point.path = stat.path;
        point.kind = stat.kind;
        point.value = stat.value;
        point.count = stat.count;
        sample->stats.push_back(std::move(point));
    }

    const Progress& progress = Progress::global();
    sample->progressDone = progress.completed();
    sample->progressTotal = progress.announced();
    sample->progressZeroCost = progress.zeroCostCompleted();
    sample->progressElapsedSeconds = progress.elapsedSeconds();
    sample->progressEtaSeconds = progress.etaSeconds();
    sample->poolWorkers = configuredJobs();
    return sample;
}

void
MetricsSampler::sampleOnce()
{
    // One snapshot at a time: the periodic thread and any manual
    // sampleOnce() caller serialize here, keeping the seq/delta
    // chain consistent.  Readers never take this mutex.
    std::lock_guard<std::mutex> snapshotLock(snapshotMutex);
    const std::shared_ptr<const MetricSample> previous = prev;

    auto sample = buildSample();
    sample->seq = (previous ? previous->seq : 0) + 1;
    if (previous) {
        sample->deltaNanos =
            sample->monotonicNanos - previous->monotonicNanos;
        // Both stat lists are sorted by path (liveStats walks a
        // sorted map) and paths are only ever added, so a merge walk
        // matches series in O(n).
        std::size_t j = 0;
        for (SamplePoint& point : sample->stats) {
            while (j < previous->stats.size() &&
                   previous->stats[j].path < point.path)
                ++j;
            if (j < previous->stats.size() &&
                previous->stats[j].path == point.path) {
                const SamplePoint& old = previous->stats[j];
                point.deltaValue = point.value - old.value;
                point.deltaCount = point.count - old.count;
            } else {
                point.deltaValue = point.value;
                point.deltaCount = point.count;
            }
        }
    } else {
        for (SamplePoint& point : sample->stats) {
            point.deltaValue = point.value;
            point.deltaCount = point.count;
        }
    }

    std::shared_ptr<const MetricSample> published = std::move(sample);
    prev = published;
    samples.push(std::move(published));
}

std::shared_ptr<const MetricSample>
MetricsSampler::latest() const
{
    return samples.latest();
}

} // namespace xbsp::obs
