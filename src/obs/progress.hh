/**
 * @file
 * Coarse progress/ETA reporting for long study runs (--progress).
 * Pipeline stages declare how many steps they will contribute with
 * addSteps() and report each completion with completeStep(); the
 * meter prints one "[done/total] label (elapsed Xs, eta Ys)" line per
 * completion through the serialized log sink.  The ETA is a simple
 * linear extrapolation — steps are heterogeneous, so it is a hint,
 * not a promise.  Disabled (the default) the meter only counts.
 */

#ifndef XBSP_OBS_PROGRESS_HH
#define XBSP_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <mutex>
#include <string_view>

#include "util/types.hh"

namespace xbsp::obs
{

/** Process-wide step counter with optional ETA lines. */
class Progress
{
  public:
    Progress() = default;

    Progress(const Progress&) = delete;
    Progress& operator=(const Progress&) = delete;

    /** The meter the pipeline reports into. */
    static Progress& global();

    /** Turn printing on/off (counting always happens). */
    void enable();
    void disable();

    bool
    enabled() const
    {
        return active.load(std::memory_order_relaxed);
    }

    /** Announce `n` upcoming steps (callable from any stage). */
    void addSteps(u64 n);

    /** Report one finished step; prints an ETA line when enabled. */
    void completeStep(std::string_view label);

    /** Zero counts and restart the clock (tests, repeated runs). */
    void reset();

    u64
    completed() const
    {
        return done.load(std::memory_order_relaxed);
    }

    u64
    announced() const
    {
        return total.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> active{false};
    std::atomic<u64> total{0};
    std::atomic<u64> done{0};
    std::mutex mutex;
    std::chrono::steady_clock::time_point start;
    bool started = false;
};

} // namespace xbsp::obs

#endif // XBSP_OBS_PROGRESS_HH
