/**
 * @file
 * Coarse progress/ETA reporting for long study runs (--progress).
 * Pipeline stages declare how many steps they will contribute with
 * addSteps() and report each completion with completeStep(); the
 * meter prints one "[done/total] label (elapsed Xs, eta Ys)" line per
 * completion through the serialized log sink.  The ETA is a simple
 * linear extrapolation — steps are heterogeneous, so it is a hint,
 * not a promise.  Disabled (the default) the meter only counts.
 *
 * Steps completed inside a ZeroCostScope (the pipeline scheduler
 * opens one around cache-probe-resolved nodes, which only decode
 * already-stored artifacts) are counted as **zero-cost**: they still
 * advance [done/total], but the ETA extrapolates from the average
 * cost of the *costly* steps only.  Without this, a warm run's
 * near-instant cache hits would be averaged as if they were real
 * work — wildly overestimating the remaining time whenever cold and
 * warm stages mix.
 */

#ifndef XBSP_OBS_PROGRESS_HH
#define XBSP_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <mutex>
#include <string_view>

#include "util/types.hh"

namespace xbsp::obs
{

/** Process-wide step counter with optional ETA lines. */
class Progress
{
  public:
    Progress() = default;

    Progress(const Progress&) = delete;
    Progress& operator=(const Progress&) = delete;

    /** The meter the pipeline reports into. */
    static Progress& global();

    /** Turn printing on/off (counting always happens). */
    void enable();
    void disable();

    bool
    enabled() const
    {
        return active.load(std::memory_order_relaxed);
    }

    /** Announce `n` upcoming steps (callable from any stage). */
    void addSteps(u64 n);

    /** Report one finished step; prints an ETA line when enabled. */
    void completeStep(std::string_view label);

    /** Zero counts and restart the clock (tests, repeated runs). */
    void reset();

    u64
    completed() const
    {
        return done.load(std::memory_order_relaxed);
    }

    u64
    announced() const
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Steps completed under a ZeroCostScope (cache-resolved). */
    u64
    zeroCostCompleted() const
    {
        return cheap.load(std::memory_order_relaxed);
    }

    /** Wall-clock seconds since the meter started (0 before). */
    double elapsedSeconds() const;

    /**
     * Linear-extrapolation ETA in seconds over the costly steps
     * only; negative when no estimate is possible yet (nothing
     * announced, nothing costly done, or already finished).
     */
    double etaSeconds() const;

    /**
     * RAII marker: completeStep() calls made by the current *thread*
     * while a scope is open count as zero-cost.  Nests.
     */
    class ZeroCostScope
    {
      public:
        ZeroCostScope();
        ~ZeroCostScope();

        ZeroCostScope(const ZeroCostScope&) = delete;
        ZeroCostScope& operator=(const ZeroCostScope&) = delete;
    };

  private:
    std::atomic<bool> active{false};
    std::atomic<u64> total{0};
    std::atomic<u64> done{0};
    std::atomic<u64> cheap{0};
    mutable std::mutex mutex;
    std::chrono::steady_clock::time_point start;
    bool started = false;
};

} // namespace xbsp::obs

#endif // XBSP_OBS_PROGRESS_HH
