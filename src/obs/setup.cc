#include "obs/setup.hh"

#include <cstdlib>
#include <fstream>

#include "obs/live/endpoint.hh"
#include "obs/live/exposition.hh"
#include "obs/live/sampler.hh"
#include "obs/manifest/manifest.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace xbsp::obs
{

namespace
{

/** Option value if non-empty, else the environment variable. */
std::string
pathFrom(const std::string& optVal, const char* envName)
{
    if (!optVal.empty())
        return optVal;
    if (const char* env = std::getenv(envName))
        return env;
    return {};
}

void
applyLogLevel(const std::string& fromOpt)
{
    std::string name = fromOpt;
    if (name.empty()) {
        if (const char* env = std::getenv("XBSP_LOG_LEVEL"))
            name = env;
    }
    if (name.empty())
        return;
    if (auto level = parseLogLevel(name))
        setLogLevel(*level);
    else
        warn("ignoring unknown log level '{}'", name);
}

/** Parse a decimal port spec; -1 (disabled) on empty/garbage. */
int
parsePort(const std::string& text)
{
    if (text.empty())
        return -1;
    char* end = nullptr;
    const long port = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || port < 0 ||
        port > 65535) {
        warn("ignoring bad metrics TCP port '{}'", text);
        return -1;
    }
    return static_cast<int>(port);
}

/** "out/stats.json" -> "out/manifest.json"; bare file -> cwd. */
std::string
manifestPathNextTo(const std::string& statsPath)
{
    const std::size_t slash = statsPath.find_last_of('/');
    if (slash == std::string::npos)
        return "manifest.json";
    return statsPath.substr(0, slash + 1) + "manifest.json";
}

} // namespace

void
addCliOptions(Options& opts)
{
    opts.addString("stats-out",
                   "write the stats registry as JSON to this file "
                   "(env: XBSP_STATS)",
                   "");
    opts.addString("trace-out",
                   "write a Chrome trace_event JSON timeline to this "
                   "file (env: XBSP_TRACE)",
                   "");
    opts.addString("manifest-out",
                   "write the per-run provenance manifest to this "
                   "file (env: XBSP_MANIFEST; defaults to "
                   "manifest.json next to --stats-out)",
                   "");
    opts.addString("metrics-socket",
                   "serve live Prometheus metrics on this unix-domain "
                   "socket (env: XBSP_METRICS)",
                   "");
    opts.addString("metrics-tcp",
                   "also serve live metrics on 127.0.0.1:PORT; 0 "
                   "picks an ephemeral port (env: XBSP_METRICS_TCP)",
                   "");
    opts.addUint("metrics-period-ms",
                 "live metrics sampling period in milliseconds "
                 "(env: XBSP_METRICS_PERIOD_MS)",
                 100);
    opts.addString("log-level",
                   "log verbosity: quiet|warn|inform|debug "
                   "(env: XBSP_LOG_LEVEL)",
                   "");
    opts.addBool("progress", "print an ETA line per pipeline step",
                 false);
    opts.addBool("stats-timers",
                 "include wall-clock timers in --stats-out (their "
                 "values differ run to run)",
                 false);
}

ObsSession::ObsSession(const Options& opts)
    : statsPath(pathFrom(opts.getString("stats-out"), "XBSP_STATS")),
      tracePath(pathFrom(opts.getString("trace-out"), "XBSP_TRACE")),
      manifestPath(pathFrom(opts.getString("manifest-out"),
                            "XBSP_MANIFEST")),
      metricsSocketPath(pathFrom(opts.getString("metrics-socket"),
                                 "XBSP_METRICS")),
      metricsTcpPort(parsePort(pathFrom(opts.getString("metrics-tcp"),
                                        "XBSP_METRICS_TCP"))),
      metricsPeriodMs(opts.getUint("metrics-period-ms")),
      includeTimers(opts.getBool("stats-timers"))
{
    applyLogLevel(opts.getString("log-level"));
    if (opts.getBool("progress"))
        Progress::global().enable();
    applyCommon();
}

ObsSession::ObsSession()
    : statsPath(pathFrom({}, "XBSP_STATS")),
      tracePath(pathFrom({}, "XBSP_TRACE")),
      manifestPath(pathFrom({}, "XBSP_MANIFEST")),
      metricsSocketPath(pathFrom({}, "XBSP_METRICS")),
      metricsTcpPort(parsePort(pathFrom({}, "XBSP_METRICS_TCP")))
{
    if (const char* env = std::getenv("XBSP_METRICS_PERIOD_MS")) {
        char* end = nullptr;
        const unsigned long long ms = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && ms > 0)
            metricsPeriodMs = ms;
    }
    applyLogLevel({});
    applyCommon();
}

void
ObsSession::applyCommon()
{
    if (!tracePath.empty())
        TraceSession::global().enable();
    if (manifestPath.empty() && !statsPath.empty())
        manifestPath = manifestPathNextTo(statsPath);
    if (!metricsSocketPath.empty() || metricsTcpPort >= 0)
        startTelemetry();
}

void
ObsSession::startTelemetry()
{
    MetricsSampler::Config samplerConfig;
    samplerConfig.periodMillis = metricsPeriodMs;
    liveSampler = std::make_unique<MetricsSampler>(
        StatRegistry::global(), samplerConfig);
    liveSampler->start();

    MetricsEndpoint::Config endpointConfig;
    endpointConfig.unixPath = metricsSocketPath;
    endpointConfig.tcpPort = metricsTcpPort;
    MetricsSampler* sampler = liveSampler.get();
    liveEndpoint = std::make_unique<MetricsEndpoint>(
        endpointConfig, [sampler] {
            auto sample = sampler->latest();
            if (!sample) {
                // First scrape before the first tick: snapshot now
                // rather than serving an empty document.
                sampler->sampleOnce();
                sample = sampler->latest();
            }
            return renderExposition(*sample);
        });
    try {
        liveEndpoint->start();
    } catch (const std::exception& e) {
        // Telemetry must never kill the run it is watching.
        warn("live metrics endpoint disabled: {}", e.what());
        liveEndpoint.reset();
        liveSampler->stop();
        liveSampler.reset();
        return;
    }
    if (!metricsSocketPath.empty())
        inform("serving live metrics on {}", metricsSocketPath);
    if (metricsTcpPort >= 0)
        inform("serving live metrics on 127.0.0.1:{}",
               liveEndpoint->boundTcpPort());
}

void
ObsSession::flush()
{
    if (flushed)
        return;
    flushed = true;

    // Telemetry down first: no scrape may observe the teardown.
    if (liveEndpoint)
        liveEndpoint->stop();
    if (liveSampler)
        liveSampler->stop();

    if (!statsPath.empty()) {
        std::ofstream os(statsPath);
        if (!os) {
            warn("cannot open stats output file '{}'", statsPath);
        } else {
            StatRegistry::global().writeJsonFile(os, includeTimers);
            os.flush();
            if (!os.good())
                warn("failed writing stats output file '{}'",
                     statsPath);
            else
                inform("wrote stats to {}", statsPath);
        }
    }

    if (!tracePath.empty()) {
        TraceSession::global().disable();
        std::ofstream os(tracePath);
        if (!os) {
            warn("cannot open trace output file '{}'", tracePath);
        } else {
            TraceSession::global().writeJson(os);
            os.flush();
            if (!os.good())
                warn("failed writing trace output file '{}'",
                     tracePath);
            else
                inform("wrote trace to {}", tracePath);
        }
    }

    if (!manifestPath.empty() && !RunManifest::global().empty()) {
        if (!RunManifest::global().writeJsonFile(manifestPath))
            warn("cannot write manifest file '{}'", manifestPath);
        else
            inform("wrote manifest to {}", manifestPath);
    }
}

ObsSession::~ObsSession()
{
    flush();
}

} // namespace xbsp::obs
