#include "obs/setup.hh"

#include <cstdlib>
#include <fstream>

#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace xbsp::obs
{

namespace
{

/** Option value if non-empty, else the environment variable. */
std::string
pathFrom(const std::string& optVal, const char* envName)
{
    if (!optVal.empty())
        return optVal;
    if (const char* env = std::getenv(envName))
        return env;
    return {};
}

void
applyLogLevel(const std::string& fromOpt)
{
    std::string name = fromOpt;
    if (name.empty()) {
        if (const char* env = std::getenv("XBSP_LOG_LEVEL"))
            name = env;
    }
    if (name.empty())
        return;
    if (auto level = parseLogLevel(name))
        setLogLevel(*level);
    else
        warn("ignoring unknown log level '{}'", name);
}

} // namespace

void
addCliOptions(Options& opts)
{
    opts.addString("stats-out",
                   "write the stats registry as JSON to this file "
                   "(env: XBSP_STATS)",
                   "");
    opts.addString("trace-out",
                   "write a Chrome trace_event JSON timeline to this "
                   "file (env: XBSP_TRACE)",
                   "");
    opts.addString("log-level",
                   "log verbosity: quiet|warn|inform|debug "
                   "(env: XBSP_LOG_LEVEL)",
                   "");
    opts.addBool("progress", "print an ETA line per pipeline step",
                 false);
    opts.addBool("stats-timers",
                 "include wall-clock timers in --stats-out (their "
                 "values differ run to run)",
                 false);
}

ObsSession::ObsSession(const Options& opts)
    : statsPath(pathFrom(opts.getString("stats-out"), "XBSP_STATS")),
      tracePath(pathFrom(opts.getString("trace-out"), "XBSP_TRACE")),
      includeTimers(opts.getBool("stats-timers"))
{
    applyLogLevel(opts.getString("log-level"));
    if (opts.getBool("progress"))
        Progress::global().enable();
    applyCommon();
}

ObsSession::ObsSession()
    : statsPath(pathFrom({}, "XBSP_STATS")),
      tracePath(pathFrom({}, "XBSP_TRACE"))
{
    applyLogLevel({});
    applyCommon();
}

void
ObsSession::applyCommon()
{
    if (!tracePath.empty())
        TraceSession::global().enable();
}

void
ObsSession::finish()
{
    if (finished)
        return;
    finished = true;

    if (!statsPath.empty()) {
        std::ofstream os(statsPath);
        if (!os) {
            warn("cannot open stats output file '{}'", statsPath);
        } else {
            StatRegistry::global().writeJsonFile(os, includeTimers);
            inform("wrote stats to {}", statsPath);
        }
    }

    if (!tracePath.empty()) {
        TraceSession::global().disable();
        std::ofstream os(tracePath);
        if (!os) {
            warn("cannot open trace output file '{}'", tracePath);
        } else {
            TraceSession::global().writeJson(os);
            inform("wrote trace to {}", tracePath);
        }
    }
}

ObsSession::~ObsSession()
{
    finish();
}

} // namespace xbsp::obs
