/**
 * @file
 * Regenerates the paper's Figure 2 (see DESIGN.md for the
 * experiment index).  Runs the cross-binary SimPoint pipeline on the
 * selected workloads and prints the figure's series as a table.
 */

#include "bench_common.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_fig2: reproduce paper Figure 2");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentSuite suite(bench::makeConfig(options));
    bench::emit(suite.figure2(), options);
    return 0;
}
