/**
 * @file
 * Regenerates the paper's Table 2: per-phase weight/true-CPI/
 * SimPoint-CPI/bias comparison for gcc across two binaries, under
 * both the per-binary (FLI) and mappable (VLI) schemes.
 */

#include "bench_common.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_table2: reproduce paper Table 2 (gcc)");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentConfig config = bench::makeConfig(options);
    config.workloads = {"gcc"};
    harness::ExperimentSuite suite(config);
    bench::emit(suite.table2(), options);
    return 0;
}
