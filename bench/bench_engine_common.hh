/**
 * @file
 * Shared core of the engine microbench: time the detailed-simulation
 * loop (engine + cache hierarchy + in-order core) as the pre-fast-
 * path architecture against the full fast path.  The baseline is the
 * structural interpreter delivering each memory reference through
 * per-reference virtual dispatch (the base-class onMemRefs fan-out)
 * into the standalone reference memory model (cache/reference.hh,
 * the pre-optimization implementation kept verbatim) — exactly the
 * hot loop before this optimisation pass.  The fast path is the
 * compiled engine driving a devirtualized core sink into the batched
 * packed-tag hierarchy walk.  Verifies observational identity as a
 * side effect:
 * the serialized event streams are compared byte-for-byte and the
 * timed runs' core totals (instructions, cycles, memory references)
 * must match exactly — which also exercises the reference-vs-fast
 * hierarchy equivalence end to end.  Used by bench_micro_engine
 * (standalone, writes BENCH_engine.json) and by bench_all (folds an
 * "engine" section into BENCH_pipeline.json).
 */

#ifndef XBSP_BENCH_ENGINE_COMMON_HH
#define XBSP_BENCH_ENGINE_COMMON_HH

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/reference.hh"
#include "cpu/core.hh"
#include "cpu/inorder.hh"
#include "exec/compiled.hh"
#include "exec/engine.hh"
#include "exec/trace.hh"
#include "util/json.hh"
#include "util/table.hh"
#include "workloads/workloads.hh"

namespace xbsp::bench
{

/** One workload's interpreter-vs-compiled measurement. */
struct EngineBenchResult
{
    std::string workload;
    u64 instructions = 0;       ///< per detailed run
    double interpSeconds = 0.0; ///< best-of-reps, interpreter path
    double compiledSeconds = 0.0; ///< best-of-reps, fast path
    double interpIps = 0.0;
    double compiledIps = 0.0;
    double speedup = 0.0;
    bool identical = false; ///< streams + core totals match exactly
};

namespace detail
{

/** Best-of-`reps` wall-clock seconds of `body()` (one warmup). */
template <typename F>
double
bestOfRuns(int reps, F&& body)
{
    using clock = std::chrono::steady_clock;
    body();
    double best = std::numeric_limits<double>::max();
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = clock::now();
        body();
        best = std::min(
            best,
            std::chrono::duration<double>(clock::now() - start)
                .count());
    }
    return best;
}

/**
 * The pre-fast-path timing observer: each reference arrives through
 * the base-class onMemRefs fan-out (one virtual call per reference)
 * and walks the reference memory model's per-level access loop with
 * the latency switch — the detailed-simulation hot loop as it looked
 * before the fast path.  Cycle accounting matches InOrderCore
 * exactly.
 */
struct ReferenceCore final : exec::Observer
{
    cache::ReferenceHierarchy& hier;
    cpu::CoreStats stats;

    explicit ReferenceCore(cache::ReferenceHierarchy& hierarchy)
        : hier(hierarchy)
    {
    }

    void
    onBlock(u32, u32 instrs) override
    {
        stats.instructions += instrs;
        stats.cycles += instrs;
    }

    void
    onMemRef(Addr addr, bool isWrite) override
    {
        stats.cycles += hier.latency(hier.access(addr, isWrite));
        ++stats.memRefs;
    }
};

/** Devirtualized detailed-core sink (the dominant configuration). */
struct CoreOnlySink
{
    cpu::InOrderCore& core;

    bool wantsBlocks() const { return true; }
    bool wantsMems() const { return true; }
    bool wantsMarkers() const { return false; }

    void
    onBlock(u32 blockId, u32 instrs)
    {
        core.onBlock(blockId, instrs);
    }

    void
    onMemRefs(std::span<const mem::MemRef> refs)
    {
        core.onMemRefs(refs);
    }

    void onMarker(u32) {}
    void onRunEnd() {}
};

/** Serialize one full run under a pinned engine mode. */
inline std::string
captureStream(const bin::Binary& binary, exec::EngineMode mode)
{
    std::stringstream out;
    exec::TraceOptions options;
    options.memRefs = true;
    exec::TraceWriter writer(out, options);
    exec::Engine engine(binary, 0x5EEDull, mode);
    engine.addObserver(&writer, writer.hooks());
    engine.run();
    return out.str();
}

} // namespace detail

/**
 * Measure one workload's detailed simulation under both engines.
 * The byte-identity of the event streams is checked on a capped
 * scale (streams grow linearly with work, and the check only needs
 * coverage of every op shape); the timed runs themselves must agree
 * on every core counter at the full bench scale.
 */
inline EngineBenchResult
benchEngineWorkload(const std::string& name, double scale, int reps)
{
    constexpr u64 kSeed = 0x5EEDull;
    const bin::Binary binary = compile::compileProgram(
        workloads::makeWorkload(name, scale), bin::target32o);

    EngineBenchResult result;
    result.workload = name;

    cpu::CoreStats interpStats, compiledStats;
    auto interpRun = [&] {
        exec::Engine engine(binary, kSeed,
                            exec::EngineMode::Interp);
        cache::ReferenceHierarchy hierarchy;
        detail::ReferenceCore core(hierarchy);
        engine.addObserver(&core, {true, true, false});
        engine.run();
        interpStats = core.stats;
        result.instructions = engine.instructionsExecuted();
    };
    auto compiledRun = [&] {
        exec::Engine engine(binary, kSeed,
                            exec::EngineMode::Compiled);
        cache::Hierarchy hierarchy;
        cpu::InOrderCore core(hierarchy);
        detail::CoreOnlySink sink{core};
        engine.runWith(sink);
        compiledStats = core.totals();
    };
    result.interpSeconds = detail::bestOfRuns(reps, interpRun);
    result.compiledSeconds = detail::bestOfRuns(reps, compiledRun);

    const double instrs = static_cast<double>(result.instructions);
    result.interpIps = instrs / result.interpSeconds;
    result.compiledIps = instrs / result.compiledSeconds;
    result.speedup = result.interpSeconds / result.compiledSeconds;

    // Observational identity.  Same seed, same binary: every counter
    // the timing model produced must agree bit for bit...
    result.identical =
        interpStats.instructions == compiledStats.instructions &&
        interpStats.cycles == compiledStats.cycles &&
        interpStats.memRefs == compiledStats.memRefs;
    // ...and the serialized event streams (captured on a capped
    // scale) must be byte-identical.
    const bin::Binary check = compile::compileProgram(
        workloads::makeWorkload(name, std::min(scale, 0.05)),
        bin::target32o);
    result.identical =
        result.identical &&
        detail::captureStream(check, exec::EngineMode::Interp) ==
            detail::captureStream(check, exec::EngineMode::Compiled);
    return result;
}

/** Render the engine measurements as a standard bench table. */
inline Table
engineTable(const std::vector<EngineBenchResult>& results)
{
    Table table("Engine fast path: interpreter (virtual observers) "
                "vs compiled (devirtualized sink)",
                {"workload", "instrs", "interp_s", "compiled_s",
                 "interp_ips", "compiled_ips", "speedup",
                 "identical"});
    for (const EngineBenchResult& r : results) {
        table.startRow();
        table.addCell(r.workload);
        table.addInteger(static_cast<long long>(r.instructions));
        table.addNumber(r.interpSeconds, 3);
        table.addNumber(r.compiledSeconds, 3);
        table.addNumber(r.interpIps, 0);
        table.addNumber(r.compiledIps, 0);
        table.addNumber(r.speedup, 2);
        table.addCell(r.identical ? "yes" : "NO");
    }
    return table;
}

/**
 * Emit the engine measurements as one JSON object value on `w` (the
 * caller has already placed the key).
 */
inline void
writeEngineJson(JsonWriter& w,
                const std::vector<EngineBenchResult>& results)
{
    w.beginObject();
    w.key("workloads").beginArray();
    for (const EngineBenchResult& r : results) {
        w.beginObject();
        w.member("workload", r.workload);
        w.member("instructions", r.instructions);
        w.member("interp_seconds", r.interpSeconds, 4);
        w.member("compiled_seconds", r.compiledSeconds, 4);
        w.member("interp_ips", r.interpIps, 0);
        w.member("compiled_ips", r.compiledIps, 0);
        w.member("speedup", r.speedup, 2);
        w.member("identical", r.identical);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace xbsp::bench

#endif // XBSP_BENCH_ENGINE_COMMON_HH
