/**
 * @file
 * Regenerates the paper's Table 1 (the memory-system configuration)
 * and validates it behaviourally: a pointer-chase microbenchmark per
 * footprint measures the average load-to-use cost at each level of
 * the hierarchy, which should approach the configured hit latencies.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "cache/hierarchy.hh"
#include "util/rng.hh"

using namespace xbsp;

namespace
{

/** Average cycles/ref for random accesses within `footprint` bytes. */
double
measure(cache::Hierarchy& hierarchy, u64 footprint, u64 refs)
{
    Rng rng(0xBEEF);
    const u64 lines = footprint / 64;
    // Warm.
    for (u64 i = 0; i < lines * 4; ++i)
        hierarchy.access((i % lines) * 64, false);
    Cycles total = 0;
    for (u64 i = 0; i < refs; ++i) {
        const Addr addr = rng.nextBelow(lines) * 64;
        total += hierarchy.latency(hierarchy.access(addr, false));
    }
    return static_cast<double>(total) / static_cast<double>(refs);
}

} // namespace

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_table1: paper Table 1 memory-system configuration + "
        "behavioural latency check");
    if (!options.parse(argc, argv))
        return 0;

    const cache::HierarchyConfig config =
        cache::HierarchyConfig::paperTable1();
    bench::emit(harness::ExperimentSuite::table1(config), options);

    Table check("Behavioural check: measured avg cycles per reference "
                "for random accesses within a footprint",
                {"footprint", "expected level", "configured latency",
                 "measured avg"});
    struct Case
    {
        u64 footprint;
        const char* level;
        Cycles latency;
    };
    const Case cases[] = {
        {16 * 1024, "L1D", config.l1.hitLatency},
        {256 * 1024, "L2D", config.l2.hitLatency},
        {900 * 1024, "L3D", config.l3.hitLatency},
        {64ull * 1024 * 1024, "DRAM", config.dramLatency},
    };
    for (const Case& c : cases) {
        cache::Hierarchy hierarchy(config);
        check.startRow();
        check.addCell(format("{}KB", c.footprint / 1024));
        check.addCell(c.level);
        check.addInteger(static_cast<long long>(c.latency));
        check.addNumber(measure(hierarchy, c.footprint, 400000), 2);
    }
    bench::emit(check, options);
    return 0;
}
