/**
 * @file
 * Shared core of the clustering microbench: time the full SimPoint
 * BIC sweep (k = 1..maxK x seedsPerK restarts) over real workload
 * profile vectors with the naive engine and with the accelerated one
 * (duplicate-interval dedup + Hamerly-bounded k-means + parallel
 * (k, seed) sweep), cross-check that both pick identical phases, and
 * emit the numbers as a table / JSON.  Used by bench_micro_clustering
 * (standalone, writes BENCH_clustering.json) and by bench_all (folds
 * the numbers into BENCH_pipeline.json).
 */

#ifndef XBSP_BENCH_CLUSTERING_COMMON_HH
#define XBSP_BENCH_CLUSTERING_COMMON_HH

#include <chrono>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "compile/compiler.hh"
#include "profile/profile.hh"
#include "simpoint/simpoint.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/workloads.hh"

namespace xbsp::bench
{

/** One clustering measurement: a workload at an interval target. */
struct ClusteringCase
{
    std::string workload;
    double scale = 2.0;
    InstrCount interval = 10000;
};

/** Cases the default runs measure: thousands of intervals each. */
inline std::vector<ClusteringCase>
defaultClusteringCases()
{
    return {{"gcc", 2.0, 10000},
            {"gzip", 2.0, 5000},
            {"swim", 2.0, 5000}};
}

/** Timing + shape of one naive-vs-accelerated sweep comparison. */
struct ClusteringBenchResult
{
    std::string workload;
    std::size_t intervals = 0;       ///< points fed to clustering
    std::size_t dedupClasses = 0;    ///< unique vectors after dedup
    u32 chosenK = 0;
    double naiveSeconds = 0.0;       ///< best-of-reps, full BIC sweep
    double accelSeconds = 0.0;
    double speedup = 0.0;
    bool identical = false;          ///< accelerated == naive result
};

/** Exact equality of the fields the paper's pipeline consumes. */
inline bool
identicalResults(const sp::SimPointResult& a,
                 const sp::SimPointResult& b)
{
    if (a.k != b.k || a.labels != b.labels || a.bicByK != b.bicByK)
        return false;
    if (a.phases.size() != b.phases.size())
        return false;
    for (std::size_t p = 0; p < a.phases.size(); ++p) {
        if (a.phases[p].representative != b.phases[p].representative ||
            a.phases[p].weight != b.phases[p].weight ||
            a.phases[p].members != b.phases[p].members)
            return false;
    }
    return true;
}

/**
 * Profile one case and time the naive and accelerated sweeps,
 * `reps` times each (best-of to suppress scheduler noise).
 */
inline ClusteringBenchResult
benchClusteringSweep(const ClusteringCase& bc,
                     const sp::SimPointOptions& base, int reps)
{
    const ir::Program program =
        workloads::makeWorkload(bc.workload, bc.scale);
    const bin::Binary binary =
        compile::compileProgram(program, bin::target32o);
    const prof::ProfilePass pass =
        prof::runProfilePass(binary, bc.interval);

    sp::FrequencyVectorSet normalized = pass.fliIntervals;
    normalized.normalize();

    sp::SimPointOptions naiveOpts = base;
    naiveOpts.accelerate = false;
    sp::SimPointOptions accelOpts = base;
    accelOpts.accelerate = true;

    using clock = std::chrono::steady_clock;
    auto timeSweep = [&](const sp::SimPointOptions& options,
                         sp::SimPointResult& out) {
        double best = std::numeric_limits<double>::max();
        for (int rep = 0; rep < reps; ++rep) {
            const auto start = clock::now();
            out = sp::pickSimulationPoints(pass.fliIntervals, options);
            best = std::min(
                best, std::chrono::duration<double>(clock::now() -
                                                    start)
                          .count());
        }
        return best;
    };

    ClusteringBenchResult result;
    result.workload = bc.workload;
    result.intervals = pass.fliIntervals.size();
    result.dedupClasses = normalized.dedup().classes();
    sp::SimPointResult naive, accel;
    result.naiveSeconds = timeSweep(naiveOpts, naive);
    result.accelSeconds = timeSweep(accelOpts, accel);
    result.speedup = result.naiveSeconds / result.accelSeconds;
    result.chosenK = accel.k;
    result.identical = identicalResults(naive, accel);
    if (!result.identical)
        warn("clustering bench: accelerated result diverged from "
             "naive on '{}'", bc.workload);
    return result;
}

/** Render the measurements as a standard bench table. */
inline Table
clusteringTable(const std::vector<ClusteringBenchResult>& results)
{
    Table table("Clustering BIC sweep: naive vs accelerated "
                "(Hamerly bounds + dedup + parallel sweep)",
                {"workload", "intervals", "classes", "k",
                 "naive_s", "accel_s", "speedup", "identical"});
    for (const ClusteringBenchResult& r : results) {
        table.startRow();
        table.addCell(r.workload);
        table.addInteger(static_cast<long long>(r.intervals));
        table.addInteger(static_cast<long long>(r.dedupClasses));
        table.addInteger(r.chosenK);
        table.addNumber(r.naiveSeconds, 4);
        table.addNumber(r.accelSeconds, 4);
        table.addNumber(r.speedup, 2);
        table.addCell(r.identical ? "yes" : "NO");
    }
    return table;
}

/**
 * Emit the measurements as a JSON array (no surrounding object), at
 * `indent` spaces of leading indentation — shared between the
 * standalone BENCH_clustering.json and the bench_all summary.
 */
inline void
writeClusteringJsonArray(std::ostream& os,
                         const std::vector<ClusteringBenchResult>&
                             results,
                         const std::string& indent)
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ClusteringBenchResult& r = results[i];
        os << indent << "  "
           << format("{{\"workload\": \"{}\", \"intervals\": {}, "
                     "\"dedup_classes\": {}, \"chosen_k\": {}, "
                     "\"naive_seconds\": {:.4f}, "
                     "\"accel_seconds\": {:.4f}, "
                     "\"speedup\": {:.2f}, \"identical\": {}}}",
                     r.workload, r.intervals, r.dedupClasses,
                     r.chosenK, r.naiveSeconds, r.accelSeconds,
                     r.speedup, r.identical ? "true" : "false");
        os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << indent << "]";
}

} // namespace xbsp::bench

#endif // XBSP_BENCH_CLUSTERING_COMMON_HH
