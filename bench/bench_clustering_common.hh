/**
 * @file
 * Shared core of the clustering microbench: time the full SimPoint
 * BIC sweep (k = 1..maxK x seedsPerK restarts) over real workload
 * profile vectors with the naive engine and with the accelerated one
 * (duplicate-interval dedup + Hamerly-bounded k-means + parallel
 * (k, seed) sweep), cross-check that both pick identical phases, and
 * emit the numbers as a table / JSON.  Used by bench_micro_clustering
 * (standalone, writes BENCH_clustering.json) and by bench_all (folds
 * the numbers into BENCH_pipeline.json).
 */

#ifndef XBSP_BENCH_CLUSTERING_COMMON_HH
#define XBSP_BENCH_CLUSTERING_COMMON_HH

#include <chrono>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "compile/compiler.hh"
#include "obs/stats.hh"
#include "profile/profile.hh"
#include "simpoint/simpoint.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/workloads.hh"

namespace xbsp::bench
{

/** One clustering measurement: a workload at an interval target. */
struct ClusteringCase
{
    std::string workload;
    double scale = 2.0;
    InstrCount interval = 10000;
};

/** Cases the default runs measure: thousands of intervals each. */
inline std::vector<ClusteringCase>
defaultClusteringCases()
{
    return {{"gcc", 2.0, 10000},
            {"gzip", 2.0, 5000},
            {"swim", 2.0, 5000}};
}

/** Timing + shape of one naive-vs-accelerated sweep comparison. */
struct ClusteringBenchResult
{
    std::string workload;
    std::size_t intervals = 0;       ///< points fed to clustering
    std::size_t dedupClasses = 0;    ///< unique vectors after dedup
    u32 chosenK = 0;
    double naiveSeconds = 0.0;       ///< best-of-reps, full BIC sweep
    double accelSeconds = 0.0;
    double speedup = 0.0;
    bool identical = false;          ///< accelerated == naive result
    // Per-sweep work counts from the stats registry (exact event
    // counts per single sweep; identical at any --jobs).
    u64 naiveDistances = 0;          ///< naive E-step sqDist calls
    u64 accelDistances = 0;          ///< accelerated E-step sqDist
    u64 hamerlySkips = 0;            ///< classes proven by the bound
    u64 hamerlyFallbacks = 0;        ///< classes fully re-scanned
};

/** Exact equality of the fields the paper's pipeline consumes. */
inline bool
identicalResults(const sp::SimPointResult& a,
                 const sp::SimPointResult& b)
{
    if (a.k != b.k || a.labels != b.labels || a.bicByK != b.bicByK)
        return false;
    if (a.phases.size() != b.phases.size())
        return false;
    for (std::size_t p = 0; p < a.phases.size(); ++p) {
        if (a.phases[p].representative != b.phases[p].representative ||
            a.phases[p].weight != b.phases[p].weight ||
            a.phases[p].members != b.phases[p].members)
            return false;
    }
    return true;
}

/**
 * Profile one case and time the naive and accelerated sweeps,
 * `reps` times each (best-of to suppress scheduler noise).
 */
inline ClusteringBenchResult
benchClusteringSweep(const ClusteringCase& bc,
                     const sp::SimPointOptions& base, int reps)
{
    const ir::Program program =
        workloads::makeWorkload(bc.workload, bc.scale);
    const bin::Binary binary =
        compile::compileProgram(program, bin::target32o);
    const prof::ProfilePass pass =
        prof::runProfilePass(binary, bc.interval);

    sp::FrequencyVectorSet normalized = pass.fliIntervals;
    normalized.normalize();

    sp::SimPointOptions naiveOpts = base;
    naiveOpts.accelerate = false;
    sp::SimPointOptions accelOpts = base;
    accelOpts.accelerate = true;

    using clock = std::chrono::steady_clock;
    obs::StatRegistry& reg = obs::StatRegistry::global();
    // Per-sweep work counts = counter delta across the rep loop over
    // reps.  Every rep performs identical (deterministic) work, so
    // the division is exact.
    auto timeSweep = [&](const sp::SimPointOptions& options,
                         sp::SimPointResult& out, u64& distances) {
        double best = std::numeric_limits<double>::max();
        const u64 before = reg.counterValue("kmeans.estep.distances");
        for (int rep = 0; rep < reps; ++rep) {
            const auto start = clock::now();
            out = sp::pickSimulationPoints(pass.fliIntervals, options);
            best = std::min(
                best, std::chrono::duration<double>(clock::now() -
                                                    start)
                          .count());
        }
        distances = (reg.counterValue("kmeans.estep.distances") -
                     before) /
                    static_cast<u64>(reps);
        return best;
    };

    ClusteringBenchResult result;
    result.workload = bc.workload;
    result.intervals = pass.fliIntervals.size();
    result.dedupClasses = normalized.dedup().classes();
    sp::SimPointResult naive, accel;
    const u64 skipsBefore = reg.counterValue("kmeans.hamerly.skips");
    const u64 fallsBefore =
        reg.counterValue("kmeans.hamerly.fallbacks");
    result.naiveSeconds =
        timeSweep(naiveOpts, naive, result.naiveDistances);
    result.accelSeconds =
        timeSweep(accelOpts, accel, result.accelDistances);
    result.hamerlySkips =
        (reg.counterValue("kmeans.hamerly.skips") - skipsBefore) /
        static_cast<u64>(reps);
    result.hamerlyFallbacks =
        (reg.counterValue("kmeans.hamerly.fallbacks") - fallsBefore) /
        static_cast<u64>(reps);
    result.speedup = result.naiveSeconds / result.accelSeconds;
    result.chosenK = accel.k;
    result.identical = identicalResults(naive, accel);
    if (!result.identical)
        warn("clustering bench: accelerated result diverged from "
             "naive on '{}'", bc.workload);
    return result;
}

/** Render the measurements as a standard bench table. */
inline Table
clusteringTable(const std::vector<ClusteringBenchResult>& results)
{
    Table table("Clustering BIC sweep: naive vs accelerated "
                "(Hamerly bounds + dedup + parallel sweep)",
                {"workload", "intervals", "classes", "k",
                 "naive_s", "accel_s", "speedup", "identical"});
    for (const ClusteringBenchResult& r : results) {
        table.startRow();
        table.addCell(r.workload);
        table.addInteger(static_cast<long long>(r.intervals));
        table.addInteger(static_cast<long long>(r.dedupClasses));
        table.addInteger(r.chosenK);
        table.addNumber(r.naiveSeconds, 4);
        table.addNumber(r.accelSeconds, 4);
        table.addNumber(r.speedup, 2);
        table.addCell(r.identical ? "yes" : "NO");
    }
    return table;
}

/**
 * Emit the measurements as a JSON array value on `w` (the caller has
 * already placed the key) — shared between the standalone
 * BENCH_clustering.json and the bench_all summary.  The per-case
 * work counts (distance evaluations, Hamerly skip/fallback tallies)
 * come from the stats registry and quantify *why* the accelerated
 * sweep is faster, not just by how much.
 */
inline void
writeClusteringCases(JsonWriter& w,
                     const std::vector<ClusteringBenchResult>& results)
{
    w.beginArray();
    for (const ClusteringBenchResult& r : results) {
        w.beginObject();
        w.member("workload", r.workload);
        w.member("intervals", r.intervals);
        w.member("dedup_classes", r.dedupClasses);
        w.member("chosen_k", r.chosenK);
        w.member("naive_seconds", r.naiveSeconds, 4);
        w.member("accel_seconds", r.accelSeconds, 4);
        w.member("speedup", r.speedup, 2);
        w.member("identical", r.identical);
        w.key("stats").beginObject();
        w.member("naive_distances", r.naiveDistances);
        w.member("accel_distances", r.accelDistances);
        w.member("hamerly_skips", r.hamerlySkips);
        w.member("hamerly_fallbacks", r.hamerlyFallbacks);
        const u64 decisions = r.hamerlySkips + r.hamerlyFallbacks;
        w.member("hamerly_skip_rate",
                 decisions ? static_cast<double>(r.hamerlySkips) /
                                 static_cast<double>(decisions)
                           : 0.0,
                 4);
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

} // namespace xbsp::bench

#endif // XBSP_BENCH_CLUSTERING_COMMON_HH
