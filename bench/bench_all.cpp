/**
 * @file
 * Runs every paper experiment in one process (studies are cached, so
 * each workload simulates once): Table 1, Figures 1–5, Tables 2–3,
 * plus the mappability diagnostic.  This is the one-shot
 * "reproduce the evaluation section" binary.
 */

#include "bench_common.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_all: reproduce every table and figure of the paper");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentConfig config = bench::makeConfig(options);
    harness::ExperimentSuite suite(config);

    bench::emit(harness::ExperimentSuite::table1(config.study.memory),
                options);
    bench::emit(suite.figure1(), options);
    bench::emit(suite.figure2(), options);
    bench::emit(suite.figure3(), options);
    bench::emit(suite.figure4(), options);
    bench::emit(suite.figure5(), options);

    const auto& names = suite.workloads();
    auto has = [&names](const std::string& workload) {
        for (const auto& name : names) {
            if (name == workload)
                return true;
        }
        return false;
    };
    if (has("gcc"))
        bench::emit(suite.table2(), options);
    if (has("apsi"))
        bench::emit(suite.table3(), options);
    bench::emit(suite.mappabilityReport(), options);
    return 0;
}
