/**
 * @file
 * Runs every paper experiment in one process (studies are cached, so
 * each workload simulates once): Table 1, Figures 1–5, Tables 2–3,
 * plus the mappability diagnostic.  This is the one-shot
 * "reproduce the evaluation section" binary.
 *
 * Besides the tables, it writes a machine-readable timing summary
 * (default BENCH_pipeline.json, override with --json): wall-clock
 * seconds per figure/table, the job count, and the aggregate
 * instructions-simulated-per-second rate of the study pipeline.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "bench_clustering_common.hh"
#include "bench_common.hh"
#include "bench_engine_common.hh"
#include "bench_kernels_common.hh"
#include "dist/client.hh"
#include "dist/server.hh"
#include "dist/spawn.hh"
#include "obs/manifest/manifest.hh"
#include "obs/setup.hh"
#include "obs/stats.hh"
#include "store/store.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

struct FigureTiming
{
    std::string name;
    double seconds = 0.0;
};

} // namespace

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_all: reproduce every table and figure of the paper");
    if (!options.parse(argc, argv))
        return 0;
    // Env-only observability: XBSP_METRICS serves live metrics while
    // the suite runs, XBSP_STATS/XBSP_MANIFEST dump stats and the
    // provenance manifest at exit (see obs/setup.hh).
    obs::ObsSession obsSession;
    harness::ExperimentConfig config = bench::makeConfig(options);
    harness::ExperimentSuite suite(config);

    using clock = std::chrono::steady_clock;
    std::vector<FigureTiming> timings;
    const auto suiteStart = clock::now();
    auto timed = [&](const std::string& name,
                     const std::function<Table()>& make) {
        const auto start = clock::now();
        bench::emit(make(), options);
        timings.push_back(
            {name, std::chrono::duration<double>(clock::now() - start)
                       .count()});
    };

    timed("table1", [&] {
        return harness::ExperimentSuite::table1(config.study.memory);
    });
    timed("figure1", [&] { return suite.figure1(); });
    timed("figure2", [&] { return suite.figure2(); });
    timed("figure3", [&] { return suite.figure3(); });
    timed("figure4", [&] { return suite.figure4(); });
    timed("figure5", [&] { return suite.figure5(); });

    const auto& names = suite.workloads();
    auto has = [&names](const std::string& workload) {
        for (const auto& name : names) {
            if (name == workload)
                return true;
        }
        return false;
    };
    if (has("gcc"))
        timed("table2", [&] { return suite.table2(); });
    if (has("apsi"))
        timed("table3", [&] { return suite.table3(); });
    timed("mappability", [&] { return suite.mappabilityReport(); });

    // Clustering engine microbench (naive vs accelerated BIC sweep)
    // on the first couple of suite workloads; the dedicated
    // bench_micro_clustering binary measures the full case set.
    std::vector<bench::ClusteringBenchResult> clustering;
    timed("clustering", [&] {
        sp::SimPointOptions base = config.study.simpoint;
        for (std::size_t w = 0; w < names.size() && w < 2; ++w) {
            bench::ClusteringCase bc;
            bc.workload = names[w];
            bc.scale = config.workScale;
            bc.interval = 5000;
            clustering.push_back(
                bench::benchClusteringSweep(bc, base, 1));
        }
        return bench::clusteringTable(clustering);
    });

    // Kernel microbench (scalar reference vs dispatched vector
    // kernels, plus the dedup digest build); the dedicated
    // bench_micro_kernels binary measures with more reps.
    std::vector<bench::KernelBenchResult> kernels;
    bench::DedupBenchResult dedup;
    timed("kernels", [&] {
        kernels = bench::benchKernels(3);
        dedup = bench::benchDedupBuild(3);
        return bench::kernelsTable(kernels);
    });

    // Engine fast-path microbench (structural interpreter vs the
    // compiled engine on the detailed-simulation loop) on the first
    // couple of suite workloads; the dedicated bench_micro_engine
    // binary measures more workloads with more reps.
    std::vector<bench::EngineBenchResult> engineResults;
    timed("engine", [&] {
        const double scale = std::min(config.workScale, 0.2);
        for (std::size_t w = 0; w < names.size() && w < 2; ++w) {
            engineResults.push_back(
                bench::benchEngineWorkload(names[w], scale, 2));
        }
        return bench::engineTable(engineResults);
    });

    const double totalSeconds =
        std::chrono::duration<double>(clock::now() - suiteStart)
            .count();
    // Instructions the pipeline simulated: each binary's full
    // instruction stream (the detailed timing run; profiling and the
    // sampled replays are secondary passes over the same stream).
    u64 instructions = 0;
    for (const std::string& name : names) {
        for (const auto& bs : suite.study(name).perBinary())
            instructions += bs.totalInstrs;
    }

    std::string jsonPath = options.getString("json");
    if (jsonPath.empty())
        jsonPath = "BENCH_pipeline.json";
    std::ofstream json(jsonPath);
    if (!json)
        fatal("cannot write '{}'", jsonPath);
    {
        JsonWriter w(json);
        w.beginObject();
        w.member("jobs", configuredJobs());
        w.member("workloads", names.size());
        w.member("total_seconds", totalSeconds, 3);
        w.member("instructions_simulated", instructions);
        w.member("instructions_per_second",
                 static_cast<double>(instructions) / totalSeconds, 0);
        w.key("clustering");
        bench::writeClusteringCases(w, clustering);
        w.key("kernels");
        bench::writeKernelsJson(w, kernels, dedup);
        w.key("engine");
        bench::writeEngineJson(w, engineResults);
        w.key("figures").beginArray();
        for (const FigureTiming& t : timings) {
            w.beginObject();
            w.member("name", t.name);
            w.member("seconds", t.seconds, 3);
            w.endObject();
        }
        w.endArray();
        // Pipeline-wide observability counters (engine event totals,
        // dedup class structure, Hamerly rates) for run-over-run
        // comparison; exact at any job count.
        w.key("stats");
        obs::StatRegistry::global().writeJson(w, false);
        // Provenance: which nodes each pipeline run computed versus
        // replayed from the store, so a regression in a benchmark
        // number can be traced to a cold cache or a config change.
        w.key("manifest");
        obs::RunManifest::global().writeJson(w);
        w.endObject();
        json << '\n';
    }
    inform("wrote timing summary to {}", jsonPath);

    // Artifact-store cold/warm benchmark: each workload's full study
    // runs twice against a scratch cache directory — the cold run
    // populates it, the warm run reassembles the study from cached
    // artifacts.  The timing pairs land in BENCH_store.json.
    {
        namespace fs = std::filesystem;
        const fs::path cacheDir = "BENCH_store.cache";
        std::error_code ec;
        fs::remove_all(cacheDir, ec);
        store::ArtifactStore::configureGlobal(
            {cacheDir.string(), true});

        struct StoreTiming
        {
            std::string workload;
            double coldSeconds = 0.0;
            double warmSeconds = 0.0;
            u64 warmHits = 0;
        };
        std::vector<StoreTiming> storeTimings;
        obs::StatRegistry& registry = obs::StatRegistry::global();
        for (const std::string& name : names) {
            const ir::Program program =
                workloads::makeWorkload(name, config.workScale);
            StoreTiming t;
            t.workload = name;
            auto start = clock::now();
            sim::CrossBinaryStudy::run(program, config.study);
            t.coldSeconds =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
            const u64 hits0 = registry.counterValue("store.hits");
            start = clock::now();
            sim::CrossBinaryStudy::run(program, config.study);
            t.warmSeconds =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
            t.warmHits = registry.counterValue("store.hits") - hits0;
            storeTimings.push_back(std::move(t));
        }
        store::ArtifactStore::configureGlobal({});
        fs::remove_all(cacheDir, ec);

        std::ofstream storeJson("BENCH_store.json");
        if (!storeJson)
            fatal("cannot write 'BENCH_store.json'");
        JsonWriter w(storeJson);
        w.beginObject();
        w.member("jobs", configuredJobs());
        w.key("workloads").beginArray();
        for (const StoreTiming& t : storeTimings) {
            w.beginObject();
            w.member("workload", t.workload);
            w.member("cold_seconds", t.coldSeconds, 3);
            w.member("warm_seconds", t.warmSeconds, 3);
            w.member("speedup",
                     t.coldSeconds / std::max(t.warmSeconds, 1e-9),
                     1);
            w.member("warm_store_hits", t.warmHits);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        storeJson << '\n';
        inform("wrote store cold/warm summary to BENCH_store.json");
    }

    // Barrier-vs-graph scheduling benchmark: the same set of studies
    // run cold (store disabled above) twice — once with the pre-graph
    // per-study barrier orchestration, once as one global task graph
    // across all workloads — so BENCH_graph.json records what stage-
    // level scheduling buys on this machine.  Capped at a handful of
    // workloads to bound the extra cold recomputation.
    {
        std::vector<std::string> abNames(
            names.begin(),
            names.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min<std::size_t>(names.size(), 6)));
        obs::StatRegistry& registry = obs::StatRegistry::global();

        auto start = clock::now();
        parallelFor(globalPool(), abNames.size(), [&](std::size_t i) {
            sim::CrossBinaryStudy::runBarrier(
                workloads::makeWorkload(abNames[i], config.workScale),
                config.study);
        });
        const double barrierSeconds =
            std::chrono::duration<double>(clock::now() - start)
                .count();

        const u64 busy0 = registry.timerNanos("scheduler.nodeBusy");
        const u64 run0 =
            registry.counterValue("scheduler.nodes.run");
        start = clock::now();
        harness::SuiteGraph suite;
        harness::buildSuiteGraph(suite, config, abNames);
        suite.graph.run(globalPool());
        const double graphSeconds =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        const u64 busyNanos =
            registry.timerNanos("scheduler.nodeBusy") - busy0;
        const unsigned workers = std::max(1u, configuredJobs());
        const double utilization =
            static_cast<double>(busyNanos) /
            (graphSeconds * 1e9 * static_cast<double>(workers));

        std::ofstream graphJson("BENCH_graph.json");
        if (!graphJson)
            fatal("cannot write 'BENCH_graph.json'");
        JsonWriter w(graphJson);
        w.beginObject();
        w.member("jobs", configuredJobs());
        w.key("workloads").beginArray();
        for (const std::string& name : abNames)
            w.value(name);
        w.endArray();
        w.member("barrier_seconds", barrierSeconds, 3);
        w.member("graph_seconds", graphSeconds, 3);
        w.member("speedup",
                 barrierSeconds / std::max(graphSeconds, 1e-9), 2);
        w.key("scheduler").beginObject();
        w.member("nodes", suite.graph.nodeCount());
        w.member("edges", suite.graph.edgeCount());
        w.member("critical_path", suite.graph.criticalPathLength());
        w.member("nodes_run",
                 registry.counterValue("scheduler.nodes.run") - run0);
        w.member("utilization", utilization, 3);
        w.endObject();
        w.endObject();
        graphJson << '\n';
        inform("wrote barrier-vs-graph summary to BENCH_graph.json "
               "({:.2f}x over {} workloads)",
               barrierSeconds / std::max(graphSeconds, 1e-9),
               abNames.size());
    }

    // Local-vs-distributed benchmark: the same suite request rendered
    // in-process and through an in-process `xbsp serve` executor
    // backed by two spawned worker processes, both against cold
    // scratch caches, with the reports byte-compared.  Measures what
    // remote stage execution costs/buys on one machine; the multi-
    // host win is the same protocol with real network latency.
    {
        namespace fs = std::filesystem;
        using clock = std::chrono::steady_clock;

        dist::SuiteRequest request;
        request.figures = {"figure3"};
        request.workloads.assign(
            names.begin(),
            names.begin() + static_cast<std::ptrdiff_t>(
                                std::min<std::size_t>(names.size(), 2)));
        request.workScale = config.workScale;
        request.intervalTarget = config.study.intervalTarget;
        request.maxK = config.study.simpoint.maxK;
        request.seed = config.study.simpoint.seed;

        const fs::path scratch = "BENCH_dist.cache";
        std::error_code ec;

        fs::remove_all(scratch, ec);
        store::ArtifactStore::configureGlobal(
            {(scratch / "local").string(), true});
        auto start = clock::now();
        const std::string localReport =
            dist::renderSuiteReport(request, nullptr);
        const double localSeconds =
            std::chrono::duration<double>(clock::now() - start)
                .count();

        store::ArtifactStore::configureGlobal(
            {(scratch / "dist").string(), true});
        obs::StatRegistry& registry = obs::StatRegistry::global();
        const u64 completed0 =
            registry.counterValue("dist.tasks.completed");
        double distSeconds = 0.0;
        std::string distReport;
        std::size_t workerCount = 0;
        {
            dist::ServerOptions so;
            so.unixPath = (scratch / "sock").string();
            dist::Server server(so);
            std::thread serveThread([&server] { server.serve(); });
            std::vector<int> workerPids;
            for (int i = 0; i < 2; ++i) {
                const int pid = dist::spawnProcess(
                    {XBSP_CLI_PATH, "work", "--connect",
                     "unix:" + so.unixPath, "--worker-name",
                     "bench-w" + std::to_string(i)});
                if (pid > 0)
                    workerPids.push_back(pid);
            }
            for (int i = 0;
                 i < 200 && server.executor().workerCount() <
                                workerPids.size();
                 ++i)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(25));
            workerCount = server.executor().workerCount();
            if (workerCount == 0)
                warn("dist bench: no workers joined (is {} runnable?);"
                     " measuring the local-fallback path",
                     XBSP_CLI_PATH);
            start = clock::now();
            distReport = dist::renderSuiteReport(request,
                                                 &server.executor());
            distSeconds =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
            server.stop();
            serveThread.join();
            for (const int pid : workerPids)
                dist::waitProcess(pid);
        }
        const u64 tasksCompleted =
            registry.counterValue("dist.tasks.completed") - completed0;
        const bool identical = distReport == localReport;
        if (!identical)
            warn("dist bench: distributed report differs from the "
                 "local run (this is a bug)");
        store::ArtifactStore::configureGlobal({});
        fs::remove_all(scratch, ec);

        std::ofstream distJson("BENCH_dist.json");
        if (!distJson)
            fatal("cannot write 'BENCH_dist.json'");
        JsonWriter w(distJson);
        w.beginObject();
        w.member("jobs", configuredJobs());
        w.key("workloads").beginArray();
        for (const std::string& name : request.workloads)
            w.value(name);
        w.endArray();
        w.member("workers", workerCount);
        w.member("local_seconds", localSeconds, 3);
        w.member("dist_seconds", distSeconds, 3);
        w.member("speedup",
                 localSeconds / std::max(distSeconds, 1e-9), 2);
        w.member("remote_tasks_completed", tasksCompleted);
        w.member("identical_reports", identical);
        w.endObject();
        distJson << '\n';
        inform("wrote local-vs-distributed summary to BENCH_dist.json"
               " ({} workers, reports {})",
               workerCount, identical ? "identical" : "DIFFER");
    }

    // Cross-microarchitecture benchmark: the same binaries studied
    // under every timing core (in-order and decoupled-frontend),
    // reporting per-binary CPI error and per-pair speedup error for
    // FLI vs VLI under each.  The timing-independent artifacts
    // (compiles, profiles, clusterings) are shared through the
    // store, so the second core re-runs only the detailed stages.
    {
        using clock = std::chrono::steady_clock;
        const auto start = clock::now();
        const harness::CrossCoreReport cores =
            harness::crossCoreComparison(config);
        const double coresSeconds =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        bench::emit(cores.cpi, options);
        bench::emit(cores.speedup, options);

        std::ofstream coresJson("BENCH_cores.json");
        if (!coresJson)
            fatal("cannot write 'BENCH_cores.json'");
        JsonWriter w(coresJson);
        w.beginObject();
        w.member("jobs", configuredJobs());
        w.member("seconds", coresSeconds, 3);
        const auto writeTable = [&w](const char* key,
                                     const Table& table) {
            w.key(key).beginArray();
            for (std::size_t r = 0; r < table.rowCount(); ++r) {
                w.beginObject();
                for (std::size_t c = 0; c < table.columnCount(); ++c)
                    w.member(table.header(c), table.cell(r, c));
                w.endObject();
            }
            w.endArray();
        };
        writeTable("cpi_error", cores.cpi);
        writeTable("speedup_error", cores.speedup);
        w.endObject();
        coresJson << '\n';
        inform("wrote cross-core summary to BENCH_cores.json "
               "({} CPI rows, {} speedup rows, {:.1f}s)",
               cores.cpi.rowCount(), cores.speedup.rowCount(),
               coresSeconds);
    }
    return 0;
}
