/**
 * @file
 * Analysis (beyond the paper): cross-binary phase agreement.
 * Projects each binary's per-binary (FLI) phase labels onto the
 * common mapped-interval frame and reports the pairwise adjusted
 * Rand index — a direct quantification of §5.2.1's claim that
 * per-binary clusterings group execution differently per binary.
 * The mapped (VLI) scheme scores 1.0 by construction.
 */

#include "bench_common.hh"
#include "core/agreement.hh"

using namespace xbsp;

namespace
{

std::vector<u32>
frameLabels(const sim::CrossBinaryStudy& study, std::size_t binaryIdx)
{
    const sim::BinaryStudy& bs = study.perBinary()[binaryIdx];
    std::vector<InstrCount> frames;
    for (const auto& iv : bs.detailedRun.vliIntervals)
        frames.push_back(iv.instrs);
    return core::projectLabelsOntoFrame(
        bs.fliBoundaries, bs.fliClustering.labels, frames);
}

} // namespace

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_analysis_agreement: pairwise adjusted-Rand agreement "
        "of per-binary FLI clusterings (VLI = 1.0 by construction)");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentSuite suite(bench::makeConfig(options));

    Table table("Phase agreement between per-binary FLI clusterings "
                "(adjusted Rand index on the mapped frame)",
                {"benchmark", "32u/32o", "64u/64o", "32u/64u",
                 "32o/64o", "mean"});
    std::vector<double> means;
    for (const std::string& name : suite.workloads()) {
        const sim::CrossBinaryStudy& study = suite.study(name);
        std::vector<std::vector<u32>> labels;
        for (std::size_t b = 0; b < 4; ++b)
            labels.push_back(frameLabels(study, b));

        const std::pair<std::size_t, std::size_t> pairs[] = {
            {0, 1}, {2, 3}, {0, 2}, {1, 3}};
        table.startRow();
        table.addCell(name);
        RunningStat stat;
        for (const auto& [a, b] : pairs) {
            const double ari =
                core::adjustedRandIndex(labels[a], labels[b]);
            stat.add(ari);
            table.addNumber(ari, 3);
        }
        table.addNumber(stat.mean(), 3);
        means.push_back(stat.mean());
    }
    table.startRow();
    table.addCell("Avg");
    for (int c = 0; c < 4; ++c)
        table.addCell("");
    table.addNumber(mean(means), 3);
    bench::emit(table, options);
    return 0;
}
