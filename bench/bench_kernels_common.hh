/**
 * @file
 * Shared core of the kernel microbench: time the dispatched vector
 * kernels (sqDist, batched E-step distances, axpy, sum) against the
 * scalar reference on dense rows of several dimensionalities —
 * including non-multiples of the 4-lane width, so the tail path is
 * measured too — and time the dedup digest build on duplicate-heavy
 * sparse input.  Verifies scalar/vector bit-identity on every
 * measured buffer as a side effect.  Used by bench_micro_kernels
 * (standalone, writes BENCH_kernels.json) and by bench_all (folds a
 * "kernels" section into BENCH_pipeline.json).
 */

#ifndef XBSP_BENCH_KERNELS_COMMON_HH
#define XBSP_BENCH_KERNELS_COMMON_HH

#include <chrono>
#include <limits>
#include <string>
#include <vector>

#include "simpoint/fvec.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/simd/simd.hh"
#include "util/table.hh"

namespace xbsp::bench
{

/** One kernel x dimensionality measurement. */
struct KernelBenchResult
{
    std::string kernel;
    std::size_t dims = 0;
    double scalarNs = 0.0;  ///< ns per element-op, scalar reference
    double simdNs = 0.0;    ///< ns per element-op, dispatched kernels
    double speedup = 0.0;
    bool identical = false; ///< dispatched bits == scalar bits
};

/** Timing of the dedup digest build (not a SIMD kernel; hash-bound). */
struct DedupBenchResult
{
    std::size_t intervals = 0;
    std::size_t classes = 0;
    double buildSeconds = 0.0;   ///< best-of-reps wall clock
    double nsPerInterval = 0.0;
};

namespace detail
{

inline simd::AlignedVec
randomRows(std::size_t n, u64 seed)
{
    Rng rng(seed);
    simd::AlignedVec v(n);
    for (double& x : v)
        x = rng.nextDouble(-2.0, 2.0);
    return v;
}

/** Best-of-`reps` wall-clock seconds of `body()` (after one warmup). */
template <typename F>
double
bestOf(int reps, F&& body)
{
    using clock = std::chrono::steady_clock;
    body();
    double best = std::numeric_limits<double>::max();
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = clock::now();
        body();
        best = std::min(
            best,
            std::chrono::duration<double>(clock::now() - start)
                .count());
    }
    return best;
}

} // namespace detail

/**
 * Measure the clustering-path kernels at E-step-like shapes: `points`
 * rows of each dimensionality against `k` centroid rows.  Element-op
 * normalization (points x k x dims for distances, points x dims for
 * axpy/sum) makes rows comparable across dims.
 */
inline std::vector<KernelBenchResult>
benchKernels(int reps, std::size_t points = 4096, std::size_t k = 16)
{
    const simd::Kernels& vec = simd::active();
    const simd::Kernels& ref = simd::scalarKernels();
    std::vector<KernelBenchResult> results;

    for (const std::size_t dims : {8ul, 15ul, 16ul, 33ul, 64ul}) {
        const std::size_t stride = simd::padded(dims);
        simd::AlignedVec data = detail::randomRows(points * stride,
                                                   0xbe0000 + dims);
        simd::AlignedVec centroids =
            detail::randomRows(k * stride, 0xce0000 + dims);
        // Zero the padding so the buffers mirror the production
        // layout (padding must be +0.0 for bit-transparency).
        for (std::size_t r = 0; r < points; ++r)
            for (std::size_t d = dims; d < stride; ++d)
                data[r * stride + d] = 0.0;
        for (std::size_t c = 0; c < k; ++c)
            for (std::size_t d = dims; d < stride; ++d)
                centroids[c * stride + d] = 0.0;

        std::vector<double> outVec(points * k, 0.0);
        std::vector<double> outRef(points * k, 0.0);

        // Batched E-step distances: one point vs all k centroids.
        auto batchBody = [&](const simd::Kernels& kern,
                             std::vector<double>& out) {
            for (std::size_t i = 0; i < points; ++i)
                kern.sqDistBatch(data.data() + i * stride,
                                 centroids.data(), k, stride, stride,
                                 out.data() + i * k);
        };
        KernelBenchResult batch;
        batch.kernel = "sqDistBatch";
        batch.dims = dims;
        const double ops =
            static_cast<double>(points) * static_cast<double>(k) *
            static_cast<double>(dims);
        batch.simdNs = detail::bestOf(reps, [&] {
            batchBody(vec, outVec);
        }) * 1e9 / ops;
        batch.scalarNs = detail::bestOf(reps, [&] {
            batchBody(ref, outRef);
        }) * 1e9 / ops;
        batch.speedup = batch.scalarNs / batch.simdNs;
        batch.identical = outVec == outRef;
        results.push_back(batch);

        // Single-row sqDist (the Hamerly owner-check shape).
        auto distBody = [&](const simd::Kernels& kern,
                            std::vector<double>& out) {
            for (std::size_t i = 0; i < points; ++i)
                out[i] = kern.sqDist(data.data() + i * stride,
                                     centroids.data(), stride);
        };
        KernelBenchResult dist;
        dist.kernel = "sqDist";
        dist.dims = dims;
        const double distOps = static_cast<double>(points) *
                               static_cast<double>(dims);
        dist.simdNs = detail::bestOf(reps, [&] {
            distBody(vec, outVec);
        }) * 1e9 / distOps;
        dist.scalarNs = detail::bestOf(reps, [&] {
            distBody(ref, outRef);
        }) * 1e9 / distOps;
        dist.speedup = dist.scalarNs / dist.simdNs;
        dist.identical =
            std::equal(outVec.begin(), outVec.begin() + points,
                       outRef.begin());
        results.push_back(dist);

        // axpy (the projection / centroid-accumulation shape).
        simd::AlignedVec accVec(stride, 0.0), accRef(stride, 0.0);
        auto axpyBody = [&](const simd::Kernels& kern,
                            simd::AlignedVec& acc) {
            for (std::size_t i = 0; i < points; ++i)
                kern.axpy(acc.data(), data.data() + i * stride,
                          1e-6, stride);
        };
        KernelBenchResult axpy;
        axpy.kernel = "axpy";
        axpy.dims = dims;
        axpy.simdNs = detail::bestOf(reps, [&] {
            std::fill(accVec.begin(), accVec.end(), 0.0);
            axpyBody(vec, accVec);
        }) * 1e9 / distOps;
        axpy.scalarNs = detail::bestOf(reps, [&] {
            std::fill(accRef.begin(), accRef.end(), 0.0);
            axpyBody(ref, accRef);
        }) * 1e9 / distOps;
        axpy.speedup = axpy.scalarNs / axpy.simdNs;
        axpy.identical = accVec == accRef;
        results.push_back(axpy);
    }

    // sum (the BIC weight-total shape) at one large length.
    {
        const std::size_t n = points * 16;
        const simd::AlignedVec a = detail::randomRows(n, 0x5e55);
        double sVec = 0.0, sRef = 0.0;
        KernelBenchResult sum;
        sum.kernel = "sum";
        sum.dims = n;
        sum.simdNs = detail::bestOf(reps, [&] {
            sVec = vec.sum(a.data(), n);
        }) * 1e9 / static_cast<double>(n);
        sum.scalarNs = detail::bestOf(reps, [&] {
            sRef = ref.sum(a.data(), n);
        }) * 1e9 / static_cast<double>(n);
        sum.speedup = sum.scalarNs / sum.simdNs;
        sum.identical = sVec == sRef;
        results.push_back(sum);
    }
    return results;
}

/**
 * Time the dedup digest build on a duplicate-heavy synthetic set
 * shaped like real phase behaviour: `phases` distinct vectors
 * emitted in runs of `runLen` (a loop-dominated phase produces the
 * same interval vector for a long stretch before the program moves
 * on), cycling until `intervals` rows exist.  This is the shape the
 * accelerated sweep is bound by.
 */
inline DedupBenchResult
benchDedupBuild(int reps, std::size_t intervals = 20000,
                std::size_t phases = 12, std::size_t nnz = 24,
                std::size_t runLen = 50)
{
    sp::FrequencyVectorSet fvs;
    fvs.dimension = static_cast<u32>(phases * nnz * 2);
    Rng rng(0xdedb);
    std::vector<sp::SparseVec> prototypes(phases);
    for (std::size_t p = 0; p < phases; ++p) {
        for (std::size_t e = 0; e < nnz; ++e)
            prototypes[p].emplace_back(
                static_cast<u32>(p * nnz * 2 + e * 2),
                rng.nextDouble(0.1, 10.0));
    }
    for (std::size_t i = 0; i < intervals; ++i)
        fvs.addInterval(prototypes[(i / runLen) % phases], 1000);
    fvs.normalize();

    DedupBenchResult result;
    result.intervals = intervals;
    sp::DedupMap map;
    result.buildSeconds = detail::bestOf(reps, [&] {
        map = fvs.dedup();
    });
    result.classes = map.classes();
    result.nsPerInterval = result.buildSeconds * 1e9 /
                           static_cast<double>(intervals);
    return result;
}

/** Render the kernel measurements as a standard bench table. */
inline Table
kernelsTable(const std::vector<KernelBenchResult>& results)
{
    Table table(std::string("Vector kernels: scalar reference vs "
                            "dispatched (") +
                    simd::archName(simd::active().arch) + ")",
                {"kernel", "dims", "scalar_ns", "simd_ns", "speedup",
                 "identical"});
    for (const KernelBenchResult& r : results) {
        table.startRow();
        table.addCell(r.kernel);
        table.addInteger(static_cast<long long>(r.dims));
        table.addNumber(r.scalarNs, 3);
        table.addNumber(r.simdNs, 3);
        table.addNumber(r.speedup, 2);
        table.addCell(r.identical ? "yes" : "NO");
    }
    return table;
}

/**
 * Emit the kernel + dedup measurements as one JSON object value on
 * `w` (the caller has already placed the key).
 */
inline void
writeKernelsJson(JsonWriter& w,
                 const std::vector<KernelBenchResult>& results,
                 const DedupBenchResult& dedup)
{
    w.beginObject();
    w.member("arch", simd::archName(simd::active().arch));
    w.member("lanes", simd::kLanes);
    w.key("kernels").beginArray();
    for (const KernelBenchResult& r : results) {
        w.beginObject();
        w.member("kernel", r.kernel);
        w.member("dims", r.dims);
        w.member("scalar_ns_per_op", r.scalarNs, 4);
        w.member("simd_ns_per_op", r.simdNs, 4);
        w.member("speedup", r.speedup, 2);
        w.member("identical", r.identical);
        w.endObject();
    }
    w.endArray();
    w.key("dedup").beginObject();
    w.member("intervals", dedup.intervals);
    w.member("classes", dedup.classes);
    w.member("build_seconds", dedup.buildSeconds, 6);
    w.member("ns_per_interval", dedup.nsPerInterval, 1);
    w.endObject();
    w.endObject();
}

} // namespace xbsp::bench

#endif // XBSP_BENCH_KERNELS_COMMON_HH
