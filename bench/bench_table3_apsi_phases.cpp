/**
 * @file
 * Regenerates the paper's Table 3: per-phase weight/true-CPI/
 * SimPoint-CPI/bias comparison for apsi across two binaries, under
 * both the per-binary (FLI) and mappable (VLI) schemes.
 */

#include "bench_common.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_table3: reproduce paper Table 3 (apsi)");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentConfig config = bench::makeConfig(options);
    config.workloads = {"apsi"};
    harness::ExperimentSuite suite(config);
    bench::emit(suite.table3(), options);
    return 0;
}
