/**
 * @file
 * Regenerates the paper's Figure 5 (see DESIGN.md for the
 * experiment index).  Runs the cross-binary SimPoint pipeline on the
 * selected workloads and prints the figure's series as a table.
 */

#include "bench_common.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_fig5: reproduce paper Figure 5");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentSuite suite(bench::makeConfig(options));
    bench::emit(suite.figure5(), options);
    return 0;
}
