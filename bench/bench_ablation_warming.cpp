/**
 * @file
 * Ablation: warm vs cold sampling (DESIGN.md decision 4).  The
 * pipeline's estimates assume functionally-warmed caches (statistics
 * gated over a full run).  This bench re-simulates each chosen VLI
 * simulation point with explicitly cold caches at region start and
 * compares the resulting CPI estimates, quantifying how much
 * cold-start bias the warm-sampling choice avoids.
 */

#include "bench_common.hh"
#include "sim/region.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_ablation_warming: warm vs cold simulation-point "
        "replay for the mappable (VLI) scheme");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentConfig config = bench::makeConfig(options);
    if (config.workloads.empty())
        config.workloads = {"swim", "mcf", "gzip", "eon"};
    harness::ExperimentSuite suite(config);

    Table table("Ablation: warm vs cold sampling (per binary, VLI "
                "simulation points)",
                {"benchmark", "binary", "true CPI", "warm est",
                 "warm err", "cold est", "cold err"});
    for (const std::string& name : suite.workloads()) {
        const sim::CrossBinaryStudy& s = suite.study(name);
        for (std::size_t b = 0; b < s.binaries().size(); ++b) {
            const sim::BinaryStudy& bs = s.perBinary()[b];
            // Rebuild the estimate with cold region replays,
            // through the same request a full detailed run uses.
            sim::DetailedRunRequest request =
                sim::makeRunRequest(config.study);
            request.mappable = &s.mappable();
            request.binaryIdx = b;
            request.partition = &s.partition();
            double coldCpi = 0.0;
            for (const auto& phase : bs.vliEstimate.phases) {
                const sim::IntervalStats cold = sim::simulateVliRegion(
                    s.binaries()[b], request, phase.representative,
                    sim::RegionWarming::Cold);
                coldCpi += phase.weight * cold.cpi();
            }
            table.startRow();
            table.addCell(name);
            table.addCell(bin::targetName(bs.target));
            table.addNumber(bs.vliEstimate.trueCpi, 3);
            table.addNumber(bs.vliEstimate.estCpi, 3);
            table.addPercent(bs.vliEstimate.cpiError, 2);
            table.addNumber(coldCpi, 3);
            table.addPercent(relativeError(bs.vliEstimate.trueCpi,
                                           coldCpi), 2);
        }
    }
    bench::emit(table, options);
    return 0;
}
