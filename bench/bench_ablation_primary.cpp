/**
 * @file
 * Ablation: choice of the primary binary (§3.2.4 notes it can be
 * picked arbitrarily but affects mapped interval sizes).  Runs the
 * VLI pipeline with each of the four binaries as primary and reports
 * the resulting average interval size and estimation errors.
 */

#include "bench_common.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_ablation_primary: effect of the primary-binary choice "
        "on mappable SimPoint");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentConfig base = bench::makeConfig(options);
    if (base.workloads.empty())
        base.workloads = {"gcc", "apsi", "swim", "mcf", "crafty"};

    Table table("Ablation: primary binary choice (averages over the "
                "workload subset)",
                {"primary", "vli interval (M)", "vli CPI err",
                 "vli speedup err"});
    const char* primaryNames[] = {"32u", "32o", "64u", "64o"};
    for (std::size_t primary = 0; primary < 4; ++primary) {
        harness::ExperimentConfig config = base;
        config.study.primaryIdx = primary;
        harness::ExperimentSuite suite(config);

        RunningStat size, cpi, spd;
        auto pairs = sim::samePlatformPairs();
        for (const auto& pair : sim::crossPlatformPairs())
            pairs.push_back(pair);
        for (const std::string& name : suite.workloads()) {
            const sim::CrossBinaryStudy& s = suite.study(name);
            size.add(s.avgIntervalSize(sim::Method::MappableVli) / 1e6);
            cpi.add(s.avgCpiError(sim::Method::MappableVli));
            for (const auto& pair : pairs) {
                spd.add(s.speedupError(sim::Method::MappableVli,
                                       pair.a, pair.b));
            }
        }
        table.startRow();
        table.addCell(primaryNames[primary]);
        table.addNumber(size.mean(), 3);
        table.addPercent(cpi.mean(), 2);
        table.addPercent(spd.mean(), 2);
    }
    bench::emit(table, options);
    return 0;
}
