/**
 * @file
 * Clustering microbench: times the full SimPoint BIC sweep
 * (k = 1..maxK x seedsPerK restarts) on real workload profiles with
 * the naive clustering engine and with the accelerated one (exact
 * duplicate-interval dedup + Hamerly-bounded k-means + parallel
 * (k, seed) sweep), verifies both produce identical phases, and
 * writes BENCH_clustering.json.  Single-threaded by default
 * (--jobs 1) so the table isolates the algorithmic speedup from
 * thread-level parallelism; raise --jobs to measure the sweep-level
 * scaling on top.
 */

#include <fstream>
#include <iostream>

#include "bench_clustering_common.hh"
#include "bench_common.hh"
#include "util/threadpool.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options(
        "bench_micro_clustering: naive vs accelerated BIC sweep");
    options.addString("workloads",
                      "comma-separated workload subset (empty = "
                      "gcc,gzip,swim)", "");
    options.addDouble("scale", "work scale factor", 2.0);
    options.addUint("interval", "interval target in instructions",
                    0);
    options.addUint("maxk", "SimPoint cluster cap", 10);
    options.addUint("seed", "SimPoint seed", 42);
    options.addUint("reps", "repetitions per engine (best-of)", 3);
    options.addBool("csv", "also emit CSV after the table", false);
    options.addJobs();
    options.addString("json",
                      "output path (default BENCH_clustering.json)",
                      "");
    if (!options.parse(argc, argv))
        return 0;
    // Default to one worker (not auto): the headline numbers isolate
    // the algorithmic speedup from thread-level parallelism.
    options.applyJobs();
    if (options.getUint("jobs") == 0)
        setGlobalJobs(1);

    std::vector<bench::ClusteringCase> cases;
    const std::vector<std::string> subset =
        bench::splitList(options.getString("workloads"));
    if (subset.empty()) {
        cases = bench::defaultClusteringCases();
    } else {
        for (const std::string& name : subset) {
            bench::ClusteringCase bc;
            bc.workload = name;
            cases.push_back(bc);
        }
    }
    for (bench::ClusteringCase& bc : cases) {
        bc.scale = options.getDouble("scale");
        if (options.getUint("interval"))
            bc.interval = options.getUint("interval");
        else if (!subset.empty())
            bc.interval = 5000;
    }

    sp::SimPointOptions base;
    base.maxK = static_cast<u32>(options.getUint("maxk"));
    base.seed = options.getUint("seed");
    const int reps = static_cast<int>(options.getUint("reps"));

    std::vector<bench::ClusteringBenchResult> results;
    for (const bench::ClusteringCase& bc : cases) {
        inform("clustering sweep: {} (scale {}, interval {})",
               bc.workload, bc.scale, bc.interval);
        results.push_back(
            bench::benchClusteringSweep(bc, base, reps));
    }

    const Table table = bench::clusteringTable(results);
    table.print(std::cout);
    if (options.getBool("csv")) {
        std::cout << "\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";

    std::string jsonPath = options.getString("json");
    if (jsonPath.empty())
        jsonPath = "BENCH_clustering.json";
    std::ofstream json(jsonPath);
    if (!json)
        fatal("cannot write '{}'", jsonPath);
    {
        JsonWriter w(json);
        w.beginObject();
        w.member("jobs", configuredJobs());
        w.member("reps", reps);
        w.key("cases");
        bench::writeClusteringCases(w, results);
        w.key("stats");
        obs::StatRegistry::global().writeJson(w, false);
        w.endObject();
        json << '\n';
    }
    inform("wrote clustering summary to {}", jsonPath);

    for (const bench::ClusteringBenchResult& r : results) {
        if (!r.identical) {
            fatal("accelerated clustering diverged from naive on "
                  "'{}'", r.workload);
        }
    }
    return 0;
}
