/**
 * @file
 * Engine microbench: times the detailed-simulation loop as the
 * pre-fast-path architecture (structural interpreter, per-reference
 * virtual dispatch, reference hierarchy loop) against the full fast
 * path (compiled engine, devirtualized core sink, batched hierarchy
 * walk), per workload, and writes BENCH_engine.json.
 * Single-threaded: this is the per-engine hot loop, orthogonal to
 * study-level parallelism.
 *
 * Every measured workload is also cross-checked for observational
 * identity — serialized event streams byte-for-byte and exact core
 * counter agreement — and any divergence is a hard failure.  A
 * speedup floor can be enforced with --min-speedup (default 0, so
 * divergence is the only hard failure in CI; the measured speedups
 * land in the JSON for offline tracking).
 */

#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "bench_engine_common.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options(
        "bench_micro_engine: interpreter vs compiled engine fast "
        "path on the detailed-simulation loop");
    options.addString("workloads",
                      "comma-separated workload subset",
                      "gzip,mcf,equake");
    options.addDouble("scale", "work scale factor", 0.3);
    options.addUint("reps", "repetitions per mode (best-of)", 3);
    options.addDouble("min-speedup",
                      "fail unless every workload's compiled/interp "
                      "speedup reaches this (0 disables; divergence "
                      "always fails)",
                      0.0);
    options.addBool("csv", "also emit CSV after the table", false);
    options.addString("json",
                      "output path (default BENCH_engine.json)", "");
    if (!options.parse(argc, argv))
        return 0;
    setGlobalJobs(1);

    const double scale = options.getDouble("scale");
    const int reps = static_cast<int>(options.getUint("reps"));
    const double minSpeedup = options.getDouble("min-speedup");

    std::vector<bench::EngineBenchResult> results;
    for (const std::string& name :
         bench::splitList(options.getString("workloads"))) {
        inform("engine bench: {} (scale {}, {} reps per mode)", name,
               scale, reps);
        results.push_back(
            bench::benchEngineWorkload(name, scale, reps));
    }
    if (results.empty())
        fatal("no workloads selected");

    const Table table = bench::engineTable(results);
    table.print(std::cout);
    if (options.getBool("csv")) {
        std::cout << "\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";

    std::string jsonPath = options.getString("json");
    if (jsonPath.empty())
        jsonPath = "BENCH_engine.json";
    std::ofstream json(jsonPath);
    if (!json)
        fatal("cannot write '{}'", jsonPath);
    {
        JsonWriter w(json);
        w.beginObject();
        w.member("scale", scale, 3);
        w.member("reps", reps);
        w.key("engine");
        bench::writeEngineJson(w, results);
        w.endObject();
        json << '\n';
    }
    inform("wrote engine summary to {}", jsonPath);

    for (const bench::EngineBenchResult& r : results) {
        if (!r.identical) {
            fatal("engine modes diverged on '{}': the compiled "
                  "engine must be observationally identical to the "
                  "interpreter",
                  r.workload);
        }
        if (minSpeedup > 0.0 && r.speedup < minSpeedup) {
            fatal("'{}' speedup {:.2f}x is below the --min-speedup "
                  "floor {:.2f}x",
                  r.workload, r.speedup, minSpeedup);
        }
    }
    return 0;
}
