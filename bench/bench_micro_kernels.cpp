/**
 * @file
 * Kernel microbench: times the dispatched vector kernels (batched
 * E-step distances, single-row sqDist, axpy, sum) against the scalar
 * reference across several dimensionalities — including
 * non-multiples of the 4-lane width — plus the dedup digest build,
 * and writes BENCH_kernels.json.  Single-threaded: these are
 * per-element kernel numbers, orthogonal to the pool-level scaling
 * the clustering bench measures.  Every measured buffer is also
 * cross-checked for scalar/vector bit-identity; any mismatch is a
 * hard failure.
 */

#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "bench_kernels_common.hh"
#include "obs/stats.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options(
        "bench_micro_kernels: scalar vs SIMD clustering kernels");
    options.addUint("reps", "repetitions per kernel (best-of)", 5);
    options.addUint("points", "rows per kernel measurement", 4096);
    options.addUint("k", "centroid rows in the batched E-step shape",
                    16);
    options.addString("simd",
                      "kernel dispatch: off|scalar|auto|on|avx2|neon "
                      "(default: XBSP_SIMD, else best available)", "");
    options.addBool("csv", "also emit CSV after the table", false);
    options.addString("json",
                      "output path (default BENCH_kernels.json)", "");
    if (!options.parse(argc, argv))
        return 0;
    if (const std::string mode = options.getString("simd");
        !mode.empty())
        simd::select(mode);
    setGlobalJobs(1);

    const int reps = static_cast<int>(options.getUint("reps"));
    inform("kernel bench: dispatch arch '{}' ({} lanes)",
           simd::archName(simd::active().arch), simd::kLanes);

    const std::vector<bench::KernelBenchResult> kernels =
        bench::benchKernels(reps, options.getUint("points"),
                            options.getUint("k"));
    const bench::DedupBenchResult dedup = bench::benchDedupBuild(reps);

    const Table table = bench::kernelsTable(kernels);
    table.print(std::cout);
    if (options.getBool("csv")) {
        std::cout << "\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
    inform("dedup build: {} intervals -> {} classes in {:.3f} ms "
           "({:.0f} ns/interval)",
           dedup.intervals, dedup.classes, dedup.buildSeconds * 1e3,
           dedup.nsPerInterval);

    std::string jsonPath = options.getString("json");
    if (jsonPath.empty())
        jsonPath = "BENCH_kernels.json";
    std::ofstream json(jsonPath);
    if (!json)
        fatal("cannot write '{}'", jsonPath);
    {
        JsonWriter w(json);
        w.beginObject();
        w.member("reps", reps);
        w.member("points", options.getUint("points"));
        w.key("kernels");
        bench::writeKernelsJson(w, kernels, dedup);
        w.endObject();
        json << '\n';
    }
    inform("wrote kernel summary to {}", jsonPath);

    for (const bench::KernelBenchResult& r : kernels) {
        if (!r.identical) {
            fatal("kernel '{}' (dims {}) diverged from the scalar "
                  "reference", r.kernel, r.dims);
        }
    }
    return 0;
}
