/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * building blocks the studies spend their time in — cache hierarchy
 * accesses, address generation, execution-engine interpretation,
 * random projection and k-means.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "cache/hierarchy.hh"
#include "compile/compiler.hh"
#include "cpu/core.hh"
#include "cpu/inorder.hh"
#include "exec/engine.hh"
#include "mem/pattern.hh"
#include "simpoint/simpoint.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

void
BM_CacheHierarchyAccess(benchmark::State& state)
{
    cache::Hierarchy hierarchy;
    Rng rng(1);
    const u64 lines = static_cast<u64>(state.range(0)) * 1024 / 64;
    u64 count = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hierarchy.access(rng.nextBelow(lines) * 64, false));
        ++count;
    }
    state.SetItemsProcessed(static_cast<i64>(count));
}
BENCHMARK(BM_CacheHierarchyAccess)->Arg(16)->Arg(256)->Arg(4096);

void
BM_AddressGenerator(benchmark::State& state)
{
    ir::MemPattern pattern;
    pattern.kind = static_cast<ir::MemPatternKind>(state.range(0));
    pattern.regionId = 1;
    pattern.workingSet = 1 << 20;
    pattern.writeFraction = 0.3;
    mem::AddressGenerator gen(pattern, 7);
    u64 count = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.next());
        ++count;
    }
    state.SetItemsProcessed(static_cast<i64>(count));
}
BENCHMARK(BM_AddressGenerator)
    ->Arg(static_cast<int>(ir::MemPatternKind::Stride))
    ->Arg(static_cast<int>(ir::MemPatternKind::RandomInSet))
    ->Arg(static_cast<int>(ir::MemPatternKind::PointerChase))
    ->Arg(static_cast<int>(ir::MemPatternKind::Gather));

void
BM_EngineProfileRun(benchmark::State& state)
{
    const ir::Program program = workloads::makeWorkload("gzip", 0.1);
    const bin::Binary binary =
        compile::compileProgram(program, bin::target32o);
    InstrCount instrs = 0;
    for (auto _ : state) {
        exec::Engine engine(binary);
        engine.run();
        instrs += engine.instructionsExecuted();
    }
    state.SetItemsProcessed(static_cast<i64>(instrs));
}
BENCHMARK(BM_EngineProfileRun)->Unit(benchmark::kMillisecond);

void
BM_EngineDetailedRun(benchmark::State& state)
{
    const ir::Program program = workloads::makeWorkload("gzip", 0.1);
    const bin::Binary binary =
        compile::compileProgram(program, bin::target32o);
    InstrCount instrs = 0;
    for (auto _ : state) {
        exec::Engine engine(binary);
        cache::Hierarchy hierarchy;
        cpu::InOrderCore core(hierarchy);
        engine.addObserver(&core, {true, true, false});
        engine.run();
        instrs += engine.instructionsExecuted();
    }
    state.SetItemsProcessed(static_cast<i64>(instrs));
}
BENCHMARK(BM_EngineDetailedRun)->Unit(benchmark::kMillisecond);

sp::FrequencyVectorSet
syntheticIntervals(std::size_t count, u32 dimension)
{
    Rng rng(99);
    sp::FrequencyVectorSet fvs;
    fvs.dimension = dimension;
    for (std::size_t i = 0; i < count; ++i) {
        sp::SparseVec vec;
        for (u32 d = 0; d < dimension; d += 7)
            vec.emplace_back(d, rng.nextDouble(0.0, 100.0));
        fvs.addInterval(std::move(vec), 250000);
    }
    return fvs;
}

void
BM_SimPointPick(benchmark::State& state)
{
    const sp::FrequencyVectorSet fvs = syntheticIntervals(
        static_cast<std::size_t>(state.range(0)), 300);
    sp::SimPointOptions options;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sp::pickSimulationPoints(fvs, options));
    }
}
BENCHMARK(BM_SimPointPick)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void
BM_Projection(benchmark::State& state)
{
    const sp::FrequencyVectorSet fvs = syntheticIntervals(
        static_cast<std::size_t>(state.range(0)), 300);
    for (auto _ : state)
        benchmark::DoNotOptimize(sp::project(fvs, 15, 42));
}
BENCHMARK(BM_Projection)->Arg(100)->Arg(1000);

void
BM_CompileAllTargets(benchmark::State& state)
{
    const ir::Program program = workloads::makeWorkload("gcc", 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(compile::compileAllTargets(program));
}
BENCHMARK(BM_CompileAllTargets)->Unit(benchmark::kMillisecond);

} // namespace

// BENCHMARK_MAIN(), plus a default machine-readable report: unless
// the caller picks their own --benchmark_out, results also land in
// BENCH_micro_components.json (google-benchmark JSON format).
int
main(int argc, char** argv)
{
    bool haveOut = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]).starts_with("--benchmark_out="))
            haveOut = true;
    }
    std::vector<char*> args(argv, argv + argc);
    std::string outArg = "--benchmark_out=BENCH_micro_components.json";
    std::string formatArg = "--benchmark_out_format=json";
    if (!haveOut) {
        args.push_back(outArg.data());
        args.push_back(formatArg.data());
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
