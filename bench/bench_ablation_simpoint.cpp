/**
 * @file
 * Ablations over the SimPoint configuration (beyond the paper):
 * projection dimensionality, the maxK cluster cap, and the k-means
 * seeding method, measured by the average CPI and speedup error of
 * both schemes on a workload subset.  These probe the design choices
 * DESIGN.md calls out: dims=15/maxK=10 follow SimPoint 3.0 and the
 * paper; k-means++ seeding is this implementation's deviation.
 */

#include "bench_common.hh"

using namespace xbsp;

namespace
{

struct Row
{
    std::string label;
    sim::StudyConfig study;
};

void
runSweep(const std::string& caption, const std::vector<Row>& rows,
         const harness::ExperimentConfig& baseConfig,
         const Options& options)
{
    Table table(caption, {"config", "fli CPI err", "vli CPI err",
                          "fli speedup err", "vli speedup err"});
    for (const Row& row : rows) {
        harness::ExperimentConfig config = baseConfig;
        config.study = row.study;
        harness::ExperimentSuite suite(config);

        RunningStat fliCpi, vliCpi, fliSpd, vliSpd;
        auto pairs = sim::samePlatformPairs();
        for (const auto& pair : sim::crossPlatformPairs())
            pairs.push_back(pair);
        for (const std::string& name : suite.workloads()) {
            const sim::CrossBinaryStudy& s = suite.study(name);
            fliCpi.add(s.avgCpiError(sim::Method::PerBinaryFli));
            vliCpi.add(s.avgCpiError(sim::Method::MappableVli));
            for (const auto& pair : pairs) {
                fliSpd.add(s.speedupError(sim::Method::PerBinaryFli,
                                          pair.a, pair.b));
                vliSpd.add(s.speedupError(sim::Method::MappableVli,
                                          pair.a, pair.b));
            }
        }
        table.startRow();
        table.addCell(row.label);
        table.addPercent(fliCpi.mean(), 2);
        table.addPercent(vliCpi.mean(), 2);
        table.addPercent(fliSpd.mean(), 2);
        table.addPercent(vliSpd.mean(), 2);
    }
    bench::emit(table, options);
}

} // namespace

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_ablation_simpoint: projection dims / maxK / seeding "
        "sweeps (defaults to a representative workload subset)");
    if (!options.parse(argc, argv))
        return 0;
    harness::ExperimentConfig base = bench::makeConfig(options);
    if (base.workloads.empty())
        base.workloads = {"gcc", "apsi", "swim", "mcf", "crafty"};

    std::vector<Row> dims;
    for (u32 d : {2u, 4u, 8u, 15u, 30u}) {
        Row row{format("dims={}", d), base.study};
        row.study.simpoint.projectedDims = d;
        dims.push_back(row);
    }
    runSweep("Ablation: random-projection dimensionality", dims, base,
             options);

    std::vector<Row> maxk;
    for (u32 k : {3u, 5u, 10u, 20u, 30u}) {
        Row row{format("maxK={}", k), base.study};
        row.study.simpoint.maxK = k;
        maxk.push_back(row);
    }
    runSweep("Ablation: maxK cluster cap", maxk, base, options);

    std::vector<Row> init;
    {
        Row plus{"kmeans++", base.study};
        plus.study.simpoint.init = sp::InitMethod::KMeansPlusPlus;
        Row rand{"random-partition", base.study};
        rand.study.simpoint.init = sp::InitMethod::RandomPartition;
        init = {plus, rand};
    }
    runSweep("Ablation: k-means seeding", init, base, options);

    std::vector<Row> intervals;
    for (u64 target : {100'000ull, 250'000ull, 500'000ull,
                       1'000'000ull}) {
        Row row{format("interval={}K", target / 1000), base.study};
        row.study.intervalTarget = target;
        intervals.push_back(row);
    }
    runSweep("Ablation: interval target size", intervals, base,
             options);

    std::vector<Row> early;
    {
        Row central{"central (default)", base.study};
        Row earliest{"early points (tol 0.3)", base.study};
        earliest.study.simpoint.earlyPoints = true;
        early = {central, earliest};
    }
    runSweep("Ablation: early simulation points", early, base,
             options);
    return 0;
}
