/**
 * @file
 * Regenerates the paper's Figure 3 (see DESIGN.md for the
 * experiment index).  Runs the cross-binary SimPoint pipeline on the
 * selected workloads and prints the figure's series as a table.
 */

#include "bench_common.hh"
#include "obs/setup.hh"

using namespace xbsp;

int
main(int argc, char** argv)
{
    Options options = bench::makeOptions(
        "bench_fig3: reproduce paper Figure 3");
    if (!options.parse(argc, argv))
        return 0;
    // Env-only observability (XBSP_STATS / XBSP_METRICS / ...): CI
    // scrapes this bench live and diffs its output sampler-on vs off.
    obs::ObsSession obsSession;
    harness::ExperimentSuite suite(bench::makeConfig(options));
    bench::emit(suite.figure3(), options);
    return 0;
}
