/**
 * @file
 * Shared scaffolding for the per-figure/table bench binaries: common
 * command-line options and table emission (text + optional CSV).
 */

#ifndef XBSP_BENCH_COMMON_HH
#define XBSP_BENCH_COMMON_HH

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "exec/compiled.hh"
#include "harness/experiments.hh"
#include "util/format.hh"
#include "util/options.hh"
#include "util/simd/simd.hh"
#include "util/stats.hh"

namespace xbsp::bench
{

/** Options every experiment bench accepts. */
inline Options
makeOptions(const std::string& description)
{
    Options options(description);
    options.addString("workloads",
                      "comma-separated workload subset (empty = all)",
                      "");
    options.addDouble("scale", "work scale factor", 1.0);
    options.addUint("interval", "interval target in instructions",
                    250000);
    options.addUint("maxk", "SimPoint cluster cap", 10);
    options.addUint("seed", "SimPoint seed", 42);
    options.addBool("accel",
                    "accelerated clustering engine (dedup + Hamerly "
                    "bounds + parallel sweep; exact either way)",
                    true);
    options.addBool("csv", "also emit CSV after the table", false);
    options.addBool("verbose", "per-study progress on stderr", true);
    options.addString("simd",
                      "kernel dispatch: off|scalar|auto|on|avx2|neon "
                      "(default: XBSP_SIMD, else best available; pure "
                      "speed knob — results are bit-identical)", "");
    options.addString("engine",
                      "execution engine: interp|compiled (default: "
                      "XBSP_ENGINE, else compiled; pure speed knob — "
                      "results are bit-identical)", "");
    options.addString("core",
                      "timing core: inorder|decoupled (default: "
                      "XBSP_CORE, else inorder; a model knob — "
                      "changes results and store keys)", "");
    options.addJobs();
    options.addString("json",
                      "write a machine-readable timing summary to "
                      "this path (empty = binary's default, if any)",
                      "");
    return options;
}

/** Split a comma-separated list. */
inline std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/** Build the experiment configuration from parsed options. */
inline harness::ExperimentConfig
makeConfig(const Options& options)
{
    harness::ExperimentConfig config;
    options.applyJobs();
    if (const std::string mode = options.getString("simd");
        !mode.empty())
        simd::select(mode);
    if (const std::string mode = options.getString("engine");
        !mode.empty())
        exec::selectEngineMode(mode);
    // A model knob: defaultStudyConfig() below reads the selection.
    if (const std::string mode = options.getString("core");
        !mode.empty())
        cpu::selectCore(mode);
    config.workloads = splitList(options.getString("workloads"));
    config.workScale = options.getDouble("scale");
    config.study = harness::defaultStudyConfig();
    config.study.intervalTarget = options.getUint("interval");
    config.study.simpoint.maxK =
        static_cast<u32>(options.getUint("maxk"));
    config.study.simpoint.seed = options.getUint("seed");
    config.study.simpoint.accelerate = options.getBool("accel");
    config.verbose = options.getBool("verbose");
    return config;
}

/** Print the table (and CSV when asked). */
inline void
emit(const Table& table, const Options& options)
{
    table.print(std::cout);
    if (options.getBool("csv")) {
        std::cout << "\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
}

} // namespace xbsp::bench

#endif // XBSP_BENCH_COMMON_HH
