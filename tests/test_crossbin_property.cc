/**
 * @file
 * Cross-binary property tests over the full workload suite (scaled
 * down): the invariants that make the paper's technique sound, as
 * executable properties.
 */

#include <gtest/gtest.h>

#include "core/vli.hh"
#include "sim/report.hh"
#include "sim/study.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

sim::StudyConfig
propertyConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 60000;
    config.detailed = true;
    return config;
}

} // namespace

class CrossBinaryPropertyTest
    : public ::testing::TestWithParam<const char*>
{
  protected:
    const sim::CrossBinaryStudy&
    study() const
    {
        static std::map<std::string, sim::CrossBinaryStudy> cache;
        const std::string name = GetParam();
        auto it = cache.find(name);
        if (it == cache.end()) {
            it = cache
                     .emplace(name,
                              sim::CrossBinaryStudy::run(
                                  workloads::makeWorkload(name, 0.12),
                                  propertyConfig()))
                     .first;
        }
        return it->second;
    }
};

TEST_P(CrossBinaryPropertyTest, MappablePointsExist)
{
    EXPECT_GT(study().mappable().points.size(), 3u);
}

TEST_P(CrossBinaryPropertyTest, MappableCountsEqualEverywhere)
{
    // The defining property: each point's summed dynamic count is
    // identical in all four binaries (verified against profiles
    // inside findMappablePoints; here we assert points carry groups
    // for every binary).
    for (const auto& point : study().mappable().points) {
        ASSERT_EQ(point.markerIds.size(), 4u);
        for (const auto& group : point.markerIds)
            EXPECT_FALSE(group.empty());
        EXPECT_GT(point.execCount, 0u);
    }
}

TEST_P(CrossBinaryPropertyTest, PartitionMapsToEveryBinary)
{
    const auto& s = study();
    const std::size_t count = s.partition().intervalCount();
    for (const auto& bs : s.perBinary()) {
        ASSERT_EQ(bs.detailedRun.vliIntervals.size(), count)
            << bin::targetName(bs.target);
        InstrCount sum = 0;
        for (const auto& iv : bs.detailedRun.vliIntervals)
            sum += iv.instrs;
        EXPECT_EQ(sum, bs.totalInstrs);
    }
}

TEST_P(CrossBinaryPropertyTest, WeightsRecalculatedPerBinary)
{
    for (const auto& bs : study().perBinary()) {
        double total = 0.0;
        for (const auto& phase : bs.vliEstimate.phases) {
            EXPECT_GE(phase.weight, 0.0);
            EXPECT_LE(phase.weight, 1.0);
            total += phase.weight;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST_P(CrossBinaryPropertyTest, EstimatesBoundedByIntervalExtremes)
{
    for (const auto& bs : study().perBinary()) {
        double lo = 1e30, hi = 0.0;
        for (const auto& iv : bs.detailedRun.vliIntervals) {
            if (iv.instrs == 0)
                continue;
            lo = std::min(lo, iv.cpi());
            hi = std::max(hi, iv.cpi());
        }
        EXPECT_GE(bs.vliEstimate.estCpi, lo - 1e-9);
        EXPECT_LE(bs.vliEstimate.estCpi, hi + 1e-9);
    }
}

TEST_P(CrossBinaryPropertyTest, TrueSpeedupsAreConsistentRatios)
{
    const auto& s = study();
    // speedup(a,b) * speedup(b,c) == speedup(a,c)
    const double ab = s.trueSpeedup(0, 1);
    const double bc = s.trueSpeedup(1, 3);
    const double ac = s.trueSpeedup(0, 3);
    EXPECT_NEAR(ab * bc, ac, 1e-9);
}

TEST_P(CrossBinaryPropertyTest, StatsReportWellFormed)
{
    std::ostringstream os;
    sim::dumpStudyStats(os, study());
    const std::string out = os.str();
    EXPECT_NE(out.find(".sim_insts"), std::string::npos);
    EXPECT_NE(out.find(".vli.cpi_error"), std::string::npos);
    EXPECT_NE(out.find("speedup.32u32o.true"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CrossBinaryPropertyTest,
    ::testing::Values("ammp", "applu", "apsi", "art", "bzip2",
                      "crafty", "eon", "equake", "fma3d", "gcc",
                      "gzip", "lucas", "mcf", "mesa", "perlbmk",
                      "sixtrack", "swim", "twolf", "vortex", "vpr",
                      "wupwise"));
