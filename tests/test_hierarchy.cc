/**
 * @file
 * Unit tests for the three-level cache hierarchy and the in-order
 * core timing model.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/reference.hh"
#include "cpu/core.hh"
#include "cpu/inorder.hh"

using namespace xbsp;
using cache::Hierarchy;
using cache::HierarchyConfig;
using cache::HitLevel;

TEST(Hierarchy, FirstAccessGoesToMemoryThenHitsL1)
{
    Hierarchy hierarchy;
    EXPECT_EQ(hierarchy.access(0x4000, false), HitLevel::Memory);
    EXPECT_EQ(hierarchy.access(0x4000, false), HitLevel::L1);
    EXPECT_EQ(hierarchy.access(0x4020, false), HitLevel::L1)
        << "same 64B line";
}

TEST(Hierarchy, EvictedFromL1HitsInL2)
{
    Hierarchy hierarchy;
    // L1 is 32KB 2-way with 256 sets; lines mapping to set 0 are
    // 16KB apart.  Three of them overflow the 2 ways.
    const Addr a = 0, b = 16384, c = 32768;
    hierarchy.access(a, false);
    hierarchy.access(b, false);
    hierarchy.access(c, false); // evicts a from L1
    EXPECT_EQ(hierarchy.access(a, false), HitLevel::L2);
}

TEST(Hierarchy, LatencyMatchesTable1)
{
    Hierarchy hierarchy;
    EXPECT_EQ(hierarchy.latency(HitLevel::L1), 3u);
    EXPECT_EQ(hierarchy.latency(HitLevel::L2), 14u);
    EXPECT_EQ(hierarchy.latency(HitLevel::L3), 35u);
    EXPECT_EQ(hierarchy.latency(HitLevel::Memory), 250u);
}

TEST(Hierarchy, ServicedCountsSumToAccesses)
{
    Hierarchy hierarchy;
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        hierarchy.access(rng.nextBelow(1u << 21), i % 3 == 0);
    EXPECT_EQ(hierarchy.totalAccesses(), 20000u);
    EXPECT_EQ(hierarchy.servicedAt(HitLevel::L1) +
                  hierarchy.servicedAt(HitLevel::L2) +
                  hierarchy.servicedAt(HitLevel::L3) +
                  hierarchy.servicedAt(HitLevel::Memory),
              20000u);
}

TEST(Hierarchy, DirtyL1EvictionWritesBackNotLost)
{
    Hierarchy hierarchy;
    const Addr a = 0, b = 16384, c = 32768;
    hierarchy.access(a, true); // dirty in L1
    hierarchy.access(b, false);
    hierarchy.access(c, false); // a evicted from L1, written into L2
    // a must still be close (L2), not re-fetched from DRAM.
    EXPECT_EQ(hierarchy.access(a, false), HitLevel::L2);
}

TEST(Hierarchy, WorkingSetsLandAtTheRightLevel)
{
    auto avgLatency = [](u64 footprint) {
        Hierarchy hierarchy;
        Rng rng(7);
        const u64 lines = footprint / 64;
        for (u64 i = 0; i < lines * 4; ++i)
            hierarchy.access((i % lines) * 64, false); // warm
        Cycles total = 0;
        const int n = 30000;
        for (int i = 0; i < n; ++i) {
            total += hierarchy.latency(
                hierarchy.access(rng.nextBelow(lines) * 64, false));
        }
        return static_cast<double>(total) / n;
    };
    const double l1 = avgLatency(16 * 1024);
    const double l2 = avgLatency(256 * 1024);
    const double dram = avgLatency(64ull << 20);
    EXPECT_NEAR(l1, 3.0, 0.5);
    EXPECT_GT(l2, 8.0);
    EXPECT_LT(l2, 20.0);
    EXPECT_GT(dram, 150.0);
}

TEST(Hierarchy, FlushAllColdRestart)
{
    Hierarchy hierarchy;
    hierarchy.access(0x123400, false);
    EXPECT_EQ(hierarchy.access(0x123400, false), HitLevel::L1);
    hierarchy.flushAll();
    EXPECT_EQ(hierarchy.access(0x123400, false), HitLevel::Memory);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    Hierarchy hierarchy;
    hierarchy.access(0x9000, false);
    hierarchy.resetStats();
    EXPECT_EQ(hierarchy.totalAccesses(), 0u);
    EXPECT_EQ(hierarchy.access(0x9000, false), HitLevel::L1);
}

TEST(Hierarchy, MismatchedLineSizesFatal)
{
    HierarchyConfig config;
    config.l2.lineSize = 128;
    EXPECT_EXIT(Hierarchy{config}, ::testing::ExitedWithCode(1),
                "uniform line size");
}

TEST(Hierarchy, ReferenceModelMatchesFastPathExactly)
{
    // Drive twin hierarchies with the same pseudo-random mixed
    // stream — one through the optimized classes (packed-tag SoA,
    // MRU hint, latency table), one through the standalone
    // pre-fast-path reference model — and require identical hit
    // levels, latencies, statistics and final contents.
    Hierarchy fast;
    cache::ReferenceHierarchy reference;
    u64 state = 0x9E3779B97F4A7C15ull;
    Cycles fastCycles = 0, refCycles = 0;
    for (int i = 0; i < 200000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // ~1.5MB footprint so every level (and DRAM) participates.
        const Addr addr = (state >> 17) % (3u << 19);
        const bool isWrite = (state & 1) != 0;
        const HitLevel f = fast.access(addr, isWrite);
        const HitLevel r = reference.access(addr, isWrite);
        ASSERT_EQ(f, r) << "ref " << i;
        fastCycles += fast.latency(f);
        refCycles += reference.latency(r);
    }
    EXPECT_EQ(fastCycles, refCycles);
    for (const HitLevel level :
         {HitLevel::L1, HitLevel::L2, HitLevel::L3,
          HitLevel::Memory}) {
        EXPECT_EQ(fast.servicedAt(level),
                  reference.servicedAt(level));
    }
    EXPECT_EQ(fast.dramWritebacks(), reference.dramWritebacks());
    EXPECT_EQ(fast.l1().accesses(), reference.l1().accesses());
    EXPECT_EQ(fast.l1().misses(), reference.l1().misses());
    EXPECT_EQ(fast.l2().misses(), reference.l2().misses());
    EXPECT_EQ(fast.l3().writebacksOut(),
              reference.l3().writebacksOut());
    // Final contents agree too: probe a sample of lines.
    for (Addr addr = 0; addr < (3u << 19); addr += 4096)
        EXPECT_EQ(fast.l1().probe(addr), reference.l1().probe(addr));
}

TEST(InOrderCore, CyclesAreInstrsPlusMemoryLatency)
{
    cache::Hierarchy hierarchy;
    cpu::InOrderCore core(hierarchy);
    core.onBlock(0, 100);
    EXPECT_EQ(core.instructions(), 100u);
    EXPECT_EQ(core.cycles(), 100u);

    core.onMemRef(0x8000, false); // cold: DRAM
    EXPECT_EQ(core.cycles(), 100u + 250u);
    core.onMemRef(0x8000, false); // L1 hit
    EXPECT_EQ(core.cycles(), 100u + 250u + 3u);
    EXPECT_EQ(core.totals().memRefs, 2u);
}

TEST(InOrderCore, CpiMath)
{
    cache::Hierarchy hierarchy;
    cpu::InOrderCore core(hierarchy);
    EXPECT_DOUBLE_EQ(core.totals().cpi(), 0.0);
    core.onBlock(0, 10);
    core.onMemRef(0x0, false); // 250
    EXPECT_DOUBLE_EQ(core.totals().cpi(), 26.0);
}
