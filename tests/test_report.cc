/**
 * @file
 * Tests for the gem5-style statistics dump.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/report.hh"
#include "test_support.hh"

using namespace xbsp;

TEST(Report, RunStatsContainExactCounters)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    const sim::DetailedRunResult result =
        sim::runDetailed(binary, sim::DetailedRunRequest{});

    std::ostringstream os;
    sim::dumpRunStats(os, "tiny.32u", result);
    const std::string out = os.str();

    EXPECT_NE(out.find("tiny.32u.sim_insts"), std::string::npos);
    EXPECT_NE(out.find(std::to_string(result.totals.instructions)),
              std::string::npos);
    EXPECT_NE(out.find(std::to_string(result.totals.cycles)),
              std::string::npos);
    EXPECT_NE(out.find("tiny.32u.mem.l1_hits"), std::string::npos);
    // Every line carries a '#' description.
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line))
        EXPECT_NE(line.find('#'), std::string::npos) << line;
}

TEST(Report, StudyStatsCoverAllBinariesAndPairs)
{
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    const auto study =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    std::ostringstream os;
    sim::dumpStudyStats(os, study);
    const std::string out = os.str();
    for (const char* target : {"32u", "32o", "64u", "64o"}) {
        EXPECT_NE(out.find(std::string("tiny.") + target +
                           ".sim_insts"),
                  std::string::npos)
            << target;
    }
    for (const char* pair : {"32u32o", "64u64o", "32u64u", "32o64o"}) {
        EXPECT_NE(out.find(std::string("speedup.") + pair + ".true"),
                  std::string::npos)
            << pair;
    }
    EXPECT_NE(out.find("mappable.points"), std::string::npos);
}
