/**
 * @file
 * Property tests over the whole 21-program workload suite: every
 * program validates, compiles for all four targets, and satisfies
 * the structural expectations the experiments rely on.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "compile/compiler.hh"
#include "ir/builder.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

TEST(WorkloadSuite, TwentyOneBenchmarksInPaperOrder)
{
    const auto names = workloads::workloadNames();
    ASSERT_EQ(names.size(), 21u);
    EXPECT_EQ(names.front(), "ammp");
    EXPECT_EQ(names.back(), "wupwise");
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
    // Sorted alphabetically, like the paper's figures.
    auto sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, names);
}

TEST(WorkloadSuite, RegistryLookup)
{
    EXPECT_NE(workloads::findWorkload("gcc"), nullptr);
    EXPECT_EQ(workloads::findWorkload("doom"), nullptr);
    EXPECT_EXIT((void)workloads::makeWorkload("doom"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadSuite, DescriptionsPresent)
{
    for (const auto& info : workloads::suite())
        EXPECT_FALSE(info.description.empty()) << info.name;
}

class WorkloadTest : public ::testing::TestWithParam<const char*>
{
  protected:
    ir::Program program = workloads::makeWorkload(GetParam(), 1.0);
};

TEST_P(WorkloadTest, NameMatchesRegistry)
{
    EXPECT_EQ(program.name, GetParam());
}

TEST_P(WorkloadTest, SourceSizeInExpectedRange)
{
    const InstrCount count = ir::sourceInstructionCount(program);
    EXPECT_GT(count, 2'000'000u) << "too small for the experiments";
    EXPECT_LT(count, 80'000'000u) << "too slow to simulate";
}

TEST_P(WorkloadTest, ScaleChangesWork)
{
    const ir::Program half = workloads::makeWorkload(GetParam(), 0.5);
    EXPECT_LT(ir::sourceInstructionCount(half),
              ir::sourceInstructionCount(program));
}

TEST_P(WorkloadTest, CompilesForAllTargetsWithExpectedOrdering)
{
    const auto bins = compile::compileAllTargets(program);
    ASSERT_EQ(bins.size(), 4u);
    const InstrCount i32u = bin::staticDynamicInstrCount(bins[0]);
    const InstrCount i32o = bin::staticDynamicInstrCount(bins[1]);
    const InstrCount i64u = bin::staticDynamicInstrCount(bins[2]);
    const InstrCount i64o = bin::staticDynamicInstrCount(bins[3]);
    EXPECT_GT(i32u, i32o);
    EXPECT_GT(i64u, i64o);
    EXPECT_GT(i32u, i64u);
    for (const auto& binary : bins) {
        EXPECT_GT(binary.blockCount(), 0u);
        EXPECT_GT(binary.markerCount(), 0u);
        EXPECT_NE(binary.findProc("main"), invalidId);
    }
}

TEST_P(WorkloadTest, OptimizedBinariesHaveFewerOrEqualSymbols)
{
    const auto bins = compile::compileAllTargets(program);
    EXPECT_LE(bins[1].procs.size(), bins[0].procs.size());
    EXPECT_LE(bins[3].procs.size(), bins[2].procs.size());
}

TEST_P(WorkloadTest, HasMemoryBehaviour)
{
    const auto binary =
        compile::compileProgram(program, bin::target32o);
    u64 memOps = 0;
    for (const auto& blk : binary.blocks)
        memOps += blk.memOps;
    EXPECT_GT(memOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::Values("ammp", "applu", "apsi", "art", "bzip2",
                      "crafty", "eon", "equake", "fma3d", "gcc",
                      "gzip", "lucas", "mcf", "mesa", "perlbmk",
                      "sixtrack", "swim", "twolf", "vortex", "vpr",
                      "wupwise"));

TEST(WorkloadApplu, OptimizerDestroysInnerStructure)
{
    // The applu scenario: under -O2 the five solver symbols are gone
    // and their loops are split.
    const ir::Program applu = workloads::makeApplu(1.0);
    const auto bins = compile::compileAllTargets(applu);
    for (const char* solver :
         {"jacld", "blts", "jacu", "buts", "rhs"}) {
        EXPECT_NE(bins[0].findProc(solver), invalidId) << solver;
        EXPECT_EQ(bins[1].findProc(solver), invalidId) << solver;
    }
}

TEST(WorkloadGcc, HasMoreBehavioursThanMaxK)
{
    // gcc's pass x size-class structure provides > 10 distinct
    // static kernels, which is what drives Table 2.
    const ir::Program gcc = workloads::makeWorkload("gcc", 1.0);
    std::size_t kernels = 0;
    for (const auto& proc : gcc.procedures) {
        if (proc.name.rfind("parse_", 0) == 0 ||
            proc.name.rfind("ssa_opt_", 0) == 0 ||
            proc.name.rfind("regalloc_", 0) == 0 ||
            proc.name.rfind("emit_", 0) == 0) {
            ++kernels;
        }
    }
    EXPECT_GT(kernels, 10u);
}
