/**
 * @file
 * Tests for execution-trace capture and replay, including the
 * live-vs-replay equivalence property.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "exec/trace.hh"
#include "profile/profile.hh"
#include "test_support.hh"

using namespace xbsp;

namespace
{

struct Totals : exec::Observer
{
    u64 blocks = 0;
    InstrCount instrs = 0;
    u64 markers = 0;
    u64 refs = 0;
    u64 writes = 0;
    bool ended = false;

    void
    onBlock(u32, u32 n) override
    {
        ++blocks;
        instrs += n;
    }

    void onMarker(u32) override { ++markers; }

    void
    onMemRef(Addr, bool w) override
    {
        ++refs;
        writes += w ? 1 : 0;
    }

    void onRunEnd() override { ended = true; }
};

} // namespace

TEST(Trace, CaptureReplayEquivalence)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);

    // Live run totals.
    Totals live;
    exec::Engine engine(binary);
    engine.addObserver(&live, {true, true, true});
    engine.run();

    // Capture (with memrefs) and replay into a fresh observer.
    std::stringstream trace;
    exec::TraceOptions options;
    options.memRefs = true;
    const InstrCount captured =
        exec::captureTrace(binary, trace, options);
    EXPECT_EQ(captured, live.instrs);

    Totals replayed;
    const u64 events = exec::replayTrace(trace, {&replayed});
    EXPECT_EQ(events, live.blocks + live.markers + live.refs);
    EXPECT_EQ(replayed.blocks, live.blocks);
    EXPECT_EQ(replayed.instrs, live.instrs);
    EXPECT_EQ(replayed.markers, live.markers);
    EXPECT_EQ(replayed.refs, live.refs);
    EXPECT_EQ(replayed.writes, live.writes);
    EXPECT_TRUE(replayed.ended);
}

TEST(Trace, ReplayDrivesMarkerProfilerIdentically)
{
    const bin::Binary binary =
        compile::compileProgram(test::trickyProgram(), bin::target32o);
    const prof::MarkerProfile live = test::profileMarkers(binary);

    std::stringstream trace;
    exec::captureTrace(binary, trace);
    prof::MarkerProfiler offline(binary);
    exec::replayTrace(trace, {&offline});
    EXPECT_EQ(offline.result().counts, live.counts);
}

TEST(Trace, MemRefsOffByDefault)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    std::stringstream withRefs, withoutRefs;
    exec::TraceOptions refs;
    refs.memRefs = true;
    exec::captureTrace(binary, withRefs, refs);
    exec::captureTrace(binary, withoutRefs);
    EXPECT_GT(withRefs.str().size(), 2 * withoutRefs.str().size());
}

TEST(Trace, BadMagicFatal)
{
    std::stringstream bogus("nope");
    EXPECT_EXIT((void)exec::replayTrace(bogus, {}),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(Trace, TruncatedTraceFatal)
{
    const bin::Binary binary =
        compile::compileProgram(test::tinyProgram(), bin::target32u);
    std::stringstream trace;
    exec::captureTrace(binary, trace);
    std::string bytes = trace.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    EXPECT_EXIT((void)exec::replayTrace(truncated, {}),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(Trace, UnsupportedVersionFatal)
{
    std::string bytes = "XBTR";
    bytes.push_back('\x7F');
    std::stringstream stream(bytes);
    EXPECT_EXIT((void)exec::replayTrace(stream, {}),
                ::testing::ExitedWithCode(1), "version");
}
