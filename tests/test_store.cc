/**
 * @file
 * The artifact store's contract: memoization returns bit-identical
 * values, every failure path (truncation, bit flips, version skew,
 * unwritable directories) degrades to recomputation instead of
 * failing the run, GC is LRU under a byte budget, and a warm
 * end-to-end study is byte-identical to a cold one.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "obs/stats.hh"
#include "sim/study.hh"
#include "store/store.hh"
#include "test_support.hh"
#include "util/format.hh"

using namespace xbsp;
namespace fs = std::filesystem;

namespace
{

/** Fresh cache directory per test, removed on teardown. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("xbsp_store_test_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
        fs::remove_all(dir);
        store.configure({dir.string(), true});
    }

    void TearDown() override { fs::remove_all(dir); }

    fs::path dir;
    store::ArtifactStore store;
};

/** Trivial codec for tests: a length-prefixed string payload. */
struct StringCodec
{
    using Value = std::string;
    static constexpr u32 tag = serial::fourcc("TSTR");
    static constexpr u32 version = 3;

    static void
    encode(serial::Encoder& e, const std::string& s)
    {
        e.str(s);
    }

    static std::string
    decode(serial::Decoder& d)
    {
        return d.str();
    }
};

serial::Hash128
keyOf(std::string_view name)
{
    serial::Hasher h;
    h.str(name);
    return h.finish();
}

u64
counterValue(const std::string& path)
{
    return obs::StatRegistry::global().counterValue(path);
}

} // namespace

TEST_F(StoreTest, GetOrComputeMissThenHit)
{
    const u64 hits0 = counterValue("store.stage.test.hits");
    const u64 misses0 = counterValue("store.stage.test.misses");
    int computations = 0;
    auto compute = [&] {
        ++computations;
        return std::string("artifact-value");
    };
    const serial::Hash128 key = keyOf("a");
    EXPECT_EQ(store.getOrCompute<StringCodec>(key, "test", compute),
              "artifact-value");
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(store.getOrCompute<StringCodec>(key, "test", compute),
              "artifact-value");
    EXPECT_EQ(computations, 1);  // served from disk
    EXPECT_EQ(counterValue("store.stage.test.hits"), hits0 + 1);
    EXPECT_EQ(counterValue("store.stage.test.misses"), misses0 + 1);
    EXPECT_GT(counterValue("store.bytes_written"), 0u);
    EXPECT_GT(counterValue("store.bytes_read"), 0u);
}

TEST_F(StoreTest, ContainsProbesHeaderWithoutHitMissAccounting)
{
    const serial::Hash128 key = keyOf("probe-me");
    EXPECT_FALSE(
        store.contains(key, StringCodec::tag, StringCodec::version));
    store.getOrCompute<StringCodec>(key, "test",
                                    [] { return std::string("v"); });

    const u64 hits0 = counterValue("store.stage.test.hits");
    const u64 misses0 = counterValue("store.stage.test.misses");
    const u64 probes0 = counterValue("store.probes");
    EXPECT_TRUE(
        store.contains(key, StringCodec::tag, StringCodec::version));
    // Wrong type tag or version: present on disk, but not usable.
    EXPECT_FALSE(store.contains(key, serial::fourcc("XXXX"),
                                StringCodec::version));
    EXPECT_FALSE(
        store.contains(key, StringCodec::tag,
                       StringCodec::version + 1));
    EXPECT_FALSE(store.contains(keyOf("absent"), StringCodec::tag,
                                StringCodec::version));
    // Probes are header-only reads: they never count as hits or
    // misses (a miss would skew the warm-run assertions in CI).
    EXPECT_EQ(counterValue("store.stage.test.hits"), hits0);
    EXPECT_EQ(counterValue("store.stage.test.misses"), misses0);
    EXPECT_EQ(counterValue("store.probes"), probes0 + 4);

    store.configure({dir.string(), false});
    EXPECT_FALSE(
        store.contains(key, StringCodec::tag, StringCodec::version));
}

TEST_F(StoreTest, DisabledStoreAlwaysComputes)
{
    store.configure({dir.string(), false});
    int computations = 0;
    auto compute = [&] {
        ++computations;
        return std::string("v");
    };
    store.getOrCompute<StringCodec>(keyOf("k"), "test", compute);
    store.getOrCompute<StringCodec>(keyOf("k"), "test", compute);
    EXPECT_EQ(computations, 2);
    EXPECT_EQ(store.scan().entries, 0u);
}

TEST_F(StoreTest, EntriesShardedByKeyPrefix)
{
    const serial::Hash128 key = keyOf("shard-me");
    store.getOrCompute<StringCodec>(key, "test",
                                    [] { return std::string("x"); });
    const fs::path path(store.entryPath(key));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_EQ(path.parent_path().filename().string(),
              key.hex().substr(0, 2));
    EXPECT_EQ(path.filename().string(), key.hex() + ".art");
}

TEST_F(StoreTest, TruncatedEntryFallsBackToRecompute)
{
    const serial::Hash128 key = keyOf("trunc");
    store.getOrCompute<StringCodec>(
        key, "test", [] { return std::string("original"); });
    const fs::path path(store.entryPath(key));
    const auto fullSize = fs::file_size(path);
    fs::resize_file(path, fullSize / 2);

    int computations = 0;
    const std::string value = store.getOrCompute<StringCodec>(
        key, "test", [&] {
            ++computations;
            return std::string("original");
        });
    EXPECT_EQ(value, "original");
    EXPECT_EQ(computations, 1);  // corrupt entry evicted, recomputed
    // The recomputed artifact was written back intact.
    EXPECT_EQ(fs::file_size(store.entryPath(key)), fullSize);
}

TEST_F(StoreTest, FlippedPayloadByteFailsChecksumAndRecomputes)
{
    const serial::Hash128 key = keyOf("flip");
    store.getOrCompute<StringCodec>(
        key, "test", [] { return std::string("payload-bytes"); });
    const fs::path path(store.entryPath(key));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        // Flip one bit in the middle of the payload (header is 24
        // bytes; the payload starts right after).
        f.seekg(26);
        char c = 0;
        f.get(c);
        f.seekp(26);
        f.put(static_cast<char>(c ^ 0x40));
    }
    int computations = 0;
    const std::string value = store.getOrCompute<StringCodec>(
        key, "test", [&] {
            ++computations;
            return std::string("payload-bytes");
        });
    EXPECT_EQ(value, "payload-bytes");
    EXPECT_EQ(computations, 1);
}

TEST_F(StoreTest, TypeVersionMismatchEvictsAndRecomputes)
{
    const serial::Hash128 key = keyOf("versioned");
    // Simulate an artifact written by an older codec revision.
    serial::Encoder e;
    e.str("stale-format");
    store.writeEntry(key, StringCodec::tag, StringCodec::version - 1,
                     e.view());
    EXPECT_TRUE(fs::exists(store.entryPath(key)));

    int computations = 0;
    const std::string value = store.getOrCompute<StringCodec>(
        key, "test", [&] {
            ++computations;
            return std::string("fresh");
        });
    EXPECT_EQ(value, "fresh");
    EXPECT_EQ(computations, 1);
}

TEST_F(StoreTest, TypeTagMismatchEvictsAndRecomputes)
{
    const serial::Hash128 key = keyOf("tagged");
    serial::Encoder e;
    e.str("other-type");
    store.writeEntry(key, serial::fourcc("OTHR"), StringCodec::version,
                     e.view());
    int computations = 0;
    store.getOrCompute<StringCodec>(key, "test", [&] {
        ++computations;
        return std::string("v");
    });
    EXPECT_EQ(computations, 1);
}

TEST_F(StoreTest, GarbageInsteadOfMagicEvicts)
{
    const serial::Hash128 key = keyOf("garbage");
    std::error_code ec;
    fs::create_directories(
        fs::path(store.entryPath(key)).parent_path(), ec);
    std::ofstream out(store.entryPath(key), std::ios::binary);
    out << "this is not an artifact file at all";
    out.close();
    int computations = 0;
    EXPECT_EQ(store.getOrCompute<StringCodec>(key, "test",
                                              [&] {
                                                  ++computations;
                                                  return std::string(
                                                      "clean");
                                              }),
              "clean");
    EXPECT_EQ(computations, 1);
}

TEST_F(StoreTest, UnwritableCacheDirectoryStillComputes)
{
    // A cache path nested under a regular *file* can never be
    // created, no matter the euid (chmod-based read-only tests are
    // moot when the suite runs as root).
    const fs::path blocker = dir / "blocker";
    fs::create_directories(dir);
    std::ofstream(blocker).put('x');
    store.configure({(blocker / "cache").string(), true});

    int computations = 0;
    const std::string value = store.getOrCompute<StringCodec>(
        keyOf("k"), "test", [&] {
            ++computations;
            return std::string("computed-anyway");
        });
    EXPECT_EQ(value, "computed-anyway");
    EXPECT_EQ(computations, 1);
    // Nothing persisted, and a second call recomputes again —
    // degraded, never broken.
    store.getOrCompute<StringCodec>(keyOf("k"), "test", [&] {
        ++computations;
        return std::string("computed-anyway");
    });
    EXPECT_EQ(computations, 2);
}

TEST_F(StoreTest, ScanCountsEntriesAndBytes)
{
    store.getOrCompute<StringCodec>(keyOf("one"), "test",
                                    [] { return std::string("a"); });
    store.getOrCompute<StringCodec>(keyOf("two"), "test",
                                    [] { return std::string("bb"); });
    const store::CacheScan scan = store.scan();
    EXPECT_EQ(scan.entries, 2u);
    EXPECT_GT(scan.bytes, 0u);
    EXPECT_EQ(scan.tempFiles, 0u);
}

TEST_F(StoreTest, GcEvictsOldestFirstUnderByteBudget)
{
    const serial::Hash128 oldKey = keyOf("old");
    const serial::Hash128 newKey = keyOf("new");
    store.getOrCompute<StringCodec>(oldKey, "test",
                                    [] { return std::string("o"); });
    store.getOrCompute<StringCodec>(newKey, "test",
                                    [] { return std::string("n"); });
    // Age the first entry well past the second.
    std::error_code ec;
    fs::last_write_time(store.entryPath(oldKey),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(48),
                        ec);
    ASSERT_FALSE(ec);

    const u64 oneEntry = fs::file_size(store.entryPath(newKey));
    const store::GcResult result = store.gc(oneEntry);
    EXPECT_EQ(result.removedEntries, 1u);
    EXPECT_EQ(result.keptEntries, 1u);
    EXPECT_FALSE(fs::exists(store.entryPath(oldKey)));
    EXPECT_TRUE(fs::exists(store.entryPath(newKey)));
}

TEST_F(StoreTest, GcSparesRecentlyProbedEntries)
{
    // Regression: the scheduler's contains() probe promises "this
    // stage will be served from the cache", but probes deliberately
    // don't bump mtimes — so before the grace window, a concurrent
    // gc could evict a just-probed entry and break the promise
    // mid-run (recompute where the scheduler planned a cache hit).
    const serial::Hash128 probed = keyOf("probed");
    const serial::Hash128 cold = keyOf("cold");
    store.getOrCompute<StringCodec>(probed, "test",
                                    [] { return std::string("p"); });
    store.getOrCompute<StringCodec>(cold, "test",
                                    [] { return std::string("c"); });

    ASSERT_TRUE(store.contains(probed, StringCodec::tag,
                               StringCodec::version));

    // Budget 0 would evict everything; the probed entry must survive
    // inside its grace window.
    const store::GcResult graced = store.gc(0);
    EXPECT_EQ(graced.removedEntries, 1u);
    EXPECT_TRUE(fs::exists(store.entryPath(probed)));
    EXPECT_FALSE(fs::exists(store.entryPath(cold)));

    // Grace 0 disables the exemption (maintenance mode).
    const store::GcResult forced = store.gc(0, 0);
    EXPECT_EQ(forced.removedEntries, 1u);
    EXPECT_FALSE(fs::exists(store.entryPath(probed)));
}

TEST_F(StoreTest, GcRemovesStrayTempFiles)
{
    store.getOrCompute<StringCodec>(keyOf("k"), "test",
                                    [] { return std::string("v"); });
    const fs::path stray =
        fs::path(store.entryPath(keyOf("k"))).parent_path() /
        "deadbeef.art.tmp.999.7";
    std::ofstream(stray).put('x');
    EXPECT_EQ(store.scan().tempFiles, 1u);
    store.gc(std::numeric_limits<u64>::max());
    EXPECT_FALSE(fs::exists(stray));
    EXPECT_EQ(store.scan().tempFiles, 0u);
}

TEST_F(StoreTest, ClearRemovesEverything)
{
    store.getOrCompute<StringCodec>(keyOf("x"), "test",
                                    [] { return std::string("1"); });
    store.getOrCompute<StringCodec>(keyOf("y"), "test",
                                    [] { return std::string("2"); });
    EXPECT_EQ(store.clear(), 2u);
    EXPECT_EQ(store.scan().entries, 0u);
}

TEST_F(StoreTest, ConcurrentWritersNeverExposePartialEntries)
{
    // Two stores sharing one directory model two processes racing on
    // the same key: both write, the rename is atomic, and whichever
    // entry lands is complete and decodable.
    store::ArtifactStore other({dir.string(), true});
    const serial::Hash128 key = keyOf("race");
    store.writeEntry(key, StringCodec::tag, StringCodec::version,
                     "payload");
    other.writeEntry(key, StringCodec::tag, StringCodec::version,
                     "payload");
    const auto back =
        store.readEntry(key, StringCodec::tag, StringCodec::version);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "payload");
    EXPECT_EQ(store.scan().tempFiles, 0u);
}

namespace
{

/** Tiny-study fingerprint that covers every per-binary metric. */
std::string
studyFingerprint(const sim::CrossBinaryStudy& study)
{
    std::string out;
    for (const auto& bs : study.perBinary()) {
        out += format("{} {} {} {} {} {}|", bin::targetName(bs.target),
                      bs.detailedRun.totals.instructions,
                      bs.detailedRun.totals.cycles,
                      bs.detailedRun.memory.dramAccesses,
                      bs.fliEstimate.cpiError, bs.vliEstimate.cpiError);
    }
    out += format("k={} intervals={}",
                  study.vliClustering().k,
                  study.partition().intervalCount());
    return out;
}

sim::StudyConfig
tinyStudyConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    config.simpoint.maxK = 5;
    return config;
}

} // namespace

TEST_F(StoreTest, WarmStudyIsBitIdenticalToColdStudy)
{
    // Route the *global* store (which the pipeline stages consult) at
    // this test's directory for the duration of the test.
    store::ArtifactStore::configureGlobal({dir.string(), true});

    const std::string cold = studyFingerprint(sim::CrossBinaryStudy::run(
        test::tinyProgram(), tinyStudyConfig()));
    const u64 missesAfterCold = counterValue("store.misses");
    EXPECT_GT(missesAfterCold, 0u);

    const u64 hitsBeforeWarm = counterValue("store.hits");
    const std::string warm = studyFingerprint(sim::CrossBinaryStudy::run(
        test::tinyProgram(), tinyStudyConfig()));
    store::ArtifactStore::configureGlobal({});

    EXPECT_EQ(warm, cold);
    EXPECT_GT(counterValue("store.hits"), hitsBeforeWarm);
    // The warm run recomputed nothing: every stage was served.
    EXPECT_EQ(counterValue("store.misses"), missesAfterCold);
}

TEST_F(StoreTest, InjectedCorruptionIsEvictedAndStudyStillIdentical)
{
    store::ArtifactStore::configureGlobal({dir.string(), true});
    const std::string cold = studyFingerprint(sim::CrossBinaryStudy::run(
        test::tinyProgram(), tinyStudyConfig()));

    // Flip a byte in the middle of every cached artifact.
    std::size_t corrupted = 0;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                         std::ios::binary);
        const auto size =
            static_cast<std::streamoff>(entry.file_size());
        f.seekg(size / 2);
        char c = 0;
        f.get(c);
        f.seekp(size / 2);
        f.put(static_cast<char>(c ^ 0xff));
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0u);

    const u64 evictionsBefore = counterValue("store.evictions");
    const std::string recovered = studyFingerprint(
        sim::CrossBinaryStudy::run(test::tinyProgram(),
                                   tinyStudyConfig()));
    store::ArtifactStore::configureGlobal({});

    EXPECT_EQ(recovered, cold);
    EXPECT_GT(counterValue("store.evictions"), evictionsBefore);
}
