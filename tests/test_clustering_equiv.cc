/**
 * @file
 * Equivalence guard for the accelerated clustering engine: the
 * combination of duplicate-interval dedup, Hamerly-bounded k-means
 * and the parallel (k, seed) sweep must produce a SimPointResult
 * that is *bit-identical* to the naive path — same chosen k, same
 * labels over original intervals, same phase members,
 * representatives and weights, same BIC scores — on real profile
 * data (3 workloads x 4 compilation targets) at 1 and N worker
 * threads, plus the low-level runKMeans contract on synthetic data.
 */

#include <gtest/gtest.h>

#include "compile/compiler.hh"
#include "obs/stats.hh"
#include "profile/profile.hh"
#include "simpoint/simpoint.hh"
#include "util/simd/simd.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

using namespace xbsp;
using namespace xbsp::sp;

namespace
{

/** Exact (bitwise-value) equality of two SimPoint results. */
void
expectIdenticalResults(const SimPointResult& naive,
                       const SimPointResult& accel,
                       const std::string& context)
{
    SCOPED_TRACE(context);
    EXPECT_EQ(naive.k, accel.k);
    EXPECT_EQ(naive.labels, accel.labels);
    EXPECT_EQ(naive.bicByK, accel.bicByK);
    EXPECT_EQ(naive.chosenBic, accel.chosenBic);
    ASSERT_EQ(naive.phases.size(), accel.phases.size());
    for (std::size_t p = 0; p < naive.phases.size(); ++p) {
        EXPECT_EQ(naive.phases[p].id, accel.phases[p].id);
        EXPECT_EQ(naive.phases[p].representative,
                  accel.phases[p].representative);
        EXPECT_EQ(naive.phases[p].weight, accel.phases[p].weight);
        EXPECT_EQ(naive.phases[p].members, accel.phases[p].members);
    }
}

/** Exact equality of two runKMeans outputs. */
void
expectIdenticalKMeans(const KMeansResult& a, const KMeansResult& b)
{
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.centroids, b.centroids);
    EXPECT_EQ(a.clusterWeight, b.clusterWeight);
    EXPECT_EQ(a.weightedSse, b.weightedSse);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
}

/** Gaussian blobs with exact duplicate points mixed in. */
ProjectedData
blobData(std::size_t count, u32 dims, u32 blobs, u64 seed)
{
    Rng rng(seed);
    ProjectedData data;
    data.dims = dims;
    data.count = count;
    data.points.resize(count * dims);
    data.weights.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t blob = i % blobs;
        if (i >= blobs && i % 3 == 0) {
            // Exact duplicate of an earlier point in the same blob.
            for (u32 d = 0; d < dims; ++d)
                data.points[i * dims + d] =
                    data.points[(i - blobs) * dims + d];
        } else {
            for (u32 d = 0; d < dims; ++d)
                data.points[i * dims + d] =
                    10.0 * static_cast<double>(blob) +
                    rng.nextGaussian();
        }
        data.weights[i] = rng.nextDouble(0.5, 2.0);
    }
    return data;
}

} // namespace

TEST(KMeansEquiv, HamerlyMatchesNaiveAcrossKAndInit)
{
    const ProjectedData data = blobData(240, 8, 5, 77);
    for (const InitMethod init :
         {InitMethod::KMeansPlusPlus, InitMethod::RandomPartition}) {
        for (const u32 k : {1u, 2u, 4u, 5u, 9u, 16u}) {
            SCOPED_TRACE("init " + std::to_string(static_cast<int>(
                             init)) + " k " + std::to_string(k));
            KMeansOptions naiveOpts;
            naiveOpts.init = init;
            naiveOpts.accelerate = false;
            KMeansOptions accelOpts = naiveOpts;
            accelOpts.accelerate = true;
            Rng rngA(k * 13 + 1);
            Rng rngB = rngA;
            expectIdenticalKMeans(
                runKMeans(data, k, rngA, naiveOpts),
                runKMeans(data, k, rngB, accelOpts));
        }
    }
}

TEST(KMeansEquiv, HamerlyMatchesNaiveOnDegenerateData)
{
    // All points identical: every re-seeding path triggers.
    ProjectedData flat;
    flat.dims = 3;
    flat.count = 12;
    flat.points.assign(flat.count * flat.dims, 0.25);
    flat.weights.assign(flat.count, 1.0);
    for (const u32 k : {1u, 3u, 12u}) {
        KMeansOptions naiveOpts;
        naiveOpts.accelerate = false;
        KMeansOptions accelOpts;
        accelOpts.accelerate = true;
        Rng rngA(5);
        Rng rngB = rngA;
        expectIdenticalKMeans(runKMeans(flat, k, rngA, naiveOpts),
                              runKMeans(flat, k, rngB, accelOpts));
    }
}

/**
 * The headline guarantee: the full accelerated pipeline (dedup +
 * Hamerly + parallel sweep) is bit-identical to the naive pipeline
 * on the FLI profile vectors of every binary of several workloads,
 * with both 1 worker and several.
 */
TEST(ClusteringEquiv, AcceleratedPipelineBitIdenticalOnWorkloads)
{
    const std::vector<std::string> names{"gzip", "mcf", "swim"};
    SimPointOptions naiveOpts;
    naiveOpts.maxK = 10;
    naiveOpts.accelerate = false;
    SimPointOptions accelOpts = naiveOpts;
    accelOpts.accelerate = true;

    for (const std::string& name : names) {
        const ir::Program program = workloads::makeWorkload(name, 1.0);
        const std::vector<bin::Binary> bins =
            compile::compileAllTargets(program);
        ASSERT_EQ(bins.size(), 4u);
        for (const bin::Binary& binary : bins) {
            // A small interval target yields thousands of intervals
            // with heavy exact duplication, so dedup, the Hamerly
            // bounds and the parallel sweep are all genuinely hot.
            const prof::ProfilePass pass =
                prof::runProfilePass(binary, 10000);
            ASSERT_GT(pass.fliIntervals.size(), 100u);
            const std::string context =
                name + " / " + binary.displayName();

            setGlobalJobs(1);
            const SimPointResult naive =
                pickSimulationPoints(pass.fliIntervals, naiveOpts);
            const SimPointResult accelSerial =
                pickSimulationPoints(pass.fliIntervals, accelOpts);
            setGlobalJobs(4);
            const SimPointResult accelParallel =
                pickSimulationPoints(pass.fliIntervals, accelOpts);
            setGlobalJobs(0);

            expectIdenticalResults(naive, accelSerial,
                                   context + " (1 thread)");
            expectIdenticalResults(naive, accelParallel,
                                   context + " (4 threads)");
        }
    }
}

/**
 * The accelerated path must not just match the naive result — its
 * observability counters must show *why* it is cheaper: the naive
 * sweep never touches the Hamerly counters, the accelerated sweep
 * proves most class assignments by the bound (skips > 0) and
 * evaluates strictly fewer E-step distances.
 */
TEST(ClusteringEquiv, StatsQuantifyAcceleration)
{
    const ir::Program program = workloads::makeWorkload("gzip", 1.0);
    const bin::Binary binary =
        compile::compileProgram(program, bin::target32o);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 10000);
    ASSERT_GT(pass.fliIntervals.size(), 100u);

    SimPointOptions naiveOpts;
    naiveOpts.maxK = 10;
    naiveOpts.accelerate = false;
    SimPointOptions accelOpts = naiveOpts;
    accelOpts.accelerate = true;

    obs::StatRegistry& reg = obs::StatRegistry::global();
    auto snapshot = [&reg]() {
        struct Work
        {
            u64 distances, skips, fallbacks;
        };
        return Work{reg.counterValue("kmeans.estep.distances"),
                    reg.counterValue("kmeans.hamerly.skips"),
                    reg.counterValue("kmeans.hamerly.fallbacks")};
    };

    const auto base = snapshot();
    const SimPointResult naive =
        pickSimulationPoints(pass.fliIntervals, naiveOpts);
    const auto afterNaive = snapshot();
    const SimPointResult accel =
        pickSimulationPoints(pass.fliIntervals, accelOpts);
    const auto afterAccel = snapshot();
    expectIdenticalResults(naive, accel, "gzip/32o stats run");

    // The naive sweep counts distances but never consults the bound.
    const u64 naiveDistances = afterNaive.distances - base.distances;
    EXPECT_GT(naiveDistances, 0u);
    EXPECT_EQ(afterNaive.skips, base.skips);
    EXPECT_EQ(afterNaive.fallbacks, base.fallbacks);

    // The accelerated sweep skips real work and pays fewer distances.
    const u64 accelDistances =
        afterAccel.distances - afterNaive.distances;
    EXPECT_GT(accelDistances, 0u);
    EXPECT_LT(accelDistances, naiveDistances);
    EXPECT_GT(afterAccel.skips - afterNaive.skips, 0u);

    // The sweep-level stats moved too: one sweep per engine, each
    // sampling the same chosen k into the distribution.
    EXPECT_GE(reg.counterValue("simpoint.sweeps"), 2u);
    EXPECT_GT(reg.counterValue("kmeans.fits"), 0u);
    EXPECT_GT(reg.counterValue("dedup.calls"), 0u);
}

/**
 * The PR-2 contract, extended: `simd` — like `accelerate` — is a pure
 * speed knob.  Sweep simd on/off x accelerate on/off x jobs 1/4 on
 * real profile data; every combination must produce a study report
 * (labels, BIC scores, phases) bit-identical to the scalar serial
 * naive reference.
 */
TEST(ClusteringEquiv, SimdSweepBitIdentical)
{
    const ir::Program program = workloads::makeWorkload("gzip", 1.0);
    const bin::Binary binary =
        compile::compileProgram(program, bin::target32o);
    const prof::ProfilePass pass = prof::runProfilePass(binary, 10000);
    ASSERT_GT(pass.fliIntervals.size(), 100u);

    SimPointOptions opts;
    opts.maxK = 10;

    // Reference: scalar kernels, serial, naive E-step.
    ASSERT_TRUE(simd::select("scalar"));
    setGlobalJobs(1);
    opts.accelerate = false;
    const SimPointResult reference =
        pickSimulationPoints(pass.fliIntervals, opts);

    for (const char* mode : {"scalar", "auto"}) {
        ASSERT_TRUE(simd::select(mode));
        for (const bool accel : {false, true}) {
            for (const u64 jobs : {u64{1}, u64{4}}) {
                opts.accelerate = accel;
                setGlobalJobs(jobs);
                const SimPointResult got =
                    pickSimulationPoints(pass.fliIntervals, opts);
                expectIdenticalResults(
                    reference, got,
                    std::string("simd=") + mode +
                        " accel=" + (accel ? "on" : "off") +
                        " jobs=" + std::to_string(jobs));
            }
        }
    }
    setGlobalJobs(0);
    ASSERT_TRUE(simd::select("auto"));
}

TEST(ClusteringEquiv, DedupCollapsesDuplicateHeavyInput)
{
    // Phase-structured input with exactly repeating vectors: dedup
    // must collapse each repetition class to one representative and
    // the clustering must still be bit-identical to naive.
    FrequencyVectorSet fvs;
    fvs.dimension = 64;
    for (std::size_t i = 0; i < 300; ++i) {
        const u32 phase = static_cast<u32>((i / 100) * 16);
        SparseVec vec;
        for (u32 d = 0; d < 4; ++d)
            vec.emplace_back(phase + d, 10.0 * (d + 1));
        fvs.addInterval(std::move(vec), 1000);
    }
    FrequencyVectorSet normalized = fvs;
    normalized.normalize();
    const DedupMap map = normalized.dedup();
    EXPECT_EQ(map.classes(), 3u);
    EXPECT_EQ(map.classOf.size(), 300u);
    EXPECT_EQ(map.classLength[0], 100u * 1000u);

    SimPointOptions naiveOpts;
    naiveOpts.accelerate = false;
    SimPointOptions accelOpts;
    accelOpts.accelerate = true;
    expectIdenticalResults(pickSimulationPoints(fvs, naiveOpts),
                           pickSimulationPoints(fvs, accelOpts),
                           "duplicate-heavy synthetic");
}
