/**
 * @file
 * End-to-end integration tests for CrossBinaryStudy: the invariants
 * the paper's pipeline guarantees, checked on real (scaled-down)
 * workloads.
 */

#include <gtest/gtest.h>

#include "sim/study.hh"
#include "test_support.hh"
#include "workloads/workloads.hh"

using namespace xbsp;

namespace
{

sim::StudyConfig
smallConfig()
{
    sim::StudyConfig config;
    config.intervalTarget = 50000;
    config.simpoint.maxK = 10;
    return config;
}

sim::CrossBinaryStudy
runTiny()
{
    static const sim::CrossBinaryStudy study =
        sim::CrossBinaryStudy::run(test::tinyProgram(), smallConfig());
    return study;
}

} // namespace

TEST(Study, FourBinariesWithConsistentTargets)
{
    const auto study = runTiny();
    ASSERT_EQ(study.perBinary().size(), 4u);
    EXPECT_EQ(study.perBinary()[0].target, bin::target32u);
    EXPECT_EQ(study.perBinary()[3].target, bin::target64o);
    EXPECT_EQ(study.programName(), "tiny");
}

TEST(Study, VliIntervalCountIdenticalAcrossBinaries)
{
    const auto study = runTiny();
    const std::size_t count = study.partition().intervalCount();
    for (const auto& bs : study.perBinary())
        EXPECT_EQ(bs.detailedRun.vliIntervals.size(), count);
}

TEST(Study, IntervalStatsSumToTotals)
{
    const auto study = runTiny();
    for (const auto& bs : study.perBinary()) {
        InstrCount fliInstrs = 0, vliInstrs = 0;
        Cycles fliCycles = 0, vliCycles = 0;
        for (const auto& iv : bs.detailedRun.fliIntervals) {
            fliInstrs += iv.instrs;
            fliCycles += iv.cycles;
        }
        for (const auto& iv : bs.detailedRun.vliIntervals) {
            vliInstrs += iv.instrs;
            vliCycles += iv.cycles;
        }
        EXPECT_EQ(fliInstrs, bs.totalInstrs);
        EXPECT_EQ(vliInstrs, bs.totalInstrs);
        EXPECT_EQ(fliCycles, bs.detailedRun.totals.cycles);
        EXPECT_EQ(vliCycles, bs.detailedRun.totals.cycles);
    }
}

TEST(Study, WeightsSumToOnePerBinaryAndScheme)
{
    const auto study = runTiny();
    for (const auto& bs : study.perBinary()) {
        double fli = 0.0, vli = 0.0;
        for (const auto& phase : bs.fliEstimate.phases)
            fli += phase.weight;
        for (const auto& phase : bs.vliEstimate.phases)
            vli += phase.weight;
        EXPECT_NEAR(fli, 1.0, 1e-9);
        EXPECT_NEAR(vli, 1.0, 1e-9);
    }
}

TEST(Study, EstimatesWithinIntervalCpiRange)
{
    const auto study = runTiny();
    for (const auto& bs : study.perBinary()) {
        double lo = 1e30, hi = 0.0;
        for (const auto& iv : bs.detailedRun.vliIntervals) {
            lo = std::min(lo, iv.cpi());
            hi = std::max(hi, iv.cpi());
        }
        EXPECT_GE(bs.vliEstimate.estCpi, lo - 1e-9);
        EXPECT_LE(bs.vliEstimate.estCpi, hi + 1e-9);
        EXPECT_GE(bs.vliEstimate.trueCpi, lo - 1e-9);
        EXPECT_LE(bs.vliEstimate.trueCpi, hi + 1e-9);
    }
}

TEST(Study, SelfSpeedupIsExactlyOne)
{
    const auto study = runTiny();
    for (std::size_t b = 0; b < 4; ++b) {
        EXPECT_DOUBLE_EQ(study.trueSpeedup(b, b), 1.0);
        EXPECT_DOUBLE_EQ(
            study.estimatedSpeedup(sim::Method::PerBinaryFli, b, b),
            1.0);
        EXPECT_DOUBLE_EQ(
            study.speedupError(sim::Method::MappableVli, b, b), 0.0);
    }
}

TEST(Study, OptimizationProducesRealSpeedup)
{
    const auto study = runTiny();
    EXPECT_GT(study.trueSpeedup(0, 1), 1.2); // 32u -> 32o
    EXPECT_GT(study.trueSpeedup(2, 3), 1.2); // 64u -> 64o
}

TEST(Study, MethodNamesAndPairs)
{
    EXPECT_EQ(sim::methodName(sim::Method::PerBinaryFli), "fli");
    EXPECT_EQ(sim::methodName(sim::Method::MappableVli), "vli");
    const auto same = sim::samePlatformPairs();
    ASSERT_EQ(same.size(), 2u);
    EXPECT_EQ(same[0].label, "32u32o");
    const auto cross = sim::crossPlatformPairs();
    ASSERT_EQ(cross.size(), 2u);
    EXPECT_EQ(cross[1].label, "32o64o");
}

TEST(Study, NonDetailedModeStillComputesStructure)
{
    sim::StudyConfig config = smallConfig();
    config.detailed = false;
    const auto study =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    EXPECT_GT(study.partition().intervalCount(), 0u);
    EXPECT_GT(study.avgSimPointCount(sim::Method::MappableVli), 0.0);
    EXPECT_GT(study.avgIntervalSize(sim::Method::MappableVli), 0.0);
    for (const auto& bs : study.perBinary()) {
        EXPECT_TRUE(bs.detailedRun.fliIntervals.empty());
        EXPECT_GT(bs.avgVliIntervalSize, 0.0);
    }
}

TEST(Study, PrimaryChoiceChangesIntervalSizes)
{
    sim::StudyConfig config = smallConfig();
    config.detailed = false;
    config.primaryIdx = 0; // 32u primary: big primary, mapped shrink
    const auto fromUnopt =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    config.primaryIdx = 1; // 32o primary: mapped intervals grow
    const auto fromOpt =
        sim::CrossBinaryStudy::run(test::tinyProgram(), config);
    EXPECT_GT(fromOpt.avgIntervalSize(sim::Method::MappableVli),
              fromUnopt.avgIntervalSize(sim::Method::MappableVli));
}

TEST(Study, BadPrimaryIndexFatal)
{
    sim::StudyConfig config = smallConfig();
    config.primaryIdx = 9;
    EXPECT_EXIT((void)sim::CrossBinaryStudy::run(test::tinyProgram(),
                                                 config),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Study, SpeedupIndexOutOfRangeFatal)
{
    const auto study = runTiny();
    EXPECT_EXIT((void)study.trueSpeedup(9, 0),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT((void)study.estimatedSpeedup(sim::Method::MappableVli,
                                             0, 17),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Study, PairHelpersValidateBinaryCount)
{
    EXPECT_EXIT((void)sim::samePlatformPairs(2),
                ::testing::ExitedWithCode(1),
                "four standard binaries");
    EXPECT_EXIT((void)sim::crossPlatformPairs(3),
                ::testing::ExitedWithCode(1),
                "four standard binaries");
}

TEST(Study, EndToEndOnRealWorkload)
{
    sim::StudyConfig config;
    config.intervalTarget = 100000;
    const auto study = sim::CrossBinaryStudy::run(
        workloads::makeWorkload("gzip", 0.2), config);
    // Sanity: estimates exist and are within a loose error bound of
    // the truth (the pipeline should never be wildly wrong on a
    // simple workload).
    for (const auto& bs : study.perBinary()) {
        EXPECT_GT(bs.vliEstimate.trueCpi, 1.0);
        EXPECT_LT(bs.vliEstimate.cpiError, 0.5);
        EXPECT_LT(bs.fliEstimate.cpiError, 0.5);
    }
}
