/**
 * @file
 * Unit tests for the address-stream generators.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "mem/pattern.hh"

using namespace xbsp;
using ir::operator""_KiB;

TEST(MemPattern, RegionBasesDisjoint)
{
    // Regions are 4 GiB apart and the stack windows live in the high
    // half, so no generator can alias another region.
    EXPECT_EQ(mem::regionBase(1) - mem::regionBase(0), 1ull << 32);
    EXPECT_GE(mem::stackBase(0), 1ull << 63);
    EXPECT_NE(mem::stackBase(1), mem::stackBase(2));
}

TEST(MemPattern, StrideSequenceWraps)
{
    ir::MemPattern p = ir::stridePattern(1, 256, 64, 0.0, 0.0);
    mem::AddressGenerator gen(p, 1);
    const Addr base = mem::regionBase(1);
    for (int pass = 0; pass < 3; ++pass) {
        for (u64 i = 0; i < 4; ++i)
            EXPECT_EQ(gen.next().addr, base + i * 64);
    }
}

TEST(MemPattern, RandomStaysInWorkingSet)
{
    ir::MemPattern p = ir::randomPattern(2, 64_KiB);
    mem::AddressGenerator gen(p, 2);
    const Addr base = mem::regionBase(2);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = gen.next().addr;
        EXPECT_GE(addr, base);
        EXPECT_LT(addr, base + 64_KiB);
        EXPECT_EQ(addr % 64, 0u);
    }
}

TEST(MemPattern, ChaseVisitsFullCycle)
{
    // The LCG walk has full period over the power-of-two line set.
    ir::MemPattern p = ir::chasePattern(3, 64 * 64); // 64 lines
    mem::AddressGenerator gen(p, 3);
    std::set<Addr> seen;
    for (int i = 0; i < 64; ++i)
        seen.insert(gen.next().addr);
    EXPECT_EQ(seen.size(), 64u);
}

TEST(MemPattern, GatherHotColdSplit)
{
    ir::MemPattern p = ir::gatherPattern(4, 512_KiB, 0.9, 0.0, 0.0);
    mem::AddressGenerator gen(p, 4);
    const Addr base = mem::regionBase(4);
    const Addr hotEnd = base + 512_KiB / 8; // hot subset = 1/8
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (gen.next().addr < hotEnd)
            ++hot;
    }
    // P(addr < hotEnd) = 0.9 + 0.1/8.
    EXPECT_NEAR(hot / static_cast<double>(n), 0.9125, 0.02);
}

TEST(MemPattern, WriteFractionDeterministic)
{
    ir::MemPattern p = ir::stridePattern(5, 64_KiB, 8, 0.25, 0.0);
    mem::AddressGenerator gen(p, 5);
    int writes = 0;
    for (int i = 0; i < 1000; ++i)
        writes += gen.next().isWrite ? 1 : 0;
    EXPECT_EQ(writes, 250);
}

TEST(MemPattern, DeterministicBySeed)
{
    ir::MemPattern p = ir::randomPattern(6, 128_KiB);
    mem::AddressGenerator a(p, 42), b(p, 42), c(p, 43);
    bool differs = false;
    for (int i = 0; i < 200; ++i) {
        const Addr va = a.next().addr;
        EXPECT_EQ(va, b.next().addr);
        differs |= va != c.next().addr;
    }
    EXPECT_TRUE(differs);
}

TEST(MemPattern, DriftChangesFootprintOverTime)
{
    ir::MemPattern p = ir::withDrift(
        ir::randomPattern(7, 64_KiB), 100, 0.5);
    mem::AddressGenerator gen(p, 7);
    const Addr base = mem::regionBase(7);

    auto maxAddrOverLevel = [&]() {
        Addr maxAddr = 0;
        for (int e = 0; e < 100; ++e) {
            gen.beginBlock();
            for (int r = 0; r < 8; ++r)
                maxAddr = std::max(maxAddr, gen.next().addr);
        }
        return maxAddr - base;
    };
    // Level 0: nominal; level 1: grown by amp.
    const Addr level0 = maxAddrOverLevel();
    const Addr level1 = maxAddrOverLevel();
    EXPECT_LE(level0, 64_KiB);
    EXPECT_GT(level1, 64_KiB); // grew ~1.5x
}

TEST(MemPattern, DriftIsPeriodic)
{
    ir::MemPattern p = ir::withDrift(
        ir::randomPattern(8, 64_KiB), 50, 0.4);
    // Two generators with the same seed stay in lockstep through
    // level changes.
    mem::AddressGenerator a(p, 9), b(p, 9);
    for (int e = 0; e < 500; ++e) {
        a.beginBlock();
        b.beginBlock();
        for (int r = 0; r < 4; ++r)
            EXPECT_EQ(a.next().addr, b.next().addr);
    }
}

TEST(MemPattern, NoDriftWithoutPeriod)
{
    ir::MemPattern p = ir::randomPattern(9, 64_KiB);
    mem::AddressGenerator gen(p, 10);
    const Addr base = mem::regionBase(9);
    for (int e = 0; e < 1000; ++e) {
        gen.beginBlock();
        const Addr addr = gen.next().addr;
        EXPECT_LT(addr, base + 64_KiB);
    }
}

TEST(MemPattern, FootprintLines)
{
    EXPECT_EQ(mem::AddressGenerator(ir::randomPattern(1, 64_KiB), 1)
                  .footprintLines(),
              64_KiB / 64);
    EXPECT_EQ(mem::AddressGenerator(
                  ir::stridePattern(1, 64_KiB, 8), 1)
                  .footprintLines(),
              64_KiB / 64);
    EXPECT_EQ(mem::AddressGenerator(ir::MemPattern{}, 1)
                  .footprintLines(),
              0u);
}

TEST(MemPattern, CeilPow2)
{
    EXPECT_EQ(mem::ceilPow2(0), 1u);
    EXPECT_EQ(mem::ceilPow2(1), 1u);
    EXPECT_EQ(mem::ceilPow2(3), 4u);
    EXPECT_EQ(mem::ceilPow2(4), 4u);
    EXPECT_EQ(mem::ceilPow2(1000), 1024u);
}

TEST(MemPattern, NextOnNonePatternPanics)
{
    mem::AddressGenerator gen(ir::MemPattern{}, 1);
    EXPECT_DEATH((void)gen.next(), "without memory ops");
    mem::MemRef ref;
    EXPECT_DEATH(gen.nextBatch(1, &ref), "without memory ops");
}

TEST(MemPattern, NextBatchBitIdenticalToNext)
{
    // nextBatch must reproduce n successive next() calls exactly —
    // same RNG draws, same write-fraction accumulation, in the same
    // order — for every pattern kind, including through drift level
    // changes and uneven batch sizes.
    const std::vector<ir::MemPattern> patterns = {
        ir::stridePattern(1, 64_KiB, 8, 0.3, 0.0),
        ir::randomPattern(2, 128_KiB, 0.25, 0.0),
        ir::chasePattern(3, 64 * 64),
        ir::gatherPattern(4, 512_KiB, 0.9, 0.2, 0.0),
        ir::withDrift(ir::randomPattern(5, 64_KiB), 7, 0.5),
        ir::withDrift(ir::chasePattern(6, 256 * 64), 5, 0.4),
    };
    for (const ir::MemPattern& p : patterns) {
        mem::AddressGenerator one(p, 99), batch(p, 99);
        const u32 sizes[] = {1, 3, 8, 2, 13, 5, 1, 21};
        std::vector<mem::MemRef> buf(32);
        for (int round = 0; round < 50; ++round) {
            for (const u32 n : sizes) {
                one.beginBlock();
                batch.beginBlock();
                batch.nextBatch(n, buf.data());
                for (u32 i = 0; i < n; ++i) {
                    const mem::MemRef expect = one.next();
                    ASSERT_EQ(buf[i].addr, expect.addr);
                    ASSERT_EQ(buf[i].isWrite, expect.isWrite);
                }
            }
        }
    }
}

TEST(MemPattern, NextBatchZeroIsNoOp)
{
    ir::MemPattern p = ir::randomPattern(7, 64_KiB, 0.5, 0.0);
    mem::AddressGenerator a(p, 5), b(p, 5);
    a.nextBatch(0, nullptr);
    EXPECT_EQ(a.next().addr, b.next().addr);
    // Zero refs on a None-pattern block is legal (blocks with only
    // stack traffic never draw from the generator).
    mem::AddressGenerator none(ir::MemPattern{}, 1);
    none.nextBatch(0, nullptr);
}
